use serde::{Deserialize, Serialize};

/// One row of the surrogate benchmark: everything NAS-Bench-201 would report
/// for a fully trained architecture on one dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkEntry {
    /// Architecture index in the search-space enumeration.
    pub arch_index: usize,
    /// Final test accuracy in percent.
    pub test_accuracy: f64,
    /// Final validation accuracy in percent (slightly noisier than test).
    pub valid_accuracy: f64,
    /// Trainable parameters in millions.
    pub params_m: f64,
    /// FLOPs in millions.
    pub flops_m: f64,
    /// Simulated cost of fully training this architecture, in GPU hours.
    ///
    /// Used to charge training-based baselines (µNAS-style evolutionary
    /// search) a realistic search cost.
    pub train_cost_gpu_hours: f64,
}

impl BenchmarkEntry {
    /// Test error in percent (`100 - accuracy`).
    pub fn test_error(&self) -> f64 {
        100.0 - self.test_accuracy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_complement_of_accuracy() {
        let e = BenchmarkEntry {
            arch_index: 1,
            test_accuracy: 93.5,
            valid_accuracy: 92.0,
            params_m: 0.5,
            flops_m: 80.0,
            train_cost_gpu_hours: 1.1,
        };
        assert!((e.test_error() - 6.5).abs() < 1e-12);
    }
}
