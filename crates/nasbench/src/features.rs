//! Structural features of a cell used by the surrogate accuracy model.

use micronas_searchspace::{CellTopology, EdgeId, Operation, NUM_EDGES, NUM_NODES};
use serde::{Deserialize, Serialize};

/// The set of edges that lie on at least one signal-carrying path from the
/// cell input (node 0) to the cell output (node 3).
///
/// Operations on edges outside this set never influence the network output,
/// so the surrogate ignores them — exactly as real training would.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UsefulEdges {
    mask: [bool; NUM_EDGES],
}

impl UsefulEdges {
    /// Computes the useful-edge set of a cell.
    pub fn of(cell: &CellTopology) -> Self {
        // Forward reachability from node 0 over signal-carrying edges.
        let mut forward = [false; NUM_NODES];
        forward[0] = true;
        for edge in EdgeId::all() {
            let (src, dst) = edge.endpoints();
            if forward[src] && cell.edge_ops()[edge.0].carries_signal() {
                forward[dst] = true;
            }
        }
        // Backward reachability to node 3 (process edges in reverse order).
        let mut backward = [false; NUM_NODES];
        backward[NUM_NODES - 1] = true;
        for edge in EdgeId::all().iter().rev() {
            let (src, dst) = edge.endpoints();
            if backward[dst] && cell.edge_ops()[edge.0].carries_signal() {
                backward[src] = true;
            }
        }
        let mut mask = [false; NUM_EDGES];
        for edge in EdgeId::all() {
            let (src, dst) = edge.endpoints();
            mask[edge.0] =
                cell.edge_ops()[edge.0].carries_signal() && forward[src] && backward[dst];
        }
        Self { mask }
    }

    /// Whether a particular edge is useful.
    pub fn contains(&self, edge: EdgeId) -> bool {
        self.mask.get(edge.0).copied().unwrap_or(false)
    }

    /// Number of useful edges.
    pub fn count(&self) -> usize {
        self.mask.iter().filter(|&&b| b).count()
    }
}

/// Interpretable structural features of a cell, extracted once and consumed
/// by the surrogate accuracy model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CellFeatures {
    /// Whether any signal path connects input to output.
    pub connected: bool,
    /// Number of useful 3×3 convolution edges.
    pub conv3_useful: usize,
    /// Number of useful 1×1 convolution edges.
    pub conv1_useful: usize,
    /// Number of useful skip-connection edges.
    pub skip_useful: usize,
    /// Number of useful average-pooling edges.
    pub pool_useful: usize,
    /// Longest input→output path length counted in parameterised edges.
    pub effective_depth: usize,
    /// Longest input→output path length counted in all signal edges.
    pub path_length: usize,
    /// Number of signal-carrying edges entering the output node.
    pub output_fanin: usize,
    /// Number of `none` edges anywhere in the cell.
    pub none_edges: usize,
}

impl CellFeatures {
    /// Extracts features from a cell.
    pub fn of(cell: &CellTopology) -> Self {
        let useful = UsefulEdges::of(cell);
        let mut conv3 = 0;
        let mut conv1 = 0;
        let mut skip = 0;
        let mut pool = 0;
        for edge in EdgeId::all() {
            if !useful.contains(edge) {
                continue;
            }
            match cell.edge_ops()[edge.0] {
                Operation::NorConv3x3 => conv3 += 1,
                Operation::NorConv1x1 => conv1 += 1,
                Operation::SkipConnect => skip += 1,
                Operation::AvgPool3x3 => pool += 1,
                Operation::None => {}
            }
        }
        let output_fanin = EdgeId::all()
            .iter()
            .filter(|e| e.endpoints().1 == NUM_NODES - 1 && useful.contains(**e))
            .count();
        let none_edges = cell
            .edge_ops()
            .iter()
            .filter(|&&op| op == Operation::None)
            .count();
        Self {
            connected: cell.has_input_output_path(),
            conv3_useful: conv3,
            conv1_useful: conv1,
            skip_useful: skip,
            pool_useful: pool,
            effective_depth: cell.effective_depth(),
            path_length: cell.longest_path_edges(),
            output_fanin,
            none_edges,
        }
    }

    /// Weighted convolutional capacity of the useful part of the cell.
    ///
    /// 3×3 convolutions contribute most, 1×1 convolutions roughly half, and
    /// pooling a small amount of non-parametric mixing.
    pub fn capacity(&self) -> f64 {
        self.conv3_useful as f64 + 0.55 * self.conv1_useful as f64 + 0.15 * self.pool_useful as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micronas_searchspace::SearchSpace;

    #[test]
    fn all_none_cell_is_disconnected_with_no_useful_edges() {
        let cell = CellTopology::new([Operation::None; 6]);
        let useful = UsefulEdges::of(&cell);
        assert_eq!(useful.count(), 0);
        let f = CellFeatures::of(&cell);
        assert!(!f.connected);
        assert_eq!(f.capacity(), 0.0);
        assert_eq!(f.none_edges, 6);
    }

    #[test]
    fn dead_branch_edges_are_not_useful() {
        // conv3x3 on 0->1 but all edges out of node 1 are none, and the only
        // path to the output is the direct skip 0->3.
        let cell = CellTopology::new([
            Operation::NorConv3x3,  // 0->1 (dead end)
            Operation::None,        // 0->2
            Operation::None,        // 1->2
            Operation::SkipConnect, // 0->3
            Operation::None,        // 1->3
            Operation::None,        // 2->3
        ]);
        let useful = UsefulEdges::of(&cell);
        assert!(
            !useful.contains(EdgeId(0)),
            "conv on a dead branch is useless"
        );
        assert!(useful.contains(EdgeId(3)));
        assert_eq!(useful.count(), 1);
        let f = CellFeatures::of(&cell);
        assert_eq!(f.conv3_useful, 0);
        assert_eq!(f.skip_useful, 1);
        assert!(f.connected);
    }

    #[test]
    fn fully_connected_conv_cell_features() {
        let cell = CellTopology::new([Operation::NorConv3x3; 6]);
        let f = CellFeatures::of(&cell);
        assert!(f.connected);
        assert_eq!(f.conv3_useful, 6);
        assert_eq!(f.effective_depth, 3);
        assert_eq!(f.path_length, 3);
        assert_eq!(f.output_fanin, 3);
        assert!((f.capacity() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn capacity_orders_conv3_over_conv1_over_pool() {
        let c3 = CellFeatures::of(&CellTopology::new([Operation::NorConv3x3; 6]));
        let c1 = CellFeatures::of(&CellTopology::new([Operation::NorConv1x1; 6]));
        let p = CellFeatures::of(&CellTopology::new([Operation::AvgPool3x3; 6]));
        assert!(c3.capacity() > c1.capacity());
        assert!(c1.capacity() > p.capacity());
    }

    #[test]
    fn features_are_defined_for_every_architecture() {
        let space = SearchSpace::nas_bench_201();
        for idx in (0..space.len()).step_by(311) {
            let cell = space.cell(idx).unwrap();
            let f = CellFeatures::of(&cell);
            assert!(f.capacity() >= 0.0);
            assert!(f.effective_depth <= 3);
            assert!(f.output_fanin <= 3);
            assert_eq!(
                f.connected,
                cell.has_input_output_path(),
                "connectivity feature must match the cell"
            );
        }
    }
}
