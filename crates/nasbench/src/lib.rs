//! Deterministic surrogate of the NAS-Bench-201 tabular benchmark.
//!
//! The real NAS-Bench-201 ships a lookup table of trained accuracies for all
//! 15 625 architectures on CIFAR-10, CIFAR-100 and ImageNet16-120. That table
//! (and the GPU-weeks of training behind it) is not available here, so this
//! crate provides the substitute documented in `DESIGN.md` (system #4): a
//! **topology-aware surrogate accuracy model**.
//!
//! The surrogate assigns each architecture an accuracy from interpretable
//! structural features of its cell — effective convolutional capacity on the
//! paths that actually reach the output, effective depth, output fan-in,
//! skip-connection balance — plus dataset-specific difficulty scaling and a
//! small hashed reproducible noise term. It preserves the properties the
//! paper's evaluation relies on:
//!
//! * architectures with no input→output path score at chance level;
//! * accuracy rises (with diminishing returns) with useful convolutional
//!   capacity and depth, so trainability/expressivity proxies computed on the
//!   *actual weights* of the candidate correlate positively with it;
//! * FLOPs correlate positively but imperfectly (topology matters), matching
//!   §II-B.1's observation;
//! * CIFAR-10 ≻ CIFAR-100 ≻ ImageNet16-120 in absolute accuracy, with ranges
//!   close to the published benchmark statistics;
//! * every query also reports parameter count, FLOPs and a simulated training
//!   cost so training-based baselines (µNAS) can be charged realistic search
//!   time.
//!
//! # Example
//!
//! ```
//! use micronas_datasets::DatasetKind;
//! use micronas_nasbench::SurrogateBenchmark;
//! use micronas_searchspace::SearchSpace;
//!
//! let space = SearchSpace::nas_bench_201();
//! let bench = SurrogateBenchmark::new(0);
//! let entry = bench.query(&space.architecture(4_000).unwrap(), DatasetKind::Cifar10);
//! assert!(entry.test_accuracy > 0.0 && entry.test_accuracy < 100.0);
//! ```

#![warn(missing_docs)]

mod entry;
mod features;
mod surrogate;

pub use entry::BenchmarkEntry;
pub use features::{CellFeatures, UsefulEdges};
pub use surrogate::SurrogateBenchmark;

// Re-exported so downstream crates get the dataset enum from one place.
pub use micronas_datasets::DatasetKind;
