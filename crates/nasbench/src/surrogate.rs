use crate::{BenchmarkEntry, CellFeatures, DatasetKind};
use micronas_hw::FlopsEstimator;
use micronas_searchspace::{Architecture, MacroSkeleton, SearchSpace};
use micronas_tensor_compat::{hash_mix, split_mix64};
use serde::{Deserialize, Serialize};

// The surrogate only needs the hash helpers from the tensor crate; re-import
// them through a tiny shim module so the dependency stays explicit.
mod micronas_tensor_compat {
    pub fn split_mix64(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn hash_mix(a: u64, b: u64) -> u64 {
        split_mix64(split_mix64(a) ^ b.rotate_left(17))
    }
}

/// Per-dataset calibration of the surrogate accuracy model.
///
/// The constants are chosen so the resulting accuracy distributions match the
/// published NAS-Bench-201 statistics (best/median/chance-level accuracies).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct DatasetCalibration {
    /// Accuracy of a disconnected (untrainable) architecture: chance level.
    chance: f64,
    /// Accuracy of the weakest connected architectures.
    floor: f64,
    /// Additional accuracy available from convolutional capacity.
    capacity_gain: f64,
    /// Additional accuracy available from effective depth.
    depth_gain: f64,
    /// Additional accuracy available from output fan-in (ensemble width).
    width_gain: f64,
    /// Bonus for having at least one skip connection on a useful path.
    skip_bonus: f64,
    /// Penalty per useful pooling edge (over-smoothing hurts on small nets).
    pool_penalty: f64,
    /// Standard deviation of the reproducible training-noise term.
    noise_std: f64,
}

impl DatasetCalibration {
    fn for_dataset(kind: DatasetKind) -> Self {
        match kind {
            DatasetKind::Cifar10 => Self {
                chance: 10.0,
                floor: 62.0,
                capacity_gain: 23.0,
                depth_gain: 6.0,
                width_gain: 3.0,
                skip_bonus: 1.2,
                pool_penalty: 0.8,
                noise_std: 0.45,
            },
            DatasetKind::Cifar100 => Self {
                chance: 1.0,
                floor: 32.0,
                capacity_gain: 30.0,
                depth_gain: 7.5,
                width_gain: 3.5,
                skip_bonus: 1.5,
                pool_penalty: 1.0,
                noise_std: 0.8,
            },
            DatasetKind::ImageNet16_120 => Self {
                chance: 0.83,
                floor: 14.0,
                capacity_gain: 24.0,
                depth_gain: 6.0,
                width_gain: 3.0,
                skip_bonus: 1.2,
                pool_penalty: 1.2,
                noise_std: 1.0,
            },
        }
    }
}

/// The deterministic surrogate benchmark (stand-in for the NAS-Bench-201
/// accuracy tables).
///
/// All queries are pure functions of `(architecture, dataset, seed)`, so
/// repeated runs — and different search algorithms — see exactly the same
/// "trained" accuracies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SurrogateBenchmark {
    seed: u64,
    flops: FlopsEstimator,
}

impl SurrogateBenchmark {
    /// Creates a surrogate benchmark with the given noise seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            flops: FlopsEstimator::new(),
        }
    }

    /// The seed controlling the reproducible noise term.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Queries the benchmark for one architecture on one dataset.
    pub fn query(&self, arch: &Architecture, dataset: DatasetKind) -> BenchmarkEntry {
        let cal = DatasetCalibration::for_dataset(dataset);
        let features = CellFeatures::of(arch.cell());
        let skeleton = self.skeleton_for(dataset);
        let hw = self.flops.cell_in_skeleton(arch.cell(), &skeleton);

        let noise = self.noise(arch.index(), dataset, 0) * cal.noise_std;
        let valid_noise = self.noise(arch.index(), dataset, 1) * cal.noise_std * 1.4;

        let test_accuracy = if !features.connected {
            (cal.chance + 0.3 * noise.abs()).min(100.0)
        } else {
            let capacity_term = cal.capacity_gain * (1.0 - (-features.capacity() / 2.3).exp());
            let depth_term =
                cal.depth_gain * (1.0 - (-(features.effective_depth as f64) / 1.1).exp());
            let width_term = cal.width_gain
                * (1.0 - (-(features.output_fanin as f64 - 1.0).max(0.0) / 1.3).exp());
            let skip_term = if features.skip_useful > 0 && features.effective_depth > 0 {
                cal.skip_bonus
            } else {
                0.0
            };
            let pool_term = cal.pool_penalty * features.pool_useful as f64;
            // Architectures that are connected but have zero parameterised
            // capacity (pure skip/pool) train to a weak but above-chance level.
            let raw =
                cal.floor + capacity_term + depth_term + width_term + skip_term - pool_term + noise;
            raw.clamp(cal.chance, 99.0)
        };
        let valid_accuracy = (test_accuracy - 0.6 + valid_noise).clamp(cal.chance * 0.9, 99.0);

        // Simulated full-training cost: proportional to FLOPs with a fixed
        // per-run overhead; calibrated so a mid-size NAS-Bench-201 model
        // costs on the order of one GPU hour for 200 epochs.
        let train_cost_gpu_hours = 0.25 + hw.flops_m() / 120.0;

        BenchmarkEntry {
            arch_index: arch.index(),
            test_accuracy,
            valid_accuracy,
            params_m: hw.params_m(),
            flops_m: hw.flops_m(),
            train_cost_gpu_hours,
        }
    }

    /// Queries every architecture in the space and returns the entry with the
    /// highest test accuracy. Useful as an oracle in tests and experiments.
    pub fn best_entry(&self, space: &SearchSpace, dataset: DatasetKind) -> BenchmarkEntry {
        space
            .iter()
            .map(|arch| self.query(&arch, dataset))
            .max_by(|a, b| {
                a.test_accuracy
                    .partial_cmp(&b.test_accuracy)
                    .expect("accuracies are finite")
            })
            .expect("space is never empty")
    }

    /// The macro skeleton matching a dataset's input geometry.
    pub fn skeleton_for(&self, dataset: DatasetKind) -> MacroSkeleton {
        match dataset {
            DatasetKind::Cifar10 => MacroSkeleton::nas_bench_201(10),
            DatasetKind::Cifar100 => MacroSkeleton::nas_bench_201(100),
            DatasetKind::ImageNet16_120 => MacroSkeleton::imagenet16(),
        }
    }

    /// Reproducible standard-normal-ish noise for (architecture, dataset, stream).
    fn noise(&self, arch_index: usize, dataset: DatasetKind, stream: u64) -> f64 {
        let h = hash_mix(
            hash_mix(self.seed, dataset.id()),
            hash_mix(arch_index as u64, stream),
        );
        // Sum of three uniforms, centred: a cheap approximately normal variate.
        let u = |k: u64| (split_mix64(h ^ k) >> 11) as f64 / (1u64 << 53) as f64;
        (u(1) + u(2) + u(3)) * 2.0 - 3.0
    }
}

impl Default for SurrogateBenchmark {
    fn default() -> Self {
        Self::new(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micronas_searchspace::{CellTopology, Operation};

    fn space() -> SearchSpace {
        SearchSpace::nas_bench_201()
    }

    #[test]
    fn queries_are_deterministic() {
        let bench = SurrogateBenchmark::new(7);
        let arch = space().architecture(9_876).unwrap();
        let a = bench.query(&arch, DatasetKind::Cifar10);
        let b = bench.query(&arch, DatasetKind::Cifar10);
        assert_eq!(a, b);
        let other_seed = SurrogateBenchmark::new(8).query(&arch, DatasetKind::Cifar10);
        assert_ne!(a.test_accuracy, other_seed.test_accuracy);
    }

    #[test]
    fn disconnected_architectures_score_at_chance() {
        let bench = SurrogateBenchmark::default();
        let all_none = Architecture::from_cell(&space(), CellTopology::new([Operation::None; 6]));
        let c10 = bench.query(&all_none, DatasetKind::Cifar10);
        let c100 = bench.query(&all_none, DatasetKind::Cifar100);
        let in16 = bench.query(&all_none, DatasetKind::ImageNet16_120);
        assert!(c10.test_accuracy < 12.0);
        assert!(c100.test_accuracy < 2.5);
        assert!(in16.test_accuracy < 2.0);
    }

    #[test]
    fn accuracy_ranges_match_published_statistics() {
        // NAS-Bench-201: best CIFAR-10 ≈ 94.4%, best CIFAR-100 ≈ 73.5%,
        // best ImageNet16-120 ≈ 47.3%.
        let bench = SurrogateBenchmark::default();
        let sp = space();
        let best10 = bench.best_entry(&sp, DatasetKind::Cifar10);
        let best100 = bench.best_entry(&sp, DatasetKind::Cifar100);
        let best16 = bench.best_entry(&sp, DatasetKind::ImageNet16_120);
        assert!(
            best10.test_accuracy > 90.0 && best10.test_accuracy < 98.0,
            "{}",
            best10.test_accuracy
        );
        assert!(
            best100.test_accuracy > 65.0 && best100.test_accuracy < 80.0,
            "{}",
            best100.test_accuracy
        );
        assert!(
            best16.test_accuracy > 40.0 && best16.test_accuracy < 55.0,
            "{}",
            best16.test_accuracy
        );
        assert!(best10.test_accuracy > best100.test_accuracy);
        assert!(best100.test_accuracy > best16.test_accuracy);
    }

    #[test]
    fn more_capacity_means_higher_accuracy_on_average() {
        let bench = SurrogateBenchmark::default();
        let sp = space();
        let all_conv3 = bench.query(
            &Architecture::from_cell(&sp, CellTopology::new([Operation::NorConv3x3; 6])),
            DatasetKind::Cifar10,
        );
        let all_conv1 = bench.query(
            &Architecture::from_cell(&sp, CellTopology::new([Operation::NorConv1x1; 6])),
            DatasetKind::Cifar10,
        );
        let all_skip = bench.query(
            &Architecture::from_cell(&sp, CellTopology::new([Operation::SkipConnect; 6])),
            DatasetKind::Cifar10,
        );
        let all_pool = bench.query(
            &Architecture::from_cell(&sp, CellTopology::new([Operation::AvgPool3x3; 6])),
            DatasetKind::Cifar10,
        );
        assert!(all_conv3.test_accuracy > all_conv1.test_accuracy);
        assert!(all_conv1.test_accuracy > all_skip.test_accuracy);
        assert!(all_skip.test_accuracy > all_pool.test_accuracy - 5.0);
        assert!(all_conv3.test_accuracy > 90.0);
    }

    #[test]
    fn flops_correlate_positively_but_not_perfectly_with_accuracy() {
        // Matches §II-B.1: positive correlation, far from rank-1.
        let bench = SurrogateBenchmark::default();
        let sp = space();
        let sample: Vec<BenchmarkEntry> = (0..sp.len())
            .step_by(97)
            .map(|i| bench.query(&sp.architecture(i).unwrap(), DatasetKind::Cifar10))
            .collect();
        let n = sample.len() as f64;
        let mean_f = sample.iter().map(|e| e.flops_m).sum::<f64>() / n;
        let mean_a = sample.iter().map(|e| e.test_accuracy).sum::<f64>() / n;
        let mut cov = 0.0;
        let mut var_f = 0.0;
        let mut var_a = 0.0;
        for e in &sample {
            cov += (e.flops_m - mean_f) * (e.test_accuracy - mean_a);
            var_f += (e.flops_m - mean_f).powi(2);
            var_a += (e.test_accuracy - mean_a).powi(2);
        }
        let pearson = cov / (var_f.sqrt() * var_a.sqrt()).max(1e-12);
        assert!(
            pearson > 0.3,
            "FLOPs/accuracy correlation too weak: {pearson}"
        );
        assert!(
            pearson < 0.98,
            "FLOPs/accuracy correlation implausibly perfect: {pearson}"
        );
    }

    #[test]
    fn validation_accuracy_tracks_test_accuracy() {
        let bench = SurrogateBenchmark::default();
        let sp = space();
        for idx in (0..sp.len()).step_by(1013) {
            let e = bench.query(&sp.architecture(idx).unwrap(), DatasetKind::Cifar100);
            assert!((e.valid_accuracy - e.test_accuracy).abs() < 6.0);
        }
    }

    #[test]
    fn train_cost_scales_with_flops() {
        let bench = SurrogateBenchmark::default();
        let sp = space();
        let heavy = bench.query(
            &Architecture::from_cell(&sp, CellTopology::new([Operation::NorConv3x3; 6])),
            DatasetKind::Cifar10,
        );
        let light = bench.query(&sp.architecture(0).unwrap(), DatasetKind::Cifar10);
        assert!(heavy.train_cost_gpu_hours > light.train_cost_gpu_hours);
        assert!(light.train_cost_gpu_hours > 0.0);
        // A full µNAS-style run training ~500 candidates lands in the
        // hundreds of GPU hours, matching the paper's 552 h order of magnitude.
        assert!(heavy.train_cost_gpu_hours * 500.0 > 100.0);
    }
}
