//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this workspace has no network access to
//! crates.io, and nothing in the workspace actually serialises data — every
//! `#[derive(Serialize, Deserialize)]` is forward-looking API surface. This
//! proc-macro crate therefore provides the two derive macros as no-ops so the
//! annotations compile unchanged; swapping the real `serde` back in later is
//! a one-line `Cargo.toml` change.

use proc_macro::TokenStream;

/// No-op replacement for `serde::Serialize`'s derive macro.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op replacement for `serde::Deserialize`'s derive macro.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
