//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of proptest's API this workspace uses: the
//! [`Strategy`] trait (with `prop_map`), range strategies for the numeric
//! primitives, tuple strategies, [`collection::vec`], [`array::uniform6`]
//! and the [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Unlike real proptest there is no shrinking: each property runs a fixed
//! number of deterministically seeded cases (derived from the test name), so
//! failures reproduce bit-for-bit on every run and machine.

use std::ops::Range;

/// Number of cases each `proptest!` property runs.
pub const DEFAULT_CASES: usize = 48;

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest, Strategy, TestRng};
}

/// Deterministic per-test random source (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Creates a generator seeded from a test name, so every property gets
    /// an independent but reproducible stream.
    pub fn from_name(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::new(h)
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i64 - self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}

impl_signed_range_strategy!(i64, i32, i16, i8, isize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s with element strategy `element` and a length drawn
    /// from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Fixed-size array strategies (`proptest::array`).
pub mod array {
    use super::{Strategy, TestRng};

    macro_rules! uniform_array {
        ($($fn_name:ident => $n:literal),+ $(,)?) => {$(
            /// Strategy for `[S::Value; N]` arrays with independent elements.
            pub fn $fn_name<S: Strategy>(element: S) -> UniformArray<S, $n> {
                UniformArray { element }
            }
        )+};
    }

    uniform_array!(uniform4 => 4, uniform6 => 6, uniform8 => 8);

    /// The strategy returned by the `uniformN` constructors.
    pub struct UniformArray<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArray<S, N> {
        type Value = [S::Value; N];
        fn sample(&self, rng: &mut TestRng) -> [S::Value; N] {
            std::array::from_fn(|_| self.element.sample(rng))
        }
    }
}

/// Runs each contained `#[test] fn name(arg in strategy, ...) { .. }` as a
/// deterministic multi-case property test.
#[macro_export]
macro_rules! proptest {
    ($( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block )+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut __proptest_rng = $crate::TestRng::from_name(stringify!($name));
                for __proptest_case in 0..$crate::DEFAULT_CASES {
                    $( let $arg = $crate::Strategy::sample(&($strategy), &mut __proptest_rng); )+
                    $body
                }
            }
        )+
    };
}

/// Asserts a property-test condition.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_sample_within_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let x = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&x));
            let f = (-2.0f32..2.0).sample(&mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::new(2);
        let strat = crate::collection::vec(0.0f64..1.0, 2..10);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((2..10).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn array_and_map_compose() {
        let mut rng = TestRng::new(3);
        let strat = crate::array::uniform6(0usize..5).prop_map(|a| a.iter().sum::<usize>());
        for _ in 0..100 {
            let s = strat.sample(&mut rng);
            assert!(s <= 24);
        }
    }

    #[test]
    fn sampling_is_deterministic_per_name() {
        let mut a = TestRng::from_name("some_test");
        let mut b = TestRng::from_name("some_test");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = TestRng::from_name("other_test");
        assert_ne!(a.next_u64(), c.next_u64());
    }

    proptest! {
        #[test]
        fn the_macro_itself_works(x in 0u64..100, ys in crate::collection::vec(0usize..4, 1..5)) {
            prop_assert!(x < 100);
            prop_assert!(!ys.is_empty() && ys.len() < 5);
            prop_assert_eq!(ys.len(), ys.len());
        }
    }
}
