//! Offline stand-in for the `rayon` crate.
//!
//! Implements the small slice of rayon's API this workspace uses —
//! `par_iter().map(..).collect()`, `current_num_threads`, and
//! `ThreadPoolBuilder::num_threads(..).build().install(..)` — on top of
//! `std::thread::scope`. Work is split into contiguous chunks, one per
//! worker, and results are reassembled **in input order**, so a parallel map
//! is always a permutation-free, bitwise-deterministic replacement for the
//! sequential map regardless of thread count.
//!
//! The thread count resolves, in priority order: the innermost active
//! [`ThreadPool::install`] scope, the `RAYON_NUM_THREADS` environment
//! variable, then `std::thread::available_parallelism()`.

use std::cell::Cell;
use std::fmt;

thread_local! {
    static POOL_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Commonly used traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::IntoParallelRefIterator;
}

/// The number of worker threads parallel operations will use.
pub fn current_num_threads() -> usize {
    if let Some(n) = POOL_OVERRIDE.with(|c| c.get()) {
        return n.max(1);
    }
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Order-preserving parallel map over a slice.
fn parallel_map<'data, T, U, F>(items: &'data [T], f: &F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&'data T) -> U + Sync,
{
    let threads = current_num_threads().max(1);
    if threads == 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(threads);
    let chunked: Vec<Vec<U>> = std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| scope.spawn(move || part.iter().map(f).collect::<Vec<U>>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel map worker panicked"))
            .collect()
    });
    let mut out = Vec::with_capacity(items.len());
    for part in chunked {
        out.extend(part);
    }
    out
}

/// Types that expose a borrowing parallel iterator (`par_iter`).
pub trait IntoParallelRefIterator<'data> {
    /// Element yielded by the parallel iterator.
    type Item: 'data;
    /// Creates a parallel iterator borrowing `self`.
    fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = T;
    fn par_iter(&'data self) -> ParIter<'data, T> {
        ParIter { items: self }
    }
}

/// A borrowing parallel iterator over a slice.
pub struct ParIter<'data, T> {
    items: &'data [T],
}

impl<'data, T: Sync> ParIter<'data, T> {
    /// Maps every element through `f` in parallel, preserving input order.
    pub fn map<U, F>(self, f: F) -> ParMap<'data, T, F>
    where
        U: Send,
        F: Fn(&'data T) -> U + Sync,
    {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// The mapped form of [`ParIter`]; terminal operations execute the map.
pub struct ParMap<'data, T, F> {
    items: &'data [T],
    f: F,
}

impl<'data, T: Sync, F> ParMap<'data, T, F> {
    /// Executes the parallel map and collects the ordered results.
    pub fn collect<C, U>(self) -> C
    where
        U: Send,
        F: Fn(&'data T) -> U + Sync,
        C: FromIterator<U>,
    {
        parallel_map(self.items, &self.f).into_iter().collect()
    }
}

/// Error returned by [`ThreadPoolBuilder::build`]; never actually produced.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with the default (automatic) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker thread count; 0 means automatic.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Builds the pool.
    ///
    /// # Errors
    ///
    /// Present for API compatibility; this implementation cannot fail.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A scoped thread-count configuration mirroring `rayon::ThreadPool`.
///
/// Workers are spawned per parallel call rather than kept hot; `install`
/// only pins the thread *count* for parallel operations run inside it.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count in force on this thread.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let resolved = if self.num_threads == 0 {
            None
        } else {
            Some(self.num_threads)
        };
        let previous = POOL_OVERRIDE.with(|c| c.replace(resolved));
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_OVERRIDE.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(previous);
        op()
    }

    /// The configured thread count (0 = automatic).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads == 0 {
            current_num_threads()
        } else {
            self.num_threads
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..1000).collect();
        let doubled: Vec<usize> = items.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn single_and_multi_thread_results_agree() {
        let items: Vec<u64> = (0..257).collect();
        let one: Vec<u64> = ThreadPoolBuilder::new()
            .num_threads(1)
            .build()
            .unwrap()
            .install(|| {
                items
                    .par_iter()
                    .map(|&x| x.wrapping_mul(31).rotate_left(7))
                    .collect()
            });
        let many: Vec<u64> = ThreadPoolBuilder::new()
            .num_threads(8)
            .build()
            .unwrap()
            .install(|| {
                items
                    .par_iter()
                    .map(|&x| x.wrapping_mul(31).rotate_left(7))
                    .collect()
            });
        assert_eq!(one, many);
    }

    #[test]
    fn install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(3).build().unwrap();
        pool.install(|| assert_eq!(current_num_threads(), 3));
        // Outside install the override is gone.
        assert_ne!(current_num_threads(), 0);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<usize> = Vec::new();
        let out: Vec<usize> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [41usize];
        let out: Vec<usize> = one[..].par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![42]);
    }
}
