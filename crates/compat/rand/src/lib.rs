//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset of the `rand 0.8` API the workspace uses: the
//! [`RngCore`] / [`Rng`] / [`SeedableRng`] traits, `gen::<f32>()`-style
//! standard sampling and `gen_range` over integer and float ranges. The
//! concrete generator lives in the sibling `rand_chacha` shim.
//!
//! The numeric streams are *not* bit-compatible with upstream `rand`; every
//! consumer in this workspace only relies on determinism within the
//! workspace, which this shim guarantees.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 32/64-bit words.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        ((self.next_u32() as u64) << 32) | self.next_u32() as u64
    }
}

/// Seedable generators (`rand::SeedableRng` subset).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the "standard" distribution of `T`
    /// (uniform `[0, 1)` for floats, uniform bits for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`0..n`, `0..=n`, `lo..hi`).
    fn gen_range<R: UniformRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Types samplable from the standard distribution.
pub trait Standard: Sized {
    /// Draws one standard sample from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 high bits -> uniform in [0, 1) with full f32 mantissa coverage.
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] accepts.
pub trait UniformRange {
    /// The sampled value type.
    type Output;
    /// Draws one uniform sample from `rng`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Widening-multiply technique: unbiased enough for in-workspace use and
    // much cheaper than rejection sampling.

    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl UniformRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_u64_below(rng, span) as $t
            }
        }

        impl UniformRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end - start) as u64 + 1;
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                start + uniform_u64_below(rng, span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl UniformRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}

impl_float_range!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1);
            (self.0 >> 32) as u32
        }
    }

    #[test]
    fn standard_floats_are_in_unit_interval() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Counter(3);
        for _ in 0..1000 {
            let a = rng.gen_range(3usize..17);
            assert!((3..17).contains(&a));
            let b = rng.gen_range(0usize..=4);
            assert!(b <= 4);
            let c = rng.gen_range(-2.0f32..3.5);
            assert!((-2.0..3.5).contains(&c));
        }
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut rng = Counter(1);
        let _ = rng.gen_range(5usize..5);
    }
}
