//! Offline stand-in for the `rand_chacha` crate.
//!
//! Implements a genuine ChaCha8 keystream generator (the full quarter-round
//! schedule, 8 rounds) behind the same `ChaCha8Rng` name and the
//! `SeedableRng::seed_from_u64` constructor the workspace uses. The keystream
//! is *not* bit-compatible with upstream `rand_chacha` (the upstream
//! `seed_from_u64` key-expansion differs), but it is a high-quality, fully
//! deterministic stream — which is the property every consumer in this
//! workspace relies on.

use rand::{RngCore, SeedableRng};

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// A ChaCha stream cipher based RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "exhausted".
    cursor: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let initial = state;
        // 8 rounds = 4 double rounds (column round + diagonal round).
        for _ in 0..4 {
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, init) in state.iter_mut().zip(initial.iter()) {
            *word = word.wrapping_add(*init);
        }
        self.buffer = state;
        self.cursor = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(state: u64) -> Self {
        // SplitMix64 key expansion, as upstream rand does for seed_from_u64.
        let mut x = state;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let word = next();
            pair[0] = word as u32;
            pair[1] = (word >> 32) as u32;
        }
        Self {
            key,
            counter: 0,
            buffer: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.buffer[self.cursor];
        self.cursor += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u32> = (0..8).map(|_| a.next_u32()).collect();
        let vb: Vec<u32> = (0..8).map(|_| b.next_u32()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn keystream_has_balanced_bits() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let ones: u32 = (0..1000).map(|_| rng.next_u32().count_ones()).sum();
        // 1000 words * 32 bits: expect ~16000 ones.
        assert!((14500..17500).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..5 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..50 {
            assert_eq!(a.next_u32(), b.next_u32());
        }
    }

    #[test]
    fn works_with_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let x: f32 = rng.gen();
        assert!((0.0..1.0).contains(&x));
        let n = rng.gen_range(0usize..10);
        assert!(n < 10);
    }
}
