//! Offline stand-in for the `parking_lot` crate.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API (the
//! only part of the API this workspace uses). Poisoned locks are recovered
//! transparently, matching `parking_lot`'s behaviour of not propagating
//! panics through lock acquisition.

use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` never returns a poison error.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose acquisitions never return poison errors.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_guards_exclusive_access() {
        let m = Mutex::new(0usize);
        *m.lock() += 5;
        assert_eq!(*m.lock(), 5);
        assert_eq!(m.into_inner(), 5);
    }

    #[test]
    fn rwlock_allows_multiple_readers() {
        let l = RwLock::new(7usize);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn mutex_survives_a_poisoning_panic() {
        let m = std::sync::Arc::new(Mutex::new(1usize));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison the lock");
        })
        .join();
        // parking_lot semantics: the lock is still usable.
        assert_eq!(*m.lock(), 1);
    }
}
