//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of criterion's API the workspace benches use:
//! [`Criterion`], [`BenchmarkId`], benchmark groups with `sample_size`,
//! `bench_function` / `bench_with_input`, [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Timing model: every benchmark is warmed up once, then `sample_size`
//! samples are collected; each sample runs as many iterations as needed to
//! exceed a minimum measurement window. Median, minimum and maximum
//! per-iteration times are printed in criterion's familiar
//! `time: [low median high]` layout.
//!
//! `--test` on the command line (as passed by `cargo bench -- --test`)
//! switches to smoke mode: each benchmark body runs exactly once, untimed.
//! Positional command-line arguments act as substring filters on benchmark
//! names, like criterion's.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
    filters: Vec<String>,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            test_mode: false,
            filters: Vec::new(),
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Builds a driver from the process command line.
    pub fn from_args() -> Self {
        let mut c = Self::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.test_mode = true,
                // Flags cargo or users pass that we accept and ignore.
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                s if s.starts_with("--") => {}
                s => c.filters.push(s.to_string()),
            }
        }
        c
    }

    /// Whether `--test` smoke mode is active.
    pub fn is_test_mode(&self) -> bool {
        self.test_mode
    }

    fn matches(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f.as_str()))
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        self.run_one(name.to_string(), sample_size, &mut f);
        self
    }

    fn run_one<F>(&mut self, name: String, sample_size: usize, f: &mut F)
    where
        F: FnMut(&mut Bencher),
    {
        if !self.matches(&name) {
            return;
        }
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&name);
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Accepted for API compatibility; the shim sizes its own windows.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        let sample_size = self.sample_size;
        self.criterion.run_one(full, sample_size, &mut f);
        self
    }

    /// Benchmarks `f`, handing it a reference to `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into().0);
        let sample_size = self.sample_size;
        self.criterion
            .run_one(full, sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op; prints nothing extra).
    pub fn finish(self) {}
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id made of a function name and a parameter.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self(format!("{name}/{parameter}"))
    }

    /// An id made of a parameter only.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self(s.to_string())
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Collects timing samples for one benchmark body.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    samples: Vec<f64>,
}

/// Minimum wall-clock window per timing sample.
const MIN_SAMPLE_WINDOW: Duration = Duration::from_millis(10);

impl Bencher {
    /// Runs the benchmarked routine repeatedly, recording per-iteration time.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            return;
        }
        // Warm-up and calibration: how many iterations fill the window?
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed();
        let iters_per_sample = if once >= MIN_SAMPLE_WINDOW {
            1
        } else {
            (MIN_SAMPLE_WINDOW.as_secs_f64() / once.as_secs_f64().max(1e-9)).ceil() as u64
        };

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.samples.push(elapsed / iters_per_sample as f64);
        }
    }

    fn report(&self, name: &str) {
        if self.test_mode {
            println!("{name}: test passed");
            return;
        }
        if self.samples.is_empty() {
            println!("{name}: no samples collected");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("sample times are finite"));
        let median = sorted[sorted.len() / 2];
        let low = sorted[0];
        let high = sorted[sorted.len() - 1];
        println!(
            "{name:<60} time: [{} {} {}]",
            format_time(low),
            format_time(median),
            format_time(high)
        );
    }
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.4} s")
    } else if seconds >= 1e-3 {
        format!("{:.4} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.4} µs", seconds * 1e6)
    } else {
        format!("{:.4} ns", seconds * 1e9)
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(criterion: &mut $crate::Criterion) {
            $( $target(criterion); )+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::from_args();
            $( $group(&mut criterion); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion {
            test_mode: false,
            filters: Vec::new(),
            default_sample_size: 3,
        };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }

    #[test]
    fn test_mode_runs_once() {
        let mut c = Criterion {
            test_mode: true,
            filters: Vec::new(),
            default_sample_size: 10,
        };
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 1);
    }

    #[test]
    fn filters_skip_mismatched_names() {
        let mut c = Criterion {
            test_mode: true,
            filters: vec!["match-me".to_string()],
            default_sample_size: 10,
        };
        let mut ran = 0u64;
        c.bench_function("other", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 0);
        c.bench_function("match-me-too", |b| b.iter(|| ran += 1));
        assert_eq!(ran, 1);
    }

    #[test]
    fn groups_compose_names() {
        let mut c = Criterion {
            test_mode: true,
            filters: Vec::new(),
            default_sample_size: 10,
        };
        let mut group = c.benchmark_group("g");
        group.sample_size(5);
        let mut ran = 0u64;
        group.bench_function("f", |b| b.iter(|| ran += 1));
        group.bench_with_input(BenchmarkId::from_parameter(32), &32usize, |b, &n| {
            b.iter(|| ran += n as u64)
        });
        group.finish();
        assert_eq!(ran, 33);
    }

    #[test]
    fn time_formatting_scales() {
        assert!(format_time(2.0).ends_with(" s"));
        assert!(format_time(2e-3).ends_with(" ms"));
        assert!(format_time(2e-6).ends_with(" µs"));
        assert!(format_time(2e-9).ends_with(" ns"));
    }
}
