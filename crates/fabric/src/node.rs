//! The fabric node: a TCP server answering `Get`/`Put`/`Batch`/`Ping`
//! against a local [`EvalStore`].
//!
//! A node is deliberately dumb: it owns no routing and no policy, it just
//! serves its shard of the keyspace out of an ordinary store (clients pick
//! owners with [`crate::HashRing`]). Reads use [`EvalStore::peek`] — local
//! memory and log only, no cache-statistics side effects — so a node's
//! hit/miss accounting stays meaningful for its own workload.
//!
//! The server is a bounded worker pool over `std::net::TcpListener`
//! blocking sockets. Every connection carries a read deadline: a peer that
//! goes quiet between frames just idles a worker tick (which doubles as the
//! shutdown poll), while a peer that stalls *mid-frame* — the slow-loris
//! case — is disconnected with a timeout. When all workers are busy,
//! excess connections beyond a bounded backlog are dropped at accept time
//! rather than queueing without bound.

use crate::wire::{self, Message};
use crate::FabricError;
use micronas_store::EvalStore;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Tuning knobs for [`FabricNode::serve`].
#[derive(Debug, Clone)]
pub struct NodeOptions {
    /// Number of connection-serving worker threads.
    pub workers: usize,
    /// Accepted connections that may wait for a free worker before new
    /// arrivals are dropped.
    pub backlog: usize,
    /// Per-read socket deadline; also the shutdown-poll granularity.
    pub read_timeout: Duration,
}

impl Default for NodeOptions {
    fn default() -> Self {
        NodeOptions {
            workers: 4,
            backlog: 32,
            read_timeout: Duration::from_millis(250),
        }
    }
}

/// Counters describing everything a node has served.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeStats {
    /// Handshakes accepted.
    pub connections: u64,
    /// Handshakes refused over a namespace mismatch.
    pub refused_handshakes: u64,
    /// Point and batched lookups served (per key).
    pub gets: u64,
    /// Lookups that found a record.
    pub get_hits: u64,
    /// Point and batched writes applied (per record).
    pub puts: u64,
    /// Liveness probes answered.
    pub pings: u64,
    /// Connections dropped because the worker backlog was full.
    pub dropped_connections: u64,
    /// Connections that ended with a protocol or I/O error.
    pub errors: u64,
}

#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    refused: AtomicU64,
    gets: AtomicU64,
    get_hits: AtomicU64,
    puts: AtomicU64,
    pings: AtomicU64,
    dropped: AtomicU64,
    errors: AtomicU64,
}

struct Shared {
    store: Arc<EvalStore>,
    namespace: u64,
    stop: AtomicBool,
    counters: Counters,
    read_timeout: Duration,
}

/// A running fabric node. Shuts down (stopping all threads) on drop.
pub struct FabricNode {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<JoinHandle<()>>,
    worker_handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for FabricNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FabricNode")
            .field("addr", &self.addr)
            .field("namespace", &self.shared.namespace)
            .finish_non_exhaustive()
    }
}

impl FabricNode {
    /// Binds a loopback listener on an ephemeral port and starts serving
    /// `store` with [`NodeOptions::default`].
    ///
    /// # Errors
    ///
    /// Propagates socket setup failures.
    pub fn serve(store: Arc<EvalStore>) -> io::Result<FabricNode> {
        FabricNode::serve_with(store, NodeOptions::default())
    }

    /// Binds a loopback listener on an ephemeral port and starts serving
    /// `store`.
    ///
    /// # Errors
    ///
    /// Propagates socket setup failures.
    pub fn serve_with(store: Arc<EvalStore>, options: NodeOptions) -> io::Result<FabricNode> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            namespace: store.namespace(),
            store,
            stop: AtomicBool::new(false),
            counters: Counters::default(),
            read_timeout: options.read_timeout,
        });
        let (tx, rx): (SyncSender<TcpStream>, Receiver<TcpStream>) =
            std::sync::mpsc::sync_channel(options.backlog.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let worker_handles = (0..options.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                std::thread::Builder::new()
                    .name(format!("fabric-worker-{i}"))
                    .spawn(move || worker_loop(&shared, &rx))
                    .expect("spawn fabric worker")
            })
            .collect();
        let accept_handle = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("fabric-accept".into())
                .spawn(move || accept_loop(&listener, &shared, &tx))
                .expect("spawn fabric acceptor")
        };
        Ok(FabricNode {
            addr,
            shared,
            accept_handle: Some(accept_handle),
            worker_handles,
        })
    }

    /// The `host:port` this node listens on.
    pub fn addr(&self) -> String {
        self.addr.to_string()
    }

    /// The store-namespace fingerprint this node serves.
    pub fn namespace(&self) -> u64 {
        self.shared.namespace
    }

    /// Snapshot of the node's service counters.
    pub fn stats(&self) -> NodeStats {
        let c = &self.shared.counters;
        NodeStats {
            connections: c.connections.load(Ordering::Relaxed),
            refused_handshakes: c.refused.load(Ordering::Relaxed),
            gets: c.gets.load(Ordering::Relaxed),
            get_hits: c.get_hits.load(Ordering::Relaxed),
            puts: c.puts.load(Ordering::Relaxed),
            pings: c.pings.load(Ordering::Relaxed),
            dropped_connections: c.dropped.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
        }
    }

    /// The store this node serves.
    pub fn store(&self) -> &Arc<EvalStore> {
        &self.shared.store
    }

    /// Stops accepting, drains workers and joins every thread. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // The acceptor blocks in accept(); a throwaway self-connection
        // wakes it to observe the stop flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
        for handle in self.worker_handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for FabricNode {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: &TcpListener, shared: &Shared, tx: &SyncSender<TcpStream>) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return; // tx drops here, draining the workers
                }
                match tx.try_send(stream) {
                    Ok(()) => {}
                    Err(TrySendError::Full(stream)) => {
                        // Dropping the stream closes the connection — the
                        // client sees Disconnected and retries elsewhere.
                        drop(stream);
                        shared.counters.dropped.fetch_add(1, Ordering::Relaxed);
                        micronas_telemetry::counter_add("fabric.node.dropped_connections", 1);
                    }
                    Err(TrySendError::Disconnected(_)) => return,
                }
            }
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
            }
        }
    }
}

fn worker_loop(shared: &Shared, rx: &Mutex<Receiver<TcpStream>>) {
    loop {
        let stream = {
            let guard = rx.lock().expect("fabric worker queue poisoned");
            guard.recv()
        };
        let Ok(stream) = stream else { return };
        match serve_connection(shared, stream) {
            Ok(()) => {}
            Err(err) => {
                shared.counters.errors.fetch_add(1, Ordering::Relaxed);
                micronas_telemetry::counter_add("fabric.node.conn_errors", 1);
                let _ = err; // typed; nothing useful to do beyond counting
            }
        }
    }
}

fn serve_connection(shared: &Shared, mut stream: TcpStream) -> Result<(), FabricError> {
    stream.set_read_timeout(Some(shared.read_timeout))?;
    stream.set_write_timeout(Some(shared.read_timeout.max(Duration::from_secs(1))))?;

    // Handshake: the first frame must be Hello; between-frame quiet just
    // ticks the shutdown poll.
    let hello = loop {
        if shared.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        match wire::read_frame_or_idle(&mut stream) {
            Ok(Some(payload)) => break Message::decode(&payload)?,
            Ok(None) => continue,
            Err(FabricError::Disconnected) => return Ok(()),
            Err(e) => return Err(e),
        }
    };
    let Message::Hello { namespace } = hello else {
        return Err(FabricError::Protocol(
            "expected Hello to open the connection",
        ));
    };
    if namespace != shared.namespace {
        shared.counters.refused.fetch_add(1, Ordering::Relaxed);
        micronas_telemetry::counter_add("fabric.node.refused_handshakes", 1);
        let _ = wire::send(
            &mut stream,
            &Message::Refused {
                expected: shared.namespace,
                found: namespace,
            },
        );
        return Ok(());
    }
    wire::send(
        &mut stream,
        &Message::HelloAck {
            namespace: shared.namespace,
        },
    )?;
    shared.counters.connections.fetch_add(1, Ordering::Relaxed);
    micronas_telemetry::counter_add("fabric.node.connections", 1);

    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return Ok(());
        }
        let payload = match wire::read_frame_or_idle(&mut stream) {
            Ok(Some(payload)) => payload,
            Ok(None) => continue,
            Err(FabricError::Disconnected) => return Ok(()),
            Err(e) => return Err(e),
        };
        let reply = answer(shared, Message::decode(&payload)?)?;
        wire::send(&mut stream, &reply)?;
    }
}

fn answer(shared: &Shared, request: Message) -> Result<Message, FabricError> {
    let c = &shared.counters;
    Ok(match request {
        Message::Ping => {
            c.pings.fetch_add(1, Ordering::Relaxed);
            Message::Pong
        }
        Message::Get(key) => {
            c.gets.fetch_add(1, Ordering::Relaxed);
            micronas_telemetry::counter_add("fabric.node.gets", 1);
            match shared.store.peek(&key) {
                Some(record) => {
                    c.get_hits.fetch_add(1, Ordering::Relaxed);
                    Message::Found(key, record)
                }
                None => Message::NotFound,
            }
        }
        Message::Put(key, record) => {
            c.puts.fetch_add(1, Ordering::Relaxed);
            micronas_telemetry::counter_add("fabric.node.puts", 1);
            // An invalid record (NaN score etc.) is acknowledged but not
            // stored; the sender's copy is still authoritative for it.
            let fresh = shared.store.insert(key, record).unwrap_or(false);
            Message::PutAck { fresh }
        }
        Message::BatchGet(keys) => {
            c.gets.fetch_add(keys.len() as u64, Ordering::Relaxed);
            micronas_telemetry::counter_add("fabric.node.gets", keys.len() as u64);
            let slots = keys
                .into_iter()
                .map(|key| {
                    shared.store.peek(&key).map(|record| {
                        c.get_hits.fetch_add(1, Ordering::Relaxed);
                        (key, record)
                    })
                })
                .collect();
            Message::BatchFound(slots)
        }
        Message::BatchPut(entries) => {
            c.puts.fetch_add(entries.len() as u64, Ordering::Relaxed);
            micronas_telemetry::counter_add("fabric.node.puts", entries.len() as u64);
            let fresh = entries
                .into_iter()
                .filter(|(key, record)| shared.store.insert(*key, record.clone()).unwrap_or(false))
                .count() as u32;
            Message::BatchPutAck { fresh }
        }
        _ => return Err(FabricError::Protocol("unexpected request message")),
    })
}
