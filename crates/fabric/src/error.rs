use std::fmt;

/// Errors raised by the fabric's wire codec, clients and nodes.
///
/// Every failure mode of a remote conversation has a typed variant, because
/// the remote tier routes on them: [`FabricError::Timeout`] and transport
/// errors trip a peer's failure counter (eventually marking it out of the
/// ring), while [`FabricError::HandshakeRefused`] is permanent — the peer
/// serves a different evaluation-configuration namespace and retrying can
/// never help.
#[derive(Debug)]
pub enum FabricError {
    /// An underlying socket error not covered by a more specific variant.
    Io(std::io::Error),
    /// The peer did not produce (or accept) bytes within the configured
    /// deadline — including a slow-loris peer stalling mid-frame.
    Timeout,
    /// The connection closed (EOF, reset, broken pipe) mid-conversation.
    Disconnected,
    /// A frame ended before its declared payload length.
    Truncated,
    /// A frame's payload did not match its FNV-1a checksum.
    ChecksumMismatch {
        /// Checksum declared in the frame header.
        expected: u64,
        /// Checksum of the bytes actually received.
        found: u64,
    },
    /// A frame declared a payload larger than the protocol allows.
    Oversized {
        /// Declared payload length in bytes.
        len: u32,
    },
    /// A payload carried an unknown message tag.
    UnknownTag(u8),
    /// A message body could not be decoded.
    Malformed(&'static str),
    /// The handshake did not open with the fabric magic bytes.
    BadMagic,
    /// The peer speaks an incompatible wire-protocol version.
    VersionMismatch {
        /// Version the peer announced.
        found: u32,
        /// Version this build speaks.
        expected: u32,
    },
    /// The peer's evaluation-store namespace fingerprint differs from ours —
    /// the wire-level analogue of a stale log refusing to open. Both
    /// fingerprints are reported in hex so an operator can tell a stale log
    /// from a divergent-backend peer at a glance.
    HandshakeRefused {
        /// Our namespace fingerprint.
        ours: u64,
        /// The peer's namespace fingerprint.
        theirs: u64,
    },
    /// The peer answered with a message the protocol does not allow here.
    Protocol(&'static str),
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::Io(e) => write!(f, "fabric I/O error: {e}"),
            FabricError::Timeout => write!(f, "fabric request timed out"),
            FabricError::Disconnected => write!(f, "fabric peer disconnected"),
            FabricError::Truncated => write!(f, "truncated fabric frame"),
            FabricError::ChecksumMismatch { expected, found } => write!(
                f,
                "fabric frame checksum mismatch (declared {expected:#018x}, got {found:#018x})"
            ),
            FabricError::Oversized { len } => {
                write!(
                    f,
                    "fabric frame declares an oversized payload ({len} bytes)"
                )
            }
            FabricError::UnknownTag(tag) => write!(f, "unknown fabric message tag {tag}"),
            FabricError::Malformed(what) => write!(f, "malformed fabric message: {what}"),
            FabricError::BadMagic => write!(f, "not a fabric peer (bad handshake magic)"),
            FabricError::VersionMismatch { found, expected } => write!(
                f,
                "fabric protocol version {found} is incompatible with this build \
                 (expected {expected})"
            ),
            FabricError::HandshakeRefused { ours, theirs } => write!(
                f,
                "fabric handshake refused: peer store namespace {theirs:#018x} does not \
                 match the local evaluation configuration {ours:#018x}"
            ),
            FabricError::Protocol(what) => write!(f, "fabric protocol violation: {what}"),
        }
    }
}

impl std::error::Error for FabricError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FabricError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl FabricError {
    /// Maps a socket error onto the typed variants: read/write deadlines
    /// become [`FabricError::Timeout`], connection teardown becomes
    /// [`FabricError::Disconnected`], anything else stays I/O.
    pub fn from_io(e: std::io::Error) -> Self {
        use std::io::ErrorKind;
        match e.kind() {
            ErrorKind::WouldBlock | ErrorKind::TimedOut => FabricError::Timeout,
            ErrorKind::UnexpectedEof
            | ErrorKind::ConnectionReset
            | ErrorKind::ConnectionAborted
            | ErrorKind::BrokenPipe => FabricError::Disconnected,
            _ => FabricError::Io(e),
        }
    }

    /// Whether retrying the request against the same peer can ever succeed.
    /// Namespace refusals and protocol-version mismatches are permanent.
    pub fn retryable(&self) -> bool {
        !matches!(
            self,
            FabricError::HandshakeRefused { .. } | FabricError::VersionMismatch { .. }
        )
    }
}

impl From<std::io::Error> for FabricError {
    fn from(e: std::io::Error) -> Self {
        FabricError::from_io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_refusal_reports_both_fingerprints_in_hex() {
        let e = FabricError::HandshakeRefused {
            ours: 0xa01c_0bcb_e15a_bdf4,
            theirs: 0x0123_4567_89ab_cdef,
        };
        let msg = e.to_string();
        assert!(msg.contains("0xa01c0bcbe15abdf4"), "{msg}");
        assert!(msg.contains("0x0123456789abcdef"), "{msg}");
        assert!(!e.retryable());
    }

    #[test]
    fn io_errors_map_onto_typed_variants() {
        use std::io::{Error, ErrorKind};
        assert!(matches!(
            FabricError::from_io(Error::new(ErrorKind::WouldBlock, "t")),
            FabricError::Timeout
        ));
        assert!(matches!(
            FabricError::from_io(Error::new(ErrorKind::TimedOut, "t")),
            FabricError::Timeout
        ));
        assert!(matches!(
            FabricError::from_io(Error::new(ErrorKind::ConnectionReset, "t")),
            FabricError::Disconnected
        ));
        assert!(matches!(
            FabricError::from_io(Error::other("t")),
            FabricError::Io(_)
        ));
        assert!(FabricError::Timeout.retryable());
        assert!(FabricError::Disconnected.retryable());
    }
}
