//! Scheduled compaction for fabric node logs.
//!
//! Long-lived fabric nodes accumulate superseded records in their
//! append-only logs. [`CompactionDaemon`] periodically drives the store's
//! offline [`EvalStore::compact_path`](micronas_store::EvalStore::compact_path)
//! over a set of log paths. Compaction takes the log's advisory writer
//! lock, so a log currently held by a live store simply reports
//! [`CompactionOutcome::Busy`] and is retried on the next tick — the
//! daemon never blocks a serving node and never corrupts a log.

use micronas_store::{CompactStats, EvalStore, StoreError};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// What one compaction attempt on one log did.
#[derive(Debug, Clone, PartialEq)]
pub enum CompactionOutcome {
    /// The log was rewritten; superseded records dropped.
    Compacted(CompactStats),
    /// The log is locked by a live store; skipped this tick.
    Busy,
    /// Compaction failed (rendered store error).
    Failed(String),
}

/// One log's result from a compaction tick.
#[derive(Debug, Clone, PartialEq)]
pub struct CompactionReport {
    /// The log that was attempted.
    pub path: PathBuf,
    /// What happened.
    pub outcome: CompactionOutcome,
}

/// Counters across all ticks of a daemon.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactionDaemonStats {
    /// Ticks executed.
    pub runs: u64,
    /// Logs successfully compacted.
    pub compacted: u64,
    /// Attempts skipped because the log was locked.
    pub busy: u64,
    /// Attempts that failed.
    pub failed: u64,
}

#[derive(Default)]
struct Counters {
    runs: AtomicU64,
    compacted: AtomicU64,
    busy: AtomicU64,
    failed: AtomicU64,
}

/// Periodic offline compaction over a fixed set of store logs.
pub struct CompactionDaemon {
    namespace: u64,
    paths: Vec<PathBuf>,
    counters: Arc<Counters>,
    stop: Arc<AtomicBool>,
    worker: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for CompactionDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CompactionDaemon")
            .field("namespace", &self.namespace)
            .field("paths", &self.paths)
            .finish_non_exhaustive()
    }
}

impl CompactionDaemon {
    /// Creates a daemon (not yet ticking) over `paths`, all expected to
    /// hold logs in `namespace`.
    pub fn new(namespace: u64, paths: Vec<PathBuf>) -> CompactionDaemon {
        CompactionDaemon {
            namespace,
            paths,
            counters: Arc::new(Counters::default()),
            stop: Arc::new(AtomicBool::new(false)),
            worker: None,
        }
    }

    /// Runs one compaction pass over every path right now, synchronously.
    pub fn tick_now(&self) -> Vec<CompactionReport> {
        tick(self.namespace, &self.paths, &self.counters)
    }

    /// Starts a background thread ticking every `interval`. The thread
    /// polls its stop flag at 50 ms granularity, so shutdown is prompt
    /// regardless of the interval. Restarting a running daemon is a no-op.
    pub fn start(&mut self, interval: Duration) {
        if self.worker.is_some() {
            return;
        }
        self.stop.store(false, Ordering::SeqCst);
        let namespace = self.namespace;
        let paths = self.paths.clone();
        let counters = Arc::clone(&self.counters);
        let stop = Arc::clone(&self.stop);
        let worker = std::thread::Builder::new()
            .name("fabric-compactor".into())
            .spawn(move || loop {
                let mut slept = Duration::ZERO;
                while slept < interval {
                    if stop.load(Ordering::SeqCst) {
                        return;
                    }
                    let slice = Duration::from_millis(50).min(interval - slept);
                    std::thread::sleep(slice);
                    slept += slice;
                }
                if stop.load(Ordering::SeqCst) {
                    return;
                }
                tick(namespace, &paths, &counters);
            })
            .expect("spawn fabric compactor");
        self.worker = Some(worker);
    }

    /// Stops and joins the background thread, if running.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(worker) = self.worker.take() {
            let _ = worker.join();
        }
    }

    /// Snapshot of the daemon's counters.
    pub fn stats(&self) -> CompactionDaemonStats {
        CompactionDaemonStats {
            runs: self.counters.runs.load(Ordering::Relaxed),
            compacted: self.counters.compacted.load(Ordering::Relaxed),
            busy: self.counters.busy.load(Ordering::Relaxed),
            failed: self.counters.failed.load(Ordering::Relaxed),
        }
    }
}

impl Drop for CompactionDaemon {
    fn drop(&mut self) {
        self.stop();
    }
}

fn tick(namespace: u64, paths: &[PathBuf], counters: &Counters) -> Vec<CompactionReport> {
    counters.runs.fetch_add(1, Ordering::Relaxed);
    micronas_telemetry::counter_add("fabric.compaction.runs", 1);
    paths
        .iter()
        .map(|path| {
            let outcome = match EvalStore::compact_path(path, namespace) {
                Ok(stats) => {
                    counters.compacted.fetch_add(1, Ordering::Relaxed);
                    micronas_telemetry::counter_add("fabric.compaction.compacted", 1);
                    CompactionOutcome::Compacted(stats)
                }
                Err(StoreError::Locked { .. }) => {
                    counters.busy.fetch_add(1, Ordering::Relaxed);
                    micronas_telemetry::counter_add("fabric.compaction.busy", 1);
                    CompactionOutcome::Busy
                }
                Err(e) => {
                    counters.failed.fetch_add(1, Ordering::Relaxed);
                    micronas_telemetry::counter_add("fabric.compaction.failed", 1);
                    CompactionOutcome::Failed(e.to_string())
                }
            };
            CompactionReport {
                path: path.clone(),
                outcome,
            }
        })
        .collect()
}
