//! The fabric wire protocol.
//!
//! # Framing
//!
//! Every message travels in one frame, byte-for-byte the store log's record
//! framing (`micronas_store::log`):
//!
//! ```text
//! frame:   payload length   u32 le
//!          checksum         u64 le   (FNV-1a 64 of the payload bytes)
//!          payload          (tag byte + message body)
//! ```
//!
//! A frame whose checksum does not match is rejected as
//! [`FabricError::ChecksumMismatch`]; a declared length beyond
//! [`MAX_PAYLOAD`] is [`FabricError::Oversized`]; a connection that closes
//! mid-frame is [`FabricError::Truncated`]. None of these can hang a peer:
//! reads run under socket deadlines and a stalled partial frame (slow loris)
//! surfaces as [`FabricError::Timeout`].
//!
//! # Messages
//!
//! The body encodings reuse the store's at-rest codec
//! ([`micronas_store::encode_key`] / [`micronas_store::encode_entry`]), so a
//! record on the wire and a record in the log are the same bytes — one codec
//! to test, one set of golden layouts. The conversation opens with
//! [`Message::Hello`] carrying the sender's store-namespace fingerprint; a
//! node refuses mismatched peers ([`Message::Refused`]) exactly like a
//! stale log refusing to open.

use crate::FabricError;
use micronas_store::{decode_entry, decode_key, encode_entry, encode_key, fnv1a64};
use micronas_store::{EvalKey, EvalRecord, StoreError};
use std::io::{Read, Write};

/// Magic bytes opening every [`Message::Hello`].
pub const FABRIC_MAGIC: [u8; 8] = *b"MNFAB001";

/// Wire-protocol version spoken by this build.
pub const WIRE_VERSION: u32 = 1;

/// Per-frame framing overhead (length + checksum) — identical to the store
/// log's record framing.
pub const FRAME_LEN: usize = 4 + 8;

/// Upper bound on a single frame payload; anything larger is treated as a
/// protocol violation (the store log uses the same bound for corruption).
pub const MAX_PAYLOAD: u32 = 16 << 20;

/// Upper bound on entries in one batch message.
pub const MAX_BATCH: usize = 4096;

/// One fabric message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Opens every connection: magic + protocol version + the client's
    /// store-namespace fingerprint.
    Hello {
        /// The client's evaluation-configuration namespace fingerprint.
        namespace: u64,
    },
    /// The node accepted the handshake; carries the node's namespace (always
    /// equal to the client's, echoed for symmetry).
    HelloAck {
        /// The node's namespace fingerprint.
        namespace: u64,
    },
    /// The node refused the handshake: namespaces differ.
    Refused {
        /// The node's namespace fingerprint.
        expected: u64,
        /// The namespace the client announced.
        found: u64,
    },
    /// Liveness probe.
    Ping,
    /// Liveness reply.
    Pong,
    /// Point lookup of one key.
    Get(EvalKey),
    /// Successful lookup reply: the key and its record.
    Found(EvalKey, EvalRecord),
    /// Lookup reply: the node does not hold the key.
    NotFound,
    /// Write-behind of one freshly computed record.
    Put(EvalKey, EvalRecord),
    /// Reply to [`Message::Put`]; `fresh` mirrors the node store's insert.
    PutAck {
        /// Whether the key was new on the node.
        fresh: bool,
    },
    /// Batched point lookups (at most [`MAX_BATCH`]).
    BatchGet(Vec<EvalKey>),
    /// Reply to [`Message::BatchGet`], positionally aligned with the
    /// request.
    BatchFound(Vec<Option<(EvalKey, EvalRecord)>>),
    /// Batched write-behind (at most [`MAX_BATCH`]).
    BatchPut(Vec<(EvalKey, EvalRecord)>),
    /// Reply to [`Message::BatchPut`]: how many records were new.
    BatchPutAck {
        /// Number of records that were new on the node.
        fresh: u32,
    },
}

// Payload tag bytes. A tag identifies the message; everything after it is
// the body.
const TAG_HELLO: u8 = 0;
const TAG_HELLO_ACK: u8 = 1;
const TAG_REFUSED: u8 = 2;
const TAG_PING: u8 = 3;
const TAG_PONG: u8 = 4;
const TAG_GET: u8 = 5;
const TAG_FOUND: u8 = 6;
const TAG_NOT_FOUND: u8 = 7;
const TAG_PUT: u8 = 8;
const TAG_PUT_ACK: u8 = 9;
const TAG_BATCH_GET: u8 = 10;
const TAG_BATCH_FOUND: u8 = 11;
const TAG_BATCH_PUT: u8 = 12;
const TAG_BATCH_PUT_ACK: u8 = 13;

fn map_store(e: StoreError) -> FabricError {
    match e {
        StoreError::MalformedRecord(what) => FabricError::Malformed(what),
        _ => FabricError::Malformed("undecodable store entry"),
    }
}

fn push_blob(out: &mut Vec<u8>, blob: &[u8]) {
    out.extend_from_slice(&(blob.len() as u32).to_le_bytes());
    out.extend_from_slice(blob);
}

/// Cursor over a payload buffer.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], FabricError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(FabricError::Malformed("message body too short"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, FabricError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, FabricError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, FabricError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn blob(&mut self) -> Result<&'a [u8], FabricError> {
        let len = self.u32()? as usize;
        self.take(len)
    }

    fn rest(&mut self) -> &'a [u8] {
        let slice = &self.buf[self.pos..];
        self.pos = self.buf.len();
        slice
    }

    fn batch_len(&mut self) -> Result<usize, FabricError> {
        let count = self.u32()? as usize;
        if count > MAX_BATCH {
            return Err(FabricError::Malformed("batch larger than MAX_BATCH"));
        }
        Ok(count)
    }

    fn finish(self) -> Result<(), FabricError> {
        if self.pos != self.buf.len() {
            return Err(FabricError::Malformed("trailing bytes in message"));
        }
        Ok(())
    }
}

impl Message {
    /// Encodes the message into a frame payload (tag + body).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            Message::Hello { namespace } => {
                out.push(TAG_HELLO);
                out.extend_from_slice(&FABRIC_MAGIC);
                out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
                out.extend_from_slice(&namespace.to_le_bytes());
            }
            Message::HelloAck { namespace } => {
                out.push(TAG_HELLO_ACK);
                out.extend_from_slice(&namespace.to_le_bytes());
            }
            Message::Refused { expected, found } => {
                out.push(TAG_REFUSED);
                out.extend_from_slice(&expected.to_le_bytes());
                out.extend_from_slice(&found.to_le_bytes());
            }
            Message::Ping => out.push(TAG_PING),
            Message::Pong => out.push(TAG_PONG),
            Message::Get(key) => {
                out.push(TAG_GET);
                out.extend_from_slice(&encode_key(key));
            }
            Message::Found(key, record) => {
                out.push(TAG_FOUND);
                out.extend_from_slice(&encode_entry(key, record));
            }
            Message::NotFound => out.push(TAG_NOT_FOUND),
            Message::Put(key, record) => {
                out.push(TAG_PUT);
                out.extend_from_slice(&encode_entry(key, record));
            }
            Message::PutAck { fresh } => {
                out.push(TAG_PUT_ACK);
                out.push(u8::from(*fresh));
            }
            Message::BatchGet(keys) => {
                out.push(TAG_BATCH_GET);
                out.extend_from_slice(&(keys.len() as u32).to_le_bytes());
                for key in keys {
                    push_blob(&mut out, &encode_key(key));
                }
            }
            Message::BatchFound(slots) => {
                out.push(TAG_BATCH_FOUND);
                out.extend_from_slice(&(slots.len() as u32).to_le_bytes());
                for slot in slots {
                    match slot {
                        Some((key, record)) => {
                            out.push(1);
                            push_blob(&mut out, &encode_entry(key, record));
                        }
                        None => out.push(0),
                    }
                }
            }
            Message::BatchPut(entries) => {
                out.push(TAG_BATCH_PUT);
                out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for (key, record) in entries {
                    push_blob(&mut out, &encode_entry(key, record));
                }
            }
            Message::BatchPutAck { fresh } => {
                out.push(TAG_BATCH_PUT_ACK);
                out.extend_from_slice(&fresh.to_le_bytes());
            }
        }
        out
    }

    /// Decodes a frame payload back into a message.
    ///
    /// # Errors
    ///
    /// [`FabricError::UnknownTag`] for an unrecognised tag,
    /// [`FabricError::BadMagic`] / [`FabricError::VersionMismatch`] for a
    /// broken handshake, [`FabricError::Malformed`] for everything else the
    /// codec refuses.
    pub fn decode(payload: &[u8]) -> Result<Message, FabricError> {
        let mut r = Reader {
            buf: payload,
            pos: 0,
        };
        let message = match r.u8()? {
            TAG_HELLO => {
                let magic = r.take(8)?;
                if magic != FABRIC_MAGIC {
                    return Err(FabricError::BadMagic);
                }
                let version = r.u32()?;
                if version != WIRE_VERSION {
                    return Err(FabricError::VersionMismatch {
                        found: version,
                        expected: WIRE_VERSION,
                    });
                }
                Message::Hello {
                    namespace: r.u64()?,
                }
            }
            TAG_HELLO_ACK => Message::HelloAck {
                namespace: r.u64()?,
            },
            TAG_REFUSED => Message::Refused {
                expected: r.u64()?,
                found: r.u64()?,
            },
            TAG_PING => Message::Ping,
            TAG_PONG => Message::Pong,
            TAG_GET => Message::Get(decode_key(r.rest()).map_err(map_store)?),
            TAG_FOUND => {
                let (key, record) = decode_entry(r.rest()).map_err(map_store)?;
                Message::Found(key, record)
            }
            TAG_NOT_FOUND => Message::NotFound,
            TAG_PUT => {
                let (key, record) = decode_entry(r.rest()).map_err(map_store)?;
                Message::Put(key, record)
            }
            TAG_PUT_ACK => Message::PutAck {
                fresh: r.u8()? != 0,
            },
            TAG_BATCH_GET => {
                let count = r.batch_len()?;
                let mut keys = Vec::with_capacity(count);
                for _ in 0..count {
                    keys.push(decode_key(r.blob()?).map_err(map_store)?);
                }
                Message::BatchGet(keys)
            }
            TAG_BATCH_FOUND => {
                let count = r.batch_len()?;
                let mut slots = Vec::with_capacity(count);
                for _ in 0..count {
                    slots.push(match r.u8()? {
                        0 => None,
                        1 => Some(decode_entry(r.blob()?).map_err(map_store)?),
                        _ => return Err(FabricError::Malformed("bad batch presence byte")),
                    });
                }
                Message::BatchFound(slots)
            }
            TAG_BATCH_PUT => {
                let count = r.batch_len()?;
                let mut entries = Vec::with_capacity(count);
                for _ in 0..count {
                    entries.push(decode_entry(r.blob()?).map_err(map_store)?);
                }
                Message::BatchPut(entries)
            }
            TAG_BATCH_PUT_ACK => Message::BatchPutAck { fresh: r.u32()? },
            tag => return Err(FabricError::UnknownTag(tag)),
        };
        r.finish()?;
        Ok(message)
    }
}

/// Outcome of filling a fixed-size buffer from a socket.
enum Fill {
    /// The buffer is full.
    Filled,
    /// The read deadline passed before the *first* byte arrived (only
    /// reported when the caller allows idling).
    Idle,
    /// The peer closed the connection cleanly before the first byte.
    Closed,
}

/// Reads exactly `buf.len()` bytes, classifying every partial outcome.
///
/// A deadline that passes with the buffer *partially* filled is always
/// [`FabricError::Timeout`] — that is the slow-loris signature, and waiting
/// longer would let one stalled peer pin a node worker forever. A deadline
/// with nothing read is only acceptable between frames (`idle_ok`), where it
/// gives servers a shutdown-poll tick.
fn fill(r: &mut impl Read, buf: &mut [u8], idle_ok: bool) -> Result<Fill, FabricError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(Fill::Closed)
                } else {
                    Err(FabricError::Truncated)
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return if filled == 0 && idle_ok {
                    Ok(Fill::Idle)
                } else {
                    Err(FabricError::Timeout)
                };
            }
            Err(e) => return Err(FabricError::from_io(e)),
        }
    }
    Ok(Fill::Filled)
}

fn read_frame_inner(r: &mut impl Read, idle_ok: bool) -> Result<Option<Vec<u8>>, FabricError> {
    let mut header = [0u8; FRAME_LEN];
    match fill(r, &mut header, idle_ok)? {
        Fill::Idle => return Ok(None),
        Fill::Closed => return Err(FabricError::Disconnected),
        Fill::Filled => {}
    }
    let len = u32::from_le_bytes(header[..4].try_into().expect("len 4"));
    let expected = u64::from_le_bytes(header[4..12].try_into().expect("len 8"));
    if len > MAX_PAYLOAD {
        return Err(FabricError::Oversized { len });
    }
    let mut payload = vec![0u8; len as usize];
    if !payload.is_empty() {
        match fill(r, &mut payload, false)? {
            Fill::Closed => return Err(FabricError::Truncated),
            Fill::Idle | Fill::Filled => {}
        }
    }
    let found = fnv1a64(&payload);
    if found != expected {
        return Err(FabricError::ChecksumMismatch { expected, found });
    }
    Ok(Some(payload))
}

/// Reads one frame, failing on any deadline.
///
/// # Errors
///
/// Every codec failure mode: [`FabricError::Timeout`],
/// [`FabricError::Disconnected`], [`FabricError::Truncated`],
/// [`FabricError::Oversized`], [`FabricError::ChecksumMismatch`], and I/O.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FabricError> {
    match read_frame_inner(r, false)? {
        Some(payload) => Ok(payload),
        None => unreachable!("idle is impossible with idle_ok = false"),
    }
}

/// Reads one frame, returning `Ok(None)` when the read deadline passes with
/// no bytes received — the server's idle tick between requests, where it
/// checks its shutdown flag. A deadline passing *mid-frame* is still
/// [`FabricError::Timeout`] (slow loris).
///
/// # Errors
///
/// As [`read_frame`].
pub fn read_frame_or_idle(r: &mut impl Read) -> Result<Option<Vec<u8>>, FabricError> {
    read_frame_inner(r, true)
}

/// Writes one frame.
///
/// # Errors
///
/// Propagates socket failures ([`FabricError::Timeout`] on a write
/// deadline).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), FabricError> {
    debug_assert!(payload.len() <= MAX_PAYLOAD as usize);
    let mut frame = Vec::with_capacity(FRAME_LEN + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&fnv1a64(payload).to_le_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()?;
    Ok(())
}

/// Encodes and sends one message.
///
/// # Errors
///
/// As [`write_frame`].
pub fn send(w: &mut impl Write, message: &Message) -> Result<(), FabricError> {
    write_frame(w, &message.encode())
}

/// Receives and decodes one message, failing on any deadline.
///
/// # Errors
///
/// As [`read_frame`] plus [`Message::decode`] failures.
pub fn recv(r: &mut impl Read) -> Result<Message, FabricError> {
    Message::decode(&read_frame(r)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use micronas_datasets::DatasetKind;
    use micronas_proxies::ZeroCostMetrics;
    use micronas_searchspace::SearchSpace;
    use std::io::Cursor;

    fn key(i: usize) -> EvalKey {
        let space = SearchSpace::nas_bench_201();
        EvalKey::zero_cost(&space.cell(i).unwrap(), DatasetKind::Cifar10, i as u64, 12)
    }

    fn record(v: f64) -> EvalRecord {
        EvalRecord::ZeroCost(ZeroCostMetrics {
            ntk_condition: v,
            linear_regions: 3,
            trainability: -v,
            expressivity: v * 0.5,
        })
    }

    fn all_messages() -> Vec<Message> {
        vec![
            Message::Hello { namespace: 0xDEAD },
            Message::HelloAck { namespace: 0xDEAD },
            Message::Refused {
                expected: 1,
                found: 2,
            },
            Message::Ping,
            Message::Pong,
            Message::Get(key(1)),
            Message::Found(key(1), record(1.5)),
            Message::NotFound,
            Message::Put(key(2), record(2.5)),
            Message::PutAck { fresh: true },
            Message::BatchGet(vec![key(1), key(2), key(3)]),
            Message::BatchFound(vec![
                Some((key(1), record(1.0))),
                None,
                Some((key(3), record(3.0))),
            ]),
            Message::BatchPut(vec![(key(4), record(4.0)), (key(5), record(5.0))]),
            Message::BatchPutAck { fresh: 2 },
        ]
    }

    #[test]
    fn every_message_roundtrips() {
        for message in all_messages() {
            let payload = message.encode();
            assert_eq!(Message::decode(&payload).unwrap(), message, "{message:?}");
        }
    }

    #[test]
    fn every_message_roundtrips_through_a_frame() {
        let mut bytes = Vec::new();
        for message in all_messages() {
            send(&mut bytes, &message).unwrap();
        }
        let mut cursor = Cursor::new(bytes);
        for message in all_messages() {
            assert_eq!(recv(&mut cursor).unwrap(), message);
        }
        // The stream is exactly consumed: the next read is a clean close.
        assert!(matches!(recv(&mut cursor), Err(FabricError::Disconnected)));
    }

    #[test]
    fn corrupted_checksums_are_rejected() {
        let mut bytes = Vec::new();
        send(&mut bytes, &Message::Put(key(1), record(1.0))).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        assert!(matches!(
            recv(&mut Cursor::new(bytes)),
            Err(FabricError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn truncated_frames_are_rejected() {
        let mut bytes = Vec::new();
        send(&mut bytes, &Message::Put(key(1), record(1.0))).unwrap();
        // Mid-payload cut.
        assert!(matches!(
            recv(&mut Cursor::new(&bytes[..bytes.len() - 3])),
            Err(FabricError::Truncated)
        ));
        // Mid-header cut.
        assert!(matches!(
            recv(&mut Cursor::new(&bytes[..FRAME_LEN - 2])),
            Err(FabricError::Truncated)
        ));
    }

    #[test]
    fn oversized_lengths_are_rejected_without_allocating() {
        let mut bytes = vec![0u8; FRAME_LEN];
        bytes[..4].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            recv(&mut Cursor::new(bytes)),
            Err(FabricError::Oversized { .. })
        ));
    }

    #[test]
    fn unknown_tags_and_trailing_bytes_are_rejected() {
        assert!(matches!(
            Message::decode(&[99]),
            Err(FabricError::UnknownTag(99))
        ));
        let mut payload = Message::Ping.encode();
        payload.push(0);
        assert!(matches!(
            Message::decode(&payload),
            Err(FabricError::Malformed(_))
        ));
        assert!(matches!(
            Message::decode(&[]),
            Err(FabricError::Malformed(_))
        ));
    }

    #[test]
    fn broken_handshakes_are_typed() {
        let mut hello = Message::Hello { namespace: 5 }.encode();
        hello[1] = b'X'; // corrupt the magic
        assert!(matches!(
            Message::decode(&hello),
            Err(FabricError::BadMagic)
        ));
        let mut hello = Message::Hello { namespace: 5 }.encode();
        hello[9] = 42; // corrupt the version
        assert!(matches!(
            Message::decode(&hello),
            Err(FabricError::VersionMismatch {
                found: 42,
                expected: WIRE_VERSION
            })
        ));
    }

    #[test]
    fn lying_batch_counts_are_rejected() {
        // Count claims more entries than the body carries.
        let mut payload = vec![super::TAG_BATCH_GET];
        payload.extend_from_slice(&5u32.to_le_bytes());
        push_blob(&mut payload, &encode_key(&key(1)));
        assert!(matches!(
            Message::decode(&payload),
            Err(FabricError::Malformed(_))
        ));
        // Count beyond MAX_BATCH is refused before any allocation.
        let mut payload = vec![super::TAG_BATCH_GET];
        payload.extend_from_slice(&(MAX_BATCH as u32 + 1).to_le_bytes());
        assert!(matches!(
            Message::decode(&payload),
            Err(FabricError::Malformed(_))
        ));
    }

    #[test]
    fn wire_and_log_share_the_entry_bytes() {
        // One codec at rest and in flight: the Put body is exactly the log
        // payload for the same entry.
        let payload = Message::Put(key(1), record(1.0)).encode();
        assert_eq!(payload[1..], encode_entry(&key(1), &record(1.0))[..]);
    }
}
