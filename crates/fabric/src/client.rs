//! The fabric client: one lazily dialed, retried connection to one node.
//!
//! A client owns at most one TCP connection, re-dialing transparently when
//! the node restarts or a request fails mid-flight. Retries are bounded and
//! backed off, and every request is validated against the expected reply
//! shape — a node answering `Get(k)` with a record for a *different* key is
//! a protocol violation, not data. Retrying a `Put` is always safe because
//! the store is last-wins over identical content-addressed records.
//!
//! Permanent failures ([`FabricError::retryable`] = false, i.e. a namespace
//! refusal or protocol-version mismatch) are surfaced immediately: no retry
//! can ever fix a peer that serves a different evaluation configuration.

use crate::wire::{self, Message, MAX_BATCH};
use crate::FabricError;
use micronas_store::{EvalKey, EvalRecord};
use parking_lot::Mutex;
use std::net::TcpStream;
use std::time::Duration;

/// Tuning knobs for [`FabricClient`].
#[derive(Debug, Clone)]
pub struct ClientOptions {
    /// Socket deadline applied to connect, reads and writes.
    pub timeout: Duration,
    /// Retries after the first attempt (total attempts = `retries + 1`).
    pub retries: u32,
    /// Base backoff between attempts; attempt `n` sleeps `backoff * n`.
    pub backoff: Duration,
}

impl Default for ClientOptions {
    fn default() -> Self {
        ClientOptions {
            timeout: Duration::from_secs(1),
            retries: 2,
            backoff: Duration::from_millis(50),
        }
    }
}

/// A client for one fabric node.
#[derive(Debug)]
pub struct FabricClient {
    addr: String,
    namespace: u64,
    options: ClientOptions,
    conn: Mutex<Option<TcpStream>>,
}

impl FabricClient {
    /// Creates a client for the node at `addr` (dialed lazily on first
    /// request), announcing `namespace` in its handshake.
    pub fn new(addr: impl Into<String>, namespace: u64, options: ClientOptions) -> FabricClient {
        FabricClient {
            addr: addr.into(),
            namespace,
            options,
            conn: Mutex::new(None),
        }
    }

    /// The `host:port` this client dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Dials and handshakes eagerly, so namespace mismatches surface at
    /// setup time instead of on the first lookup.
    ///
    /// # Errors
    ///
    /// [`FabricError::HandshakeRefused`] when the node serves a different
    /// namespace; transport errors otherwise.
    pub fn connect(&self) -> Result<(), FabricError> {
        let mut guard = self.conn.lock();
        if guard.is_none() {
            *guard = Some(self.dial()?);
        }
        Ok(())
    }

    fn dial(&self) -> Result<TcpStream, FabricError> {
        let addr = self
            .addr
            .parse::<std::net::SocketAddr>()
            .map_err(|_| FabricError::Protocol("unparseable fabric peer address"))?;
        let mut stream = TcpStream::connect_timeout(&addr, self.options.timeout)?;
        stream.set_read_timeout(Some(self.options.timeout))?;
        stream.set_write_timeout(Some(self.options.timeout))?;
        stream.set_nodelay(true)?;
        wire::send(
            &mut stream,
            &Message::Hello {
                namespace: self.namespace,
            },
        )?;
        match wire::recv(&mut stream)? {
            Message::HelloAck { namespace } if namespace == self.namespace => Ok(stream),
            Message::HelloAck { .. } => {
                Err(FabricError::Protocol("HelloAck echoed a foreign namespace"))
            }
            Message::Refused { expected, .. } => Err(FabricError::HandshakeRefused {
                ours: self.namespace,
                theirs: expected,
            }),
            _ => Err(FabricError::Protocol("expected HelloAck or Refused")),
        }
    }

    /// One request/reply exchange with bounded retry. The connection is
    /// dropped after any failure so the next attempt starts clean.
    fn request(&self, message: &Message) -> Result<Message, FabricError> {
        let mut last = None;
        for attempt in 0..=self.options.retries {
            if attempt > 0 {
                std::thread::sleep(self.options.backoff * attempt);
            }
            match self.request_once(message) {
                Ok(reply) => return Ok(reply),
                Err(e) if !e.retryable() => return Err(e),
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("at least one attempt ran"))
    }

    fn request_once(&self, message: &Message) -> Result<Message, FabricError> {
        let mut guard = self.conn.lock();
        if guard.is_none() {
            *guard = Some(self.dial()?);
        }
        let stream = guard.as_mut().expect("connection dialed above");
        let result = wire::send(stream, message).and_then(|()| wire::recv(stream));
        if result.is_err() {
            *guard = None;
        }
        result
    }

    /// Round-trips a liveness probe.
    ///
    /// # Errors
    ///
    /// Transport failures after retries are exhausted.
    pub fn ping(&self) -> Result<(), FabricError> {
        match self.request(&Message::Ping)? {
            Message::Pong => Ok(()),
            _ => Err(FabricError::Protocol("expected Pong")),
        }
    }

    /// Looks `key` up on the node.
    ///
    /// # Errors
    ///
    /// Transport failures after retries are exhausted;
    /// [`FabricError::Protocol`] when the node answers for a different key.
    pub fn get(&self, key: &EvalKey) -> Result<Option<EvalRecord>, FabricError> {
        match self.request(&Message::Get(*key))? {
            Message::Found(found_key, record) if found_key == *key => Ok(Some(record)),
            Message::Found(..) => Err(FabricError::Protocol("Found answered a different key")),
            Message::NotFound => Ok(None),
            _ => Err(FabricError::Protocol("expected Found or NotFound")),
        }
    }

    /// Writes one record to the node; returns whether it was new there.
    ///
    /// # Errors
    ///
    /// Transport failures after retries are exhausted.
    pub fn put(&self, key: EvalKey, record: EvalRecord) -> Result<bool, FabricError> {
        match self.request(&Message::Put(key, record))? {
            Message::PutAck { fresh } => Ok(fresh),
            _ => Err(FabricError::Protocol("expected PutAck")),
        }
    }

    /// Looks up many keys in one round trip. The reply is positionally
    /// aligned with `keys`.
    ///
    /// # Errors
    ///
    /// Transport failures after retries are exhausted;
    /// [`FabricError::Protocol`] on a misaligned or mis-keyed reply.
    pub fn batch_get(&self, keys: &[EvalKey]) -> Result<Vec<Option<EvalRecord>>, FabricError> {
        if keys.is_empty() {
            return Ok(Vec::new());
        }
        if keys.len() > MAX_BATCH {
            return Err(FabricError::Malformed("batch larger than MAX_BATCH"));
        }
        match self.request(&Message::BatchGet(keys.to_vec()))? {
            Message::BatchFound(slots) if slots.len() == keys.len() => slots
                .into_iter()
                .zip(keys)
                .map(|(slot, want)| match slot {
                    Some((key, record)) if key == *want => Ok(Some(record)),
                    Some(_) => Err(FabricError::Protocol(
                        "BatchFound slot answered a different key",
                    )),
                    None => Ok(None),
                })
                .collect(),
            Message::BatchFound(_) => Err(FabricError::Protocol(
                "BatchFound length mismatches the request",
            )),
            _ => Err(FabricError::Protocol("expected BatchFound")),
        }
    }

    /// Writes many records in one round trip; returns how many were new on
    /// the node.
    ///
    /// # Errors
    ///
    /// Transport failures after retries are exhausted.
    pub fn batch_put(&self, entries: Vec<(EvalKey, EvalRecord)>) -> Result<u32, FabricError> {
        if entries.is_empty() {
            return Ok(0);
        }
        if entries.len() > MAX_BATCH {
            return Err(FabricError::Malformed("batch larger than MAX_BATCH"));
        }
        match self.request(&Message::BatchPut(entries))? {
            Message::BatchPutAck { fresh } => Ok(fresh),
            _ => Err(FabricError::Protocol("expected BatchPutAck")),
        }
    }
}
