//! The remote tier: read-through / write-behind fabric layering for a
//! local [`EvalStore`](micronas_store::EvalStore).
//!
//! [`RemoteTier`] implements [`RemoteBackend`], so attaching it to a store
//! (`store.attach_remote(tier)`) turns every lookup into the fleet policy:
//! local hit → done; local miss → the consistent-hash ring picks the
//! owning node, a remote hit populates the local shard; a remote miss (or
//! any remote failure) falls back to local recompute, and the freshly
//! computed record is offered back to its owner *asynchronously* by a
//! single write-behind flusher thread. The hot evaluation path never
//! blocks on the network beyond one bounded, timed-out `Get`.
//!
//! # Degradation
//!
//! Peers accumulate a failure count on timeouts and transport errors;
//! crossing [`FabricConfig::fail_threshold`] marks the peer dead, takes it
//! out of the ring (its arc falls to the next live node), and bumps the
//! `fabric.degraded` counter. A dead peer stays dead for the life of the
//! process — workers in this fleet are cattle, and a search that silently
//! flip-flops between remote and local results would be much harder to
//! reason about than one that degrades once, monotonically. With every
//! peer dead the tier answers every fetch `None`: the worker keeps going
//! at local-recompute speed, never blocked, never wrong.

use crate::ring::HashRing;
use crate::wire::MAX_BATCH;
use crate::{ClientOptions, FabricClient, FabricError};
use micronas_store::{EvalKey, EvalRecord, RemoteBackend};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Write-behind batch assembled per flusher wakeup.
const FLUSH_BATCH: usize = 64;

/// Declarative fabric membership and tuning, nestable in the pipeline's
/// `MicroNasConfig`. The fabric never changes *what* is computed — only
/// where warm results come from — so none of these fields fold into the
/// store-namespace fingerprint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricConfig {
    /// Fabric node addresses (`host:port`), the ring membership. Order is
    /// irrelevant: ownership is determined by hashing, not position.
    pub peers: Vec<String>,
    /// Virtual nodes per peer on the consistent-hash ring.
    pub vnodes: u32,
    /// Per-request socket deadline in milliseconds.
    pub timeout_ms: u64,
    /// Retries per request after the first attempt.
    pub retries: u32,
    /// Base backoff between retries in milliseconds.
    pub backoff_ms: u64,
    /// Consecutive failures after which a peer is marked dead.
    pub fail_threshold: u32,
    /// Bounded write-behind queue; offers beyond it are dropped (counted,
    /// never blocking the evaluation path).
    pub queue_capacity: usize,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig {
            peers: Vec::new(),
            vnodes: 32,
            timeout_ms: 1_000,
            retries: 2,
            backoff_ms: 50,
            fail_threshold: 3,
            queue_capacity: 1_024,
        }
    }
}

impl FabricConfig {
    /// A config with the given ring membership and default tuning.
    pub fn with_peers(peers: Vec<String>) -> FabricConfig {
        FabricConfig {
            peers,
            ..FabricConfig::default()
        }
    }

    /// The per-request deadline as a [`Duration`].
    pub fn timeout(&self) -> Duration {
        Duration::from_millis(self.timeout_ms)
    }

    /// The retry backoff base as a [`Duration`].
    pub fn backoff(&self) -> Duration {
        Duration::from_millis(self.backoff_ms)
    }

    /// The [`ClientOptions`] these knobs describe.
    pub fn client_options(&self) -> ClientOptions {
        ClientOptions {
            timeout: self.timeout(),
            retries: self.retries,
            backoff: self.backoff(),
        }
    }
}

/// Counters describing everything the tier has done.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RemoteTierStats {
    /// Remote lookups that returned a record.
    pub remote_hits: u64,
    /// Remote lookups that returned nothing.
    pub remote_misses: u64,
    /// Remote lookups that timed out (after retries).
    pub timeouts: u64,
    /// Remote lookups that failed for any other transport reason.
    pub errors: u64,
    /// Peers currently marked dead.
    pub degraded_peers: u64,
    /// Records accepted onto the write-behind queue.
    pub offered: u64,
    /// Records delivered to their owning node.
    pub delivered: u64,
    /// Records dropped (queue full, or no live owner at flush time).
    pub dropped: u64,
    /// Records whose delivery failed at the owning node.
    pub failed_deliveries: u64,
}

struct Peer {
    addr: String,
    client: FabricClient,
    failures: AtomicU32,
    dead: AtomicBool,
}

impl Peer {
    fn is_dead(&self) -> bool {
        self.dead.load(Ordering::Relaxed)
    }
}

#[derive(Default)]
struct TierCounters {
    remote_hits: AtomicU64,
    remote_misses: AtomicU64,
    timeouts: AtomicU64,
    errors: AtomicU64,
    offered: AtomicU64,
    delivered: AtomicU64,
    dropped: AtomicU64,
    failed: AtomicU64,
}

struct TierInner {
    namespace: u64,
    ring: HashRing,
    peers: Vec<Peer>,
    fail_threshold: u32,
    counters: TierCounters,
}

impl TierInner {
    fn live_owner(&self, hash: u64) -> Option<usize> {
        self.ring.owner_where(hash, |i| !self.peers[i].is_dead())
    }

    fn note_success(&self, peer: usize) {
        self.peers[peer].failures.store(0, Ordering::Relaxed);
    }

    fn note_failure(&self, peer: usize, error: &FabricError) {
        let c = &self.counters;
        if matches!(error, FabricError::Timeout) {
            c.timeouts.fetch_add(1, Ordering::Relaxed);
            micronas_telemetry::counter_add("fabric.remote.timeouts", 1);
        } else {
            c.errors.fetch_add(1, Ordering::Relaxed);
            micronas_telemetry::counter_add("fabric.remote.errors", 1);
        }
        let peer = &self.peers[peer];
        let failures = peer.failures.fetch_add(1, Ordering::Relaxed) + 1;
        let fatal = !error.retryable();
        if (failures >= self.fail_threshold || fatal) && !peer.dead.swap(true, Ordering::Relaxed) {
            micronas_telemetry::counter_add("fabric.degraded", 1);
        }
    }
}

enum Job {
    Offer(EvalKey, EvalRecord),
    Flush(SyncSender<()>),
}

/// The fabric-backed remote tier. Attach with
/// [`EvalStore::attach_remote`](micronas_store::EvalStore::attach_remote);
/// the tier joins its flusher thread on drop.
pub struct RemoteTier {
    inner: Arc<TierInner>,
    queue: Option<SyncSender<Job>>,
    flusher: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for RemoteTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteTier")
            .field("namespace", &self.inner.namespace)
            .field("peers", &self.inner.peers.len())
            .finish_non_exhaustive()
    }
}

impl RemoteTier {
    /// Builds a tier for `namespace` from the declarative `config`.
    /// Connections are dialed lazily; call [`RemoteTier::connect_all`] to
    /// surface handshake problems eagerly.
    pub fn from_config(namespace: u64, config: &FabricConfig) -> RemoteTier {
        let mut addrs: Vec<String> = Vec::with_capacity(config.peers.len());
        for addr in &config.peers {
            if !addrs.iter().any(|a| a == addr) {
                addrs.push(addr.clone());
            }
        }
        // The ring is built from the same deduplicated list, so ring node
        // indices and peer indices coincide.
        let ring = HashRing::new(&addrs, config.vnodes);
        let peers = addrs
            .into_iter()
            .map(|addr| Peer {
                client: FabricClient::new(&addr, namespace, config.client_options()),
                addr,
                failures: AtomicU32::new(0),
                dead: AtomicBool::new(false),
            })
            .collect();
        let inner = Arc::new(TierInner {
            namespace,
            ring,
            peers,
            fail_threshold: config.fail_threshold.max(1),
            counters: TierCounters::default(),
        });
        let (tx, rx) = std::sync::mpsc::sync_channel(config.queue_capacity.max(1));
        let flusher = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("fabric-flusher".into())
                .spawn(move || flusher_loop(&inner, &rx))
                .expect("spawn fabric flusher")
        };
        RemoteTier {
            inner,
            queue: Some(tx),
            flusher: Some(flusher),
        }
    }

    /// Dials and handshakes every peer eagerly, so a divergent-namespace
    /// node fails the worker at setup instead of degrading silently.
    ///
    /// # Errors
    ///
    /// The first failure, with permanent refusals
    /// ([`FabricError::HandshakeRefused`]) reported as-is.
    pub fn connect_all(&self) -> Result<(), FabricError> {
        for peer in &self.inner.peers {
            peer.client.connect()?;
        }
        Ok(())
    }

    /// Snapshot of the tier's counters.
    pub fn stats(&self) -> RemoteTierStats {
        let c = &self.inner.counters;
        RemoteTierStats {
            remote_hits: c.remote_hits.load(Ordering::Relaxed),
            remote_misses: c.remote_misses.load(Ordering::Relaxed),
            timeouts: c.timeouts.load(Ordering::Relaxed),
            errors: c.errors.load(Ordering::Relaxed),
            degraded_peers: self.inner.peers.iter().filter(|p| p.is_dead()).count() as u64,
            offered: c.offered.load(Ordering::Relaxed),
            delivered: c.delivered.load(Ordering::Relaxed),
            dropped: c.dropped.load(Ordering::Relaxed),
            failed_deliveries: c.failed.load(Ordering::Relaxed),
        }
    }

    /// Addresses of the peers still considered live.
    pub fn alive_peers(&self) -> Vec<String> {
        self.inner
            .peers
            .iter()
            .filter(|p| !p.is_dead())
            .map(|p| p.addr.clone())
            .collect()
    }

    /// Blocks until every record offered *before this call* has been
    /// delivered (or failed/dropped), then returns. Use at sweep
    /// boundaries to make write-behind results visible to other workers
    /// deterministically.
    ///
    /// # Errors
    ///
    /// [`FabricError::Timeout`] if the flusher does not drain in time.
    pub fn flush(&self) -> Result<(), FabricError> {
        let Some(queue) = &self.queue else {
            return Ok(());
        };
        let (ack_tx, ack_rx) = std::sync::mpsc::sync_channel(1);
        if queue.send(Job::Flush(ack_tx)).is_err() {
            return Ok(()); // flusher already gone; nothing left to drain
        }
        ack_rx
            .recv_timeout(Duration::from_secs(30))
            .map_err(|_| FabricError::Timeout)
    }
}

impl Drop for RemoteTier {
    fn drop(&mut self) {
        drop(self.queue.take()); // disconnects the channel: flusher drains and exits
        if let Some(handle) = self.flusher.take() {
            let _ = handle.join();
        }
    }
}

impl RemoteBackend for RemoteTier {
    fn namespace(&self) -> u64 {
        self.inner.namespace
    }

    fn fetch(&self, key: &EvalKey) -> Option<EvalRecord> {
        let inner = &self.inner;
        let owner = inner.live_owner(key.shard_hash())?;
        let _span = micronas_telemetry::span!("fabric.rpc.get");
        match inner.peers[owner].client.get(key) {
            Ok(Some(record)) => {
                inner.note_success(owner);
                inner.counters.remote_hits.fetch_add(1, Ordering::Relaxed);
                micronas_telemetry::counter_add("fabric.remote.hits", 1);
                Some(record)
            }
            Ok(None) => {
                inner.note_success(owner);
                inner.counters.remote_misses.fetch_add(1, Ordering::Relaxed);
                micronas_telemetry::counter_add("fabric.remote.misses", 1);
                None
            }
            Err(e) => {
                inner.note_failure(owner, &e);
                None
            }
        }
    }

    fn offer(&self, key: EvalKey, record: EvalRecord) {
        let Some(queue) = &self.queue else { return };
        match queue.try_send(Job::Offer(key, record)) {
            Ok(()) => {
                self.inner.counters.offered.fetch_add(1, Ordering::Relaxed);
                micronas_telemetry::counter_add("fabric.writebehind.offered", 1);
            }
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                self.inner.counters.dropped.fetch_add(1, Ordering::Relaxed);
                micronas_telemetry::counter_add("fabric.writebehind.dropped", 1);
            }
        }
    }
}

fn flusher_loop(inner: &TierInner, rx: &Receiver<Job>) {
    let mut pending: Vec<(EvalKey, EvalRecord)> = Vec::new();
    loop {
        match rx.recv() {
            Ok(Job::Offer(key, record)) => {
                pending.push((key, record));
                // Opportunistically coalesce whatever else is queued into
                // one delivery round.
                while pending.len() < FLUSH_BATCH {
                    match rx.try_recv() {
                        Ok(Job::Offer(key, record)) => pending.push((key, record)),
                        Ok(Job::Flush(ack)) => {
                            deliver(inner, &mut pending);
                            let _ = ack.send(());
                        }
                        Err(_) => break,
                    }
                }
                deliver(inner, &mut pending);
            }
            Ok(Job::Flush(ack)) => {
                deliver(inner, &mut pending);
                let _ = ack.send(());
            }
            Err(_) => {
                deliver(inner, &mut pending);
                return;
            }
        }
    }
}

fn deliver(inner: &TierInner, pending: &mut Vec<(EvalKey, EvalRecord)>) {
    if pending.is_empty() {
        return;
    }
    let c = &inner.counters;
    let mut groups: Vec<Vec<(EvalKey, EvalRecord)>> = vec![Vec::new(); inner.peers.len()];
    let mut unrouted = 0u64;
    for (key, record) in pending.drain(..) {
        match inner.live_owner(key.shard_hash()) {
            Some(owner) => groups[owner].push((key, record)),
            None => unrouted += 1,
        }
    }
    if unrouted > 0 {
        c.dropped.fetch_add(unrouted, Ordering::Relaxed);
        micronas_telemetry::counter_add("fabric.writebehind.dropped", unrouted);
    }
    for (owner, group) in groups.into_iter().enumerate() {
        if group.is_empty() {
            continue;
        }
        let _span = micronas_telemetry::span!("fabric.rpc.batch_put");
        for chunk in group.chunks(MAX_BATCH) {
            let len = chunk.len() as u64;
            match inner.peers[owner].client.batch_put(chunk.to_vec()) {
                Ok(_) => {
                    c.delivered.fetch_add(len, Ordering::Relaxed);
                    micronas_telemetry::counter_add("fabric.writebehind.delivered", len);
                }
                Err(e) => {
                    inner.note_failure(owner, &e);
                    c.failed.fetch_add(len, Ordering::Relaxed);
                    micronas_telemetry::counter_add("fabric.writebehind.failed", len);
                }
            }
        }
    }
}
