//! Consistent-hash ring mapping evaluation keys to owning nodes.
//!
//! Each node is projected onto the ring at `vnodes` points (FNV-1a of
//! `"{node_id}#{vnode_index}"`, passed through a splitmix64-style bit
//! finalizer — FNV alone clusters badly over near-identical peer strings
//! like `10.0.0.1:7000` / `10.0.0.2:7000`, and clustered points mean
//! lopsided arcs); a key's owner is the first point clockwise from the
//! key's shard hash. Virtual nodes smooth the load (with 32 vnodes,
//! 2–16 node rings stay within a small factor of perfectly even), and
//! adding or removing one node only remaps the keys whose clockwise arc it
//! owned — the rest of the fleet's warm shards stay warm.
//!
//! The ring is deterministic: every worker building a ring from the same
//! peer list (in any order) computes the same ownership, which is what lets
//! a fleet agree on who owns a key without any coordination service.

use micronas_store::fnv1a64;

/// Splitmix64 finalizer: full-avalanche bit mix with fixed, published
/// constants (stable across platforms and releases, like FNV itself).
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A consistent-hash ring over a fixed set of node identifiers.
#[derive(Debug, Clone)]
pub struct HashRing {
    /// `(ring position, node index)`, sorted by position.
    points: Vec<(u64, usize)>,
    /// Node identifiers, in the order given at construction.
    nodes: Vec<String>,
}

impl HashRing {
    /// Builds a ring placing every node at `vnodes` points.
    ///
    /// Duplicate node identifiers are collapsed (first occurrence wins) so a
    /// misconfigured peer list cannot double-weight a node. Ties on a ring
    /// position (astronomically unlikely with 64-bit positions) break
    /// toward the lexicographically smaller node id, keeping ownership
    /// independent of list order.
    pub fn new<S: AsRef<str>>(node_ids: &[S], vnodes: u32) -> Self {
        let vnodes = vnodes.max(1);
        let mut nodes: Vec<String> = Vec::with_capacity(node_ids.len());
        for id in node_ids {
            let id = id.as_ref();
            if !nodes.iter().any(|n| n == id) {
                nodes.push(id.to_string());
            }
        }
        let mut points = Vec::with_capacity(nodes.len() * vnodes as usize);
        for (index, id) in nodes.iter().enumerate() {
            let mut seed = Vec::with_capacity(id.len() + 5);
            seed.extend_from_slice(id.as_bytes());
            seed.push(b'#');
            for v in 0..vnodes {
                seed.truncate(id.len() + 1);
                seed.extend_from_slice(&v.to_le_bytes());
                points.push((mix(fnv1a64(&seed)), index));
            }
        }
        points.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| nodes[a.1].cmp(&nodes[b.1])));
        HashRing { points, nodes }
    }

    /// Number of distinct nodes on the ring.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the ring has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The node identifiers on the ring, in construction order.
    pub fn node_ids(&self) -> &[String] {
        &self.nodes
    }

    /// Index (into [`HashRing::node_ids`]) of the node owning `hash`, or
    /// `None` on an empty ring.
    pub fn owner(&self, hash: u64) -> Option<usize> {
        self.owner_where(hash, |_| true)
    }

    /// Index of the first node clockwise from `hash` for which `alive`
    /// holds, or `None` when no live node exists. This is how the tier
    /// degrades: a dead owner's keys fall to the next live node on the ring
    /// without remapping anyone else's.
    pub fn owner_where(&self, hash: u64, alive: impl Fn(usize) -> bool) -> Option<usize> {
        if self.points.is_empty() {
            return None;
        }
        let start = self.points.partition_point(|&(p, _)| p < hash);
        let n = self.points.len();
        let mut seen = 0u32;
        let mut seen_nodes = vec![false; self.nodes.len()];
        for step in 0..n {
            let (_, node) = self.points[(start + step) % n];
            if alive(node) {
                return Some(node);
            }
            if !seen_nodes[node] {
                seen_nodes[node] = true;
                seen += 1;
                if seen as usize == self.nodes.len() {
                    break;
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_is_deterministic_and_order_independent() {
        let a = HashRing::new(&["node-a", "node-b", "node-c"], 32);
        let b = HashRing::new(&["node-c", "node-a", "node-b"], 32);
        for i in 0..1_000u64 {
            let hash = fnv1a64(&i.to_le_bytes());
            let owner_a = &a.node_ids()[a.owner(hash).unwrap()];
            let owner_b = &b.node_ids()[b.owner(hash).unwrap()];
            assert_eq!(owner_a, owner_b);
        }
    }

    #[test]
    fn duplicate_ids_do_not_double_weight() {
        let ring = HashRing::new(&["n1", "n2", "n1"], 16);
        assert_eq!(ring.len(), 2);
    }

    #[test]
    fn dead_owners_fall_to_the_next_live_node() {
        let ring = HashRing::new(&["n1", "n2", "n3"], 32);
        for i in 0..200u64 {
            let hash = fnv1a64(&i.to_le_bytes());
            let full = ring.owner(hash).unwrap();
            let degraded = ring.owner_where(hash, |n| n != full).unwrap();
            assert_ne!(degraded, full);
            // Killing a node that is NOT the owner never remaps the key.
            let bystander = (full + 1) % 3;
            assert_eq!(ring.owner_where(hash, |n| n != bystander), Some(full));
        }
        assert_eq!(ring.owner_where(123, |_| false), None);
    }

    #[test]
    fn empty_ring_owns_nothing() {
        let ring = HashRing::new::<&str>(&[], 32);
        assert!(ring.is_empty());
        assert_eq!(ring.owner(42), None);
    }
}
