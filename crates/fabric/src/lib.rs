//! `micronas-fabric`: a distributed evaluation fabric — one logical
//! evaluation store for a fleet of search workers.
//!
//! The MicroNAS pipeline's proxy evaluations are pure functions of a
//! content-addressed key (`micronas_store::EvalKey`), which makes them
//! trivially shareable: any worker's result is every worker's result. The
//! `micronas-store` crate already shares them within one process (striped
//! in-memory shards) and across runs on one machine (the append-only log).
//! This crate extends the same store across machines:
//!
//! - [`FabricNode`]: a TCP server exposing a local
//!   [`EvalStore`](micronas_store::EvalStore) shard to the fleet over a
//!   checksummed, length-prefixed wire protocol ([`wire`]) that reuses the
//!   store log's framing and record codec byte-for-byte.
//! - [`HashRing`]: a deterministic consistent-hash ring (virtual nodes)
//!   every worker builds from the same peer list, so the fleet agrees on
//!   which node owns which key with no coordination service.
//! - [`RemoteTier`]: the client side — a read-through / write-behind
//!   [`RemoteBackend`](micronas_store::RemoteBackend) that attaches to a
//!   worker's local store. Local hit → done; local miss → ask the ring
//!   owner (a hit populates the local shard); remote miss or failure →
//!   compute locally and offer the result back asynchronously.
//! - [`CompactionDaemon`]: scheduled offline compaction over idle node
//!   logs.
//!
//! # Correctness before availability, availability before latency
//!
//! The fabric is a cache, not a database: every record is recomputable, so
//! the failure policy is simply *degrade to recompute*. Requests carry
//! socket deadlines and bounded retries; peers that keep failing are
//! marked dead and their ring arcs fall to the next live node; with no
//! live peers a worker runs exactly like a fabric-less one. Search results
//! are bitwise-identical with the fabric enabled, disabled, degraded or
//! partitioned, because records are content-addressed and evaluations are
//! deterministic — the fabric can only change *where* a result was
//! computed, never *what* it is.
//!
//! A fleet must agree on its evaluation configuration: the handshake
//! exchanges store-namespace fingerprints
//! (`micronas::MicroNasConfig::store_namespace`) and a node refuses
//! divergent peers, reporting both fingerprints in hex — the wire-level
//! analogue of a store log refusing to open under the wrong namespace.
//!
//! # Example
//!
//! ```
//! use micronas_fabric::{FabricConfig, FabricNode, RemoteTier};
//! use micronas_store::EvalStore;
//! use std::sync::Arc;
//!
//! // One node serving a shard (normally on another machine).
//! let node = FabricNode::serve(Arc::new(EvalStore::in_memory(42))).unwrap();
//!
//! // A worker: local store + remote tier over the fleet.
//! let store = Arc::new(EvalStore::in_memory(42));
//! let tier = Arc::new(RemoteTier::from_config(
//!     42,
//!     &FabricConfig::with_peers(vec![node.addr()]),
//! ));
//! store.attach_remote(tier).unwrap();
//! // store.get(..) now reads through the fabric on local misses.
//! ```

#![warn(missing_docs)]

mod client;
mod daemon;
mod error;
mod node;
mod ring;
mod tier;
pub mod wire;

pub use client::{ClientOptions, FabricClient};
pub use daemon::{CompactionDaemon, CompactionDaemonStats, CompactionOutcome, CompactionReport};
pub use error::FabricError;
pub use node::{FabricNode, NodeOptions, NodeStats};
pub use ring::HashRing;
pub use tier::{FabricConfig, RemoteTier, RemoteTierStats};
