//! Property tests for the consistent-hash ring: balance across fleet
//! sizes, minimal remapping on join/leave, and deterministic ownership.
//!
//! Everything here is deterministic (FNV-1a point placement, fixed key
//! samples), so the asserted bounds either hold forever or fail on the
//! first run — there is no flakiness to tune around.

use micronas_fabric::HashRing;
use micronas_store::fnv1a64;
use proptest::prelude::*;

fn node_ids(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("10.0.0.{i}:7000")).collect()
}

fn sample_hash(i: u64) -> u64 {
    fnv1a64(&i.to_le_bytes())
}

/// With 32 virtual nodes per peer, load across 2–16 node fleets stays
/// within a small factor of perfectly even.
#[test]
fn load_is_balanced_across_fleet_sizes() {
    const SAMPLES: u64 = 20_000;
    for n in 2..=16usize {
        let ring = HashRing::new(&node_ids(n), 32);
        let mut counts = vec![0u64; n];
        for i in 0..SAMPLES {
            counts[ring.owner(sample_hash(i)).unwrap()] += 1;
        }
        let ideal = SAMPLES as f64 / n as f64;
        for (node, &count) in counts.iter().enumerate() {
            let ratio = count as f64 / ideal;
            assert!(
                (0.5..=1.8).contains(&ratio),
                "node {node} of {n} owns {count} of {SAMPLES} keys ({ratio:.2}x ideal)"
            );
        }
    }
}

proptest! {
    /// A node joining the ring only steals keys *for itself*: no key moves
    /// between two pre-existing nodes, and the stolen fraction is near the
    /// fair share 1/(n+1).
    #[test]
    fn joins_remap_only_onto_the_joining_node(n in 2usize..12, tag in 0u32..1_000) {
        const SAMPLES: u64 = 3_000;
        let ids = node_ids(n);
        let ring = HashRing::new(&ids, 32);
        let mut grown_ids = ids.clone();
        grown_ids.push(format!("joiner-{tag}:7000"));
        let grown = HashRing::new(&grown_ids, 32);

        let mut moved = 0u64;
        for i in 0..SAMPLES {
            let hash = sample_hash(i);
            let before = &ids[ring.owner(hash).unwrap()];
            let after = &grown_ids[grown.owner(hash).unwrap()];
            if before != after {
                prop_assert_eq!(after, &grown_ids[n], "keys may only move to the joiner");
                moved += 1;
            }
        }
        let fair_share = SAMPLES as f64 / (n as f64 + 1.0);
        prop_assert!(
            (moved as f64) < 3.0 * fair_share,
            "join remapped {} keys, fair share is {:.0}",
            moved,
            fair_share
        );
    }

    /// A node leaving the ring only reassigns the keys it owned; every
    /// other key keeps its owner — the warm shards of the survivors stay
    /// warm.
    #[test]
    fn leaves_remap_only_the_leavers_keys(n in 3usize..12, leaver_pick in 0usize..12) {
        let ids = node_ids(n);
        let leaver = leaver_pick % n;
        let ring = HashRing::new(&ids, 32);
        let shrunk_ids: Vec<String> = ids
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != leaver)
            .map(|(_, id)| id.clone())
            .collect();
        let shrunk = HashRing::new(&shrunk_ids, 32);

        for i in 0..3_000u64 {
            let hash = sample_hash(i);
            let before = &ids[ring.owner(hash).unwrap()];
            let after = &shrunk_ids[shrunk.owner(hash).unwrap()];
            if before != &ids[leaver] {
                prop_assert_eq!(before, after, "survivors' keys must not move");
            } else {
                prop_assert_ne!(after, &ids[leaver]);
            }
            // Removal via the ring's own degraded view agrees exactly with
            // rebuilding the ring without the node.
            let degraded = &ids[ring.owner_where(hash, |i| i != leaver).unwrap()];
            prop_assert_eq!(degraded, after);
        }
    }

    /// Ownership is a pure function of the membership *set*: any
    /// permutation of the peer list yields identical assignments.
    #[test]
    fn ownership_ignores_peer_list_order(n in 2usize..10, rotation in 1usize..10) {
        let ids = node_ids(n);
        let mut rotated = ids.clone();
        rotated.rotate_left(rotation % n);
        let a = HashRing::new(&ids, 32);
        let b = HashRing::new(&rotated, 32);
        for i in 0..1_000u64 {
            let hash = sample_hash(i);
            prop_assert_eq!(
                &a.node_ids()[a.owner(hash).unwrap()],
                &b.node_ids()[b.owner(hash).unwrap()]
            );
        }
    }
}
