//! Loopback integration tests for the fabric: node/client/tier over real
//! sockets, plus wire fault injection — truncated frames, corrupted
//! checksums, mid-stream disconnects and slow-loris partial writes must
//! all surface as clean typed errors, never panics or hangs.
//!
//! CI runs this file in the tier-1 job (`cargo test -p micronas-fabric`).

use micronas_datasets::DatasetKind;
use micronas_fabric::wire::{self, Message};
use micronas_fabric::{
    ClientOptions, CompactionDaemon, CompactionOutcome, FabricClient, FabricConfig, FabricError,
    FabricNode, HashRing, NodeOptions, RemoteTier,
};
use micronas_proxies::ZeroCostMetrics;
use micronas_searchspace::SearchSpace;
use micronas_store::{EvalKey, EvalRecord, EvalStore, RemoteBackend};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

const NS: u64 = 7;

fn key(i: usize) -> EvalKey {
    let space = SearchSpace::nas_bench_201();
    EvalKey::zero_cost(
        &space.cell(i % space.len()).unwrap(),
        DatasetKind::Cifar10,
        i as u64,
        12,
    )
}

fn record(v: f64) -> EvalRecord {
    EvalRecord::ZeroCost(ZeroCostMetrics {
        ntk_condition: v,
        linear_regions: 3,
        trainability: -v,
        expressivity: v * 0.5,
    })
}

/// A node with short deadlines so fault tests converge quickly.
fn quick_node(store: Arc<EvalStore>) -> FabricNode {
    FabricNode::serve_with(
        store,
        NodeOptions {
            workers: 2,
            backlog: 8,
            read_timeout: Duration::from_millis(50),
        },
    )
    .expect("bind loopback node")
}

fn quick_client(addr: &str, namespace: u64) -> FabricClient {
    FabricClient::new(
        addr,
        namespace,
        ClientOptions {
            timeout: Duration::from_millis(500),
            retries: 0,
            backoff: Duration::from_millis(1),
        },
    )
}

/// Polls `probe` for up to two seconds — long enough for a worker thread to
/// observe a socket deadline, short enough to prove nothing hangs.
fn eventually(mut probe: impl FnMut() -> bool) -> bool {
    let deadline = Instant::now() + Duration::from_secs(2);
    while Instant::now() < deadline {
        if probe() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    false
}

#[test]
fn point_and_batch_requests_roundtrip() {
    let node = quick_node(Arc::new(EvalStore::in_memory(NS)));
    let client = quick_client(&node.addr(), NS);
    client.connect().unwrap();
    client.ping().unwrap();

    assert_eq!(client.get(&key(1)).unwrap(), None);
    assert!(client.put(key(1), record(1.0)).unwrap());
    assert!(!client.put(key(1), record(1.0)).unwrap());
    assert_eq!(client.get(&key(1)).unwrap(), Some(record(1.0)));

    assert_eq!(
        client
            .batch_put(vec![(key(2), record(2.0)), (key(3), record(3.0))])
            .unwrap(),
        2
    );
    assert_eq!(
        client.batch_get(&[key(1), key(2), key(9)]).unwrap(),
        vec![Some(record(1.0)), Some(record(2.0)), None]
    );

    let stats = node.stats();
    assert_eq!(stats.connections, 1);
    assert_eq!(stats.pings, 1);
    assert_eq!(stats.gets, 2 + 3);
    assert_eq!(stats.get_hits, 1 + 2);
    assert_eq!(stats.puts, 2 + 2);
    assert_eq!(stats.errors, 0);
}

#[test]
fn handshake_refuses_a_divergent_namespace_with_both_fingerprints() {
    let node = quick_node(Arc::new(EvalStore::in_memory(0xAAAA)));
    let client = quick_client(&node.addr(), 0xBBBB);
    let err = client.connect().unwrap_err();
    match &err {
        FabricError::HandshakeRefused { ours, theirs } => {
            assert_eq!(*ours, 0xBBBB);
            assert_eq!(*theirs, 0xAAAA);
        }
        other => panic!("expected HandshakeRefused, got {other:?}"),
    }
    let msg = err.to_string();
    assert!(msg.contains("0x000000000000aaaa"), "{msg}");
    assert!(msg.contains("0x000000000000bbbb"), "{msg}");
    assert!(!err.retryable());
    assert!(eventually(|| node.stats().refused_handshakes == 1));
    assert_eq!(node.stats().connections, 0);
}

/// Dials the node and completes a raw handshake, returning the socket for
/// fault injection past the Hello.
fn raw_handshaken(addr: &str) -> TcpStream {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(2)))
        .unwrap();
    wire::send(&mut stream, &Message::Hello { namespace: NS }).unwrap();
    assert_eq!(
        wire::recv(&mut stream).unwrap(),
        Message::HelloAck { namespace: NS }
    );
    stream
}

#[test]
fn corrupted_checksums_close_the_connection_with_a_counted_error() {
    let node = quick_node(Arc::new(EvalStore::in_memory(NS)));
    let mut stream = raw_handshaken(&node.addr());

    // A frame whose checksum does not match its payload.
    let mut frame = Vec::new();
    frame.extend_from_slice(&3u32.to_le_bytes());
    frame.extend_from_slice(&0u64.to_le_bytes());
    frame.extend_from_slice(&[1, 2, 3]);
    stream.write_all(&frame).unwrap();

    // The server rejects and closes; our next read sees EOF, not a hang.
    let mut buf = [0u8; 16];
    assert_eq!(stream.read(&mut buf).unwrap(), 0);
    assert!(eventually(|| node.stats().errors == 1));
}

#[test]
fn mid_stream_disconnects_are_clean_but_truncated_frames_are_errors() {
    let node = quick_node(Arc::new(EvalStore::in_memory(NS)));

    // Disconnecting between frames is a normal client departure.
    drop(raw_handshaken(&node.addr()));
    // Disconnecting mid-frame is a truncation error.
    let mut stream = raw_handshaken(&node.addr());
    stream.write_all(&7u32.to_le_bytes()).unwrap(); // header fragment
    drop(stream);

    assert!(eventually(|| node.stats().errors == 1));
    assert!(eventually(|| node.stats().connections == 2));
}

#[test]
fn slow_loris_partial_writes_time_out_instead_of_pinning_a_worker() {
    let node = quick_node(Arc::new(EvalStore::in_memory(NS)));
    let mut stream = raw_handshaken(&node.addr());

    // Send part of a frame header, then stall with the socket open.
    stream.write_all(&[1, 0]).unwrap();
    assert!(
        eventually(|| node.stats().errors == 1),
        "server must disconnect a stalled mid-frame peer"
    );

    // The freed worker still serves well-behaved clients.
    let client = quick_client(&node.addr(), NS);
    client.ping().unwrap();
}

#[test]
fn clients_type_stalled_and_corrupt_servers() {
    // A "server" that accepts handshakes but never answers requests.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let stall = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let hello = wire::recv(&mut stream).unwrap();
        assert!(matches!(hello, Message::Hello { namespace: NS }));
        wire::send(&mut stream, &Message::HelloAck { namespace: NS }).unwrap();
        let _request = wire::recv(&mut stream); // read it, answer nothing
        std::thread::sleep(Duration::from_millis(400));
    });
    let client = FabricClient::new(
        &addr,
        NS,
        ClientOptions {
            timeout: Duration::from_millis(100),
            retries: 0,
            backoff: Duration::from_millis(1),
        },
    );
    assert!(matches!(
        client.get(&key(1)).unwrap_err(),
        FabricError::Timeout
    ));
    stall.join().unwrap();

    // A "server" answering the handshake with a corrupted frame.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap().to_string();
    let corrupt = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        let _ = wire::recv(&mut stream).unwrap();
        let mut frame = Message::HelloAck { namespace: NS }.encode();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&(frame.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&0xDEAD_BEEFu64.to_le_bytes()); // wrong checksum
        bytes.append(&mut frame);
        stream.write_all(&bytes).unwrap();
    });
    let client = quick_client(&addr, NS);
    assert!(matches!(
        client.connect().unwrap_err(),
        FabricError::ChecksumMismatch { .. }
    ));
    corrupt.join().unwrap();
}

#[test]
fn tier_write_behind_delivers_to_ring_owners_and_reads_through() {
    let node_a = quick_node(Arc::new(EvalStore::in_memory(NS)));
    let node_b = quick_node(Arc::new(EvalStore::in_memory(NS)));
    let config = FabricConfig::with_peers(vec![node_a.addr(), node_b.addr()]);

    // Worker 1 computes: every local insert is offered write-behind.
    let store1 = Arc::new(EvalStore::in_memory(NS));
    let tier1 = Arc::new(RemoteTier::from_config(NS, &config));
    store1
        .attach_remote(Arc::clone(&tier1) as Arc<dyn RemoteBackend>)
        .unwrap();
    const N: usize = 40;
    for i in 0..N {
        store1.insert(key(i), record(i as f64)).unwrap();
    }
    tier1.flush().unwrap();
    let stats1 = tier1.stats();
    assert_eq!(stats1.offered, N as u64);
    assert_eq!(stats1.delivered, N as u64);
    assert_eq!(stats1.dropped + stats1.failed_deliveries, 0);

    // Every record landed on exactly its ring owner.
    let ring = HashRing::new(&[node_a.addr(), node_b.addr()], config.vnodes);
    assert_eq!(node_a.store().len() + node_b.store().len(), N);
    for i in 0..N {
        let owner = ring.owner(key(i).shard_hash()).unwrap();
        let owner_store = if owner == 0 {
            node_a.store()
        } else {
            node_b.store()
        };
        assert_eq!(owner_store.peek(&key(i)), Some(record(i as f64)));
    }
    assert!(!node_a.store().is_empty() && !node_b.store().is_empty());

    // Worker 2 arrives cold: every lookup reads through the fabric and
    // fills the local shard — no recompute anywhere.
    let store2 = Arc::new(EvalStore::in_memory(NS));
    let tier2 = Arc::new(RemoteTier::from_config(NS, &config));
    store2
        .attach_remote(Arc::clone(&tier2) as Arc<dyn RemoteBackend>)
        .unwrap();
    for i in 0..N {
        assert_eq!(store2.get(&key(i)), Some(record(i as f64)));
    }
    assert_eq!(tier2.stats().remote_hits, N as u64);
    assert_eq!(store2.stats().hits, N as u64);
    assert_eq!(store2.len(), N); // remote hits filled the local shard
    for i in 0..N {
        assert_eq!(store2.peek(&key(i)), Some(record(i as f64)));
    }
}

#[test]
fn dead_peers_leave_the_ring_and_lookups_fail_over() {
    let mut node_a = quick_node(Arc::new(EvalStore::in_memory(NS)));
    let node_b = quick_node(Arc::new(EvalStore::in_memory(NS)));
    let addr_a = node_a.addr();
    let addr_b = node_b.addr();

    // A key owned by node A while both nodes are live.
    let ring = HashRing::new(&[addr_a.clone(), addr_b.clone()], 32);
    let owned_by_a = (0..1_000)
        .map(key)
        .find(|k| ring.owner(k.shard_hash()) == Some(0))
        .expect("some key owned by node A");
    // Node B holds the record (e.g. replicated by an earlier fleet).
    node_b.store().insert(owned_by_a, record(4.2)).unwrap();

    let mut config = FabricConfig::with_peers(vec![addr_a.clone(), addr_b.clone()]);
    config.timeout_ms = 100;
    config.retries = 0;
    config.fail_threshold = 1;
    let tier = RemoteTier::from_config(NS, &config);

    node_a.shutdown();
    // First fetch: the owner is dead — the failure marks it degraded.
    assert_eq!(tier.fetch(&owned_by_a), None);
    let stats = tier.stats();
    assert_eq!(stats.degraded_peers, 1);
    assert!(stats.timeouts + stats.errors >= 1);
    assert_eq!(tier.alive_peers(), vec![addr_b]);

    // Second fetch: the key's arc fell to node B, which has it.
    assert_eq!(tier.fetch(&owned_by_a), Some(record(4.2)));
    assert_eq!(tier.stats().remote_hits, 1);
}

#[test]
fn compaction_daemon_compacts_idle_logs_and_skips_live_ones() {
    let mut path = std::env::temp_dir();
    path.push(format!(
        "micronas-fabric-compaction-{}.log",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);

    let store = EvalStore::open(&path, NS).unwrap();
    for round in 0..3 {
        for i in 0..8 {
            store
                .insert(key(i), record((round * 8 + i) as f64))
                .unwrap();
        }
    }
    let daemon = CompactionDaemon::new(NS, vec![path.clone()]);

    // While the store holds the log, the daemon reports Busy — never blocks.
    let reports = daemon.tick_now();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].outcome, CompactionOutcome::Busy);

    // Once the store is gone, superseded records are dropped.
    drop(store);
    let reports = daemon.tick_now();
    match &reports[0].outcome {
        CompactionOutcome::Compacted(stats) => {
            assert_eq!(stats.records_before, 24);
            assert_eq!(stats.records_after, 8);
        }
        other => panic!("expected Compacted, got {other:?}"),
    }
    let stats = daemon.stats();
    assert_eq!(stats.runs, 2);
    assert_eq!(stats.busy, 1);
    assert_eq!(stats.compacted, 1);
    assert_eq!(stats.failed, 0);

    // The compacted log replays to the same live state.
    let reopened = EvalStore::open(&path, NS).unwrap();
    assert_eq!(reopened.len(), 8);
    assert_eq!(reopened.peek(&key(0)), Some(record(16.0)));
    drop(reopened);
    let _ = std::fs::remove_file(&path);
}
