//! The deterministic JSONL event-line format and its replay checker.
//!
//! Each line of a recorded event stream is one JSON object with two
//! sections:
//!
//! ```json
//! {"event": {"type": "step", "index": 3, ...}, "timing": {"elapsed_ns": 1234}}
//! ```
//!
//! The `"event"` section holds only deterministic fields — identical for
//! every same-seed run at any thread count. The `"timing"` section is
//! segregated wall-clock data and is *ignored* by [`replay_diff`], so two
//! recordings of the same seed diff empty even though their clocks
//! differ. Recorders that omit `"timing"` entirely produce byte-identical
//! files.
//!
//! The `EventRecorder` in the `micronas` core crate writes this format
//! for `SearchEvent` streams; this module is format-level only so any
//! future event source (store traffic, daemon job logs) can share the
//! checker.

use crate::json::{self, JsonValue};

/// Key of the deterministic section of an event line.
pub const EVENT_KEY: &str = "event";
/// Key of the segregated (ignored-by-diff) timing section.
pub const TIMING_KEY: &str = "timing";

/// Wraps a deterministic payload (and optional timing payload) into one
/// serialized event line, both payloads given as pre-rendered JSON.
pub fn format_line(event_json: &str, timing_json: Option<&str>) -> String {
    match timing_json {
        Some(t) => format!("{{\"{EVENT_KEY}\":{event_json},\"{TIMING_KEY}\":{t}}}"),
        None => format!("{{\"{EVENT_KEY}\":{event_json}}}"),
    }
}

/// Parses one event line, returning the deterministic section.
///
/// # Errors
///
/// Describes the syntax error or the missing `"event"` member.
pub fn parse_line(line: &str) -> Result<JsonValue, String> {
    let value = json::parse(line)?;
    value
        .get(EVENT_KEY)
        .cloned()
        .ok_or_else(|| format!("event line has no \"{EVENT_KEY}\" member"))
}

/// Parses a whole JSONL stream (blank lines skipped), returning the
/// deterministic section of each line.
///
/// # Errors
///
/// Reports the 1-based line number of the first malformed line.
pub fn parse_stream(jsonl: &str) -> Result<Vec<JsonValue>, String> {
    let mut events = Vec::new();
    for (index, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = parse_line(line).map_err(|e| format!("line {}: {e}", index + 1))?;
        events.push(event);
    }
    Ok(events)
}

/// Compares two recorded event streams on their deterministic sections
/// only, returning one message per difference (empty = streams identical
/// modulo timing).
///
/// Malformed lines are reported as differences rather than errors so the
/// checker never masks a corrupted recording.
pub fn replay_diff(a: &str, b: &str) -> Vec<String> {
    let mut diffs = Vec::new();
    let parse = |stream: &str, name: &str, diffs: &mut Vec<String>| match parse_stream(stream) {
        Ok(events) => Some(events),
        Err(e) => {
            diffs.push(format!("stream {name} is malformed: {e}"));
            None
        }
    };
    let (Some(events_a), Some(events_b)) = (parse(a, "a", &mut diffs), parse(b, "b", &mut diffs))
    else {
        return diffs;
    };
    if events_a.len() != events_b.len() {
        diffs.push(format!(
            "event count differs: {} vs {}",
            events_a.len(),
            events_b.len()
        ));
    }
    for (index, (ea, eb)) in events_a.iter().zip(events_b.iter()).enumerate() {
        if ea != eb {
            diffs.push(format!("event {index} differs: {ea} vs {eb}"));
        }
    }
    diffs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn format_and_parse_round_trip() {
        let line = format_line(r#"{"type":"step","index":1}"#, Some(r#"{"elapsed_ns":42}"#));
        let event = parse_line(&line).unwrap();
        assert_eq!(event.get("type").unwrap().as_str(), Some("step"));
        assert_eq!(event.get("index").unwrap().as_f64(), Some(1.0));
        let bare = format_line(r#"{"type":"started"}"#, None);
        assert!(parse_line(&bare).is_ok());
    }

    #[test]
    fn replay_diff_ignores_timing() {
        let a = [
            format_line(r#"{"type":"started"}"#, Some(r#"{"elapsed_ns":10}"#)),
            format_line(r#"{"type":"step","index":0}"#, Some(r#"{"elapsed_ns":20}"#)),
        ]
        .join("\n");
        let b = [
            format_line(r#"{"type":"started"}"#, Some(r#"{"elapsed_ns":99}"#)),
            format_line(r#"{"type":"step","index":0}"#, None),
        ]
        .join("\n");
        assert!(replay_diff(&a, &b).is_empty());
    }

    #[test]
    fn replay_diff_reports_deterministic_differences() {
        let a = format_line(r#"{"type":"step","index":0}"#, None);
        let b = format_line(r#"{"type":"step","index":1}"#, None);
        let diffs = replay_diff(&a, &b);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].contains("event 0 differs"));
    }

    #[test]
    fn replay_diff_reports_length_mismatch_and_malformed_streams() {
        let a = format_line(r#"{"type":"started"}"#, None);
        let two = format!("{a}\n{a}\n");
        assert_eq!(replay_diff(&a, &two).len(), 1);
        let diffs = replay_diff("not json", &a);
        assert_eq!(diffs.len(), 1);
        assert!(diffs[0].contains("malformed"));
        let missing = replay_diff(r#"{"timing":{}}"#, &a);
        assert!(missing[0].contains("no \"event\" member"));
    }

    #[test]
    fn parse_stream_skips_blank_lines_and_numbers_errors() {
        let good = format!(
            "{}\n\n{}\n",
            format_line(r#"{"type":"a"}"#, None),
            format_line(r#"{"type":"b"}"#, None)
        );
        assert_eq!(parse_stream(&good).unwrap().len(), 2);
        let bad = format!("{}\n{{oops\n", format_line(r#"{"type":"a"}"#, None));
        let err = parse_stream(&bad).unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }
}
