//! Minimal hand-rolled JSON tree, parser and writer.
//!
//! The workspace's offline `serde` shim has no-op derives, so every crate
//! hand-rolls its JSON. This module centralizes the read side: enough of
//! RFC 8259 to round-trip the telemetry reports and JSONL event streams
//! this workspace emits (objects, arrays, strings with escapes, f64
//! numbers, booleans, null).

use std::fmt;

/// A parsed JSON value. Object members preserve source order so a
/// re-serialization of a parsed document is stable.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Number(f64),
    /// A string (unescaped).
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object, in source member order.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Member lookup on objects (first match), `None` otherwise.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `f64` if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a slice if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The object members if it is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n:?}")
                }
            }
            JsonValue::String(s) => f.write_str(&escape_string(s)),
            JsonValue::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Object(members) => {
                f.write_str("{")?;
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{value}", escape_string(key))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Escapes `s` as a JSON string literal, including the surrounding
/// quotes.
pub fn escape_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses one JSON document, rejecting trailing garbage.
///
/// # Errors
///
/// Returns a human-readable description (with byte offset) of the first
/// syntax error.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing characters at byte {}", parser.pos));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(b), self.pos))
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(JsonValue::String(self.parse_string()?)),
            Some(b't') => self.parse_literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.parse_literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.parse_literal("null", JsonValue::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(format!(
                "unexpected character '{}' at byte {}",
                char::from(b),
                self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn parse_literal(&mut self, lit: &str, value: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| format!("invalid number at byte {start}"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| {
                                    format!("truncated \\u escape at byte {}", self.pos)
                                })?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("invalid \\u escape at byte {}", self.pos))?;
                            // Surrogate pairs are not emitted by this
                            // workspace's writers; map lone surrogates to
                            // the replacement character.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("invalid escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = &self.bytes[self.pos..];
                    let text = std::str::from_utf8(rest)
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = text.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_whitespace();
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn parse_object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(members));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            self.skip_whitespace();
            let value = self.parse_value()?;
            members.push((key, value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true, "e": null}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_array().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("b").unwrap().get("e"), Some(&JsonValue::Null));
    }

    #[test]
    fn display_round_trips_through_parse() {
        let doc = r#"{"label":"a\"b","n":42,"x":0.125,"arr":[false,null]}"#;
        let v = parse(doc).unwrap();
        let rendered = v.to_string();
        assert_eq!(parse(&rendered).unwrap(), v);
        // Member order is preserved, so re-rendering is byte-stable.
        assert_eq!(parse(&rendered).unwrap().to_string(), rendered);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("123 456").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("\"abc").is_err());
    }

    #[test]
    fn escape_handles_control_characters() {
        assert_eq!(escape_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(escape_string("\u{1}"), "\"\\u0001\"");
        let round = parse(&escape_string("tab\there")).unwrap();
        assert_eq!(round.as_str(), Some("tab\there"));
    }
}
