//! Telemetry spine for the MicroNAS stack: span timers, a metrics
//! registry, and deterministic JSONL event-stream plumbing.
//!
//! The crate is built around one invariant: **instrumentation must be
//! inert**. Every instrumented hot loop in the workspace pays exactly one
//! relaxed atomic load when no sink is recording, and nothing a sink
//! observes may feed back into search numerics — paper-identity
//! fingerprints are bitwise-identical with telemetry off, on, and
//! recording (see `tests/telemetry_inertness.rs` at the workspace root).
//!
//! Three pieces:
//!
//! 1. **Spans** — [`span!`] returns an RAII guard that measures a
//!    monotonic wall-clock interval and reports it to the installed
//!    [`TelemetrySink`] under a static label. The [`Collector`] sink
//!    aggregates spans per label across threads into call-count / total /
//!    max / p50–p99 (fixed log2-bucket histograms, no allocation on the
//!    steady-state hot path).
//! 2. **Metrics** — [`MetricsRegistry`] holds named atomic counters and
//!    max-gauges; the free functions [`counter_add`] and [`gauge_max`]
//!    route to the installed sink, compiling to a single branch when
//!    telemetry is disabled.
//! 3. **Events** — [`events`] provides the line format shared by the
//!    `EventRecorder` in `micronas` core: each JSONL record carries a
//!    deterministic `"event"` section and a segregated `"timing"` section,
//!    and [`events::replay_diff`] proves two recordings of the same seed
//!    identical by comparing only the deterministic sections.
//!
//! ```
//! use micronas_telemetry::{span, Collector};
//! use std::sync::Arc;
//!
//! let collector = Arc::new(Collector::new());
//! let _session = micronas_telemetry::install_scoped(collector.clone());
//! {
//!     let _span = span!("doc.example");
//!     std::hint::black_box(1 + 1);
//! }
//! let report = collector.report();
//! assert_eq!(report.span("doc.example").unwrap().count, 1);
//! ```

mod collector;
pub mod events;
mod histogram;
pub mod json;
mod sink;

pub use collector::{Collector, MetricsRegistry, SpanReport, TelemetryReport};
pub use histogram::Log2Histogram;
pub use sink::{CountingSink, NullSink, TelemetrySink};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Fast-path switch: `true` only while a sink whose
/// [`TelemetrySink::is_enabled`] returns `true` is installed. Every
/// instrumentation point checks this single relaxed atomic before doing
/// any other work.
static ACTIVE: AtomicBool = AtomicBool::new(false);

fn sink_slot() -> &'static parking_lot::RwLock<Option<Arc<dyn TelemetrySink>>> {
    static SLOT: OnceLock<parking_lot::RwLock<Option<Arc<dyn TelemetrySink>>>> = OnceLock::new();
    SLOT.get_or_init(|| parking_lot::RwLock::new(None))
}

/// Whether an enabled sink is currently installed.
///
/// This is the branch every instrumented hot loop pays when telemetry is
/// off: one relaxed atomic load.
#[inline]
pub fn is_active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Installs `sink` as the process-global telemetry sink, replacing any
/// previous one.
///
/// A [`NullSink`] (or any sink reporting `is_enabled() == false`) leaves
/// the [`is_active`] fast path `false`, so instrumented code keeps its
/// near-zero disabled cost.
pub fn install(sink: Arc<dyn TelemetrySink>) {
    let enabled = sink.is_enabled();
    *sink_slot().write() = Some(sink);
    ACTIVE.store(enabled, Ordering::SeqCst);
}

/// Removes the process-global sink, returning instrumentation to the
/// disabled fast path.
pub fn uninstall() {
    *sink_slot().write() = None;
    ACTIVE.store(false, Ordering::SeqCst);
}

/// Installs `sink` for the lifetime of the returned guard; dropping the
/// guard restores whatever sink (or absence of one) was installed before.
///
/// This is what `SearchSession::run` uses so a session-scoped collector
/// observes exactly one run, including its rayon worker threads.
#[must_use = "dropping the guard immediately uninstalls the sink"]
pub fn install_scoped(sink: Arc<dyn TelemetrySink>) -> ScopedSink {
    let enabled = sink.is_enabled();
    let prev = {
        let mut slot = sink_slot().write();
        slot.replace(sink)
    };
    let prev_active = ACTIVE.swap(enabled, Ordering::SeqCst);
    ScopedSink { prev, prev_active }
}

/// RAII guard returned by [`install_scoped`]; restores the previously
/// installed sink on drop.
pub struct ScopedSink {
    prev: Option<Arc<dyn TelemetrySink>>,
    prev_active: bool,
}

impl Drop for ScopedSink {
    fn drop(&mut self) {
        *sink_slot().write() = self.prev.take();
        ACTIVE.store(self.prev_active, Ordering::SeqCst);
    }
}

#[inline]
fn with_sink(f: impl FnOnce(&dyn TelemetrySink)) {
    let guard = sink_slot().read();
    if let Some(sink) = guard.as_ref() {
        f(sink.as_ref());
    }
}

/// Adds `delta` to the named counter on the installed sink.
///
/// No-op (one atomic load) when telemetry is disabled.
#[inline]
pub fn counter_add(name: &'static str, delta: u64) {
    if is_active() {
        with_sink(|s| s.add_counter(name, delta));
    }
}

/// Raises the named max-gauge to at least `value` on the installed sink.
///
/// No-op (one atomic load) when telemetry is disabled.
#[inline]
pub fn gauge_max(name: &'static str, value: u64) {
    if is_active() {
        with_sink(|s| s.gauge_max(name, value));
    }
}

/// Records a completed span of `nanos` nanoseconds under `label` on the
/// installed sink. Usually called via the [`span!`] guard rather than
/// directly; exposed for pre-measured intervals.
#[inline]
pub fn record_span(label: &'static str, nanos: u64) {
    if is_active() {
        with_sink(|s| s.record_span(label, nanos));
    }
}

/// RAII span timer: measures from construction to drop on the monotonic
/// clock and reports the interval via [`record_span`].
///
/// When telemetry is disabled at construction the guard holds no
/// timestamp and its drop is a no-op — the full cost is one relaxed
/// atomic load.
#[derive(Debug)]
pub struct SpanGuard {
    label: &'static str,
    start: Option<Instant>,
}

impl SpanGuard {
    /// The label this guard reports under.
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// Whether the guard is actually timing (telemetry was active at
    /// construction).
    pub fn is_timing(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(start) = self.start.take() {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            record_span(self.label, nanos);
        }
    }
}

/// Starts a span under a static, dot-separated hierarchical label.
///
/// Prefer the [`span!`] macro at call sites.
#[inline]
pub fn span_guard(label: &'static str) -> SpanGuard {
    let start = if is_active() {
        Some(Instant::now())
    } else {
        None
    };
    SpanGuard { label, start }
}

/// Opens an RAII span: `let _span = span!("ntk.gram");` times the
/// enclosing scope under the label `"ntk.gram"`.
///
/// Labels are `&'static str` and conventionally dot-separated
/// (`layer.phase[.detail]`) so reports group hierarchically when sorted.
#[macro_export]
macro_rules! span {
    ($label:expr) => {
        $crate::span_guard($label)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global sink is process-wide; serialize tests that install one.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn null_sink_keeps_fast_path_disabled() {
        let _guard = lock();
        let scoped = install_scoped(Arc::new(NullSink));
        assert!(!is_active());
        let span = span!("test.null");
        assert!(!span.is_timing());
        drop(span);
        drop(scoped);
        assert!(!is_active());
    }

    #[test]
    fn scoped_install_restores_previous_sink() {
        let _guard = lock();
        let outer = Arc::new(Collector::new());
        let inner = Arc::new(Collector::new());
        let s1 = install_scoped(outer.clone());
        {
            let _s2 = install_scoped(inner.clone());
            counter_add("test.scope", 1);
        }
        counter_add("test.scope", 10);
        drop(s1);
        counter_add("test.scope", 100); // no sink installed: dropped
        assert_eq!(inner.report().counter("test.scope"), 1);
        assert_eq!(outer.report().counter("test.scope"), 10);
        assert!(!is_active());
    }

    #[test]
    fn spans_counters_and_gauges_reach_the_collector() {
        let _guard = lock();
        let collector = Arc::new(Collector::new());
        let scoped = install_scoped(collector.clone());
        assert!(is_active());
        {
            let span = span!("test.work");
            assert!(span.is_timing());
            assert_eq!(span.label(), "test.work");
        }
        counter_add("test.count", 3);
        counter_add("test.count", 4);
        gauge_max("test.peak", 10);
        gauge_max("test.peak", 7);
        drop(scoped);
        let report = collector.report();
        assert_eq!(report.span("test.work").unwrap().count, 1);
        assert_eq!(report.counter("test.count"), 7);
        assert_eq!(report.gauge("test.peak"), 10);
    }

    #[test]
    fn counting_sink_enables_and_counts_calls() {
        let _guard = lock();
        let sink = Arc::new(CountingSink::default());
        let scoped = install_scoped(sink.clone());
        assert!(is_active());
        {
            let _span = span!("test.counted");
        }
        counter_add("test.c", 1);
        gauge_max("test.g", 1);
        drop(scoped);
        assert_eq!(sink.spans(), 1);
        assert_eq!(sink.counters(), 1);
        assert_eq!(sink.gauges(), 1);
    }
}
