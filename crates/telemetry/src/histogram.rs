//! Fixed-size log2-bucket histogram for latency aggregation.

/// A 65-bucket base-2 histogram over `u64` values.
///
/// Bucket 0 holds exact zeros; bucket `b >= 1` holds values in
/// `[2^(b-1), 2^b)`. The layout is fixed at construction, so recording is
/// allocation-free and O(1), and quantile estimates resolve to the upper
/// bound of the covering bucket (an overestimate by at most 2x — plenty
/// for the order-of-magnitude latency questions a profile answers).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: [u64; 65],
    count: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        Self {
            buckets: [0; 65],
            count: 0,
        }
    }

    /// Bucket index covering `value`.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Upper bound (inclusive representative) of bucket `index`.
    pub fn bucket_upper_bound(index: usize) -> u64 {
        if index == 0 {
            0
        } else if index >= 64 {
            u64::MAX
        } else {
            (1u64 << index) - 1
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
    }

    /// Total number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Estimated value at quantile `q` in `[0, 1]`: the upper bound of
    /// the first bucket whose cumulative count reaches `ceil(q * count)`.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cumulative = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= rank {
                return Self::bucket_upper_bound(index);
            }
        }
        Self::bucket_upper_bound(64)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Self) {
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        self.count += other.count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_floor_log2_plus_one() {
        assert_eq!(Log2Histogram::bucket_index(0), 0);
        assert_eq!(Log2Histogram::bucket_index(1), 1);
        assert_eq!(Log2Histogram::bucket_index(2), 2);
        assert_eq!(Log2Histogram::bucket_index(3), 2);
        assert_eq!(Log2Histogram::bucket_index(4), 3);
        assert_eq!(Log2Histogram::bucket_index(1023), 10);
        assert_eq!(Log2Histogram::bucket_index(1024), 11);
        assert_eq!(Log2Histogram::bucket_index(u64::MAX), 64);
    }

    #[test]
    fn quantiles_resolve_to_bucket_upper_bounds() {
        let mut h = Log2Histogram::new();
        for v in [1u64, 1, 1, 1, 1, 1, 1, 1, 1, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.quantile(0.5), 1); // bucket 1 upper bound
        assert_eq!(h.quantile(0.9), 1);
        assert_eq!(h.quantile(0.99), 1023); // the 1000 lands in bucket 10
        assert_eq!(h.quantile(1.0), 1023);
    }

    #[test]
    fn empty_histogram_quantile_is_zero() {
        let h = Log2Histogram::new();
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn merge_accumulates_counts() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        a.record(5);
        b.record(5);
        b.record(100);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.quantile(1.0), 127);
    }
}
