//! The [`TelemetrySink`] trait and its trivial implementations.

use std::sync::atomic::{AtomicU64, Ordering};

/// Destination for telemetry emitted by instrumented code.
///
/// All methods have no-op defaults so a sink only overrides what it
/// consumes. [`is_enabled`](TelemetrySink::is_enabled) gates the global
/// fast path: a sink returning `false` (the default, and what
/// [`NullSink`] inherits) keeps every instrumentation point on its
/// single-atomic-load disabled path — the sink methods are then never
/// called at all.
///
/// Sinks must be cheap and infallible: they are called from kernel hot
/// loops and rayon workers, may not panic, and must never influence the
/// numerics of the code they observe.
pub trait TelemetrySink: Send + Sync {
    /// Whether instrumentation points should take their recording path.
    fn is_enabled(&self) -> bool {
        false
    }

    /// Records one completed span interval under a static label.
    fn record_span(&self, _label: &'static str, _nanos: u64) {}

    /// Adds `delta` to a named monotonic counter.
    fn add_counter(&self, _name: &'static str, _delta: u64) {}

    /// Raises a named high-water gauge to at least `value`.
    fn gauge_max(&self, _name: &'static str, _value: u64) {}
}

/// The do-nothing sink: inherits every default, so installing it keeps
/// telemetry on the disabled fast path (near-zero overhead).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TelemetrySink for NullSink {}

/// An enabled sink that only counts how many times each hook fired —
/// useful for inertness tests (it forces instrumented code down the
/// recording path without retaining labels or values) and for overhead
/// measurements.
#[derive(Debug, Default)]
pub struct CountingSink {
    spans: AtomicU64,
    counters: AtomicU64,
    gauges: AtomicU64,
}

impl CountingSink {
    /// Number of `record_span` calls observed.
    pub fn spans(&self) -> u64 {
        self.spans.load(Ordering::Relaxed)
    }

    /// Number of `add_counter` calls observed.
    pub fn counters(&self) -> u64 {
        self.counters.load(Ordering::Relaxed)
    }

    /// Number of `gauge_max` calls observed.
    pub fn gauges(&self) -> u64 {
        self.gauges.load(Ordering::Relaxed)
    }

    /// Total hook invocations of any kind.
    pub fn total(&self) -> u64 {
        self.spans() + self.counters() + self.gauges()
    }
}

impl TelemetrySink for CountingSink {
    fn is_enabled(&self) -> bool {
        true
    }

    fn record_span(&self, _label: &'static str, _nanos: u64) {
        self.spans.fetch_add(1, Ordering::Relaxed);
    }

    fn add_counter(&self, _name: &'static str, _delta: u64) {
        self.counters.fetch_add(1, Ordering::Relaxed);
    }

    fn gauge_max(&self, _name: &'static str, _value: u64) {
        self.gauges.fetch_add(1, Ordering::Relaxed);
    }
}
