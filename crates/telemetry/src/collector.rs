//! The aggregating [`Collector`] sink, its [`MetricsRegistry`], and the
//! [`TelemetryReport`] snapshot it produces.

use crate::histogram::Log2Histogram;
use crate::sink::TelemetrySink;
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Named atomic counters and high-water gauges.
///
/// Handles are `Arc<AtomicU64>`s created on first use; updates after that
/// are single lock-free atomic ops behind a read-locked map probe, so a
/// hot counter costs no allocation and no write lock in steady state.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<HashMap<&'static str, Arc<AtomicU64>>>,
    gauges: RwLock<HashMap<&'static str, Arc<AtomicU64>>>,
}

fn cell(map: &RwLock<HashMap<&'static str, Arc<AtomicU64>>>, name: &'static str) -> Arc<AtomicU64> {
    if let Some(existing) = map.read().get(name) {
        return Arc::clone(existing);
    }
    Arc::clone(map.write().entry(name).or_default())
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The atomic cell backing the named counter, created on first use.
    pub fn counter(&self, name: &'static str) -> Arc<AtomicU64> {
        cell(&self.counters, name)
    }

    /// Adds `delta` to the named counter.
    pub fn add(&self, name: &'static str, delta: u64) {
        self.counter(name).fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the named gauge to at least `value`.
    pub fn gauge_max(&self, name: &'static str, value: u64) {
        cell(&self.gauges, name).fetch_max(value, Ordering::Relaxed);
    }

    /// Sorted snapshot of all counters.
    pub fn counters(&self) -> Vec<(String, u64)> {
        snapshot(&self.counters)
    }

    /// Sorted snapshot of all gauges.
    pub fn gauges(&self) -> Vec<(String, u64)> {
        snapshot(&self.gauges)
    }

    /// Clears every counter and gauge.
    pub fn reset(&self) {
        self.counters.write().clear();
        self.gauges.write().clear();
    }
}

fn snapshot(map: &RwLock<HashMap<&'static str, Arc<AtomicU64>>>) -> Vec<(String, u64)> {
    let mut out: Vec<(String, u64)> = map
        .read()
        .iter()
        .map(|(name, v)| (name.to_string(), v.load(Ordering::Relaxed)))
        .collect();
    out.sort();
    out
}

#[derive(Debug, Default, Clone)]
struct SpanStats {
    count: u64,
    total_ns: u64,
    max_ns: u64,
    histogram: Log2Histogram,
    threads: BTreeSet<u64>,
}

const SPAN_SHARDS: usize = 8;

fn thread_ordinal() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static ORDINAL: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ORDINAL.with(|o| *o)
}

fn label_shard(label: &str) -> usize {
    // FNV-1a over the label bytes; labels are few, this only spreads lock
    // contention across shards.
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in label.as_bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (hash % SPAN_SHARDS as u64) as usize
}

/// The standard aggregating sink: per-label span statistics (sharded
/// mutexes, merged at snapshot time) plus a [`MetricsRegistry`].
///
/// Aggregation is thread-aware — spans recorded on rayon workers fold
/// into the same per-label totals, and each label remembers how many
/// distinct threads contributed. Snapshots ([`Collector::report`]) are
/// cheap and can be taken while recording continues.
#[derive(Debug, Default)]
pub struct Collector {
    spans: [Mutex<HashMap<&'static str, SpanStats>>; SPAN_SHARDS],
    metrics: MetricsRegistry,
}

impl Collector {
    /// An empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The collector's metrics registry (counters and gauges).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Clears all recorded spans, counters and gauges.
    pub fn reset(&self) {
        for shard in &self.spans {
            shard.lock().clear();
        }
        self.metrics.reset();
    }

    /// Snapshots everything recorded so far into a [`TelemetryReport`].
    pub fn report(&self) -> TelemetryReport {
        let mut spans = Vec::new();
        for shard in &self.spans {
            for (label, stats) in shard.lock().iter() {
                spans.push(SpanReport {
                    label: (*label).to_string(),
                    count: stats.count,
                    total_ns: stats.total_ns,
                    max_ns: stats.max_ns,
                    p50_ns: stats.histogram.quantile(0.50),
                    p90_ns: stats.histogram.quantile(0.90),
                    p99_ns: stats.histogram.quantile(0.99),
                    threads: stats.threads.len(),
                });
            }
        }
        spans.sort_by(|a, b| a.label.cmp(&b.label));
        TelemetryReport {
            spans,
            counters: self.metrics.counters(),
            gauges: self.metrics.gauges(),
        }
    }
}

impl TelemetrySink for Collector {
    fn is_enabled(&self) -> bool {
        true
    }

    fn record_span(&self, label: &'static str, nanos: u64) {
        let mut shard = self.spans[label_shard(label)].lock();
        let stats = shard.entry(label).or_default();
        stats.count += 1;
        stats.total_ns = stats.total_ns.saturating_add(nanos);
        stats.max_ns = stats.max_ns.max(nanos);
        stats.histogram.record(nanos);
        stats.threads.insert(thread_ordinal());
    }

    fn add_counter(&self, name: &'static str, delta: u64) {
        self.metrics.add(name, delta);
    }

    fn gauge_max(&self, name: &'static str, value: u64) {
        self.metrics.gauge_max(name, value);
    }
}

/// Aggregated statistics for one span label.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanReport {
    /// The static label passed to [`span!`](crate::span).
    pub label: String,
    /// Number of completed spans.
    pub count: u64,
    /// Sum of all span durations, nanoseconds.
    pub total_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
    /// Median duration estimate (log2-bucket upper bound), nanoseconds.
    pub p50_ns: u64,
    /// 90th-percentile duration estimate, nanoseconds.
    pub p90_ns: u64,
    /// 99th-percentile duration estimate, nanoseconds.
    pub p99_ns: u64,
    /// Number of distinct threads that recorded this label.
    pub threads: usize,
}

impl SpanReport {
    /// Mean duration in nanoseconds (0 for an empty report).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// A point-in-time snapshot of a [`Collector`]: sorted span statistics,
/// counters and gauges. Serializable to a human-readable table
/// ([`TelemetryReport::table`]) and hand-rolled JSON
/// ([`TelemetryReport::to_json`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TelemetryReport {
    /// Per-label span statistics, sorted by label.
    pub spans: Vec<SpanReport>,
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<(String, u64)>,
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl TelemetryReport {
    /// The span report for `label`, if any spans were recorded under it.
    pub fn span(&self, label: &str) -> Option<&SpanReport> {
        self.spans.iter().find(|s| s.label == label)
    }

    /// The counter value for `name` (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The gauge value for `name` (0 when never touched).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    }

    /// Sum of `total_ns` over every span whose label starts with
    /// `prefix` — e.g. `layer_total_ns("proxy.")` for all proxy time.
    pub fn layer_total_ns(&self, prefix: &str) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.label.starts_with(prefix))
            .map(|s| s.total_ns)
            .sum()
    }

    /// Whether nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.counters.is_empty() && self.gauges.is_empty()
    }

    /// Renders the report as an aligned human-readable table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str(&format!(
                "{:<34} {:>9} {:>11} {:>10} {:>10} {:>10} {:>10} {:>4}\n",
                "span", "count", "total", "mean", "p50", "p90", "p99", "thr"
            ));
            for s in &self.spans {
                out.push_str(&format!(
                    "{:<34} {:>9} {:>11} {:>10} {:>10} {:>10} {:>10} {:>4}\n",
                    s.label,
                    s.count,
                    fmt_ns(s.total_ns),
                    fmt_ns(s.mean_ns()),
                    fmt_ns(s.p50_ns),
                    fmt_ns(s.p90_ns),
                    fmt_ns(s.p99_ns),
                    s.threads,
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str(&format!("{:<50} {:>14}\n", "counter", "value"));
            for (name, value) in &self.counters {
                out.push_str(&format!("{name:<50} {value:>14}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str(&format!("{:<50} {:>14}\n", "gauge", "value"));
            for (name, value) in &self.gauges {
                out.push_str(&format!("{name:<50} {value:>14}\n"));
            }
        }
        if out.is_empty() {
            out.push_str("(no telemetry recorded)\n");
        }
        out
    }

    /// Serializes the report as a JSON object (hand-rolled — the
    /// workspace serde shim has no-op derives).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"spans\":[");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"label\":{},\"count\":{},\"total_ns\":{},\"max_ns\":{},\
                 \"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"threads\":{}}}",
                crate::json::escape_string(&s.label),
                s.count,
                s.total_ns,
                s.max_ns,
                s.p50_ns,
                s.p90_ns,
                s.p99_ns,
                s.threads,
            ));
        }
        out.push_str("],\"counters\":{");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", crate::json::escape_string(name), value));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{}", crate::json::escape_string(name), value));
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_counters_and_gauges_accumulate() {
        let reg = MetricsRegistry::new();
        reg.add("a", 2);
        reg.add("a", 3);
        reg.add("b", 1);
        reg.gauge_max("peak", 5);
        reg.gauge_max("peak", 3);
        assert_eq!(
            reg.counters(),
            vec![("a".to_string(), 5), ("b".to_string(), 1)]
        );
        assert_eq!(reg.gauges(), vec![("peak".to_string(), 5)]);
        reg.reset();
        assert!(reg.counters().is_empty());
    }

    #[test]
    fn collector_aggregates_spans_across_threads() {
        let collector = Arc::new(Collector::new());
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let c = Arc::clone(&collector);
                scope.spawn(move || {
                    for _ in 0..10 {
                        c.record_span("work", 100);
                    }
                });
            }
        });
        let report = collector.report();
        let span = report.span("work").unwrap();
        assert_eq!(span.count, 40);
        assert_eq!(span.total_ns, 4000);
        assert_eq!(span.max_ns, 100);
        assert_eq!(span.p50_ns, 127); // log2 bucket upper bound for 100
        assert!(span.threads >= 1 && span.threads <= 4);
    }

    #[test]
    fn report_lookup_and_layer_totals() {
        let collector = Collector::new();
        collector.record_span("nn.stem_forward", 10);
        collector.record_span("nn.edge_forward", 30);
        collector.record_span("proxy.ntk", 100);
        collector.add_counter("store.hits", 2);
        let report = collector.report();
        assert_eq!(report.layer_total_ns("nn."), 40);
        assert_eq!(report.layer_total_ns("proxy."), 100);
        assert_eq!(report.counter("store.hits"), 2);
        assert_eq!(report.counter("absent"), 0);
        assert!(!report.is_empty());
        assert!(report.span("absent").is_none());
    }

    #[test]
    fn report_table_and_json_render() {
        let collector = Collector::new();
        collector.record_span("a.b", 1_500_000);
        collector.add_counter("c", 7);
        collector.gauge_max("g", 9);
        let report = collector.report();
        let table = report.table();
        assert!(table.contains("a.b"));
        assert!(table.contains("1.50ms"));
        assert!(table.contains('c'));
        let json = report.to_json();
        let parsed = crate::json::parse(&json).expect("report JSON parses");
        let spans = parsed.get("spans").and_then(|v| v.as_array()).unwrap();
        assert_eq!(spans.len(), 1);
        assert_eq!(
            parsed
                .get("counters")
                .and_then(|c| c.get("c"))
                .and_then(|v| v.as_f64()),
            Some(7.0)
        );
    }

    #[test]
    fn empty_report_renders_placeholder() {
        let report = Collector::new().report();
        assert!(report.is_empty());
        assert!(report.table().contains("no telemetry recorded"));
    }

    #[test]
    fn collector_reset_clears_everything() {
        let collector = Collector::new();
        collector.record_span("x", 5);
        collector.add_counter("y", 5);
        collector.reset();
        assert!(collector.report().is_empty());
    }
}
