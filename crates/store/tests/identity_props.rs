//! Property tests for the content-addressed architecture identity:
//! isomorphism invariance, distinctness, and cross-process stability
//! (golden digests).

use micronas_searchspace::{CellTopology, Operation, SearchSpace, ALL_OPERATIONS, NUM_EDGES};
use micronas_store::{ArchDigest, EvalKey, ProxyKind};
use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn arb_cell() -> impl Strategy<Value = CellTopology> {
    proptest::array::uniform6(0usize..5).prop_map(|idx| {
        let mut ops = [Operation::None; NUM_EDGES];
        for (i, &k) in idx.iter().enumerate() {
            ops[i] = ALL_OPERATIONS[k];
        }
        CellTopology::new(ops)
    })
}

proptest! {
    /// Isomorphic (relabel-permuted) cells hash equal.
    #[test]
    fn isomorphic_cells_hash_equal(cell in arb_cell()) {
        if let Some(twin) = cell.intermediate_swap() {
            prop_assert_eq!(ArchDigest::of(&cell), ArchDigest::of(&twin));
        }
        prop_assert_eq!(ArchDigest::of(&cell), ArchDigest::of(&cell.canonical_form()));
    }

    /// Digesting is deterministic within a process.
    #[test]
    fn digests_are_deterministic(cell in arb_cell()) {
        prop_assert_eq!(ArchDigest::of(&cell), ArchDigest::of(&cell));
    }
}

/// Distinct (non-isomorphic) cells hash distinct, over random samples.
#[test]
fn distinct_cells_hash_distinct_over_random_samples() {
    let space = SearchSpace::nas_bench_201();
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    for _ in 0..2_000 {
        let a = space.cell(rng.gen_range(0..space.len())).unwrap();
        let b = space.cell(rng.gen_range(0..space.len())).unwrap();
        if a.isomorphic_to(&b) {
            assert_eq!(ArchDigest::of(&a), ArchDigest::of(&b));
        } else {
            assert_ne!(
                ArchDigest::of(&a),
                ArchDigest::of(&b),
                "non-isomorphic cells {a} and {b} must not collide"
            );
        }
    }
}

/// Golden digests: these exact values must never change. They pin both the
/// canonical encoding and the FNV-1a constants, so any process, platform or
/// toolchain reproduces them bit-for-bit. If this test fails, the identity
/// version must be bumped (`IDENTITY_VERSION`) and persisted stores migrated
/// — never silently rehashed.
#[test]
fn golden_digest_values_are_stable_across_processes() {
    let space = SearchSpace::nas_bench_201();
    let golden: [(usize, u64); 4] = [
        (0, 0x4b9b_4998_497f_326c),
        (1, 0x584a_2cc2_c6ce_9ccf),
        (5_000, 0x4b9e_ac98_4982_107c),
        (15_624, 0xaeaa_ed55_41b3_45a4),
    ];
    for (index, expected) in golden {
        let digest = ArchDigest::of(&space.cell(index).unwrap());
        assert_eq!(
            digest.value(),
            expected,
            "digest of cell #{index} drifted: got {digest}, expected {expected:#018x}"
        );
    }

    // The all-conv cell, written out explicitly so the golden value does not
    // depend on the space's index enumeration either.
    let cell = CellTopology::new([Operation::NorConv3x3; 6]);
    assert_eq!(ArchDigest::of(&cell).value(), 0x3420_6f53_2bbe_e216);
}

/// Keys built through the convenience constructors agree with manual ones.
#[test]
fn key_constructors_are_consistent() {
    let space = SearchSpace::nas_bench_201();
    let cell = space.cell(321).unwrap();
    let key = EvalKey::ntk_spectrum(&cell, micronas_datasets::DatasetKind::Cifar10, 9, 32);
    assert_eq!(key.cell, ArchDigest::of(&cell));
    assert_eq!(key.kind, ProxyKind::NtkSpectrum { batch: 32 });
    assert_eq!(key.seed, 9);
}
