//! Golden store-key stability tests.
//!
//! The PR that opened `ProxyKind` for extension (the `Custom` arm) promised
//! that every **pre-existing** variant keeps its exact PR 3 byte encoding —
//! no namespace bump, no orphaned logs. These tests pin the PR 3 values
//! verbatim: the `(tag, param)` encodings, the shard hashes and the full
//! log payload bytes were captured from the tree *before* the extension
//! landed. If any assertion here fails, persisted logs written by earlier
//! builds would silently stop resolving — never update these constants;
//! fix the regression instead (or, for a deliberate format change, bump the
//! store namespace and write a migration).

use micronas_datasets::DatasetKind;
use micronas_proxies::ZeroCostMetrics;
use micronas_searchspace::SearchSpace;
use micronas_store::{decode_entry, encode_entry, ArchDigest, EvalKey, EvalRecord, ProxyKind};

/// The reference cell of the golden capture.
fn golden_cell() -> micronas_searchspace::CellTopology {
    SearchSpace::nas_bench_201().cell(4_242).unwrap()
}

#[test]
fn pre_existing_proxy_kinds_encode_to_the_pr3_tags() {
    assert_eq!(ProxyKind::ZeroCost { ntk_batch: 32 }.encode(), (0, 32));
    assert_eq!(ProxyKind::NtkSpectrum { batch: 12 }.encode(), (1, 12));
    assert_eq!(ProxyKind::Hardware.encode(), (2, 0));
    // And decode back (the PR 3 decode contract).
    assert_eq!(
        ProxyKind::decode(0, 32),
        Some(ProxyKind::ZeroCost { ntk_batch: 32 })
    );
    assert_eq!(
        ProxyKind::decode(1, 12),
        Some(ProxyKind::NtkSpectrum { batch: 12 })
    );
    assert_eq!(ProxyKind::decode(2, 0), Some(ProxyKind::Hardware));
}

#[test]
fn pre_existing_shard_hashes_match_the_pr3_values() {
    // Captured from the PR 3 tree: cell 4242, ImageNet16-120, seed
    // 0xDEAD_BEEF. Shard hashes feed the (future) cross-machine consistent
    // hashing, so they are part of the stable surface too.
    let golden = [
        (
            ProxyKind::ZeroCost { ntk_batch: 32 },
            0x8c5c_0ad6_d32e_c787u64,
        ),
        (ProxyKind::NtkSpectrum { batch: 12 }, 0x831d_07d6_cdc7_bdd0),
        (ProxyKind::Hardware, 0x9d42_40d6_dca2_5fbd),
    ];
    for (kind, expected) in golden {
        let key = EvalKey {
            cell: ArchDigest::of(&golden_cell()),
            dataset: DatasetKind::ImageNet16_120,
            seed: 0xDEAD_BEEF,
            kind,
        };
        assert_eq!(
            key.shard_hash(),
            expected,
            "shard hash drifted for {kind:?} (got {:#018x})",
            key.shard_hash()
        );
    }
}

#[test]
fn pre_existing_zero_cost_payload_is_byte_identical_to_pr3() {
    // Captured from the PR 3 tree: the exact log payload of a zero-cost
    // record under (cell 4242, CIFAR-10, seed 7, batch 32).
    let key = EvalKey::zero_cost(&golden_cell(), DatasetKind::Cifar10, 7, 32);
    let record = EvalRecord::ZeroCost(ZeroCostMetrics {
        ntk_condition: 12.5,
        linear_regions: 77,
        trainability: -2.52,
        expressivity: 4.34,
    });
    let golden: [u8; 53] = [
        0xe0, 0x26, 0xd5, 0x05, 0xf5, 0xbe, 0xb0, 0x80, // cell digest
        0x01, // dataset id (CIFAR-10)
        0x07, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // seed
        0x00, // kind tag (ZeroCost)
        0x20, 0x00, // kind param (batch 32)
        0x00, // record tag (ZeroCost)
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x29, 0x40, // ntk_condition
        0x4d, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, // linear_regions
        0x29, 0x5c, 0x8f, 0xc2, 0xf5, 0x28, 0x04, 0xc0, // trainability
        0x5c, 0x8f, 0xc2, 0xf5, 0x28, 0x5c, 0x11, 0x40, // expressivity
    ];
    assert_eq!(encode_entry(&key, &record), golden);
    let (k2, r2) = decode_entry(&golden).unwrap();
    assert_eq!(k2, key);
    assert_eq!(r2, record);
}

#[test]
fn custom_keys_reuse_the_pr3_prefix_layout() {
    // A Custom key shares the first 17 bytes (cell, dataset, seed) with the
    // PR 3 layout and only then diverges (tag 3 + param + identity word), so
    // tail recovery and compaction treat mixed logs uniformly.
    let custom = EvalKey::custom(&golden_cell(), DatasetKind::Cifar10, 7, 0xABCD, 0);
    let old = EvalKey::zero_cost(&golden_cell(), DatasetKind::Cifar10, 7, 32);
    let custom_bytes = encode_entry(&custom, &EvalRecord::Scalar(1.5));
    let old_bytes = encode_entry(&old, &EvalRecord::Scalar(1.5));
    assert_eq!(custom_bytes[..17], old_bytes[..17]);
    assert_eq!(custom_bytes[17], 3, "Custom kind tag");
    let (k2, r2) = decode_entry(&custom_bytes).unwrap();
    assert_eq!(k2, custom);
    assert_eq!(r2.as_scalar(), Some(1.5));
}
