//! Persistence tests for the evaluation store: log round-trips, simulated
//! crash recovery, checksum rejection and compaction.
//!
//! These are the tests CI runs explicitly in the tier-1 job
//! (`cargo test -p micronas-store --test persistence`).

use micronas_datasets::DatasetKind;
use micronas_hw::HardwareIndicators;
use micronas_proxies::ZeroCostMetrics;
use micronas_searchspace::SearchSpace;
use micronas_store::{EvalKey, EvalRecord, EvalStore, NtkSpectrumRecord, StoreError};
use std::path::PathBuf;

fn temp_path(tag: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "micronas-store-persistence-{}-{tag}.log",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// The state a store must hold after appending `entries` in order:
/// last write wins per key (isomorphic cells share one content address, so
/// distinct sample cells may legitimately collapse onto one key).
fn last_wins(entries: &[(EvalKey, EvalRecord)]) -> std::collections::HashMap<EvalKey, EvalRecord> {
    entries.iter().cloned().collect()
}

/// A mixed batch of records across every `ProxyKind`.
fn sample_entries(n: usize) -> Vec<(EvalKey, EvalRecord)> {
    let space = SearchSpace::nas_bench_201();
    let mut out = Vec::new();
    for i in 0..n {
        let cell = space.cell(i * 97 % space.len()).unwrap();
        match i % 3 {
            0 => out.push((
                EvalKey::zero_cost(&cell, DatasetKind::Cifar10, i as u64, 32),
                EvalRecord::ZeroCost(ZeroCostMetrics {
                    ntk_condition: 1.0 + i as f64,
                    linear_regions: i + 1,
                    trainability: -(1.0 + i as f64).ln(),
                    expressivity: (i as f64 + 1.0).ln(),
                }),
            )),
            1 => out.push((
                EvalKey::hardware(&cell, DatasetKind::Cifar100),
                EvalRecord::Hardware(HardwareIndicators {
                    flops_m: i as f64,
                    macs_m: i as f64 / 2.0,
                    params_m: 0.1 * i as f64,
                    latency_ms: 3.0 * i as f64,
                    peak_sram_kib: 64.0,
                    flash_kib: 512.0,
                }),
            )),
            _ => out.push((
                EvalKey::ntk_spectrum(&cell, DatasetKind::ImageNet16_120, i as u64, 16),
                EvalRecord::NtkSpectrum(NtkSpectrumRecord {
                    condition_number: i as f64 + 0.25,
                    condition_indices: (1..=8).map(|k| (i * k) as f64).collect(),
                }),
            )),
        }
    }
    out
}

#[test]
fn log_round_trip_across_processes_worth_of_reopens() {
    let path = temp_path("roundtrip");
    let entries = sample_entries(30);
    {
        let store = EvalStore::open(&path, 0xFEED).unwrap();
        for (k, r) in &entries {
            store.insert(*k, r.clone()).unwrap();
        }
    }
    // "New process": reopen and verify every live record bitwise.
    let store = EvalStore::open(&path, 0xFEED).unwrap();
    for (k, r) in &last_wins(&entries) {
        let got = store.get(k).expect("record must survive reopen");
        assert_eq!(&got, r);
    }
    // And a third generation still works after appending more.
    store
        .insert(
            EvalKey::hardware(
                &SearchSpace::nas_bench_201().cell(15_000).unwrap(),
                DatasetKind::Cifar10,
            ),
            EvalRecord::Hardware(HardwareIndicators {
                flops_m: 1.0,
                macs_m: 1.0,
                params_m: 1.0,
                latency_ms: 1.0,
                peak_sram_kib: 1.0,
                flash_kib: 1.0,
            }),
        )
        .unwrap();
    let len_before = store.len();
    drop(store);
    let store = EvalStore::open(&path, 0xFEED).unwrap();
    assert_eq!(store.len(), len_before);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn truncated_tail_recovery_after_simulated_crash() {
    let path = temp_path("crash");
    let entries = sample_entries(12);
    {
        let store = EvalStore::open(&path, 1).unwrap();
        for (k, r) in &entries {
            store.insert(*k, r.clone()).unwrap();
        }
    }
    // Crash mid-append: the last record loses its final 11 bytes.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..bytes.len() - 11]).unwrap();

    let store = EvalStore::open(&path, 1).unwrap();
    let expected = last_wins(&entries[..entries.len() - 1]);
    assert_eq!(
        store.len(),
        expected.len(),
        "exactly the torn record is lost"
    );
    for (k, r) in &expected {
        assert_eq!(store.get(k).as_ref(), Some(r));
    }
    // The store accepts appends after recovery, and they persist.
    let (k, r) = &entries[entries.len() - 1];
    store.insert(*k, r.clone()).unwrap();
    drop(store);
    let store = EvalStore::open(&path, 1).unwrap();
    assert_eq!(store.len(), last_wins(&entries).len());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn checksum_mismatch_is_rejected() {
    let path = temp_path("bitrot");
    {
        let store = EvalStore::open(&path, 2).unwrap();
        for (k, r) in sample_entries(6) {
            store.insert(k, r).unwrap();
        }
    }
    // Flip a single payload bit a few records before the end. Framing can no
    // longer be trusted from that point, so replay must reject the corrupted
    // record and the tail behind it — but keep everything before.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = 20 + (bytes.len() - 20) / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();

    let store = EvalStore::open(&path, 2).unwrap();
    let all = sample_entries(6);
    assert!(
        store.len() < last_wins(&all).len(),
        "corrupted record must not be served"
    );
    // Survivors are a prefix of the appends; the first record sits well
    // before the flipped byte and must be intact.
    let (k, r) = &all[0];
    assert_eq!(
        store.get(k).as_ref(),
        Some(r),
        "records before the corruption stay intact"
    );
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn compaction_preserves_every_live_entry() {
    let path = temp_path("compaction");
    let entries = sample_entries(20);
    {
        let store = EvalStore::open(&path, 3).unwrap();
        // Write everything twice (second generation has different values for
        // the zero-cost records), so half the log is garbage.
        for (k, r) in &entries {
            store.insert(*k, r.clone()).unwrap();
        }
        for (k, r) in &entries {
            let newer = match r {
                EvalRecord::ZeroCost(m) => EvalRecord::ZeroCost(ZeroCostMetrics {
                    ntk_condition: m.ntk_condition + 1000.0,
                    ..*m
                }),
                other => other.clone(),
            };
            store.insert(*k, newer).unwrap();
        }
    }
    // Expected live state: last write wins per key (isomorphic cells may
    // collapse onto one content address, so dedupe by key, not by entry).
    let mut live: std::collections::HashMap<_, _> = std::collections::HashMap::new();
    for (k, r) in &entries {
        let newer = match r {
            EvalRecord::ZeroCost(m) => EvalRecord::ZeroCost(ZeroCostMetrics {
                ntk_condition: m.ntk_condition + 1000.0,
                ..*m
            }),
            other => other.clone(),
        };
        live.insert(*k, newer);
    }

    let before = std::fs::metadata(&path).unwrap().len();
    let stats = EvalStore::compact_path(&path, 3).unwrap();
    assert_eq!(stats.bytes_before, before);
    assert!(stats.bytes_after < stats.bytes_before);
    assert_eq!(stats.records_before, 2 * entries.len());
    assert_eq!(stats.records_after, live.len());

    let store = EvalStore::open(&path, 3).unwrap();
    assert_eq!(store.len(), stats.records_after);
    for (k, expected) in &live {
        let got = store.get(k).expect("live entry survives compaction");
        assert_eq!(&got, expected, "compaction must keep the latest generation");
    }
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn torn_header_from_a_crashed_creation_self_heals() {
    let path = temp_path("torn-header");
    // Simulate a crash mid-way through writing the 20-byte header.
    std::fs::write(&path, &micronas_store::log::LOG_MAGIC[..5]).unwrap();

    let store = EvalStore::open(&path, 9).unwrap();
    assert!(store.is_empty(), "a torn header recovers to an empty store");
    let entries = sample_entries(3);
    for (k, r) in &entries {
        store.insert(*k, r.clone()).unwrap();
    }
    drop(store);
    let store = EvalStore::open(&path, 9).unwrap();
    assert_eq!(store.len(), last_wins(&entries).len());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn oversized_spectra_are_rejected_at_insert_not_at_replay() {
    let path = temp_path("oversized");
    let store = EvalStore::open(&path, 12).unwrap();
    let cell = SearchSpace::nas_bench_201().cell(1).unwrap();
    let key = EvalKey::ntk_spectrum(&cell, DatasetKind::Cifar10, 0, 32);
    let oversized = EvalRecord::NtkSpectrum(NtkSpectrumRecord {
        condition_number: 1.0,
        condition_indices: vec![1.0; micronas_store::MAX_SPECTRUM_INDICES + 1],
    });
    // Accepting this record would make the next replay truncate the log at
    // its offset, silently destroying everything appended after it.
    assert!(matches!(
        store.insert(key, oversized),
        Err(StoreError::MalformedRecord(_))
    ));
    let (k, r) = &sample_entries(1)[0];
    store.insert(*k, r.clone()).unwrap();
    drop(store);
    let store = EvalStore::open(&path, 12).unwrap();
    assert_eq!(store.len(), 1, "the valid record survives replay");
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn single_writer_lock_guards_the_log() {
    let path = temp_path("lock");
    let store = EvalStore::open(&path, 4).unwrap();
    // A second store on the same log — as a concurrent process would
    // attempt — must be refused rather than silently corrupting the file.
    assert!(matches!(
        EvalStore::open(&path, 4),
        Err(StoreError::Locked { .. })
    ));
    // Compaction also refuses to run under a live writer.
    assert!(matches!(
        EvalStore::compact_path(&path, 4),
        Err(StoreError::Locked { .. })
    ));
    // The lock dies with the store; afterwards both succeed.
    drop(store);
    EvalStore::compact_path(&path, 4).unwrap();
    drop(EvalStore::open(&path, 4).unwrap());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn namespace_guards_cross_configuration_reuse() {
    let path = temp_path("namespace");
    drop(EvalStore::open(&path, 10).unwrap());
    match EvalStore::open(&path, 11) {
        Err(StoreError::NamespaceMismatch { found, expected }) => {
            assert_eq!(found, 10);
            assert_eq!(expected, 11);
        }
        other => panic!("expected a namespace mismatch, got {other:?}"),
    }
    std::fs::remove_file(&path).unwrap();
}
