//! FNV-1a, 64-bit: the stable hash behind every digest and checksum in this
//! crate.
//!
//! FNV-1a is fully specified by two constants — offset basis
//! `0xcbf29ce484222325` and prime `0x100000001b3` — and processes input one
//! byte at a time (`state = (state ^ byte) * prime`). Unlike
//! `std::hash::DefaultHasher`, whose algorithm is explicitly *not* part of
//! Rust's stability guarantee, FNV-1a output is identical on every platform,
//! process and toolchain, which is what makes digests durable enough to key
//! an on-disk store.

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Starts a hash at the offset basis.
    pub fn new() -> Self {
        Self(FNV_OFFSET)
    }

    /// Absorbs bytes.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        }
    }

    /// The current hash value.
    pub fn finish(self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot FNV-1a of a byte slice.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a::new();
    h.update(bytes);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_fnv1a_vectors() {
        // Reference values from the FNV specification (Fowler/Noll/Vo).
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn incremental_equals_one_shot() {
        let mut h = Fnv1a::new();
        h.update(b"foo");
        h.update(b"bar");
        assert_eq!(h.finish(), fnv1a64(b"foobar"));
    }
}
