//! The remote-tier seam: a pluggable backend consulted on local misses.
//!
//! The store key is a stable content address ([`crate::EvalKey`] hashes the
//! canonical isomorphism-orbit digest × dataset × seed × proxy), so a record
//! computed by *any* worker under the same namespace is bitwise-valid for
//! every other worker. [`RemoteBackend`] is the seam that exploits this: an
//! [`crate::EvalStore`] with a remote attached consults it after the
//! in-memory shards and the log point-read tier miss, and offers freshly
//! computed records back — read-through/write-behind layered over the local
//! LRU tier without any caller changing.
//!
//! The `micronas-fabric` crate provides the production implementation (a
//! consistent-hash ring of TCP peers); tests can attach anything that
//! implements the trait.

use crate::{EvalKey, EvalRecord};

/// A remote record source layered behind a local [`crate::EvalStore`].
///
/// Implementations must be **best-effort and non-blocking in spirit**: a
/// fetch that cannot be answered promptly (dead peer, timeout) should return
/// `None` so the caller recomputes locally, and `offer` should queue
/// asynchronously rather than stall the inserting worker. Because records
/// are pure values keyed by content address, serving `None` is always
/// *correct* — the remote tier only ever changes how much work is saved,
/// never what is computed.
///
/// Implementations must only ever return records produced under the same
/// store namespace; [`crate::EvalStore::attach_remote`] enforces the
/// namespace fingerprint up front, mirroring how persisted logs refuse to
/// open under a different configuration.
pub trait RemoteBackend: Send + Sync + std::fmt::Debug {
    /// The evaluation-configuration namespace this backend serves. Must
    /// match the local store's namespace to be attachable.
    fn namespace(&self) -> u64;

    /// Looks `key` up remotely. `None` means "not available" for any reason
    /// — a genuine remote miss, a timeout, or a degraded ring — and the
    /// caller recomputes locally.
    fn fetch(&self, key: &EvalKey) -> Option<EvalRecord>;

    /// Offers a freshly computed record to the fabric (write-behind). Must
    /// not block the caller on network I/O; dropping the offer under
    /// backpressure is acceptable (the record can always be recomputed or
    /// re-offered later).
    fn offer(&self, key: EvalKey, record: EvalRecord);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Null;
    impl RemoteBackend for Null {
        fn namespace(&self) -> u64 {
            7
        }
        fn fetch(&self, _key: &EvalKey) -> Option<EvalRecord> {
            None
        }
        fn offer(&self, _key: EvalKey, _record: EvalRecord) {}
    }

    #[test]
    fn trait_is_object_safe_and_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<std::sync::Arc<dyn RemoteBackend>>();
        let b: Box<dyn RemoteBackend> = Box::new(Null);
        assert_eq!(b.namespace(), 7);
    }
}
