//! The sharded, concurrent, optionally persistent evaluation store.

use crate::log::{self, CompactStats, LogWriter, Replay};
use crate::{EvalKey, EvalRecord, StoreError};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of lock stripes. Reads take a shard's `RwLock` in shared mode, so
/// rayon workers pounding the same warm store contend only on the stripe
/// holding the same key range — and read-read never blocks at all.
const SHARDS: usize = 16;

/// Hit/miss/entry counters of a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StoreStats {
    /// Lookups answered from memory.
    pub hits: u64,
    /// Lookups that required computing (or explicitly missed).
    pub misses: u64,
    /// Records resident in the store (or, in a [`StoreStats::since`] delta,
    /// records added over the measured span).
    pub entries: u64,
}

impl StoreStats {
    /// Hit rate in `[0, 1]`; 1.0 for an unqueried store.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The counter deltas accumulated since an earlier snapshot — including
    /// `entries`, which becomes "records added since" (nothing is ever
    /// evicted, so the count is monotone).
    pub fn since(&self, earlier: &StoreStats) -> StoreStats {
        StoreStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            entries: self.entries - earlier.entries,
        }
    }
}

/// A shared, persistent evaluation store with content-addressed keys.
///
/// In memory the store is a striped concurrent map: 16 independent
/// `RwLock<HashMap>` stripes selected by the key's stable shard hash, so
/// parallel candidate-scoring workers share hits without a global lock.
/// Optionally, every insert is also appended to an on-disk log (see
/// [`crate::log`]) that is replayed on open — giving evaluations a lifetime
/// beyond a single search, a single process, or a single machine.
///
/// The store is *namespaced* by an evaluation-configuration fingerprint:
/// records are only meaningful under the proxy/hardware configuration that
/// produced them, so the log header pins the namespace and refuses to open
/// under a different one.
#[derive(Debug)]
pub struct EvalStore {
    shards: Vec<RwLock<HashMap<EvalKey, EvalRecord>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    entries: AtomicU64,
    namespace: u64,
    log: Option<Mutex<LogWriter>>,
}

impl EvalStore {
    fn with_shards(namespace: u64, log: Option<Mutex<LogWriter>>) -> Self {
        Self {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            entries: AtomicU64::new(0),
            namespace,
            log,
        }
    }

    /// A memory-only store (no persistence) for the given namespace.
    pub fn in_memory(namespace: u64) -> Self {
        Self::with_shards(namespace, None)
    }

    /// Opens (or creates) a persistent store backed by the log at `path`.
    /// Existing records are replayed into memory; a torn tail left by a
    /// crash is truncated away before appending resumes.
    ///
    /// # Errors
    ///
    /// I/O failures, bad magic, or version/namespace mismatches.
    pub fn open(path: &Path, namespace: u64) -> Result<Self, StoreError> {
        let (writer, replay) = LogWriter::open(path, namespace)?;
        let store = Self::with_shards(namespace, Some(Mutex::new(writer)));
        store.load_replay(replay);
        Ok(store)
    }

    fn load_replay(&self, replay: Replay) {
        for (key, record) in replay.entries {
            let shard = self.shard(&key);
            if shard.write().insert(key, record).is_none() {
                self.entries.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn shard(&self, key: &EvalKey) -> &RwLock<HashMap<EvalKey, EvalRecord>> {
        &self.shards[(key.shard_hash() as usize) % SHARDS]
    }

    /// The evaluation-configuration fingerprint this store is scoped to.
    pub fn namespace(&self) -> u64 {
        self.namespace
    }

    /// Number of resident records.
    pub fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed) as usize
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries.load(Ordering::Relaxed),
        }
    }

    /// Looks a record up, counting a hit or miss.
    pub fn get(&self, key: &EvalKey) -> Option<EvalRecord> {
        self.get_matching(key, |_| true)
    }

    /// Looks a record up, treating it as present only when `usable` accepts
    /// it. A resident-but-unusable record (e.g. a spectrum shorter than the
    /// caller needs) counts as a **miss**, because the caller will have to
    /// recompute — keeping the hit/miss counters an honest measure of work
    /// saved.
    pub fn get_matching<F>(&self, key: &EvalKey, usable: F) -> Option<EvalRecord>
    where
        F: FnOnce(&EvalRecord) -> bool,
    {
        let found = self.shard(key).read().get(key).cloned();
        match found {
            Some(record) if usable(&record) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(record)
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts (or replaces) a record, persisting it when a log is attached.
    /// Returns `true` when the key was new. Does not touch the hit/miss
    /// counters.
    ///
    /// # Errors
    ///
    /// Propagates log I/O failures; the in-memory insert still took effect.
    pub fn insert(&self, key: EvalKey, record: EvalRecord) -> Result<bool, StoreError> {
        // Reject records the log decoder would refuse; accepting one would
        // truncate it (and every record behind it) on the next replay.
        record.validate()?;
        let fresh = {
            let shard = self.shard(&key);
            let mut map = shard.write();
            map.insert(key, record.clone()).is_none()
        };
        if fresh {
            self.entries.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(log) = &self.log {
            log.lock().append(&key, &record)?;
        }
        Ok(fresh)
    }

    /// Returns the stored record for `key`, computing and inserting it on a
    /// miss. The closure runs *outside* any lock, so concurrent workers may
    /// race to compute the same pure value; the first insert wins and the
    /// value is identical either way. The boolean is `true` on a hit.
    ///
    /// # Errors
    ///
    /// Propagates the closure's error on a miss, and log I/O failures.
    pub fn get_or_try_insert_with<E, F>(
        &self,
        key: EvalKey,
        compute: F,
    ) -> Result<(EvalRecord, bool), GetOrInsertError<E>>
    where
        F: FnOnce() -> Result<EvalRecord, E>,
    {
        if let Some(found) = self.shard(&key).read().get(&key).cloned() {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((found, true));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let record = compute().map_err(GetOrInsertError::Compute)?;
        self.insert(key, record.clone())
            .map_err(GetOrInsertError::Store)?;
        Ok((record, false))
    }

    /// Offline compaction of the log at `path`: rewrites it with exactly one
    /// record per live key. The store must not have the file open (this is
    /// an associated function, not a method, to make that explicit).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and header mismatches.
    pub fn compact_path(path: &Path, namespace: u64) -> Result<CompactStats, StoreError> {
        log::compact(path, namespace)
    }
}

/// Error of [`EvalStore::get_or_try_insert_with`]: either the compute
/// closure failed or the store could not persist the fresh record.
#[derive(Debug)]
pub enum GetOrInsertError<E> {
    /// The compute closure failed.
    Compute(E),
    /// The record was computed but could not be persisted.
    Store(StoreError),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProxyKind;
    use micronas_datasets::DatasetKind;
    use micronas_proxies::ZeroCostMetrics;
    use micronas_searchspace::SearchSpace;

    // Distinct seeds rather than distinct cells: cell indices can collapse
    // onto one content address when they are isomorphic (by design).
    fn key(i: usize) -> EvalKey {
        let space = SearchSpace::nas_bench_201();
        EvalKey::zero_cost(
            &space.cell(500).unwrap(),
            DatasetKind::Cifar10,
            i as u64,
            12,
        )
    }

    fn record(v: f64) -> EvalRecord {
        EvalRecord::ZeroCost(ZeroCostMetrics {
            ntk_condition: v,
            linear_regions: 1,
            trainability: -v,
            expressivity: 0.0,
        })
    }

    #[test]
    fn get_counts_hits_and_misses() {
        let store = EvalStore::in_memory(0);
        assert!(store.get(&key(1)).is_none());
        store.insert(key(1), record(1.0)).unwrap();
        assert!(store.get(&key(1)).is_some());
        assert!(store.get(&key(2)).is_none());
        let stats = store.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
    }

    #[test]
    fn get_or_insert_computes_once() {
        let store = EvalStore::in_memory(0);
        let mut calls = 0;
        let (r1, hit1) = store
            .get_or_try_insert_with::<(), _>(key(3), || {
                calls += 1;
                Ok(record(3.0))
            })
            .unwrap();
        let (r2, hit2) = store
            .get_or_try_insert_with::<(), _>(key(3), || {
                calls += 1;
                Ok(record(99.0))
            })
            .unwrap();
        assert_eq!(calls, 1);
        assert!(!hit1);
        assert!(hit2);
        assert_eq!(r1, r2);
        // Errors propagate and nothing is inserted.
        let err = store.get_or_try_insert_with::<&str, _>(key(4), || Err("nope"));
        assert!(matches!(err, Err(GetOrInsertError::Compute("nope"))));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn isomorphic_cells_share_an_entry() {
        let cell = micronas_searchspace::CellTopology::new([
            micronas_searchspace::Operation::NorConv3x3,
            micronas_searchspace::Operation::SkipConnect,
            micronas_searchspace::Operation::None,
            micronas_searchspace::Operation::AvgPool3x3,
            micronas_searchspace::Operation::NorConv1x1,
            micronas_searchspace::Operation::None,
        ]);
        let twin = cell.intermediate_swap().unwrap();
        let store = EvalStore::in_memory(0);
        store
            .insert(
                EvalKey::zero_cost(&cell, DatasetKind::Cifar10, 0, 12),
                record(5.0),
            )
            .unwrap();
        let via_twin = store.get(&EvalKey::zero_cost(&twin, DatasetKind::Cifar10, 0, 12));
        assert_eq!(via_twin, Some(record(5.0)));
    }

    #[test]
    fn concurrent_workers_share_hits() {
        use rayon::prelude::*;
        let store = EvalStore::in_memory(0);
        for i in 0..64 {
            store.insert(key(i), record(i as f64)).unwrap();
        }
        let values: Vec<f64> = (0..64usize)
            .collect::<Vec<_>>()
            .par_iter()
            .map(|&i| {
                store
                    .get(&key(i))
                    .and_then(|r| r.as_zero_cost())
                    .map(|m| m.ntk_condition)
                    .unwrap_or(f64::NAN)
            })
            .collect();
        let sum: f64 = values.iter().sum();
        assert_eq!(sum, (0..64).map(|i| i as f64).sum::<f64>());
        assert_eq!(store.stats().hits, 64);
    }

    #[test]
    fn persistent_store_survives_reopen() {
        let mut path = std::env::temp_dir();
        path.push(format!("micronas-store-reopen-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let store = EvalStore::open(&path, 42).unwrap();
            store.insert(key(0), record(1.5)).unwrap();
            store.insert(key(1), record(2.5)).unwrap();
        }
        let store = EvalStore::open(&path, 42).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(
            store
                .get(&key(0))
                .unwrap()
                .as_zero_cost()
                .unwrap()
                .ntk_condition,
            1.5
        );
        // While the store holds the log, any second open is refused — the
        // format is single-writer and concurrent appends would corrupt it.
        assert!(matches!(
            EvalStore::open(&path, 42),
            Err(StoreError::Locked { .. })
        ));
        drop(store);
        assert!(matches!(
            EvalStore::open(&path, 43),
            Err(StoreError::NamespaceMismatch { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stats_since_subtracts_counters() {
        let store = EvalStore::in_memory(0);
        store.insert(key(0), record(0.0)).unwrap();
        store.get(&key(0));
        let snapshot = store.stats();
        store.get(&key(0));
        store.get(&key(9));
        store.insert(key(9), record(9.0)).unwrap();
        let delta = store.stats().since(&snapshot);
        assert_eq!(delta.hits, 1);
        assert_eq!(delta.misses, 1);
        assert_eq!(delta.entries, 1, "entries delta counts records added");
    }

    #[test]
    fn get_matching_counts_unusable_records_as_misses() {
        let store = EvalStore::in_memory(0);
        store.insert(key(0), record(1.0)).unwrap();
        assert!(store.get_matching(&key(0), |_| false).is_none());
        assert!(store.get_matching(&key(0), |_| true).is_some());
        let stats = store.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn hardware_keys_use_seed_zero() {
        let space = SearchSpace::nas_bench_201();
        let k = EvalKey::hardware(&space.cell(5).unwrap(), DatasetKind::Cifar10);
        assert_eq!(k.seed, 0);
        assert_eq!(k.kind, ProxyKind::Hardware);
    }
}
