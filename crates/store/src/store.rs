//! The sharded, concurrent, optionally persistent evaluation store.

use crate::log::{self, read_record_at, CompactStats, LogWriter, Replay};
use crate::remote::RemoteBackend;
use crate::{EvalKey, EvalRecord, StoreError};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fs::File;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of lock stripes. Reads take a shard's `RwLock` in shared mode, so
/// rayon workers pounding the same warm store contend only on the stripe
/// holding the same key range — and read-read never blocks at all.
const SHARDS: usize = 16;

/// Hit/miss/entry counters of a store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StoreStats {
    /// Lookups answered from memory (or a log-backed re-read of an evicted
    /// record — either way, without recomputation).
    pub hits: u64,
    /// Lookups that required computing (or explicitly missed).
    pub misses: u64,
    /// Records resident in memory (or, in a [`StoreStats::since`] delta,
    /// records that became resident over the measured span).
    pub entries: u64,
}

impl StoreStats {
    /// Hit rate in `[0, 1]`; 1.0 for an unqueried store.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The counter deltas accumulated since an earlier snapshot. The
    /// `entries` delta saturates at zero: on an eviction-capped store the
    /// resident count can shrink between snapshots.
    pub fn since(&self, earlier: &StoreStats) -> StoreStats {
        StoreStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            entries: self.entries.saturating_sub(earlier.entries),
        }
    }
}

/// Construction options for an [`EvalStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreOptions {
    /// Upper bound on records resident in memory **per shard** (16 shards
    /// total, so the store holds at most `16 × cap` records in memory).
    /// `None` (the default) keeps every record resident, the pre-eviction
    /// behaviour.
    ///
    /// When a shard exceeds its cap the least-recently-used record is
    /// evicted. On a persistent store every record was already written
    /// through to the log at insert time, so an evicted record is *not
    /// lost*: a later lookup re-reads it from the log by offset (counting a
    /// hit — the value was served without recomputation). On a memory-only
    /// store eviction discards the record and a later lookup misses; the
    /// capped memory-only store is a plain bounded cache.
    pub max_resident_per_shard: Option<usize>,
}

impl StoreOptions {
    /// Options with an in-memory residency cap per shard.
    pub fn with_max_resident_per_shard(cap: usize) -> Self {
        Self {
            max_resident_per_shard: Some(cap.max(1)),
        }
    }
}

/// Entries examined per eviction when picking the LRU victim (see
/// `EvalStore::insert_resident` — exact LRU up to this shard size, sampled
/// approximate LRU beyond it).
const EVICTION_SCAN: usize = 32;

/// One in-memory record plus its LRU clock stamp.
#[derive(Debug)]
struct Resident {
    record: EvalRecord,
    /// Value of the store clock at the last touch; the smallest stamp in a
    /// shard is the eviction victim. Relaxed atomics: the stamp only guides
    /// the eviction heuristic, never correctness.
    last_used: AtomicU64,
}

/// A shared, persistent evaluation store with content-addressed keys.
///
/// In memory the store is a striped concurrent map: 16 independent
/// `RwLock<HashMap>` stripes selected by the key's stable shard hash, so
/// parallel candidate-scoring workers share hits without a global lock.
/// Optionally, every insert is also appended to an on-disk log (see
/// [`crate::log`]) that is replayed on open — giving evaluations a lifetime
/// beyond a single search, a single process, or a single machine.
///
/// The store is *namespaced* by an evaluation-configuration fingerprint:
/// records are only meaningful under the proxy/hardware configuration that
/// produced them, so the log header pins the namespace and refuses to open
/// under a different one.
///
/// # Bounded residency
///
/// Long-lived daemons replaying ever-growing logs would otherwise pin every
/// record in memory forever; [`StoreOptions::max_resident_per_shard`] caps
/// the in-memory tier with LRU eviction and write-through semantics —
/// persistent stores transparently re-read evicted records from the log by
/// offset.
#[derive(Debug)]
pub struct EvalStore {
    shards: Vec<RwLock<HashMap<EvalKey, Resident>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    entries: AtomicU64,
    /// Monotone LRU clock; every touch stamps the record.
    clock: AtomicU64,
    namespace: u64,
    log: Option<Mutex<LogWriter>>,
    /// Byte offset of every key's latest log record — maintained only on
    /// capped persistent stores, where it is the re-read index for evicted
    /// records.
    offsets: Option<RwLock<HashMap<EvalKey, u64>>>,
    /// Independent read handle for point re-reads of evicted records.
    reader: Option<Mutex<File>>,
    max_resident_per_shard: Option<usize>,
    /// Optional remote tier consulted after the local tiers miss (see
    /// [`EvalStore::attach_remote`]).
    remote: RwLock<Option<Arc<dyn RemoteBackend>>>,
}

impl EvalStore {
    fn with_shards(namespace: u64, log: Option<Mutex<LogWriter>>, options: StoreOptions) -> Self {
        Self {
            shards: (0..SHARDS).map(|_| RwLock::new(HashMap::new())).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            entries: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            namespace,
            log,
            offsets: None,
            reader: None,
            max_resident_per_shard: options.max_resident_per_shard,
            remote: RwLock::new(None),
        }
    }

    /// A memory-only store (no persistence) for the given namespace.
    pub fn in_memory(namespace: u64) -> Self {
        Self::with_shards(namespace, None, StoreOptions::default())
    }

    /// A memory-only store with explicit [`StoreOptions`]. With a residency
    /// cap this is a bounded cache: evicted records are recomputed on the
    /// next lookup.
    pub fn in_memory_with_options(namespace: u64, options: StoreOptions) -> Self {
        Self::with_shards(namespace, None, options)
    }

    /// Opens (or creates) a persistent store backed by the log at `path`.
    /// Existing records are replayed into memory; a torn tail left by a
    /// crash is truncated away before appending resumes.
    ///
    /// # Errors
    ///
    /// I/O failures, bad magic, or version/namespace mismatches.
    pub fn open(path: &Path, namespace: u64) -> Result<Self, StoreError> {
        Self::open_with_options(path, namespace, StoreOptions::default())
    }

    /// [`EvalStore::open`] with explicit [`StoreOptions`]. With a residency
    /// cap, replay loads at most the cap per shard (most recent records win)
    /// and evicted records are served from the log by offset.
    ///
    /// # Errors
    ///
    /// I/O failures, bad magic, or version/namespace mismatches.
    pub fn open_with_options(
        path: &Path,
        namespace: u64,
        options: StoreOptions,
    ) -> Result<Self, StoreError> {
        let (writer, replay) = LogWriter::open(path, namespace)?;
        let mut store = Self::with_shards(namespace, Some(Mutex::new(writer)), options);
        if options.max_resident_per_shard.is_some() {
            store.offsets = Some(RwLock::new(HashMap::new()));
            store.reader = Some(Mutex::new(File::open(path)?));
        }
        store.load_replay(replay);
        Ok(store)
    }

    fn load_replay(&self, replay: Replay) {
        for ((key, record), offset) in replay.entries.into_iter().zip(replay.offsets) {
            if let Some(offsets) = &self.offsets {
                offsets.write().insert(key, offset);
            }
            self.insert_resident(key, record);
        }
    }

    fn shard(&self, key: &EvalKey) -> &RwLock<HashMap<EvalKey, Resident>> {
        &self.shards[(key.shard_hash() as usize) % SHARDS]
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// The evaluation-configuration fingerprint this store is scoped to.
    pub fn namespace(&self) -> u64 {
        self.namespace
    }

    /// Number of records resident in memory. On an eviction-capped
    /// persistent store this can be smaller than the number of records the
    /// log can serve.
    pub fn len(&self) -> usize {
        self.entries.load(Ordering::Relaxed) as usize
    }

    /// Whether the store holds no resident records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the hit/miss counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.entries.load(Ordering::Relaxed),
        }
    }

    /// Attaches a remote tier that [`EvalStore::get`] and friends consult
    /// after both local tiers (memory, log point read) miss. A remote hit
    /// populates the local shard (and the log, on a persistent store) and
    /// counts as a **hit** — the value was served without recomputation;
    /// fresh local inserts are offered back to the remote (write-behind).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NamespaceMismatch`] when the backend serves a
    /// different evaluation-configuration namespace — the in-process
    /// analogue of a stale log refusing to open, with both fingerprints
    /// reported in hex.
    pub fn attach_remote(&self, remote: Arc<dyn RemoteBackend>) -> Result<(), StoreError> {
        if remote.namespace() != self.namespace {
            return Err(StoreError::NamespaceMismatch {
                found: remote.namespace(),
                expected: self.namespace,
            });
        }
        *self.remote.write() = Some(remote);
        Ok(())
    }

    /// Detaches the remote tier, if any; the store is purely local again.
    pub fn detach_remote(&self) {
        *self.remote.write() = None;
    }

    /// Whether a remote tier is attached.
    pub fn has_remote(&self) -> bool {
        self.remote.read().is_some()
    }

    /// **Local-only** point read: memory, then the log for evicted records —
    /// never the remote tier, and never the hit/miss counters. This is the
    /// read a fabric node answers `Get` requests with (a node serving a peer
    /// must not recurse into its own remote tier or skew its local stats).
    pub fn peek(&self, key: &EvalKey) -> Option<EvalRecord> {
        self.lookup_local(key)
    }

    /// Memory lookup (stamping the LRU clock), falling back to a log point
    /// read for evicted records on capped persistent stores. Does not touch
    /// the hit/miss counters.
    fn lookup_local(&self, key: &EvalKey) -> Option<EvalRecord> {
        {
            let shard = self.shard(key).read();
            if let Some(resident) = shard.get(key) {
                resident.last_used.store(self.tick(), Ordering::Relaxed);
                return Some(resident.record.clone());
            }
        }
        // Evicted-but-persisted records re-enter through the log.
        let offset = *self.offsets.as_ref()?.read().get(key)?;
        let reread = {
            let _span = micronas_telemetry::span!("store.point_read");
            let mut reader = self.reader.as_ref()?.lock();
            read_record_at(&mut reader, offset)
        };
        match reread {
            Ok((stored_key, record)) if stored_key == *key => {
                self.insert_resident(*key, record.clone());
                Some(record)
            }
            // A stale index or a file modified underneath the store: treat
            // as a miss (the caller recomputes) rather than serving bytes of
            // unknown provenance.
            _ => None,
        }
    }

    /// Full lookup: local tiers first, then the remote tier (read-through).
    /// Does not touch the hit/miss counters.
    fn lookup(&self, key: &EvalKey) -> Option<EvalRecord> {
        if let Some(found) = self.lookup_local(key) {
            return Some(found);
        }
        let remote = self.remote.read().clone()?;
        let record = remote.fetch(key)?;
        if record.validate().is_err() {
            // A peer handing out records the local log codec would refuse is
            // misbehaving; recompute rather than poison the local tiers.
            return None;
        }
        // Read-through fill: the fetched record becomes resident (and, on a
        // persistent store, durable) so the next lookup is a memory hit. The
        // fill is deliberately NOT offered back to the remote — it came from
        // there.
        if self.store_local(*key, record.clone()).is_err() {
            micronas_telemetry::counter_add("store.remote_fill_log_errors", 1);
        }
        Some(record)
    }

    /// Inserts into the in-memory tier only, evicting a least-recently-used
    /// record when a residency cap is exceeded.
    ///
    /// Victim selection scans at most [`EVICTION_SCAN`] entries, so an
    /// insert holds the shard's write lock for O(1) work regardless of the
    /// cap: exact LRU for shards up to the scan budget, sampled approximate
    /// LRU beyond it (the classic Redis-style trade — which record gets
    /// evicted only affects what stays warm, never correctness, because
    /// persistent stores re-read evicted records from the log).
    fn insert_resident(&self, key: EvalKey, record: EvalRecord) -> bool {
        let shard = self.shard(&key);
        let mut map = shard.write();
        let fresh = map
            .insert(
                key,
                Resident {
                    record,
                    last_used: AtomicU64::new(self.tick()),
                },
            )
            .is_none();
        if fresh {
            self.entries.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(cap) = self.max_resident_per_shard {
            while map.len() > cap {
                let victim = map
                    .iter()
                    .take(EVICTION_SCAN)
                    .min_by_key(|(_, r)| r.last_used.load(Ordering::Relaxed))
                    .map(|(k, _)| *k)
                    .expect("non-empty shard over its cap");
                map.remove(&victim);
                self.entries.fetch_sub(1, Ordering::Relaxed);
                micronas_telemetry::counter_add("store.evictions", 1);
            }
        }
        fresh
    }

    /// Looks a record up, counting a hit or miss.
    pub fn get(&self, key: &EvalKey) -> Option<EvalRecord> {
        self.get_matching(key, |_| true)
    }

    /// Looks a record up, treating it as present only when `usable` accepts
    /// it. A resident-but-unusable record (e.g. a spectrum shorter than the
    /// caller needs) counts as a **miss**, because the caller will have to
    /// recompute — keeping the hit/miss counters an honest measure of work
    /// saved.
    pub fn get_matching<F>(&self, key: &EvalKey, usable: F) -> Option<EvalRecord>
    where
        F: FnOnce(&EvalRecord) -> bool,
    {
        match self.lookup(key) {
            Some(record) if usable(&record) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                micronas_telemetry::counter_add("store.hits", 1);
                Some(record)
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                micronas_telemetry::counter_add("store.misses", 1);
                None
            }
        }
    }

    /// Inserts into the local tiers only (memory + log), never offering to
    /// the remote.
    fn store_local(&self, key: EvalKey, record: EvalRecord) -> Result<bool, StoreError> {
        let fresh = self.insert_resident(key, record.clone());
        if let Some(log) = &self.log {
            let _span = micronas_telemetry::span!("store.log_append");
            let offset = log.lock().append(&key, &record)?;
            if let Some(offsets) = &self.offsets {
                offsets.write().insert(key, offset);
            }
        }
        Ok(fresh)
    }

    /// Inserts (or replaces) a record, persisting it when a log is attached
    /// and offering fresh records to the remote tier (write-behind) when one
    /// is attached. Returns `true` when the key was new in memory. Does not
    /// touch the hit/miss counters.
    ///
    /// # Errors
    ///
    /// Propagates log I/O failures; the in-memory insert still took effect.
    pub fn insert(&self, key: EvalKey, record: EvalRecord) -> Result<bool, StoreError> {
        // Reject records the log decoder would refuse; accepting one would
        // truncate it (and every record behind it) on the next replay.
        record.validate()?;
        let fresh = self.store_local(key, record.clone())?;
        if fresh {
            if let Some(remote) = self.remote.read().clone() {
                remote.offer(key, record);
            }
        }
        Ok(fresh)
    }

    /// Returns the stored record for `key`, computing and inserting it on a
    /// miss. The closure runs *outside* any lock, so concurrent workers may
    /// race to compute the same pure value; the first insert wins and the
    /// value is identical either way. The boolean is `true` on a hit.
    ///
    /// # Errors
    ///
    /// Propagates the closure's error on a miss, and log I/O failures.
    pub fn get_or_try_insert_with<E, F>(
        &self,
        key: EvalKey,
        compute: F,
    ) -> Result<(EvalRecord, bool), GetOrInsertError<E>>
    where
        F: FnOnce() -> Result<EvalRecord, E>,
    {
        if let Some(found) = self.lookup(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            micronas_telemetry::counter_add("store.hits", 1);
            return Ok((found, true));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        micronas_telemetry::counter_add("store.misses", 1);
        let record = compute().map_err(GetOrInsertError::Compute)?;
        self.insert(key, record.clone())
            .map_err(GetOrInsertError::Store)?;
        Ok((record, false))
    }

    /// Offline compaction of the log at `path`: rewrites it with exactly one
    /// record per live key. The store must not have the file open (this is
    /// an associated function, not a method, to make that explicit — a
    /// capped store's offset index would be invalidated by the rewrite).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and header mismatches.
    pub fn compact_path(path: &Path, namespace: u64) -> Result<CompactStats, StoreError> {
        log::compact(path, namespace)
    }
}

/// Error of [`EvalStore::get_or_try_insert_with`]: either the compute
/// closure failed or the store could not persist the fresh record.
#[derive(Debug)]
pub enum GetOrInsertError<E> {
    /// The compute closure failed.
    Compute(E),
    /// The record was computed but could not be persisted.
    Store(StoreError),
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProxyKind;
    use micronas_datasets::DatasetKind;
    use micronas_proxies::ZeroCostMetrics;
    use micronas_searchspace::SearchSpace;

    // Distinct seeds rather than distinct cells: cell indices can collapse
    // onto one content address when they are isomorphic (by design).
    fn key(i: usize) -> EvalKey {
        let space = SearchSpace::nas_bench_201();
        EvalKey::zero_cost(
            &space.cell(500).unwrap(),
            DatasetKind::Cifar10,
            i as u64,
            12,
        )
    }

    fn record(v: f64) -> EvalRecord {
        EvalRecord::ZeroCost(ZeroCostMetrics {
            ntk_condition: v,
            linear_regions: 1,
            trainability: -v,
            expressivity: 0.0,
        })
    }

    #[test]
    fn get_counts_hits_and_misses() {
        let store = EvalStore::in_memory(0);
        assert!(store.get(&key(1)).is_none());
        store.insert(key(1), record(1.0)).unwrap();
        assert!(store.get(&key(1)).is_some());
        assert!(store.get(&key(2)).is_none());
        let stats = store.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 1);
        assert!((stats.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
    }

    #[test]
    fn get_or_insert_computes_once() {
        let store = EvalStore::in_memory(0);
        let mut calls = 0;
        let (r1, hit1) = store
            .get_or_try_insert_with::<(), _>(key(3), || {
                calls += 1;
                Ok(record(3.0))
            })
            .unwrap();
        let (r2, hit2) = store
            .get_or_try_insert_with::<(), _>(key(3), || {
                calls += 1;
                Ok(record(99.0))
            })
            .unwrap();
        assert_eq!(calls, 1);
        assert!(!hit1);
        assert!(hit2);
        assert_eq!(r1, r2);
        // Errors propagate and nothing is inserted.
        let err = store.get_or_try_insert_with::<&str, _>(key(4), || Err("nope"));
        assert!(matches!(err, Err(GetOrInsertError::Compute("nope"))));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn isomorphic_cells_share_an_entry() {
        let cell = micronas_searchspace::CellTopology::new([
            micronas_searchspace::Operation::NorConv3x3,
            micronas_searchspace::Operation::SkipConnect,
            micronas_searchspace::Operation::None,
            micronas_searchspace::Operation::AvgPool3x3,
            micronas_searchspace::Operation::NorConv1x1,
            micronas_searchspace::Operation::None,
        ]);
        let twin = cell.intermediate_swap().unwrap();
        let store = EvalStore::in_memory(0);
        store
            .insert(
                EvalKey::zero_cost(&cell, DatasetKind::Cifar10, 0, 12),
                record(5.0),
            )
            .unwrap();
        let via_twin = store.get(&EvalKey::zero_cost(&twin, DatasetKind::Cifar10, 0, 12));
        assert_eq!(via_twin, Some(record(5.0)));
    }

    #[test]
    fn concurrent_workers_share_hits() {
        use rayon::prelude::*;
        let store = EvalStore::in_memory(0);
        for i in 0..64 {
            store.insert(key(i), record(i as f64)).unwrap();
        }
        let values: Vec<f64> = (0..64usize)
            .collect::<Vec<_>>()
            .par_iter()
            .map(|&i| {
                store
                    .get(&key(i))
                    .and_then(|r| r.as_zero_cost())
                    .map(|m| m.ntk_condition)
                    .unwrap_or(f64::NAN)
            })
            .collect();
        let sum: f64 = values.iter().sum();
        assert_eq!(sum, (0..64).map(|i| i as f64).sum::<f64>());
        assert_eq!(store.stats().hits, 64);
    }

    #[test]
    fn persistent_store_survives_reopen() {
        let mut path = std::env::temp_dir();
        path.push(format!("micronas-store-reopen-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let store = EvalStore::open(&path, 42).unwrap();
            store.insert(key(0), record(1.5)).unwrap();
            store.insert(key(1), record(2.5)).unwrap();
        }
        let store = EvalStore::open(&path, 42).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(
            store
                .get(&key(0))
                .unwrap()
                .as_zero_cost()
                .unwrap()
                .ntk_condition,
            1.5
        );
        // While the store holds the log, any second open is refused — the
        // format is single-writer and concurrent appends would corrupt it.
        assert!(matches!(
            EvalStore::open(&path, 42),
            Err(StoreError::Locked { .. })
        ));
        drop(store);
        assert!(matches!(
            EvalStore::open(&path, 43),
            Err(StoreError::NamespaceMismatch { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stats_since_subtracts_counters() {
        let store = EvalStore::in_memory(0);
        store.insert(key(0), record(0.0)).unwrap();
        store.get(&key(0));
        let snapshot = store.stats();
        store.get(&key(0));
        store.get(&key(9));
        store.insert(key(9), record(9.0)).unwrap();
        let delta = store.stats().since(&snapshot);
        assert_eq!(delta.hits, 1);
        assert_eq!(delta.misses, 1);
        assert_eq!(delta.entries, 1, "entries delta counts records added");
    }

    #[test]
    fn get_matching_counts_unusable_records_as_misses() {
        let store = EvalStore::in_memory(0);
        store.insert(key(0), record(1.0)).unwrap();
        assert!(store.get_matching(&key(0), |_| false).is_none());
        assert!(store.get_matching(&key(0), |_| true).is_some());
        let stats = store.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
    }

    #[test]
    fn hardware_keys_use_seed_zero() {
        let space = SearchSpace::nas_bench_201();
        let k = EvalKey::hardware(&space.cell(5).unwrap(), DatasetKind::Cifar10);
        assert_eq!(k.seed, 0);
        assert_eq!(k.kind, ProxyKind::Hardware);
    }

    // -- eviction ----------------------------------------------------------

    /// Keys guaranteed to land in ONE shard (filtered by shard hash), so a
    /// per-shard cap is exercised deterministically.
    fn same_shard_keys(count: usize) -> Vec<EvalKey> {
        let target = (key(0).shard_hash() as usize) % SHARDS;
        (0..)
            .map(key)
            .filter(|k| (k.shard_hash() as usize) % SHARDS == target)
            .take(count)
            .collect()
    }

    #[test]
    fn capped_persistent_store_serves_evicted_records_from_the_log() {
        let mut path = std::env::temp_dir();
        path.push(format!("micronas-store-evict-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let options = StoreOptions::with_max_resident_per_shard(2);
        let keys = same_shard_keys(5);
        {
            let store = EvalStore::open_with_options(&path, 7, options).unwrap();
            for (i, k) in keys.iter().enumerate() {
                store.insert(*k, record(i as f64)).unwrap();
            }
            // The shard is capped: at most 2 of the 5 records are resident.
            let resident = store.len();
            assert!(
                resident <= 2,
                "cap of 2 must bound the shard, got {resident}"
            );

            // The first-inserted (least recently used) key was evicted — a
            // lookup must transparently re-read it from the log, count a
            // hit, and return the exact record.
            let before = store.stats();
            let got = store.get(&keys[0]).expect("log-backed re-read");
            assert_eq!(got, record(0.0));
            let delta = store.stats().since(&before);
            assert_eq!(delta.hits, 1, "a log-backed re-read is a hit");
            assert_eq!(delta.misses, 0);

            // The re-read made keys[0] resident again (evicting another);
            // the shard stays within its cap.
            assert!(store.len() <= 2);
        }

        // Reopening under the cap replays last-wins within the bound and
        // still serves everything.
        let store = EvalStore::open_with_options(&path, 7, options).unwrap();
        assert!(store.len() <= 2);
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(
                store.get(k).expect("every record served after reopen"),
                record(i as f64)
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn lru_eviction_keeps_the_recently_touched_record() {
        let store =
            EvalStore::in_memory_with_options(0, StoreOptions::with_max_resident_per_shard(2));
        let keys = same_shard_keys(3);
        store.insert(keys[0], record(0.0)).unwrap();
        store.insert(keys[1], record(1.0)).unwrap();
        // Touch keys[0] so keys[1] becomes the LRU victim.
        assert!(store.get(&keys[0]).is_some());
        store.insert(keys[2], record(2.0)).unwrap();
        assert!(store.get(&keys[0]).is_some(), "recently touched survives");
        assert!(
            store.get(&keys[1]).is_none(),
            "LRU record evicted from the memory-only cache"
        );
        assert!(store.get(&keys[2]).is_some());
    }

    // -- remote tier -------------------------------------------------------

    /// A scriptable in-process remote: serves from a fixed map, records
    /// every offer.
    #[derive(Debug, Default)]
    struct FakeRemote {
        namespace: u64,
        served: Mutex<HashMap<EvalKey, EvalRecord>>,
        fetches: AtomicU64,
        offers: Mutex<Vec<EvalKey>>,
    }

    impl crate::RemoteBackend for FakeRemote {
        fn namespace(&self) -> u64 {
            self.namespace
        }
        fn fetch(&self, key: &EvalKey) -> Option<EvalRecord> {
            self.fetches.fetch_add(1, Ordering::Relaxed);
            self.served.lock().get(key).cloned()
        }
        fn offer(&self, key: EvalKey, _record: EvalRecord) {
            self.offers.lock().push(key);
        }
    }

    #[test]
    fn attach_remote_enforces_the_namespace_in_hex() {
        let store = EvalStore::in_memory(0xAAAA);
        let remote = Arc::new(FakeRemote {
            namespace: 0xBBBB,
            ..FakeRemote::default()
        });
        let err = store.attach_remote(remote).unwrap_err();
        let msg = err.to_string();
        // Both fingerprints in hex, so an operator can tell a stale log from
        // a divergent-backend peer at a glance.
        assert!(msg.contains("0x000000000000bbbb"), "{msg}");
        assert!(msg.contains("0x000000000000aaaa"), "{msg}");
        assert!(!store.has_remote());
    }

    #[test]
    fn remote_hit_counts_as_a_hit_and_fills_the_local_shard() {
        let remote = Arc::new(FakeRemote::default());
        remote.served.lock().insert(key(1), record(4.5));
        let store = EvalStore::in_memory(0);
        store.attach_remote(remote.clone()).unwrap();

        assert_eq!(store.get(&key(1)), Some(record(4.5)));
        let stats = store.stats();
        assert_eq!(stats.hits, 1, "a remote hit is served without recompute");
        assert_eq!(stats.misses, 0);
        assert_eq!(remote.fetches.load(Ordering::Relaxed), 1);

        // The fill made the record resident: the second get never leaves the
        // process, and the fill was not offered back to the remote.
        assert_eq!(store.get(&key(1)), Some(record(4.5)));
        assert_eq!(remote.fetches.load(Ordering::Relaxed), 1);
        assert!(remote.offers.lock().is_empty());

        // A miss everywhere consults the remote once and counts a miss.
        assert!(store.get(&key(2)).is_none());
        assert_eq!(store.stats().misses, 1);
        assert_eq!(remote.fetches.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn fresh_inserts_are_offered_write_behind() {
        let remote = Arc::new(FakeRemote::default());
        let store = EvalStore::in_memory(0);
        store.attach_remote(remote.clone()).unwrap();
        store.insert(key(3), record(1.0)).unwrap();
        // Re-inserting the same key is not fresh and is not re-offered.
        store.insert(key(3), record(1.0)).unwrap();
        assert_eq!(remote.offers.lock().as_slice(), &[key(3)]);

        store.detach_remote();
        store.insert(key(4), record(2.0)).unwrap();
        assert_eq!(remote.offers.lock().len(), 1, "detached remote is silent");
    }

    #[test]
    fn peek_is_local_only_and_counts_nothing() {
        let remote = Arc::new(FakeRemote::default());
        remote.served.lock().insert(key(5), record(9.0));
        let store = EvalStore::in_memory(0);
        store.attach_remote(remote.clone()).unwrap();

        // peek never consults the remote and never counts.
        assert!(store.peek(&key(5)).is_none());
        assert_eq!(remote.fetches.load(Ordering::Relaxed), 0);
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));

        store.insert(key(6), record(3.0)).unwrap();
        assert_eq!(store.peek(&key(6)), Some(record(3.0)));
        let stats = store.stats();
        assert_eq!((stats.hits, stats.misses), (0, 0));
    }

    #[test]
    fn get_or_insert_reads_through_the_remote() {
        let remote = Arc::new(FakeRemote::default());
        remote.served.lock().insert(key(7), record(7.0));
        let store = EvalStore::in_memory(0);
        store.attach_remote(remote.clone()).unwrap();
        let (found, hit) = store
            .get_or_try_insert_with::<(), _>(key(7), || panic!("remote hit must skip compute"))
            .unwrap();
        assert!(hit);
        assert_eq!(found, record(7.0));
        // A genuine miss computes locally and offers the fresh record back.
        let (computed, hit) = store
            .get_or_try_insert_with::<(), _>(key(8), || Ok(record(8.0)))
            .unwrap();
        assert!(!hit);
        assert_eq!(computed, record(8.0));
        assert_eq!(remote.offers.lock().as_slice(), &[key(8)]);
    }

    #[test]
    fn uncapped_stores_keep_everything_resident() {
        let store = EvalStore::in_memory_with_options(0, StoreOptions::default());
        let keys = same_shard_keys(40);
        for (i, k) in keys.iter().enumerate() {
            store.insert(*k, record(i as f64)).unwrap();
        }
        assert_eq!(store.len(), 40, "no cap, no eviction");
        for k in &keys {
            assert!(store.get(k).is_some());
        }
    }
}
