//! `micronas-store`: a shared, persistent evaluation store with
//! content-addressed architecture identity.
//!
//! Every experiment in the MicroNAS evaluation — the Fig. 2 correlation
//! studies, Table I, the latency sweeps, the 1104× efficiency comparison —
//! re-scores largely overlapping sets of NAS-Bench-201 cells. Before this
//! crate, each `SearchContext` cached privately and forgot everything at
//! process exit. This crate gives every proxy and hardware evaluation a
//! durable, shareable identity and a lifetime beyond a single search:
//!
//! 1. **Identity** ([`ArchDigest`], [`EvalKey`]): a cell is identified by a
//!    version-stamped digest of its *canonical form* (the representative of
//!    its isomorphism orbit under intermediate-node relabeling — see
//!    `micronas_searchspace::CellTopology::canonical_form`). Digests use
//!    FNV-1a (64-bit), a publicly specified hash with fixed constants, never
//!    `std::hash::DefaultHasher` (whose output may change across Rust
//!    releases and would orphan every persisted record). A full evaluation
//!    key adds the dataset, seed and [`ProxyKind`].
//! 2. **Store** ([`EvalStore`]): a striped concurrent map (16 `RwLock`
//!    shards) in front of an optional append-only on-disk log with
//!    per-record FNV-1a checksums, crash-tolerant tail recovery and offline
//!    compaction ([`EvalStore::compact_path`]). Rayon workers share warm
//!    hits without a global lock.
//! 3. **Scoping**: stores are namespaced by an evaluation-configuration
//!    fingerprint so records can never leak between incompatible
//!    proxy/hardware configurations; the log header pins the namespace and
//!    refuses to open under a different one. Namespaces must hash explicit,
//!    version-tagged value encodings — see
//!    `micronas::MicroNasConfig::store_namespace` for the pipeline's — never
//!    `Debug` renderings or `std` hashes, whose output can drift.
//!
//! The `micronas` core crate threads an `Arc<EvalStore>` through
//! `SearchContext` and all search strategies, and its
//! `experiments::run_paper_sweep` driver runs the paper's full grid against
//! one store so later experiments — in the same process or a later one —
//! reuse earlier work. Search results are bitwise-identical with the store
//! enabled, disabled or pre-warmed, because evaluations are always computed
//! on the canonical orbit representative.
//!
//! # Example
//!
//! ```
//! use micronas_datasets::DatasetKind;
//! use micronas_proxies::ZeroCostMetrics;
//! use micronas_searchspace::SearchSpace;
//! use micronas_store::{EvalKey, EvalRecord, EvalStore};
//!
//! let space = SearchSpace::nas_bench_201();
//! let store = EvalStore::in_memory(0);
//! let key = EvalKey::zero_cost(&space.cell(4_242).unwrap(), DatasetKind::Cifar10, 0, 32);
//! store.insert(key, EvalRecord::ZeroCost(ZeroCostMetrics {
//!     ntk_condition: 12.0,
//!     linear_regions: 40,
//!     trainability: -2.48,
//!     expressivity: 3.69,
//! })).unwrap();
//! assert!(store.get(&key).is_some());
//! assert_eq!(store.stats().hits, 1);
//! ```

#![warn(missing_docs)]

mod error;
mod fnv;
mod identity;
pub mod log;
mod record;
mod remote;
mod store;

pub use error::StoreError;
pub use fnv::{fnv1a64, Fnv1a};
pub use identity::{custom_proxy_digest, ArchDigest, EvalKey, ProxyKind, IDENTITY_VERSION};
pub use log::CompactStats;
pub use record::{
    decode_entry, decode_key, encode_entry, encode_key, EvalRecord, NtkSpectrumRecord,
    MAX_SPECTRUM_INDICES,
};
pub use remote::RemoteBackend;
pub use store::{EvalStore, GetOrInsertError, StoreOptions, StoreStats};

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, StoreError>;
