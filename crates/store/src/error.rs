use std::fmt;

/// Errors raised by the evaluation store.
#[derive(Debug)]
pub enum StoreError {
    /// An I/O error while reading or writing the on-disk log.
    Io(std::io::Error),
    /// The log file does not start with the expected magic bytes.
    BadMagic,
    /// The log was written by an incompatible format version.
    VersionMismatch {
        /// Version found in the file header.
        found: u32,
        /// Version this build writes.
        expected: u32,
    },
    /// The log belongs to a different evaluation configuration.
    NamespaceMismatch {
        /// Namespace fingerprint found in the file header.
        found: u64,
        /// Namespace fingerprint the caller expected.
        expected: u64,
    },
    /// A record payload could not be decoded (unknown tag or short buffer).
    MalformedRecord(&'static str),
    /// Another store (in this or another process) holds the log open. The
    /// log format is single-writer; the OS advisory lock is released
    /// automatically when the owner exits or crashes.
    Locked {
        /// Path of the contended log file.
        path: std::path::PathBuf,
    },
    /// A point read at a recorded offset found a bad frame — the file was
    /// modified underneath a live store, or the offset index is stale.
    Corrupt {
        /// Byte offset of the offending frame.
        offset: u64,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::BadMagic => write!(f, "not an evaluation-store log (bad magic)"),
            StoreError::VersionMismatch { found, expected } => write!(
                f,
                "log format version {found} is incompatible with this build (expected {expected})"
            ),
            StoreError::NamespaceMismatch { found, expected } => write!(
                f,
                "log namespace {found:#018x} does not match the evaluation \
                 configuration {expected:#018x}"
            ),
            StoreError::MalformedRecord(what) => write!(f, "malformed store record: {what}"),
            StoreError::Locked { path } => write!(
                f,
                "evaluation-store log {} is held by another store (single-writer)",
                path.display()
            ),
            StoreError::Corrupt { offset, reason } => {
                write!(f, "corrupt store record at byte offset {offset}: {reason}")
            }
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StoreError::NamespaceMismatch {
            found: 1,
            expected: 2,
        };
        assert!(e.to_string().contains("namespace"));
        assert!(StoreError::BadMagic.to_string().contains("magic"));
        let io: StoreError = std::io::Error::other("boom").into();
        assert!(io.to_string().contains("boom"));
    }
}
