//! Stored evaluation records and their binary codec.
//!
//! The log payload format is deliberately tiny and explicit: little-endian
//! fixed-width integers, `f64` as IEEE-754 bit patterns, one tag byte per
//! enum. Nothing here depends on `serde` (the workspace's serde is an
//! offline no-op shim) or on unstable std hashing.

use crate::{ArchDigest, EvalKey, ProxyKind, StoreError};
use micronas_datasets::DatasetKind;
use micronas_hw::HardwareIndicators;
use micronas_proxies::ZeroCostMetrics;
use serde::{Deserialize, Serialize};

/// Largest NTK spectrum a record may carry. Enforced symmetrically at
/// insert time ([`EvalRecord::validate`]) and at decode time, so the log
/// can never accept a record that replay would later reject (which would
/// truncate it — and everything after it — on reopen).
pub const MAX_SPECTRUM_INDICES: usize = 4096;

/// The NTK condition-index spectrum of one architecture (Fig. 2a/2b
/// material): `K_i = λ_max / λ_i` for `i = 1..=n`, plus the headline
/// condition number.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NtkSpectrumRecord {
    /// The classic condition number `K_1` (averaged over repeats).
    pub condition_number: f64,
    /// Generalised condition indices `K_1..K_n`.
    pub condition_indices: Vec<f64>,
}

/// One stored evaluation result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum EvalRecord {
    /// Bundled zero-cost metrics.
    ZeroCost(ZeroCostMetrics),
    /// Hardware indicators.
    Hardware(HardwareIndicators),
    /// NTK condition-index spectrum.
    NtkSpectrum(NtkSpectrumRecord),
    /// A pluggable proxy's scalar score (stored under
    /// [`ProxyKind::Custom`] keys).
    Scalar(f64),
}

impl EvalRecord {
    /// The zero-cost metrics, if this is a zero-cost record.
    pub fn as_zero_cost(&self) -> Option<ZeroCostMetrics> {
        match self {
            EvalRecord::ZeroCost(m) => Some(*m),
            _ => None,
        }
    }

    /// The hardware indicators, if this is a hardware record.
    pub fn as_hardware(&self) -> Option<HardwareIndicators> {
        match self {
            EvalRecord::Hardware(h) => Some(*h),
            _ => None,
        }
    }

    /// The NTK spectrum, if this is a spectrum record.
    pub fn as_ntk_spectrum(&self) -> Option<&NtkSpectrumRecord> {
        match self {
            EvalRecord::NtkSpectrum(s) => Some(s),
            _ => None,
        }
    }

    /// The scalar score, if this is a pluggable-proxy record.
    pub fn as_scalar(&self) -> Option<f64> {
        match self {
            EvalRecord::Scalar(v) => Some(*v),
            _ => None,
        }
    }

    /// Whether the record satisfies the codec's bounds (and will therefore
    /// survive a log round-trip).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::MalformedRecord`] for records the decoder
    /// would reject.
    pub fn validate(&self) -> Result<(), StoreError> {
        match self {
            EvalRecord::NtkSpectrum(s) if s.condition_indices.len() > MAX_SPECTRUM_INDICES => {
                Err(StoreError::MalformedRecord("spectrum too long"))
            }
            _ => Ok(()),
        }
    }
}

/// Appends the key prefix of the entry layout to `out`.
fn encode_key_into(out: &mut Vec<u8>, key: &EvalKey) {
    out.extend_from_slice(&key.cell.0.to_le_bytes());
    out.push(key.dataset.id() as u8);
    out.extend_from_slice(&key.seed.to_le_bytes());
    let (tag, param) = key.kind.encode();
    out.push(tag);
    out.extend_from_slice(&param.to_le_bytes());
    if let ProxyKind::Custom { id_digest, .. } = key.kind {
        out.extend_from_slice(&id_digest.to_le_bytes());
    }
}

/// Encodes a bare [`EvalKey`] — byte-for-byte the key prefix of
/// [`encode_entry`]'s layout, so a key on the wire (the fabric's `Get`
/// requests) and a key at rest in the log are the same bytes.
pub fn encode_key(key: &EvalKey) -> Vec<u8> {
    let mut out = Vec::with_capacity(28);
    encode_key_into(&mut out, key);
    out
}

/// Decodes a bare [`EvalKey`] produced by [`encode_key`].
///
/// # Errors
///
/// Returns [`StoreError::MalformedRecord`] when the buffer is truncated,
/// carries an unknown dataset or proxy kind, or has trailing garbage.
pub fn decode_key(payload: &[u8]) -> Result<EvalKey, StoreError> {
    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    let key = read_key(&mut r)?;
    if r.pos != payload.len() {
        return Err(StoreError::MalformedRecord("trailing bytes after key"));
    }
    Ok(key)
}

/// Encodes `(key, record)` into the log payload bytes.
///
/// The layout for the built-in [`ProxyKind`] tags (0–2) is byte-for-byte
/// the PR 3 layout (golden-tested); a [`ProxyKind::Custom`] key (tag 3)
/// appends its 64-bit identity word after the kind parameter.
pub fn encode_entry(key: &EvalKey, record: &EvalRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    encode_key_into(&mut out, key);
    match record {
        EvalRecord::ZeroCost(m) => {
            out.push(0);
            out.extend_from_slice(&m.ntk_condition.to_bits().to_le_bytes());
            out.extend_from_slice(&(m.linear_regions as u64).to_le_bytes());
            out.extend_from_slice(&m.trainability.to_bits().to_le_bytes());
            out.extend_from_slice(&m.expressivity.to_bits().to_le_bytes());
        }
        EvalRecord::Hardware(h) => {
            out.push(1);
            for v in [
                h.flops_m,
                h.macs_m,
                h.params_m,
                h.latency_ms,
                h.peak_sram_kib,
                h.flash_kib,
            ] {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        EvalRecord::NtkSpectrum(s) => {
            out.push(2);
            out.extend_from_slice(&s.condition_number.to_bits().to_le_bytes());
            out.extend_from_slice(&(s.condition_indices.len() as u32).to_le_bytes());
            for v in &s.condition_indices {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        EvalRecord::Scalar(v) => {
            out.push(3);
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }
    out
}

/// Cursor over a payload buffer.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], StoreError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(StoreError::MalformedRecord("payload too short"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, StoreError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, StoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn f64(&mut self) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64()?))
    }
}

fn dataset_from_id(id: u8) -> Result<DatasetKind, StoreError> {
    DatasetKind::ALL
        .into_iter()
        .find(|d| d.id() as u8 == id)
        .ok_or(StoreError::MalformedRecord("unknown dataset id"))
}

/// Reads the key prefix of the entry layout from `r`.
fn read_key(r: &mut Reader<'_>) -> Result<EvalKey, StoreError> {
    let cell = ArchDigest(r.u64()?);
    let dataset = dataset_from_id(r.u8()?)?;
    let seed = r.u64()?;
    let kind_tag = r.u8()?;
    let kind_param = r.u16()?;
    // Tag 3 (Custom) carries its 64-bit identity word after the parameter;
    // the built-in tags carry nothing extra (PR 3 layout).
    let identity_word = if kind_tag == 3 { r.u64()? } else { 0 };
    let kind = ProxyKind::decode_extended(kind_tag, kind_param, identity_word)
        .ok_or(StoreError::MalformedRecord("unknown proxy kind"))?;
    Ok(EvalKey {
        cell,
        dataset,
        seed,
        kind,
    })
}

/// Decodes a log payload back into `(key, record)`.
///
/// # Errors
///
/// Returns [`StoreError::MalformedRecord`] when the buffer is truncated,
/// carries an unknown tag, or has trailing garbage.
pub fn decode_entry(payload: &[u8]) -> Result<(EvalKey, EvalRecord), StoreError> {
    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    let key = read_key(&mut r)?;
    let record = match r.u8()? {
        0 => EvalRecord::ZeroCost(ZeroCostMetrics {
            ntk_condition: r.f64()?,
            linear_regions: r.u64()? as usize,
            trainability: r.f64()?,
            expressivity: r.f64()?,
        }),
        1 => EvalRecord::Hardware(HardwareIndicators {
            flops_m: r.f64()?,
            macs_m: r.f64()?,
            params_m: r.f64()?,
            latency_ms: r.f64()?,
            peak_sram_kib: r.f64()?,
            flash_kib: r.f64()?,
        }),
        2 => {
            let condition_number = r.f64()?;
            let n = r.u32()? as usize;
            if n > MAX_SPECTRUM_INDICES {
                return Err(StoreError::MalformedRecord("spectrum too long"));
            }
            let mut condition_indices = Vec::with_capacity(n);
            for _ in 0..n {
                condition_indices.push(r.f64()?);
            }
            EvalRecord::NtkSpectrum(NtkSpectrumRecord {
                condition_number,
                condition_indices,
            })
        }
        3 => EvalRecord::Scalar(r.f64()?),
        _ => return Err(StoreError::MalformedRecord("unknown record tag")),
    };
    if r.pos != payload.len() {
        return Err(StoreError::MalformedRecord("trailing bytes"));
    }
    Ok((key, record))
}

#[cfg(test)]
mod tests {
    use super::*;
    use micronas_searchspace::SearchSpace;

    fn sample_key(kind: ProxyKind) -> EvalKey {
        let space = SearchSpace::nas_bench_201();
        EvalKey {
            cell: ArchDigest::of(&space.cell(4_242).unwrap()),
            dataset: DatasetKind::ImageNet16_120,
            seed: 0xDEAD_BEEF,
            kind,
        }
    }

    #[test]
    fn zero_cost_roundtrip() {
        let key = sample_key(ProxyKind::ZeroCost { ntk_batch: 32 });
        let record = EvalRecord::ZeroCost(ZeroCostMetrics {
            ntk_condition: 12.5,
            linear_regions: 77,
            trainability: -2.52,
            expressivity: 4.34,
        });
        let bytes = encode_entry(&key, &record);
        let (k2, r2) = decode_entry(&bytes).unwrap();
        assert_eq!(k2, key);
        assert_eq!(r2, record);
        assert_eq!(r2.as_zero_cost().unwrap().linear_regions, 77);
    }

    #[test]
    fn hardware_roundtrip() {
        let key = sample_key(ProxyKind::Hardware);
        let record = EvalRecord::Hardware(HardwareIndicators {
            flops_m: 60.0,
            macs_m: 30.0,
            params_m: 0.4,
            latency_ms: 123.456,
            peak_sram_kib: 128.0,
            flash_kib: 400.0,
        });
        let bytes = encode_entry(&key, &record);
        let (k2, r2) = decode_entry(&bytes).unwrap();
        assert_eq!(k2, key);
        assert_eq!(r2.as_hardware().unwrap(), record.as_hardware().unwrap());
    }

    #[test]
    fn spectrum_roundtrip_preserves_bit_patterns() {
        let key = sample_key(ProxyKind::NtkSpectrum { batch: 12 });
        let record = EvalRecord::NtkSpectrum(NtkSpectrumRecord {
            condition_number: 1.0 + f64::EPSILON,
            condition_indices: vec![1.0, 2.5, f64::MAX, 1e-300],
        });
        let bytes = encode_entry(&key, &record);
        let (_, r2) = decode_entry(&bytes).unwrap();
        let (a, b) = (
            record.as_ntk_spectrum().unwrap(),
            r2.as_ntk_spectrum().unwrap(),
        );
        assert_eq!(a.condition_number.to_bits(), b.condition_number.to_bits());
        for (x, y) in a.condition_indices.iter().zip(&b.condition_indices) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn custom_scalar_roundtrip_preserves_identity_and_bits() {
        let key = sample_key(ProxyKind::Custom {
            id_digest: 0x0123_4567_89AB_CDEF,
            param: 7,
        });
        let record = EvalRecord::Scalar(-123.456_789e-30);
        let bytes = encode_entry(&key, &record);
        let (k2, r2) = decode_entry(&bytes).unwrap();
        assert_eq!(k2, key);
        assert_eq!(
            r2.as_scalar().unwrap().to_bits(),
            record.as_scalar().unwrap().to_bits()
        );
        assert!(record.validate().is_ok());
        // A truncated identity word must be rejected, not mis-keyed.
        assert!(decode_entry(&bytes[..bytes.len() - 12]).is_err());
    }

    #[test]
    fn builtin_layouts_do_not_carry_an_identity_word() {
        // The Custom extension appends 8 bytes for tag 3 only; a built-in
        // key + scalar record must stay at the PR 3 offsets.
        let key = sample_key(ProxyKind::Hardware);
        let bytes = encode_entry(&key, &EvalRecord::Scalar(1.0));
        // 8 (cell) + 1 (dataset) + 8 (seed) + 1 (tag) + 2 (param)
        // + 1 (record tag) + 8 (f64).
        assert_eq!(bytes.len(), 29);
        let custom = sample_key(ProxyKind::Custom {
            id_digest: 1,
            param: 0,
        });
        assert_eq!(encode_entry(&custom, &EvalRecord::Scalar(1.0)).len(), 37);
    }

    #[test]
    fn bare_key_codec_matches_the_entry_prefix() {
        for kind in [
            ProxyKind::ZeroCost { ntk_batch: 32 },
            ProxyKind::NtkSpectrum { batch: 12 },
            ProxyKind::Hardware,
            ProxyKind::Custom {
                id_digest: 0xFEED_FACE_CAFE_BEEF,
                param: 3,
            },
        ] {
            let key = sample_key(kind);
            let bytes = encode_key(&key);
            // The bare key is exactly the prefix of the full entry layout.
            let entry = encode_entry(&key, &EvalRecord::Scalar(0.0));
            assert_eq!(entry[..bytes.len()], bytes[..]);
            assert_eq!(decode_key(&bytes).unwrap(), key);
            // Truncation and trailing garbage are both rejected.
            assert!(decode_key(&bytes[..bytes.len() - 1]).is_err());
            let mut long = bytes.clone();
            long.push(0);
            assert!(decode_key(&long).is_err());
        }
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        let key = sample_key(ProxyKind::Hardware);
        let record = EvalRecord::Hardware(HardwareIndicators {
            flops_m: 1.0,
            macs_m: 1.0,
            params_m: 1.0,
            latency_ms: 1.0,
            peak_sram_kib: 1.0,
            flash_kib: 1.0,
        });
        let bytes = encode_entry(&key, &record);
        // Truncated.
        assert!(decode_entry(&bytes[..bytes.len() - 1]).is_err());
        // Trailing garbage.
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode_entry(&long).is_err());
        // Unknown record tag.
        let mut bad_tag = bytes.clone();
        bad_tag[20] = 42; // record tag offset: 8 + 1 + 8 + 1 + 2 = 20
        assert!(decode_entry(&bad_tag).is_err());
        // Unknown dataset id.
        let mut bad_ds = bytes;
        bad_ds[8] = 200;
        assert!(decode_entry(&bad_ds).is_err());
    }
}
