//! The append-only on-disk log behind [`crate::EvalStore`].
//!
//! # File format (version 1)
//!
//! ```text
//! header:  magic "MNEVST01" (8 bytes)
//!          format version   u32 le
//!          namespace        u64 le   (evaluation-configuration fingerprint)
//! record:  payload length   u32 le
//!          checksum         u64 le   (FNV-1a 64 of the payload bytes)
//!          payload          (see `record::encode_entry`)
//! ```
//!
//! The log is append-only: a record, once written, is never modified in
//! place. Crash tolerance comes from replay-time **tail recovery**: a
//! partially written record at the end of the file (torn length prefix,
//! short payload, or checksum mismatch) marks the end of the valid prefix;
//! everything before it is kept, the tail is truncated away, and the store
//! keeps appending from there. A checksum mismatch therefore never silently
//! yields corrupt data — the offending record and anything after it (whose
//! framing can no longer be trusted) are rejected.
//!
//! Re-inserting a key appends a newer record; replay is last-wins. The
//! [`compact`] operation rewrites the log with exactly one record per live
//! key (atomically, via a temp file and rename), which bounds log growth for
//! long-lived stores.

use crate::fnv::fnv1a64;
use crate::record::{decode_entry, encode_entry};
use crate::{EvalKey, EvalRecord, StoreError};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Magic bytes opening every log file.
pub const LOG_MAGIC: [u8; 8] = *b"MNEVST01";

/// Format version written by this build.
pub const LOG_VERSION: u32 = 1;

/// Byte length of the file header.
const HEADER_LEN: u64 = 8 + 4 + 8;

/// Per-record framing overhead (length + checksum).
const FRAME_LEN: usize = 4 + 8;

/// Upper bound on a single payload; anything larger is treated as corruption.
const MAX_PAYLOAD: u32 = 16 << 20;

/// Result of replaying a log file.
#[derive(Debug)]
pub struct Replay {
    /// Every valid `(key, record)` entry, in append order (callers apply
    /// last-wins).
    pub entries: Vec<(EvalKey, EvalRecord)>,
    /// Byte offset of each entry's frame in the file, parallel to
    /// [`Replay::entries`] — the coordinates eviction-capped stores use to
    /// re-read records they dropped from memory.
    pub offsets: Vec<u64>,
    /// Byte offset of the end of the valid prefix.
    pub valid_len: u64,
    /// Whether an invalid tail (torn write or checksum mismatch) was found
    /// and discarded.
    pub recovered: bool,
}

/// An exclusively locked log file: an RAII guard pairing the open handle
/// with the OS advisory writer lock.
///
/// The lock is released by the [`Drop`] impl, so *every* exit path — normal
/// return, `?` early return mid-open (bad header, namespace mismatch), or a
/// panic unwinding through the owner — releases it deterministically instead
/// of relying on the handle eventually being closed. (If the owning process
/// dies outright the kernel drops the open file description and its lock;
/// tail recovery handles whatever the crash left in the file.)
#[derive(Debug)]
pub(crate) struct LockedFile {
    file: File,
    path: PathBuf,
}

impl LockedFile {
    /// Takes the OS advisory lock on `file`, enforcing a single writer.
    fn lock(file: File, path: &Path) -> Result<Self, StoreError> {
        match file.try_lock() {
            Ok(()) => Ok(Self {
                file,
                path: path.to_path_buf(),
            }),
            Err(std::fs::TryLockError::WouldBlock) => Err(StoreError::Locked {
                path: path.to_path_buf(),
            }),
            Err(std::fs::TryLockError::Error(e)) => Err(e.into()),
        }
    }

    /// The locked file's path.
    pub(crate) fn path(&self) -> &Path {
        &self.path
    }

    /// Truncates (or extends) the underlying file.
    fn set_len(&self, len: u64) -> std::io::Result<()> {
        self.file.set_len(len)
    }

    /// Length of the underlying file in bytes.
    fn len(&self) -> std::io::Result<u64> {
        Ok(self.file.metadata()?.len())
    }
}

impl Drop for LockedFile {
    fn drop(&mut self) {
        // Explicit, best-effort release; the kernel also drops the lock with
        // the file description if this is skipped by an abort.
        let _ = self.file.unlock();
    }
}

impl Read for LockedFile {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        self.file.read(buf)
    }
}

impl Write for LockedFile {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.file.write(buf)
    }
    fn flush(&mut self) -> std::io::Result<()> {
        self.file.flush()
    }
}

impl Seek for LockedFile {
    fn seek(&mut self, pos: SeekFrom) -> std::io::Result<u64> {
        self.file.seek(pos)
    }
}

/// An open, appendable log file.
#[derive(Debug)]
pub struct LogWriter {
    writer: BufWriter<LockedFile>,
    /// Byte offset the next append lands at (end of the valid prefix).
    end: u64,
}

impl LogWriter {
    /// Opens `path` for appending, creating it (with a fresh header) if
    /// missing, validating the header and replaying existing records
    /// otherwise. An invalid tail is truncated away before appending resumes.
    ///
    /// # Errors
    ///
    /// I/O failures, bad magic, version/namespace mismatches, or
    /// [`StoreError::Locked`] when another process (or another store in this
    /// process) already has the log open.
    pub fn open(path: &Path, namespace: u64) -> Result<(Self, Replay), StoreError> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        // The guard owns the lock from here on: any error path below (bad
        // magic, version/namespace mismatch, I/O failure) drops it and
        // releases the lock on the way out.
        let mut file = LockedFile::lock(file, path)?;

        // Decide fresh-vs-existing from the file length observed *after*
        // taking the lock: a pre-open `exists()` check would race with a
        // concurrent creator and overwrite its header and records.
        //
        // A file shorter than one header cannot hold any record. If its
        // bytes are a prefix of the header we would write — the only thing a
        // crash during creation can leave behind — recover it like a torn
        // tail (rewrite the header, resume empty) rather than bricking the
        // store with `BadMagic` forever. Anything else, short or
        // full-length, is someone else's file and is refused untouched.
        let mut header = Vec::with_capacity(HEADER_LEN as usize);
        header.extend_from_slice(&LOG_MAGIC);
        header.extend_from_slice(&LOG_VERSION.to_le_bytes());
        header.extend_from_slice(&namespace.to_le_bytes());

        let replay = if file.len()? >= HEADER_LEN {
            let replay = replay_file(&mut file, namespace)?;
            if replay.recovered {
                file.set_len(replay.valid_len)?;
            }
            file.seek(SeekFrom::Start(replay.valid_len))?;
            replay
        } else {
            let mut torn = Vec::new();
            file.seek(SeekFrom::Start(0))?;
            file.read_to_end(&mut torn)?;
            if !header.starts_with(&torn) {
                return Err(StoreError::BadMagic);
            }
            file.set_len(0)?;
            file.seek(SeekFrom::Start(0))?;
            file.write_all(&header)?;
            file.flush()?;
            Replay {
                entries: Vec::new(),
                offsets: Vec::new(),
                valid_len: HEADER_LEN,
                recovered: !torn.is_empty(),
            }
        };

        let end = replay.valid_len;
        Ok((
            Self {
                writer: BufWriter::new(file),
                end,
            },
            replay,
        ))
    }

    /// Appends one record and flushes it to the operating system. Returns
    /// the byte offset of the record's frame — the coordinate
    /// eviction-capped stores re-read it from (`read_record_at`).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn append(&mut self, key: &EvalKey, record: &EvalRecord) -> Result<u64, StoreError> {
        let offset = self.end;
        let payload = encode_entry(key, record);
        self.writer
            .write_all(&(payload.len() as u32).to_le_bytes())?;
        self.writer.write_all(&fnv1a64(&payload).to_le_bytes())?;
        self.writer.write_all(&payload)?;
        self.writer.flush()?;
        self.end += (FRAME_LEN + payload.len()) as u64;
        Ok(offset)
    }

    /// The path of the underlying file.
    pub fn path(&self) -> &Path {
        self.writer.get_ref().path()
    }
}

/// Replays the records of an open log file (header first).
fn replay_file(file: &mut LockedFile, namespace: u64) -> Result<Replay, StoreError> {
    file.seek(SeekFrom::Start(0))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)?;
    replay_bytes(&bytes, namespace)
}

/// Replays a log image held in memory.
///
/// # Errors
///
/// Fails on header problems (magic / version / namespace); record-level
/// corruption is *not* an error — it terminates the valid prefix instead.
pub fn replay_bytes(bytes: &[u8], namespace: u64) -> Result<Replay, StoreError> {
    if bytes.len() < HEADER_LEN as usize {
        return Err(StoreError::BadMagic);
    }
    if bytes[..8] != LOG_MAGIC {
        return Err(StoreError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("len 4"));
    if version != LOG_VERSION {
        return Err(StoreError::VersionMismatch {
            found: version,
            expected: LOG_VERSION,
        });
    }
    let found_ns = u64::from_le_bytes(bytes[12..20].try_into().expect("len 8"));
    if found_ns != namespace {
        return Err(StoreError::NamespaceMismatch {
            found: found_ns,
            expected: namespace,
        });
    }

    let mut entries = Vec::new();
    let mut offsets = Vec::new();
    let mut pos = HEADER_LEN as usize;
    let mut recovered = false;
    while pos < bytes.len() {
        let Some(frame) = bytes.get(pos..pos + FRAME_LEN) else {
            recovered = true; // torn frame at the tail
            break;
        };
        let len = u32::from_le_bytes(frame[..4].try_into().expect("len 4"));
        let checksum = u64::from_le_bytes(frame[4..12].try_into().expect("len 8"));
        if len > MAX_PAYLOAD {
            recovered = true; // nonsensical length: treat as corruption
            break;
        }
        let start = pos + FRAME_LEN;
        let Some(payload) = bytes.get(start..start + len as usize) else {
            recovered = true; // short payload at the tail
            break;
        };
        if fnv1a64(payload) != checksum {
            recovered = true; // checksum mismatch: reject record and tail
            break;
        }
        match decode_entry(payload) {
            Ok(entry) => {
                entries.push(entry);
                offsets.push(pos as u64);
            }
            Err(_) => {
                recovered = true; // checksummed but undecodable: reject
                break;
            }
        }
        pos = start + len as usize;
    }

    Ok(Replay {
        entries,
        offsets,
        valid_len: pos as u64,
        recovered,
    })
}

/// Reads the single record whose frame starts at `offset` through an
/// independent read handle — the re-read path of eviction-capped stores.
/// The frame's checksum is verified before decoding, so a wrong offset or a
/// concurrently truncated file surfaces as corruption, never as wrong data.
///
/// # Errors
///
/// I/O failures, or [`StoreError::Corrupt`] for a bad frame at `offset`.
pub(crate) fn read_record_at(
    file: &mut File,
    offset: u64,
) -> Result<(EvalKey, EvalRecord), StoreError> {
    file.seek(SeekFrom::Start(offset))?;
    let mut frame = [0u8; FRAME_LEN];
    file.read_exact(&mut frame)?;
    let len = u32::from_le_bytes(frame[..4].try_into().expect("len 4"));
    let checksum = u64::from_le_bytes(frame[4..12].try_into().expect("len 8"));
    if len > MAX_PAYLOAD {
        return Err(StoreError::Corrupt {
            offset,
            reason: "nonsensical payload length".into(),
        });
    }
    let mut payload = vec![0u8; len as usize];
    file.read_exact(&mut payload)?;
    if fnv1a64(&payload) != checksum {
        return Err(StoreError::Corrupt {
            offset,
            reason: "checksum mismatch on point read".into(),
        });
    }
    decode_entry(&payload)
}

/// Statistics of one [`compact`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct CompactStats {
    /// Records in the log before compaction (including superseded ones).
    pub records_before: usize,
    /// Live records written back.
    pub records_after: usize,
    /// File size before, in bytes.
    pub bytes_before: u64,
    /// File size after, in bytes.
    pub bytes_after: u64,
}

/// Offline compaction: rewrites `path` so it contains exactly one record per
/// live key (the latest one), preserving first-seen key order. The rewrite
/// is atomic — records stream into `<path>.compact.tmp`, which then replaces
/// the log via rename — so a crash mid-compaction leaves the original intact.
///
/// # Errors
///
/// Propagates I/O failures and header mismatches.
pub fn compact(path: &Path, namespace: u64) -> Result<CompactStats, StoreError> {
    // Hold the writer lock for the whole rewrite so a live store can never
    // append to a log that is being replaced underneath it. The RAII guard
    // releases it on every exit path, including the replay `?` below.
    let file = OpenOptions::new().read(true).open(path)?;
    let mut locked = LockedFile::lock(file, path)?;
    let mut bytes = Vec::new();
    locked.read_to_end(&mut bytes)?;
    let replay = replay_bytes(&bytes, namespace)?;
    let records_before = replay.entries.len();

    // Last-wins per key, preserving first-seen order for determinism.
    let mut order: Vec<EvalKey> = Vec::new();
    let mut latest: std::collections::HashMap<EvalKey, EvalRecord> =
        std::collections::HashMap::new();
    for (key, record) in replay.entries {
        if latest.insert(key, record).is_none() {
            order.push(key);
        }
    }

    let tmp_path = path.with_extension("compact.tmp");
    {
        let file = File::create(&tmp_path)?;
        let mut w = BufWriter::new(file);
        w.write_all(&LOG_MAGIC)?;
        w.write_all(&LOG_VERSION.to_le_bytes())?;
        w.write_all(&namespace.to_le_bytes())?;
        for key in &order {
            let payload = encode_entry(key, &latest[key]);
            w.write_all(&(payload.len() as u32).to_le_bytes())?;
            w.write_all(&fnv1a64(&payload).to_le_bytes())?;
            w.write_all(&payload)?;
        }
        w.flush()?;
    }
    std::fs::rename(&tmp_path, path)?;

    Ok(CompactStats {
        records_before,
        records_after: order.len(),
        bytes_before: bytes.len() as u64,
        bytes_after: std::fs::metadata(path)?.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProxyKind;
    use micronas_datasets::DatasetKind;
    use micronas_proxies::ZeroCostMetrics;
    use micronas_searchspace::SearchSpace;

    fn temp_path(tag: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!(
            "micronas-store-log-{}-{tag}.log",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn sample_entry(i: usize) -> (EvalKey, EvalRecord) {
        let space = SearchSpace::nas_bench_201();
        let key = EvalKey::zero_cost(&space.cell(i).unwrap(), DatasetKind::Cifar10, 3, 12);
        let record = EvalRecord::ZeroCost(ZeroCostMetrics {
            ntk_condition: i as f64 + 0.5,
            linear_regions: i + 1,
            trainability: -(i as f64),
            expressivity: (i as f64).ln_1p(),
        });
        (key, record)
    }

    #[test]
    fn fresh_log_roundtrips() {
        let path = temp_path("roundtrip");
        {
            let (mut log, replay) = LogWriter::open(&path, 7).unwrap();
            assert!(replay.entries.is_empty());
            for i in 0..5 {
                let (k, r) = sample_entry(i);
                log.append(&k, &r).unwrap();
            }
        }
        let (_, replay) = LogWriter::open(&path, 7).unwrap();
        assert_eq!(replay.entries.len(), 5);
        assert!(!replay.recovered);
        assert_eq!(replay.entries[3], sample_entry(3));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn namespace_and_version_are_enforced() {
        let path = temp_path("namespace");
        drop(LogWriter::open(&path, 1).unwrap());
        assert!(matches!(
            LogWriter::open(&path, 2),
            Err(StoreError::NamespaceMismatch {
                found: 1,
                expected: 2
            })
        ));
        // Corrupt the magic.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[0] = b'X';
        assert!(matches!(replay_bytes(&bytes, 1), Err(StoreError::BadMagic)));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_tail_is_recovered() {
        let path = temp_path("torn");
        {
            let (mut log, _) = LogWriter::open(&path, 0).unwrap();
            for i in 0..3 {
                let (k, r) = sample_entry(i);
                log.append(&k, &r).unwrap();
            }
        }
        // Simulate a crash mid-record: chop bytes off the end.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 7]).unwrap();

        let (mut log, replay) = LogWriter::open(&path, 0).unwrap();
        assert_eq!(replay.entries.len(), 2, "the torn third record is dropped");
        assert!(replay.recovered);
        // The log must be appendable again after recovery.
        let (k, r) = sample_entry(9);
        log.append(&k, &r).unwrap();
        drop(log);
        let (_, replay) = LogWriter::open(&path, 0).unwrap();
        assert_eq!(replay.entries.len(), 3);
        assert!(!replay.recovered);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn checksum_mismatch_rejects_the_record_and_tail() {
        let path = temp_path("checksum");
        let offsets = {
            let (mut log, _) = LogWriter::open(&path, 0).unwrap();
            let mut offsets = Vec::new();
            for i in 0..3 {
                offsets.push(std::fs::metadata(&path).unwrap().len());
                let (k, r) = sample_entry(i);
                log.append(&k, &r).unwrap();
            }
            offsets
        };
        // Flip one payload byte of the SECOND record.
        let mut bytes = std::fs::read(&path).unwrap();
        let payload_start = offsets[1] as usize + FRAME_LEN;
        bytes[payload_start + 30] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();

        let (_, replay) = LogWriter::open(&path, 0).unwrap();
        assert_eq!(
            replay.entries.len(),
            1,
            "only the record before the corruption survives"
        );
        assert!(replay.recovered);
        assert_eq!(replay.entries[0], sample_entry(0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn lock_is_released_when_a_writer_panics() {
        let path = temp_path("panic");
        let outcome = std::panic::catch_unwind(|| {
            let (mut log, _) = LogWriter::open(&path, 0).unwrap();
            let (k, r) = sample_entry(0);
            log.append(&k, &r).unwrap();
            panic!("simulated writer crash while holding the lock");
        });
        assert!(outcome.is_err(), "the writer must have panicked");
        // Unwinding dropped the RAII guard, releasing the advisory lock: a
        // second open must succeed immediately and see the appended record.
        let (_, replay) = LogWriter::open(&path, 0).expect("lock released after panic");
        assert_eq!(replay.entries.len(), 1);
        assert_eq!(replay.entries[0], sample_entry(0));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn lock_is_released_on_failed_open() {
        let path = temp_path("early-return");
        drop(LogWriter::open(&path, 1).unwrap());
        // A namespace mismatch errors *after* the lock is taken; the guard
        // must release it on that early-return path, or the subsequent
        // correct open would see `Locked` instead of succeeding.
        assert!(matches!(
            LogWriter::open(&path, 2),
            Err(StoreError::NamespaceMismatch { .. })
        ));
        let (_, replay) = LogWriter::open(&path, 1).expect("lock released after failed open");
        assert!(replay.entries.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn lock_blocks_second_writer_while_held() {
        let path = temp_path("held");
        let (log, _) = LogWriter::open(&path, 0).unwrap();
        assert!(matches!(
            LogWriter::open(&path, 0),
            Err(StoreError::Locked { .. })
        ));
        drop(log);
        assert!(LogWriter::open(&path, 0).is_ok());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn compaction_preserves_live_entries() {
        let path = temp_path("compact");
        {
            let (mut log, _) = LogWriter::open(&path, 5).unwrap();
            // Ten appends over five keys: each key written twice, the second
            // time with a different record value.
            for round in 0..2 {
                for i in 0..5 {
                    let (k, _) = sample_entry(i);
                    let r = EvalRecord::ZeroCost(ZeroCostMetrics {
                        ntk_condition: (round * 100 + i) as f64,
                        linear_regions: round * 10 + i,
                        trainability: 0.0,
                        expressivity: 0.0,
                    });
                    log.append(&k, &r).unwrap();
                }
            }
        }
        let before = std::fs::metadata(&path).unwrap().len();
        let stats = compact(&path, 5).unwrap();
        assert_eq!(stats.records_before, 10);
        assert_eq!(stats.records_after, 5);
        assert_eq!(stats.bytes_before, before);
        assert!(stats.bytes_after < stats.bytes_before);

        let (_, replay) = LogWriter::open(&path, 5).unwrap();
        assert_eq!(replay.entries.len(), 5);
        for (i, (key, record)) in replay.entries.iter().enumerate() {
            assert_eq!(*key, sample_entry(i).0, "first-seen key order preserved");
            let m = record.as_zero_cost().unwrap();
            assert_eq!(m.ntk_condition, (100 + i) as f64, "last write wins");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn proxy_kind_hardware_key_survives_roundtrip() {
        let path = temp_path("hw");
        let space = SearchSpace::nas_bench_201();
        let key = EvalKey::hardware(&space.cell(77).unwrap(), DatasetKind::Cifar100);
        assert_eq!(key.kind, ProxyKind::Hardware);
        let record = EvalRecord::Hardware(micronas_hw::HardwareIndicators {
            flops_m: 1.0,
            macs_m: 2.0,
            params_m: 3.0,
            latency_ms: 4.0,
            peak_sram_kib: 5.0,
            flash_kib: 6.0,
        });
        {
            let (mut log, _) = LogWriter::open(&path, 0).unwrap();
            log.append(&key, &record).unwrap();
        }
        let (_, replay) = LogWriter::open(&path, 0).unwrap();
        assert_eq!(replay.entries[0].0, key);
        std::fs::remove_file(&path).unwrap();
    }
}
