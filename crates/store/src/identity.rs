//! Content-addressed architecture identity.
//!
//! Every stored evaluation is keyed by an [`EvalKey`]: the digest of the
//! cell's canonical form plus the evaluation coordinates (dataset, seed,
//! proxy kind). The digest is computed with **FNV-1a (64-bit)** — a simple,
//! publicly specified hash with fixed constants — over a version-stamped
//! canonical byte encoding, so digests are stable across processes, builds
//! and platforms. `std::hash::DefaultHasher` is deliberately *not* used: its
//! output is allowed to change between Rust releases and is randomised in
//! some configurations, which would silently orphan every persisted record.

use crate::fnv::Fnv1a;
use micronas_datasets::DatasetKind;
use micronas_searchspace::CellTopology;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Version stamp mixed into every digest. Bump when the canonical encoding
/// changes so stale digests can never alias new ones.
pub const IDENTITY_VERSION: u32 = 1;

/// Domain-separation prefix of the canonical cell encoding.
const CELL_DOMAIN: &[u8] = b"micronas/cell/";

/// A stable, content-addressed digest of an architecture.
///
/// Two cells receive the same digest exactly when they are isomorphic
/// (identical up to relabeling of the intermediate nodes — see
/// [`CellTopology::canonical_form`]). The digest is a pure function of the
/// canonical encoding and [`IDENTITY_VERSION`]; it does not depend on the
/// process, platform or Rust release.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ArchDigest(pub u64);

impl ArchDigest {
    /// Digest of `cell`'s isomorphism orbit.
    pub fn of(cell: &CellTopology) -> Self {
        let canonical = cell.canonical_form();
        let mut h = Fnv1a::new();
        h.update(CELL_DOMAIN);
        h.update(&IDENTITY_VERSION.to_le_bytes());
        for op in canonical.edge_ops() {
            h.update(&[op.index() as u8]);
        }
        ArchDigest(h.finish())
    }

    /// The raw 64-bit digest value.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ArchDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Which proxy family a record belongs to, including the one configuration
/// axis the paper sweeps (the NTK batch size). Everything else that shapes
/// proxy values — probe-network geometry, linear-region probing, the target
/// MCU — is captured by the store's namespace fingerprint instead (see
/// [`crate::EvalStore::namespace`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProxyKind {
    /// The bundled zero-cost metrics (NTK condition + linear regions) at the
    /// given NTK batch size.
    ZeroCost {
        /// NTK mini-batch size.
        ntk_batch: u16,
    },
    /// The full NTK condition-index spectrum `K_1..K_n` at the given batch
    /// size (Fig. 2a/2b material).
    NtkSpectrum {
        /// NTK mini-batch size.
        batch: u16,
    },
    /// Hardware indicators (FLOPs, latency, memory). Seed-independent:
    /// records of this kind use seed 0 by convention.
    Hardware,
}

impl ProxyKind {
    /// Stable `(tag, parameter)` encoding used by the log format and the
    /// shard hash.
    pub fn encode(self) -> (u8, u16) {
        match self {
            ProxyKind::ZeroCost { ntk_batch } => (0, ntk_batch),
            ProxyKind::NtkSpectrum { batch } => (1, batch),
            ProxyKind::Hardware => (2, 0),
        }
    }

    /// Inverse of [`ProxyKind::encode`].
    pub fn decode(tag: u8, param: u16) -> Option<Self> {
        match tag {
            0 => Some(ProxyKind::ZeroCost { ntk_batch: param }),
            1 => Some(ProxyKind::NtkSpectrum { batch: param }),
            2 => Some(ProxyKind::Hardware),
            _ => None,
        }
    }
}

/// The full identity of one stored evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EvalKey {
    /// Content-addressed digest of the architecture (canonical form).
    pub cell: ArchDigest,
    /// Dataset the proxies were evaluated on.
    pub dataset: DatasetKind,
    /// Reproducibility seed of the evaluation (0 for seed-independent kinds).
    pub seed: u64,
    /// Proxy family (and its swept parameter).
    pub kind: ProxyKind,
}

impl EvalKey {
    /// Key for the bundled zero-cost metrics of a cell.
    pub fn zero_cost(cell: &CellTopology, dataset: DatasetKind, seed: u64, ntk_batch: u16) -> Self {
        Self {
            cell: ArchDigest::of(cell),
            dataset,
            seed,
            kind: ProxyKind::ZeroCost { ntk_batch },
        }
    }

    /// Key for the NTK condition-index spectrum of a cell.
    pub fn ntk_spectrum(cell: &CellTopology, dataset: DatasetKind, seed: u64, batch: u16) -> Self {
        Self {
            cell: ArchDigest::of(cell),
            dataset,
            seed,
            kind: ProxyKind::NtkSpectrum { batch },
        }
    }

    /// Key for the (seed-independent) hardware indicators of a cell.
    pub fn hardware(cell: &CellTopology, dataset: DatasetKind) -> Self {
        Self {
            cell: ArchDigest::of(cell),
            dataset,
            seed: 0,
            kind: ProxyKind::Hardware,
        }
    }

    /// A stable 64-bit mix of every key field, used for shard selection.
    pub fn shard_hash(&self) -> u64 {
        let (tag, param) = self.kind.encode();
        let mut h = Fnv1a::new();
        h.update(&self.cell.0.to_le_bytes());
        h.update(&[self.dataset.id() as u8]);
        h.update(&self.seed.to_le_bytes());
        h.update(&[tag]);
        h.update(&param.to_le_bytes());
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micronas_searchspace::{Operation, SearchSpace};

    #[test]
    fn digest_is_isomorphism_invariant() {
        let cell = CellTopology::new([
            Operation::NorConv3x3,
            Operation::SkipConnect,
            Operation::None,
            Operation::AvgPool3x3,
            Operation::NorConv1x1,
            Operation::None,
        ]);
        let swapped = cell.intermediate_swap().unwrap();
        assert_ne!(cell, swapped);
        assert_eq!(ArchDigest::of(&cell), ArchDigest::of(&swapped));
    }

    #[test]
    fn digests_separate_all_canonical_classes() {
        // Collision-freeness over the *entire* space: every isomorphism
        // class must map to a distinct digest.
        let space = SearchSpace::nas_bench_201();
        let mut seen: std::collections::HashMap<u64, CellTopology> =
            std::collections::HashMap::new();
        for i in 0..space.len() {
            let cell = space.cell(i).unwrap();
            let digest = ArchDigest::of(&cell).value();
            if let Some(previous) = seen.insert(digest, cell) {
                assert!(
                    previous.isomorphic_to(&cell),
                    "digest collision between non-isomorphic cells {previous} and {cell}"
                );
            }
        }
        assert_eq!(seen.len(), 14_125, "one digest per isomorphism class");
    }

    #[test]
    fn proxy_kind_roundtrips() {
        for kind in [
            ProxyKind::ZeroCost { ntk_batch: 32 },
            ProxyKind::NtkSpectrum { batch: 4 },
            ProxyKind::Hardware,
        ] {
            let (tag, param) = kind.encode();
            assert_eq!(ProxyKind::decode(tag, param), Some(kind));
        }
        assert_eq!(ProxyKind::decode(99, 0), None);
    }

    #[test]
    fn keys_distinguish_every_coordinate() {
        let space = SearchSpace::nas_bench_201();
        let cell = space.cell(123).unwrap();
        let base = EvalKey::zero_cost(&cell, DatasetKind::Cifar10, 7, 32);
        assert_ne!(
            base,
            EvalKey::zero_cost(&cell, DatasetKind::Cifar100, 7, 32)
        );
        assert_ne!(base, EvalKey::zero_cost(&cell, DatasetKind::Cifar10, 8, 32));
        assert_ne!(base, EvalKey::zero_cost(&cell, DatasetKind::Cifar10, 7, 16));
        assert_ne!(
            base,
            EvalKey::ntk_spectrum(&cell, DatasetKind::Cifar10, 7, 32)
        );
        assert_ne!(
            base.shard_hash(),
            EvalKey::hardware(&cell, DatasetKind::Cifar10).shard_hash()
        );
    }
}
