//! Content-addressed architecture identity.
//!
//! Every stored evaluation is keyed by an [`EvalKey`]: the digest of the
//! cell's canonical form plus the evaluation coordinates (dataset, seed,
//! proxy kind). The digest is computed with **FNV-1a (64-bit)** — a simple,
//! publicly specified hash with fixed constants — over a version-stamped
//! canonical byte encoding, so digests are stable across processes, builds
//! and platforms. `std::hash::DefaultHasher` is deliberately *not* used: its
//! output is allowed to change between Rust releases and is randomised in
//! some configurations, which would silently orphan every persisted record.

use crate::fnv::Fnv1a;
use micronas_datasets::DatasetKind;
use micronas_searchspace::CellTopology;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Version stamp mixed into every digest. Bump when the canonical encoding
/// changes so stale digests can never alias new ones.
pub const IDENTITY_VERSION: u32 = 1;

/// Domain-separation prefix of the canonical cell encoding.
const CELL_DOMAIN: &[u8] = b"micronas/cell/";

/// A stable, content-addressed digest of an architecture.
///
/// Two cells receive the same digest exactly when they are isomorphic
/// (identical up to relabeling of the intermediate nodes — see
/// [`CellTopology::canonical_form`]). The digest is a pure function of the
/// canonical encoding and [`IDENTITY_VERSION`]; it does not depend on the
/// process, platform or Rust release.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ArchDigest(pub u64);

impl ArchDigest {
    /// Digest of `cell`'s isomorphism orbit.
    pub fn of(cell: &CellTopology) -> Self {
        let canonical = cell.canonical_form();
        let mut h = Fnv1a::new();
        h.update(CELL_DOMAIN);
        h.update(&IDENTITY_VERSION.to_le_bytes());
        for op in canonical.edge_ops() {
            h.update(&[op.index() as u8]);
        }
        ArchDigest(h.finish())
    }

    /// The raw 64-bit digest value.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for ArchDigest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Which proxy family a record belongs to, including the one configuration
/// axis the paper sweeps (the NTK batch size). Everything else that shapes
/// the built-in proxy values — probe-network geometry, linear-region
/// probing, the target MCU — is captured by the store's namespace
/// fingerprint instead (see [`crate::EvalStore::namespace`]).
///
/// The enum is **open for extension** through the [`ProxyKind::Custom`]
/// arm: any proxy plugin gets a persistent identity from its id digest
/// (see [`custom_proxy_digest`]) without touching this crate. The three
/// original arms keep their exact PR 3 byte encodings (golden-tested), so
/// extending the enum never invalidates an existing log and needs no
/// namespace bump.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProxyKind {
    /// The bundled zero-cost metrics (NTK condition + linear regions) at the
    /// given NTK batch size.
    ZeroCost {
        /// NTK mini-batch size.
        ntk_batch: u16,
    },
    /// The full NTK condition-index spectrum `K_1..K_n` at the given batch
    /// size (Fig. 2a/2b material).
    NtkSpectrum {
        /// NTK mini-batch size.
        batch: u16,
    },
    /// Hardware indicators (FLOPs, latency, memory). Seed-independent:
    /// records of this kind use seed 0 by convention.
    Hardware,
    /// A pluggable proxy, identified by the digest of its stable string id
    /// and configuration fingerprint ([`custom_proxy_digest`]).
    Custom {
        /// Digest of the proxy's `(id, config fingerprint)` identity.
        id_digest: u64,
        /// A free per-kind parameter axis (mirrors the built-in kinds'
        /// swept parameter; 0 when the proxy sweeps nothing).
        param: u16,
    },
}

impl ProxyKind {
    /// Stable `(tag, parameter)` encoding used by the log format and the
    /// shard hash. The [`ProxyKind::Custom`] arm carries an additional
    /// 64-bit identity word ([`ProxyKind::identity_word`]) that the log
    /// format appends after the parameter for tag 3 only — the byte layout
    /// of tags 0–2 is exactly the PR 3 layout.
    pub fn encode(self) -> (u8, u16) {
        match self {
            ProxyKind::ZeroCost { ntk_batch } => (0, ntk_batch),
            ProxyKind::NtkSpectrum { batch } => (1, batch),
            ProxyKind::Hardware => (2, 0),
            ProxyKind::Custom { param, .. } => (3, param),
        }
    }

    /// The extra 64-bit identity word of the [`ProxyKind::Custom`] arm
    /// (0 for the built-in kinds, which need none).
    pub fn identity_word(self) -> u64 {
        match self {
            ProxyKind::Custom { id_digest, .. } => id_digest,
            _ => 0,
        }
    }

    /// Inverse of [`ProxyKind::encode`] for the built-in kinds.
    ///
    /// Returns `None` for tag 3: a [`ProxyKind::Custom`] kind cannot be
    /// reconstructed without its identity word — use
    /// [`ProxyKind::decode_extended`].
    pub fn decode(tag: u8, param: u16) -> Option<Self> {
        match tag {
            0 => Some(ProxyKind::ZeroCost { ntk_batch: param }),
            1 => Some(ProxyKind::NtkSpectrum { batch: param }),
            2 => Some(ProxyKind::Hardware),
            _ => None,
        }
    }

    /// Inverse of [`ProxyKind::encode`] + [`ProxyKind::identity_word`],
    /// covering every kind including [`ProxyKind::Custom`].
    pub fn decode_extended(tag: u8, param: u16, identity_word: u64) -> Option<Self> {
        match tag {
            3 => Some(ProxyKind::Custom {
                id_digest: identity_word,
                param,
            }),
            _ => Self::decode(tag, param),
        }
    }
}

/// The persistent identity digest of a pluggable proxy: FNV-1a over a
/// domain prefix, the proxy's stable string id and its configuration
/// fingerprint. Two proxies share cached results exactly when id *and*
/// configuration agree.
pub fn custom_proxy_digest(id: &str, config_fingerprint: u64) -> u64 {
    let mut h = Fnv1a::new();
    h.update(b"micronas/proxy-id/");
    h.update(&(id.len() as u64).to_le_bytes());
    h.update(id.as_bytes());
    h.update(&config_fingerprint.to_le_bytes());
    h.finish()
}

/// The full identity of one stored evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EvalKey {
    /// Content-addressed digest of the architecture (canonical form).
    pub cell: ArchDigest,
    /// Dataset the proxies were evaluated on.
    pub dataset: DatasetKind,
    /// Reproducibility seed of the evaluation (0 for seed-independent kinds).
    pub seed: u64,
    /// Proxy family (and its swept parameter).
    pub kind: ProxyKind,
}

impl EvalKey {
    /// Key for the bundled zero-cost metrics of a cell.
    pub fn zero_cost(cell: &CellTopology, dataset: DatasetKind, seed: u64, ntk_batch: u16) -> Self {
        Self {
            cell: ArchDigest::of(cell),
            dataset,
            seed,
            kind: ProxyKind::ZeroCost { ntk_batch },
        }
    }

    /// Key for the NTK condition-index spectrum of a cell.
    pub fn ntk_spectrum(cell: &CellTopology, dataset: DatasetKind, seed: u64, batch: u16) -> Self {
        Self {
            cell: ArchDigest::of(cell),
            dataset,
            seed,
            kind: ProxyKind::NtkSpectrum { batch },
        }
    }

    /// Key for the (seed-independent) hardware indicators of a cell.
    pub fn hardware(cell: &CellTopology, dataset: DatasetKind) -> Self {
        Self {
            cell: ArchDigest::of(cell),
            dataset,
            seed: 0,
            kind: ProxyKind::Hardware,
        }
    }

    /// Key for a pluggable proxy's scalar score, identified by the digest of
    /// the proxy's `(id, config fingerprint)` pair ([`custom_proxy_digest`]).
    pub fn custom(
        cell: &CellTopology,
        dataset: DatasetKind,
        seed: u64,
        id_digest: u64,
        param: u16,
    ) -> Self {
        Self {
            cell: ArchDigest::of(cell),
            dataset,
            seed,
            kind: ProxyKind::Custom { id_digest, param },
        }
    }

    /// A stable 64-bit mix of every key field, used for shard selection.
    ///
    /// Built-in kinds hash exactly the PR 3 fields (values golden-tested);
    /// the [`ProxyKind::Custom`] arm additionally mixes its identity word.
    pub fn shard_hash(&self) -> u64 {
        let (tag, param) = self.kind.encode();
        let mut h = Fnv1a::new();
        h.update(&self.cell.0.to_le_bytes());
        h.update(&[self.dataset.id() as u8]);
        h.update(&self.seed.to_le_bytes());
        h.update(&[tag]);
        h.update(&param.to_le_bytes());
        if let ProxyKind::Custom { id_digest, .. } = self.kind {
            h.update(&id_digest.to_le_bytes());
        }
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micronas_searchspace::{Operation, SearchSpace};

    #[test]
    fn digest_is_isomorphism_invariant() {
        let cell = CellTopology::new([
            Operation::NorConv3x3,
            Operation::SkipConnect,
            Operation::None,
            Operation::AvgPool3x3,
            Operation::NorConv1x1,
            Operation::None,
        ]);
        let swapped = cell.intermediate_swap().unwrap();
        assert_ne!(cell, swapped);
        assert_eq!(ArchDigest::of(&cell), ArchDigest::of(&swapped));
    }

    #[test]
    fn digests_separate_all_canonical_classes() {
        // Collision-freeness over the *entire* space: every isomorphism
        // class must map to a distinct digest.
        let space = SearchSpace::nas_bench_201();
        let mut seen: std::collections::HashMap<u64, CellTopology> =
            std::collections::HashMap::new();
        for i in 0..space.len() {
            let cell = space.cell(i).unwrap();
            let digest = ArchDigest::of(&cell).value();
            if let Some(previous) = seen.insert(digest, cell) {
                assert!(
                    previous.isomorphic_to(&cell),
                    "digest collision between non-isomorphic cells {previous} and {cell}"
                );
            }
        }
        assert_eq!(seen.len(), 14_125, "one digest per isomorphism class");
    }

    #[test]
    fn proxy_kind_roundtrips() {
        for kind in [
            ProxyKind::ZeroCost { ntk_batch: 32 },
            ProxyKind::NtkSpectrum { batch: 4 },
            ProxyKind::Hardware,
        ] {
            let (tag, param) = kind.encode();
            assert_eq!(ProxyKind::decode(tag, param), Some(kind));
            assert_eq!(kind.identity_word(), 0, "built-ins carry no identity");
            assert_eq!(ProxyKind::decode_extended(tag, param, 0), Some(kind));
        }
        assert_eq!(ProxyKind::decode(99, 0), None);

        let custom = ProxyKind::Custom {
            id_digest: 0xFEED_FACE,
            param: 9,
        };
        let (tag, param) = custom.encode();
        assert_eq!((tag, param), (3, 9));
        assert_eq!(custom.identity_word(), 0xFEED_FACE);
        assert_eq!(
            ProxyKind::decode(tag, param),
            None,
            "Custom cannot be reconstructed without its identity word"
        );
        assert_eq!(
            ProxyKind::decode_extended(tag, param, 0xFEED_FACE),
            Some(custom)
        );
    }

    #[test]
    fn custom_digests_separate_id_and_configuration() {
        let a = custom_proxy_digest("synflow", 1);
        assert_eq!(a, custom_proxy_digest("synflow", 1), "deterministic");
        assert_ne!(a, custom_proxy_digest("synflow", 2), "config matters");
        assert_ne!(a, custom_proxy_digest("jacob_cov", 1), "id matters");
        // Length-prefixing prevents concatenation ambiguity with the
        // fingerprint bytes that follow the id.
        assert_ne!(custom_proxy_digest("ab", 0), custom_proxy_digest("a", 0));
    }

    #[test]
    fn custom_keys_distinguish_digest_and_param() {
        let space = SearchSpace::nas_bench_201();
        let cell = space.cell(123).unwrap();
        let a = EvalKey::custom(&cell, DatasetKind::Cifar10, 7, 100, 0);
        let b = EvalKey::custom(&cell, DatasetKind::Cifar10, 7, 101, 0);
        let c = EvalKey::custom(&cell, DatasetKind::Cifar10, 7, 100, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(a.shard_hash(), b.shard_hash());
        assert_ne!(a.shard_hash(), c.shard_hash());
    }

    #[test]
    fn keys_distinguish_every_coordinate() {
        let space = SearchSpace::nas_bench_201();
        let cell = space.cell(123).unwrap();
        let base = EvalKey::zero_cost(&cell, DatasetKind::Cifar10, 7, 32);
        assert_ne!(
            base,
            EvalKey::zero_cost(&cell, DatasetKind::Cifar100, 7, 32)
        );
        assert_ne!(base, EvalKey::zero_cost(&cell, DatasetKind::Cifar10, 8, 32));
        assert_ne!(base, EvalKey::zero_cost(&cell, DatasetKind::Cifar10, 7, 16));
        assert_ne!(
            base,
            EvalKey::ntk_spectrum(&cell, DatasetKind::Cifar10, 7, 32)
        );
        assert_ne!(
            base.shard_hash(),
            EvalKey::hardware(&cell, DatasetKind::Cifar10).shard_hash()
        );
    }
}
