use micronas_tensor::Tensor;

/// A mini-batch of images with their (synthetic) class labels.
///
/// The zero-cost proxies only use `images`; `labels` are provided for
/// completeness and for tests that check the class-conditional structure.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// Image tensor of shape `[N, 3, R, R]`.
    pub images: Tensor,
    /// Class label of each sample.
    pub labels: Vec<usize>,
}

impl Batch {
    /// Number of samples in the batch.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micronas_tensor::Shape;

    #[test]
    fn len_tracks_labels() {
        let b = Batch {
            images: Tensor::zeros(Shape::nchw(2, 3, 4, 4)),
            labels: vec![0, 1],
        };
        assert_eq!(b.len(), 2);
        assert!(!b.is_empty());
    }
}
