//! Synthetic stand-ins for the image datasets used by the paper.
//!
//! MicroNAS evaluates on CIFAR-10, CIFAR-100 and ImageNet16-120. The
//! zero-cost proxies only consume a **single mini-batch of input images** —
//! no labels and no training loop — so the statistical structure of the batch
//! (resolution, channel count, per-class modes, pixel statistics) is what
//! matters, not the actual photographs. This crate generates deterministic,
//! class-conditional Gaussian images with the correct geometry for each
//! dataset, which exercises exactly the same code path the real data would.
//! The substitution is recorded in `DESIGN.md` (system #5).
//!
//! # Example
//!
//! ```
//! use micronas_datasets::{DatasetKind, SyntheticDataset};
//!
//! let data = SyntheticDataset::new(DatasetKind::Cifar10, 42);
//! let batch = data.sample_batch(32, 16).unwrap();
//! assert_eq!(batch.images.shape().dims(), &[32, 3, 16, 16]);
//! assert_eq!(batch.labels.len(), 32);
//! ```

#![warn(missing_docs)]

mod batch;
mod kind;
mod synthetic;

pub use batch::Batch;
pub use kind::DatasetKind;
pub use synthetic::SyntheticDataset;

/// Errors produced by dataset sampling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DatasetError {
    /// A batch with zero samples or zero resolution was requested.
    InvalidRequest(String),
}

impl std::fmt::Display for DatasetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DatasetError::InvalidRequest(msg) => write!(f, "invalid batch request: {msg}"),
        }
    }
}

impl std::error::Error for DatasetError {}

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, DatasetError>;
