use crate::{Batch, DatasetError, DatasetKind, Result};
use micronas_tensor::{hash_mix, DeterministicRng, Shape, Tensor};
use serde::{Deserialize, Serialize};

/// A deterministic, class-conditional synthetic image source mimicking one of
/// the paper's datasets.
///
/// Each class has a fixed low-frequency "prototype" pattern drawn from a
/// hashed RNG; a sample is its class prototype plus per-sample Gaussian
/// noise, normalised to roughly zero mean and unit variance per channel
/// (the statistics the NTK and linear-region probes see after standard
/// CIFAR normalisation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyntheticDataset {
    kind: DatasetKind,
    seed: u64,
    /// Fraction of the signal owed to the class prototype (the rest is noise).
    prototype_weight: f32,
}

impl SyntheticDataset {
    /// Creates a dataset generator for `kind` with a global `seed`.
    pub fn new(kind: DatasetKind, seed: u64) -> Self {
        Self {
            kind,
            seed,
            prototype_weight: 0.5,
        }
    }

    /// The dataset being mimicked.
    pub fn kind(&self) -> DatasetKind {
        self.kind
    }

    /// The generator seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Samples a mini-batch at the dataset's native resolution.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidRequest`] if `batch_size` is zero.
    pub fn sample_native_batch(&self, batch_size: usize) -> Result<Batch> {
        self.sample_batch(batch_size, self.kind.resolution())
    }

    /// Samples a mini-batch at an arbitrary probe resolution.
    ///
    /// Zero-shot proxies are routinely computed on reduced-resolution inputs
    /// to keep the NTK tractable; the class-conditional structure is
    /// preserved at any resolution.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidRequest`] if `batch_size` or
    /// `resolution` is zero.
    pub fn sample_batch(&self, batch_size: usize, resolution: usize) -> Result<Batch> {
        self.sample_batch_with_stream(batch_size, resolution, 0)
    }

    /// Samples a mini-batch from an independent stream, so that repeated
    /// proxy evaluations (e.g. the three seeds of Fig. 2b) see different
    /// batches.
    ///
    /// # Errors
    ///
    /// Returns [`DatasetError::InvalidRequest`] if `batch_size` or
    /// `resolution` is zero.
    pub fn sample_batch_with_stream(
        &self,
        batch_size: usize,
        resolution: usize,
        stream: u64,
    ) -> Result<Batch> {
        if batch_size == 0 {
            return Err(DatasetError::InvalidRequest(
                "batch size must be positive".into(),
            ));
        }
        if resolution == 0 {
            return Err(DatasetError::InvalidRequest(
                "resolution must be positive".into(),
            ));
        }
        let channels = self.kind.channels();
        let num_classes = self.kind.num_classes();
        let per_image = channels * resolution * resolution;
        let mut data = vec![0.0f32; batch_size * per_image];
        let mut labels = Vec::with_capacity(batch_size);

        let mut batch_rng = DeterministicRng::with_stream(
            hash_mix(self.seed, self.kind.id()),
            hash_mix(stream, 0xBA7C),
        );
        // Prototypes are pure functions of (dataset, class, resolution);
        // memoise them for the batch so each class pays its sinusoid pass
        // once instead of once per drawn sample (the trigonometry dominates
        // the whole sampling cost otherwise). Values are bitwise-identical
        // to recomputation.
        let mut prototypes: Vec<Option<Vec<f32>>> = vec![None; num_classes];
        for sample in 0..batch_size {
            let label = batch_rng.below(num_classes);
            labels.push(label);
            let prototype =
                prototypes[label].get_or_insert_with(|| self.class_prototype(label, resolution));
            let mut noise_rng = DeterministicRng::with_stream(
                hash_mix(self.seed, self.kind.id()),
                hash_mix(stream.wrapping_add(1), sample as u64),
            );
            let dst = &mut data[sample * per_image..(sample + 1) * per_image];
            for (d, &p) in dst.iter_mut().zip(prototype.iter()) {
                let noise = noise_rng.normal();
                *d = self.prototype_weight * p + (1.0 - self.prototype_weight) * noise;
            }
        }
        let images = Tensor::from_vec(
            Shape::nchw(batch_size, channels, resolution, resolution),
            data,
        )
        .expect("length matches shape by construction");
        Ok(Batch { images, labels })
    }

    /// The deterministic prototype pattern of a class at a given resolution.
    ///
    /// Prototypes are smooth sinusoidal patterns whose frequencies and phases
    /// are hashed from (dataset, class), giving distinct but reproducible
    /// class modes.
    fn class_prototype(&self, class: usize, resolution: usize) -> Vec<f32> {
        let channels = self.kind.channels();
        let mut rng = DeterministicRng::with_stream(
            hash_mix(self.seed, self.kind.id()),
            hash_mix(0x9_C1A5, class as u64),
        );
        let mut out = Vec::with_capacity(channels * resolution * resolution);
        for _c in 0..channels {
            let fx = rng.uniform(0.5, 3.0);
            let fy = rng.uniform(0.5, 3.0);
            let phase = rng.uniform(0.0, std::f32::consts::TAU);
            let amp = rng.uniform(0.6, 1.4);
            for y in 0..resolution {
                for x in 0..resolution {
                    let u = x as f32 / resolution as f32;
                    let v = y as f32 / resolution as f32;
                    out.push(amp * (std::f32::consts::TAU * (fx * u + fy * v) + phase).sin());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micronas_tensor::{mean, population_variance};

    #[test]
    fn batch_geometry_matches_request() {
        for kind in DatasetKind::ALL {
            let data = SyntheticDataset::new(kind, 1);
            let batch = data.sample_native_batch(8).unwrap();
            let r = kind.resolution();
            assert_eq!(batch.images.shape().dims(), &[8, 3, r, r]);
            assert_eq!(batch.len(), 8);
            assert!(batch.labels.iter().all(|&l| l < kind.num_classes()));
        }
    }

    #[test]
    fn invalid_requests_are_rejected() {
        let data = SyntheticDataset::new(DatasetKind::Cifar10, 1);
        assert!(data.sample_batch(0, 16).is_err());
        assert!(data.sample_batch(4, 0).is_err());
    }

    #[test]
    fn sampling_is_deterministic() {
        let a = SyntheticDataset::new(DatasetKind::Cifar100, 7)
            .sample_batch(4, 16)
            .unwrap();
        let b = SyntheticDataset::new(DatasetKind::Cifar100, 7)
            .sample_batch(4, 16)
            .unwrap();
        assert_eq!(a, b);
        let c = SyntheticDataset::new(DatasetKind::Cifar100, 8)
            .sample_batch(4, 16)
            .unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn streams_differ() {
        let data = SyntheticDataset::new(DatasetKind::Cifar10, 3);
        let a = data.sample_batch_with_stream(4, 16, 0).unwrap();
        let b = data.sample_batch_with_stream(4, 16, 1).unwrap();
        assert_ne!(a.images, b.images);
    }

    #[test]
    fn pixel_statistics_are_roughly_normalised() {
        let data = SyntheticDataset::new(DatasetKind::Cifar10, 5);
        let batch = data.sample_batch(16, 16).unwrap();
        let m = mean(batch.images.data());
        let v = population_variance(batch.images.data());
        assert!(m.abs() < 0.25, "mean {m}");
        assert!(v > 0.2 && v < 1.5, "variance {v}");
    }

    #[test]
    fn same_class_samples_are_more_similar_than_cross_class() {
        // Build two batches and compare correlation of same-class vs different-class pairs.
        let data = SyntheticDataset::new(DatasetKind::Cifar10, 11);
        let batch = data.sample_batch(64, 12).unwrap();
        let per_image = 3 * 12 * 12;
        let image = |i: usize| &batch.images.data()[i * per_image..(i + 1) * per_image];
        let correlation = |a: &[f32], b: &[f32]| {
            let dot: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();
            let na: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
            let nb: f32 = b.iter().map(|x| x * x).sum::<f32>().sqrt();
            dot / (na * nb).max(1e-6)
        };
        let mut same = Vec::new();
        let mut diff = Vec::new();
        for i in 0..batch.len() {
            for j in (i + 1)..batch.len() {
                let c = correlation(image(i), image(j));
                if batch.labels[i] == batch.labels[j] {
                    same.push(c);
                } else {
                    diff.push(c);
                }
            }
        }
        if !same.is_empty() && !diff.is_empty() {
            let mean_same: f32 = same.iter().sum::<f32>() / same.len() as f32;
            let mean_diff: f32 = diff.iter().sum::<f32>() / diff.len() as f32;
            assert!(
                mean_same > mean_diff + 0.05,
                "same-class correlation {mean_same} should exceed cross-class {mean_diff}"
            );
        }
    }
}
