use serde::{Deserialize, Serialize};
use std::fmt;

/// The three datasets evaluated by NAS-Bench-201 and the MicroNAS paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DatasetKind {
    /// CIFAR-10: 32×32×3, 10 classes.
    Cifar10,
    /// CIFAR-100: 32×32×3, 100 classes.
    Cifar100,
    /// ImageNet16-120: 16×16×3, 120 classes.
    ImageNet16_120,
}

impl DatasetKind {
    /// All datasets in the order they appear in the paper's figures.
    pub const ALL: [DatasetKind; 3] = [
        DatasetKind::Cifar10,
        DatasetKind::Cifar100,
        DatasetKind::ImageNet16_120,
    ];

    /// Number of classes.
    pub fn num_classes(self) -> usize {
        match self {
            DatasetKind::Cifar10 => 10,
            DatasetKind::Cifar100 => 100,
            DatasetKind::ImageNet16_120 => 120,
        }
    }

    /// Native image resolution (height = width).
    pub fn resolution(self) -> usize {
        match self {
            DatasetKind::Cifar10 | DatasetKind::Cifar100 => 32,
            DatasetKind::ImageNet16_120 => 16,
        }
    }

    /// Number of image channels (3 for all supported datasets).
    pub fn channels(self) -> usize {
        3
    }

    /// Canonical NAS-Bench-201 dataset name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetKind::Cifar10 => "cifar10",
            DatasetKind::Cifar100 => "cifar100",
            DatasetKind::ImageNet16_120 => "ImageNet16-120",
        }
    }

    /// A stable numeric identifier used for seeding.
    pub fn id(self) -> u64 {
        match self {
            DatasetKind::Cifar10 => 1,
            DatasetKind::Cifar100 => 2,
            DatasetKind::ImageNet16_120 => 3,
        }
    }
}

impl fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn properties_match_the_benchmarks() {
        assert_eq!(DatasetKind::Cifar10.num_classes(), 10);
        assert_eq!(DatasetKind::Cifar100.num_classes(), 100);
        assert_eq!(DatasetKind::ImageNet16_120.num_classes(), 120);
        assert_eq!(DatasetKind::Cifar10.resolution(), 32);
        assert_eq!(DatasetKind::ImageNet16_120.resolution(), 16);
        for kind in DatasetKind::ALL {
            assert_eq!(kind.channels(), 3);
        }
    }

    #[test]
    fn names_and_ids_are_unique() {
        let names: std::collections::HashSet<_> =
            DatasetKind::ALL.iter().map(|d| d.name()).collect();
        assert_eq!(names.len(), 3);
        let ids: std::collections::HashSet<_> = DatasetKind::ALL.iter().map(|d| d.id()).collect();
        assert_eq!(ids.len(), 3);
        assert_eq!(DatasetKind::ImageNet16_120.to_string(), "ImageNet16-120");
    }
}
