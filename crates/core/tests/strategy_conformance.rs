//! Strategy-trait conformance: one shared suite run over every shipped
//! [`SearchStrategy`] through the `dyn`-object surface.
//!
//! Every strategy must keep the trait contract the redesign rests on:
//!
//! * **Thread determinism** — a bitwise-identical outcome (including the
//!   score history) on a 1-thread and an N-thread rayon pool;
//! * **Store transparency** — bitwise-identical outcomes with the
//!   evaluation store disabled, cold and pre-warmed (and a warm store
//!   serving the proxy-driven searches without a single recomputation);
//! * **Observer contract** — one `Started`, one `Step` per history entry
//!   in order, one `Finished`.

use micronas::{
    EvolutionaryConfig, EvolutionarySearch, MicroNasConfig, MicroNasSearch, ObjectiveWeights,
    RandomSearch, SearchEvent, SearchObserver, SearchOutcome, SearchSession, SearchStrategy,
};
use micronas_datasets::DatasetKind;
use micronas_store::EvalStore;
use parking_lot::Mutex;
use rayon::ThreadPoolBuilder;
use std::sync::Arc;

/// Every shipped strategy, as trait objects.
fn all_strategies() -> Vec<Box<dyn SearchStrategy>> {
    vec![
        Box::new(MicroNasSearch::new(ObjectiveWeights::latency_guided(2.0))),
        Box::new(RandomSearch::new(ObjectiveWeights::accuracy_only(), 8).unwrap()),
        Box::new(EvolutionarySearch::new(EvolutionaryConfig::fast_test()).unwrap()),
    ]
}

fn session(store: Option<Arc<EvalStore>>) -> SearchSession {
    let mut builder = SearchSession::builder()
        .dataset(DatasetKind::Cifar10)
        .config(MicroNasConfig::tiny_test());
    if let Some(store) = store {
        builder = builder.store(store);
    }
    builder.build().unwrap()
}

fn packed_session(width: usize) -> SearchSession {
    SearchSession::builder()
        .dataset(DatasetKind::Cifar10)
        .config(MicroNasConfig::tiny_test())
        .pack_width(width)
        .build()
        .unwrap()
}

fn assert_outcomes_identical(label: &str, a: &SearchOutcome, b: &SearchOutcome) {
    assert_eq!(a.best.index(), b.best.index(), "{label}: best");
    assert_eq!(a.evaluation, b.evaluation, "{label}: evaluation");
    assert_eq!(a.test_accuracy, b.test_accuracy, "{label}: accuracy");
    assert_eq!(a.cost.evaluations, b.cost.evaluations, "{label}: evals");
    // The decisive check: bitwise-equal score trajectories.
    assert_eq!(a.history, b.history, "{label}: history");
}

#[test]
fn every_strategy_is_deterministic_across_thread_counts() {
    for strategy in all_strategies() {
        let run_with = |threads: usize| {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| session(None).run(strategy.as_ref()).unwrap())
        };
        let single = run_with(1);
        for threads in [3, 7] {
            let multi = run_with(threads);
            assert_outcomes_identical(
                &format!("{} @ {threads} threads", strategy.name()),
                &single,
                &multi,
            );
        }
    }
}

/// Cross-candidate mega-batching is a pure scheduling change: for every
/// strategy, the outcome at pack widths 1 (packing disabled), 2 and 8 must
/// be bitwise identical, on a 1-thread and an N-thread rayon pool alike.
#[test]
fn every_strategy_is_bitwise_identical_across_pack_widths_and_threads() {
    for strategy in all_strategies() {
        let reference = {
            let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
            pool.install(|| packed_session(1).run(strategy.as_ref()).unwrap())
        };
        for width in [2usize, 8] {
            for threads in [1usize, 4] {
                let pool = ThreadPoolBuilder::new()
                    .num_threads(threads)
                    .build()
                    .unwrap();
                let outcome =
                    pool.install(|| packed_session(width).run(strategy.as_ref()).unwrap());
                assert_outcomes_identical(
                    &format!("{} @ width {width}, {threads} threads", strategy.name()),
                    &reference,
                    &outcome,
                );
            }
        }
    }
}

/// Store-namespace audit: mega-batching must not change any proxy output of
/// the default backend, so the persisted-store namespace stays pinned — a
/// bump here would orphan every store warmed before this change.
#[test]
fn mega_batching_does_not_bump_the_store_namespace() {
    assert_eq!(
        MicroNasConfig::paper_default().store_namespace(),
        0xa01c_0bcb_e15a_bdf4,
        "packed evaluation changed paper-default proxy identity: {:#018x}",
        MicroNasConfig::paper_default().store_namespace()
    );

    // The reason the pin holds: packed evaluation is bitwise identical to
    // the one-at-a-time path, so records written by either are interchangeable.
    let config = MicroNasConfig::tiny_test();
    let store = Arc::new(EvalStore::in_memory(config.store_namespace()));
    let solo_ctx =
        micronas::SearchContext::with_store(DatasetKind::Cifar10, &config, Arc::clone(&store))
            .unwrap();
    let packed_ctx = micronas::SearchContext::new(DatasetKind::Cifar10, &config).unwrap();
    let cells: Vec<_> = [0usize, 404, 7_000, 11_111, 15_624]
        .iter()
        .map(|&i| solo_ctx.space().cell(i).unwrap())
        .collect();
    let solo: Vec<_> = cells
        .iter()
        .map(|&cell| solo_ctx.evaluate(cell).unwrap())
        .collect();
    let packed = packed_ctx.evaluate_pack(&cells).unwrap();
    for (i, (s, p)) in solo.iter().zip(&packed).enumerate() {
        assert_eq!(**s, **p, "store-backed solo vs packed member {i}");
    }
}

#[test]
fn every_strategy_is_bitwise_identical_across_store_modes() {
    let config = MicroNasConfig::tiny_test();
    for strategy in all_strategies() {
        let off = session(None).run(strategy.as_ref()).unwrap();

        let store = Arc::new(EvalStore::in_memory(config.store_namespace()));
        let cold = session(Some(store.clone())).run(strategy.as_ref()).unwrap();
        let warm = session(Some(store)).run(strategy.as_ref()).unwrap();

        assert_outcomes_identical(&format!("{} off/cold", strategy.name()), &off, &cold);
        assert_outcomes_identical(&format!("{} off/warm", strategy.name()), &off, &warm);
        assert_eq!(
            warm.cost.cache.misses,
            0,
            "{}: a pre-warmed store must serve the whole search",
            strategy.name()
        );
    }
}

/// Counts events and records the step trajectory.
#[derive(Default)]
struct Recorder {
    started: Mutex<Vec<String>>,
    steps: Mutex<Vec<(usize, f64)>>,
    finished: Mutex<usize>,
}

impl SearchObserver for Recorder {
    fn on_event(&self, event: &SearchEvent<'_>) {
        match event {
            SearchEvent::Started { algorithm } => {
                self.started.lock().push((*algorithm).to_string());
            }
            SearchEvent::Step { index, score } => self.steps.lock().push((*index, *score)),
            SearchEvent::Finished { .. } => *self.finished.lock() += 1,
        }
    }
}

#[test]
fn every_strategy_honours_the_observer_contract() {
    for strategy in all_strategies() {
        let recorder = Arc::new(Recorder::default());
        let outcome = SearchSession::builder()
            .dataset(DatasetKind::Cifar10)
            .config(MicroNasConfig::tiny_test())
            .observer(recorder.clone())
            .build()
            .unwrap()
            .run(strategy.as_ref())
            .unwrap();

        assert_eq!(
            *recorder.started.lock(),
            vec![outcome.algorithm.clone()],
            "exactly one Started event carrying the algorithm name"
        );
        assert_eq!(*recorder.finished.lock(), 1, "exactly one Finished event");
        let steps = recorder.steps.lock();
        assert_eq!(
            steps.len(),
            outcome.history.len(),
            "{}: one Step per history entry",
            strategy.name()
        );
        for (i, ((index, score), expected)) in steps.iter().zip(&outcome.history).enumerate() {
            assert_eq!(*index, i, "{}: dense ordered indices", strategy.name());
            assert_eq!(
                score.to_bits(),
                expected.to_bits(),
                "{}: step {i} replays the history entry",
                strategy.name()
            );
        }
    }
}
