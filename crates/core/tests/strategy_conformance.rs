//! Strategy-trait conformance: one shared suite run over every shipped
//! [`SearchStrategy`] through the `dyn`-object surface.
//!
//! Every strategy must keep the trait contract the redesign rests on:
//!
//! * **Thread determinism** — a bitwise-identical outcome (including the
//!   score history) on a 1-thread and an N-thread rayon pool;
//! * **Store transparency** — bitwise-identical outcomes with the
//!   evaluation store disabled, cold and pre-warmed (and a warm store
//!   serving the proxy-driven searches without a single recomputation);
//! * **Observer contract** — one `Started`, one `Step` per history entry
//!   in order, one `Finished`.

use micronas::{
    EvolutionaryConfig, EvolutionarySearch, MicroNasConfig, MicroNasSearch, ObjectiveWeights,
    RandomSearch, SearchEvent, SearchObserver, SearchOutcome, SearchSession, SearchStrategy,
};
use micronas_datasets::DatasetKind;
use micronas_store::EvalStore;
use parking_lot::Mutex;
use rayon::ThreadPoolBuilder;
use std::sync::Arc;

/// Every shipped strategy, as trait objects.
fn all_strategies() -> Vec<Box<dyn SearchStrategy>> {
    vec![
        Box::new(MicroNasSearch::new(ObjectiveWeights::latency_guided(2.0))),
        Box::new(RandomSearch::new(ObjectiveWeights::accuracy_only(), 8).unwrap()),
        Box::new(EvolutionarySearch::new(EvolutionaryConfig::fast_test()).unwrap()),
    ]
}

fn session(store: Option<Arc<EvalStore>>) -> SearchSession {
    let mut builder = SearchSession::builder()
        .dataset(DatasetKind::Cifar10)
        .config(MicroNasConfig::tiny_test());
    if let Some(store) = store {
        builder = builder.store(store);
    }
    builder.build().unwrap()
}

fn assert_outcomes_identical(label: &str, a: &SearchOutcome, b: &SearchOutcome) {
    assert_eq!(a.best.index(), b.best.index(), "{label}: best");
    assert_eq!(a.evaluation, b.evaluation, "{label}: evaluation");
    assert_eq!(a.test_accuracy, b.test_accuracy, "{label}: accuracy");
    assert_eq!(a.cost.evaluations, b.cost.evaluations, "{label}: evals");
    // The decisive check: bitwise-equal score trajectories.
    assert_eq!(a.history, b.history, "{label}: history");
}

#[test]
fn every_strategy_is_deterministic_across_thread_counts() {
    for strategy in all_strategies() {
        let run_with = |threads: usize| {
            let pool = ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap();
            pool.install(|| session(None).run(strategy.as_ref()).unwrap())
        };
        let single = run_with(1);
        for threads in [3, 7] {
            let multi = run_with(threads);
            assert_outcomes_identical(
                &format!("{} @ {threads} threads", strategy.name()),
                &single,
                &multi,
            );
        }
    }
}

#[test]
fn every_strategy_is_bitwise_identical_across_store_modes() {
    let config = MicroNasConfig::tiny_test();
    for strategy in all_strategies() {
        let off = session(None).run(strategy.as_ref()).unwrap();

        let store = Arc::new(EvalStore::in_memory(config.store_namespace()));
        let cold = session(Some(store.clone())).run(strategy.as_ref()).unwrap();
        let warm = session(Some(store)).run(strategy.as_ref()).unwrap();

        assert_outcomes_identical(&format!("{} off/cold", strategy.name()), &off, &cold);
        assert_outcomes_identical(&format!("{} off/warm", strategy.name()), &off, &warm);
        assert_eq!(
            warm.cost.cache.misses,
            0,
            "{}: a pre-warmed store must serve the whole search",
            strategy.name()
        );
    }
}

/// Counts events and records the step trajectory.
#[derive(Default)]
struct Recorder {
    started: Mutex<Vec<String>>,
    steps: Mutex<Vec<(usize, f64)>>,
    finished: Mutex<usize>,
}

impl SearchObserver for Recorder {
    fn on_event(&self, event: &SearchEvent<'_>) {
        match event {
            SearchEvent::Started { algorithm } => {
                self.started.lock().push((*algorithm).to_string());
            }
            SearchEvent::Step { index, score } => self.steps.lock().push((*index, *score)),
            SearchEvent::Finished { .. } => *self.finished.lock() += 1,
        }
    }
}

#[test]
fn every_strategy_honours_the_observer_contract() {
    for strategy in all_strategies() {
        let recorder = Arc::new(Recorder::default());
        let outcome = SearchSession::builder()
            .dataset(DatasetKind::Cifar10)
            .config(MicroNasConfig::tiny_test())
            .observer(recorder.clone())
            .build()
            .unwrap()
            .run(strategy.as_ref())
            .unwrap();

        assert_eq!(
            *recorder.started.lock(),
            vec![outcome.algorithm.clone()],
            "exactly one Started event carrying the algorithm name"
        );
        assert_eq!(*recorder.finished.lock(), 1, "exactly one Finished event");
        let steps = recorder.steps.lock();
        assert_eq!(
            steps.len(),
            outcome.history.len(),
            "{}: one Step per history entry",
            strategy.name()
        );
        for (i, ((index, score), expected)) in steps.iter().zip(&outcome.history).enumerate() {
            assert_eq!(*index, i, "{}: dense ordered indices", strategy.name());
            assert_eq!(
                score.to_bits(),
                expected.to_bits(),
                "{}: step {i} replays the history entry",
                strategy.name()
            );
        }
    }
}
