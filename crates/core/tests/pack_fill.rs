//! Measured packed-kernel fill on a real evolutionary-search slate.
//!
//! The acceptance bar for the packed backward sweep: on an evolutionary
//! slate (a seeded population plus mutated children — genuinely mixed
//! geometry with duplicate candidates, exactly what aging evolution submits
//! per generation) the measured backward-pack fill must be at least the
//! forward fill — the per-sample gradient sweep packs everything the
//! forward probe packs (the same per-edge conv buckets), plus the stem
//! backward at full pack width.
//!
//! This lives in its own integration-test binary on purpose: the kernel
//! fill counters are process-global (`micronas_nn::pack_kernel_stats`), so
//! a dedicated process keeps other tests' pack traffic out of the
//! measurement.

use micronas::{BatchedEvaluator, MicroNasConfig, SearchContext};
use micronas_datasets::DatasetKind;
use micronas_searchspace::{mutate, random_architecture, Architecture, CellTopology};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A population of random candidates plus a generation of mutated children
/// and a few repeated parents — the candidate mix an evolutionary strategy
/// hands the batched evaluator.
fn evolutionary_slate(ctx: &SearchContext) -> Vec<CellTopology> {
    let mut rng = ChaCha8Rng::seed_from_u64(0x45564F);
    let population: Vec<Architecture> = (0..12)
        .map(|_| random_architecture(ctx.space(), &mut rng))
        .collect();
    let mut slate: Vec<CellTopology> = population.iter().map(|arch| *arch.cell()).collect();
    for parent in &population {
        slate.push(*mutate(ctx.space(), parent, &mut rng).cell());
    }
    // Tournament re-visits: duplicates of earlier members.
    slate.push(slate[0]);
    slate.push(slate[5]);
    slate
}

#[test]
fn backward_pack_fill_is_at_least_forward_fill_on_an_evolutionary_slate() {
    let ctx = SearchContext::new(DatasetKind::Cifar10, &MicroNasConfig::tiny_test())
        .unwrap()
        .with_pack_width(8);
    let slate = evolutionary_slate(&ctx);
    let before = ctx.batch_stats();
    let evaluations = BatchedEvaluator::new(&ctx).evaluate_all(&slate).unwrap();
    assert_eq!(evaluations.len(), slate.len());
    let batch = ctx.batch_stats().since(&before);

    assert!(
        batch.dispatches >= 1,
        "the slate must actually pack: {batch:?}"
    );
    assert_eq!(batch.packed_candidates, slate.len());
    assert!(
        batch.forward_kernel_dispatches > 0,
        "no packed forward conv buckets ran: {batch:?}"
    );
    assert!(
        batch.backward_kernel_dispatches > 0,
        "no packed backward buckets ran: {batch:?}"
    );
    assert!(
        batch.forward_kernel_members >= batch.forward_kernel_dispatches,
        "fill below one member per dispatch is impossible: {batch:?}"
    );
    assert!(
        batch.backward_fill() >= batch.forward_fill(),
        "backward sweeps packed less densely than forward sweeps: \
         backward {:.3} vs forward {:.3} ({batch:?})",
        batch.backward_fill(),
        batch.forward_fill()
    );
}
