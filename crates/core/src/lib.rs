//! MicroNAS: hardware-aware zero-shot neural architecture search for MCUs.
//!
//! This crate is the reproduction of the paper's primary contribution. It
//! combines zero-cost network-analysis indicators from [`micronas_proxies`]
//! (NTK condition number, linear-region count, plus any [`Proxy`] plugin)
//! with the hardware indicators from [`micronas_hw`] (FLOPs, estimated MCU
//! latency, peak memory) into a single **hybrid objective** with per-metric
//! weights, and searches the NAS-Bench-201 cell space with a
//! **hardware-aware pruning algorithm**: starting from the full supernet,
//! operations are greedily removed — least useful first,
//! hardware-infeasible first of all — until a single architecture remains.
//! No candidate is ever trained.
//!
//! # The pluggable search surface
//!
//! Three traits make the pipeline open for extension without cross-crate
//! surgery:
//!
//! * [`Proxy`] — a train-free scoring function with a stable persistent
//!   identity; register any number per session.
//! * [`SearchStrategy`] — a search algorithm; the pruning search and both
//!   baselines (random, µNAS-style evolution) implement it, and external
//!   strategies plug in as `&dyn SearchStrategy`.
//! * [`SearchObserver`] — a progress-event sink receiving one
//!   deterministic [`SearchEvent`] per decision step.
//!
//! A [`SearchSession`] ties them together: one builder configures the
//! dataset, proxy scale, plugins, objective weights, the optional shared
//! [`micronas_store::EvalStore`] and the observer, and every strategy run
//! through the session shares its caches.
//!
//! The crate also implements the search-cost accounting used for the
//! paper's 1104× efficiency claim and an [`experiments`] module that
//! regenerates every table and figure of the paper's evaluation section.
//!
//! # Quick start
//!
//! ```no_run
//! use micronas::{MicroNasConfig, ObjectiveWeights, SearchSession};
//! use micronas_datasets::DatasetKind;
//!
//! # fn main() -> Result<(), micronas::MicroNasError> {
//! // Latency-guided search on CIFAR-10 for the paper's STM32F746 target.
//! let session = SearchSession::builder()
//!     .dataset(DatasetKind::Cifar10)
//!     .config(MicroNasConfig::fast())
//!     .objective(ObjectiveWeights::latency_guided(1.0))
//!     .build()?;
//! let outcome = session.run_micronas()?;
//! println!("discovered {} in {:.1}s", outcome.best, outcome.cost.wall_clock_seconds);
//! # Ok(())
//! # }
//! ```
//!
//! Custom proxies and strategies join the same session:
//!
//! ```no_run
//! use micronas::{MicroNasConfig, ObjectiveWeights, RandomSearch, SearchSession};
//! use micronas_proxies::{metric_ids, SynFlowConfig, SynFlowProxy};
//! use std::sync::Arc;
//!
//! # fn main() -> Result<(), micronas::MicroNasError> {
//! let session = SearchSession::builder()
//!     .config(MicroNasConfig::fast())
//!     .proxy(Arc::new(SynFlowProxy::new(SynFlowConfig::fast())))
//!     .objective(ObjectiveWeights::accuracy_only().with_metric(metric_ids::SYNFLOW, 0.5))
//!     .build()?;
//! let outcome = session.run(&RandomSearch::new(session.weights().clone(), 64)?)?;
//! # let _ = outcome;
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod batch;
mod config;
mod context;
mod cost;
mod error;
pub mod events;
pub mod experiments;
mod objective;
mod outcome;
mod search;
mod session;

pub use batch::{BatchedEvaluator, SlatePlan, SlateScheduler};
pub use config::MicroNasConfig;
pub use context::{CandidateEvaluation, SearchContext, DEFAULT_PACK_WIDTH};
pub use cost::{BatchStats, EvalCacheStats, SearchCost};
pub use error::MicroNasError;
pub use events::{replay_diff, replay_events, EventRecorder, RecordedEvent};
pub use objective::{HybridObjective, ObjectiveWeights};
pub use outcome::SearchOutcome;
pub use search::{
    EvolutionaryConfig, EvolutionarySearch, MicroNasSearch, NullObserver, RandomSearch,
    SearchEvent, SearchObserver, SearchStrategy,
};
pub use session::{SearchSession, SearchSessionBuilder};

// Re-exported so `Proxy` and `SearchEvent` doc links in this crate resolve
// and downstream users need only one import root for the common surface.
pub use micronas_proxies::{metric_ids, MetricSet, Proxy};

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, MicroNasError>;
