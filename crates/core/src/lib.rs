//! MicroNAS: hardware-aware zero-shot neural architecture search for MCUs.
//!
//! This crate is the reproduction of the paper's primary contribution. It
//! combines the zero-cost network-analysis indicators from
//! [`micronas_proxies`] (NTK condition number, linear-region count) with the
//! hardware indicators from [`micronas_hw`] (FLOPs, estimated MCU latency,
//! peak memory) into a single **hybrid objective**, and searches the
//! NAS-Bench-201 cell space with a **hardware-aware pruning algorithm**:
//! starting from the full supernet, operations are greedily removed — least
//! useful first, hardware-infeasible first of all — until a single
//! architecture remains. No candidate is ever trained.
//!
//! The crate also implements the baselines the paper compares against
//! (TE-NAS-style proxy-only pruning, a µNAS-style constrained evolutionary
//! search that *does* pay for training, and random search), the search-cost
//! accounting used for the 1104× efficiency claim, and an
//! [`experiments`] module that regenerates every table and figure of the
//! paper's evaluation section.
//!
//! # Quick start
//!
//! ```no_run
//! use micronas::{MicroNasConfig, MicroNasSearch, ObjectiveWeights, SearchContext};
//! use micronas_datasets::DatasetKind;
//!
//! # fn main() -> Result<(), micronas::MicroNasError> {
//! // Latency-guided search on CIFAR-10 for the paper's STM32F746 target.
//! let config = MicroNasConfig::fast();
//! let context = SearchContext::new(DatasetKind::Cifar10, &config)?;
//! let outcome = MicroNasSearch::new(ObjectiveWeights::latency_guided(1.0), &config)
//!     .run(&context)?;
//! println!("discovered {} in {:.1}s", outcome.best, outcome.cost.wall_clock_seconds);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod config;
mod context;
mod cost;
mod error;
pub mod experiments;
mod objective;
mod outcome;
mod search;

pub use config::MicroNasConfig;
pub use context::{CandidateEvaluation, SearchContext};
pub use cost::{EvalCacheStats, SearchCost};
pub use error::MicroNasError;
pub use objective::{HybridObjective, ObjectiveWeights};
pub use outcome::SearchOutcome;
pub use search::{EvolutionaryConfig, EvolutionarySearch, MicroNasSearch, RandomSearch};

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, MicroNasError>;
