use crate::{
    BatchedEvaluator, CandidateEvaluation, HybridObjective, MicroNasError, NullObserver,
    ObjectiveWeights, Result, SearchContext, SearchCost, SearchEvent, SearchObserver,
    SearchOutcome, SearchStrategy,
};
use micronas_searchspace::{CellTopology, EdgeId, Operation, Supernet};
use std::time::Instant;

/// The hardware-aware pruning-based search (the paper's §II algorithm), also
/// used — with hardware weights set to zero — as the TE-NAS baseline.
///
/// The search starts from the full supernet (every edge carries all five
/// candidate operations) and repeatedly removes the single (edge, operation)
/// pair with the lowest *importance*, where importance is the hybrid
/// objective of the architecture obtained by fixing that edge to that
/// operation while the remaining undecided edges take their strongest alive
/// candidate. Operations whose candidate architecture violates the hardware
/// budgets are penalised so they are pruned first. After 24 prune steps
/// exactly one operation survives per edge and the supernet collapses into
/// the discovered architecture.
#[derive(Debug, Clone)]
pub struct MicroNasSearch {
    objective: HybridObjective,
    algorithm_name: String,
    /// Penalty subtracted from the importance of hardware-infeasible candidates.
    infeasibility_penalty: f64,
}

impl MicroNasSearch {
    /// Creates a search with the given objective weights.
    ///
    /// Earlier revisions also accepted a `&MicroNasConfig` that was silently
    /// ignored; proxy configuration belongs to the evaluation context (built
    /// by `SearchSession::builder()`), never to the strategy.
    pub fn new(weights: ObjectiveWeights) -> Self {
        let name = if weights.latency > 0.0 {
            "MicroNAS (latency-guided)"
        } else if weights.flops > 0.0 {
            "MicroNAS (FLOPs-guided)"
        } else if weights.memory > 0.0 {
            "MicroNAS (memory-guided)"
        } else {
            "MicroNAS (proxy-only)"
        };
        Self {
            objective: HybridObjective::new(weights),
            algorithm_name: name.to_string(),
            infeasibility_penalty: 25.0,
        }
    }

    /// The TE-NAS baseline: identical pruning mechanics, but the objective
    /// contains only the two network-analysis terms.
    pub fn te_nas_baseline() -> Self {
        let mut s = Self::new(ObjectiveWeights::accuracy_only());
        s.algorithm_name = "TE-NAS (baseline)".to_string();
        s
    }

    /// The objective driving this search.
    pub fn objective(&self) -> &HybridObjective {
        &self.objective
    }

    /// Human-readable algorithm name used in reports.
    pub fn name(&self) -> &str {
        &self.algorithm_name
    }

    /// Importance of an evaluated candidate assignment: the hybrid objective
    /// of its representative architecture, minus a penalty if the candidate
    /// violates the hardware budgets.
    fn importance(&self, ctx: &SearchContext, eval: &CandidateEvaluation) -> f64 {
        let mut score = self.objective.score(&eval.metrics, &eval.hardware);
        if !eval.feasible {
            let violations = ctx.constraints().violations(&eval.hardware).len() as f64;
            score -= self.infeasibility_penalty * violations;
        }
        score
    }

    /// Runs the search to completion without progress reporting
    /// (equivalent to [`SearchStrategy::search`] with a [`NullObserver`]).
    ///
    /// # Errors
    ///
    /// Propagates proxy-evaluation and search-space errors.
    pub fn run(&self, ctx: &SearchContext) -> Result<SearchOutcome> {
        self.search(ctx, &NullObserver)
    }
}

impl SearchStrategy for MicroNasSearch {
    fn name(&self) -> &str {
        &self.algorithm_name
    }

    fn search(&self, ctx: &SearchContext, observer: &dyn SearchObserver) -> Result<SearchOutcome> {
        observer.on_event(&SearchEvent::Started {
            algorithm: self.name(),
        });
        let start = Instant::now();
        let evaluations_before = ctx.evaluation_count();
        let cache_before = ctx.cache_stats();
        let batch_before = ctx.batch_stats();
        let mut supernet = Supernet::full();
        let mut history = Vec::new();

        while !supernet.is_collapsed() {
            let _step_span = micronas_telemetry::span!("strategy.step");
            // Enumerate the candidate (edge, op) assignments of this prune
            // step, then push the whole slate through the mega-batched
            // evaluator: packs of candidates run concurrently on the rayon
            // pool, each fusing its members' same-geometry convolutions
            // into shared GEMM dispatches. Evaluation is a pure cached
            // function of the cell and the reduction below walks the
            // results in enumeration order with a strict `<` (first
            // candidate wins ties), so the chosen prune — and therefore the
            // whole search trajectory — is bitwise identical for every
            // thread count and pack width.
            let mut candidates: Vec<(EdgeId, Operation)> = Vec::new();
            for edge in supernet.undecided_edges() {
                for op in supernet.candidates(edge)? {
                    candidates.push((edge, op));
                }
            }
            let cells: Vec<CellTopology> = candidates
                .iter()
                .map(|&(edge, op)| supernet.representative_cell(true).with_op(edge, op))
                .collect::<std::result::Result<_, _>>()?;
            let evals = BatchedEvaluator::new(ctx).evaluate_all(&cells)?;

            let mut weakest: Option<(EdgeId, Operation, f64)> = None;
            for (&(edge, op), eval) in candidates.iter().zip(&evals) {
                let score = self.importance(ctx, eval);
                let replace = match &weakest {
                    None => true,
                    Some((_, _, s)) => score < *s,
                };
                if replace {
                    weakest = Some((edge, op, score));
                }
            }
            let (edge, op, score) = weakest.ok_or(MicroNasError::NoFeasibleArchitecture)?;
            supernet.prune(edge, op)?;
            observer.on_event(&SearchEvent::Step {
                index: history.len(),
                score,
            });
            history.push(score);
        }

        let best = supernet.collapse(ctx.space())?;
        let evaluation = ctx.evaluate(*best.cell())?;
        if !evaluation.feasible && !history.is_empty() {
            // The greedy prune can only guarantee feasibility if at least one
            // feasible architecture exists; report the violation rather than
            // silently returning an infeasible model.
            if ctx.constraints().violations(&evaluation.hardware).len() > 2 {
                return Err(MicroNasError::NoFeasibleArchitecture);
            }
        }
        let test_accuracy = ctx.trained_accuracy(&best);
        let outcome = SearchOutcome {
            best,
            evaluation: (*evaluation).clone(),
            test_accuracy,
            cost: SearchCost {
                wall_clock_seconds: start.elapsed().as_secs_f64(),
                simulated_gpu_hours: 0.0,
                evaluations: ctx.evaluation_count() - evaluations_before,
                cache: ctx.cache_stats().since(&cache_before),
                batch: ctx.batch_stats().since(&batch_before),
            },
            algorithm: self.algorithm_name.clone(),
            history,
        };
        observer.on_event(&SearchEvent::Finished { outcome: &outcome });
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MicroNasConfig;
    use micronas_datasets::DatasetKind;
    use micronas_hw::HardwareConstraints;

    fn tiny_context(constraints: HardwareConstraints) -> SearchContext {
        let config = MicroNasConfig::tiny_test().with_constraints(constraints);
        SearchContext::new(DatasetKind::Cifar10, &config).unwrap()
    }

    #[test]
    fn proxy_only_search_collapses_to_a_connected_architecture() {
        let ctx = tiny_context(HardwareConstraints::unconstrained());
        let search = MicroNasSearch::te_nas_baseline();
        let outcome = search.run(&ctx).unwrap();
        assert!(outcome.best.cell().has_input_output_path());
        assert_eq!(
            outcome.history.len(),
            24,
            "24 prune steps collapse the supernet"
        );
        assert!(outcome.cost.evaluations > 0);
        assert!(outcome.cost.simulated_gpu_hours == 0.0);
        assert!(
            outcome.cost.batch.dispatches >= 1,
            "pruning slates ride the packed path: {:?}",
            outcome.cost.batch
        );
        assert!(outcome.cost.batch.packed_candidates >= outcome.cost.batch.computed_candidates);
        assert!(
            outcome.test_accuracy > 50.0,
            "discovered model should be well above chance"
        );
        assert_eq!(outcome.algorithm, "TE-NAS (baseline)");
    }

    #[test]
    fn latency_guided_search_finds_faster_model_than_proxy_only() {
        let ctx = tiny_context(HardwareConstraints::unconstrained());
        let te_nas = MicroNasSearch::te_nas_baseline().run(&ctx).unwrap();
        let latency_guided = MicroNasSearch::new(ObjectiveWeights::latency_guided(4.0))
            .run(&ctx)
            .unwrap();
        assert!(
            latency_guided.evaluation.hardware.latency_ms <= te_nas.evaluation.hardware.latency_ms,
            "latency-guided ({:.1} ms) must not be slower than proxy-only ({:.1} ms)",
            latency_guided.evaluation.hardware.latency_ms,
            te_nas.evaluation.hardware.latency_ms
        );
        assert_eq!(latency_guided.algorithm, "MicroNAS (latency-guided)");
    }

    #[test]
    fn constrained_search_respects_a_latency_budget() {
        // Pick a budget between the fastest and slowest architectures.
        let unconstrained_ctx = tiny_context(HardwareConstraints::unconstrained());
        let baseline = MicroNasSearch::te_nas_baseline()
            .run(&unconstrained_ctx)
            .unwrap();
        let budget_ms = baseline.evaluation.hardware.latency_ms * 0.6;

        let ctx = tiny_context(HardwareConstraints::unconstrained().with_latency_ms(budget_ms));
        let search = MicroNasSearch::new(ObjectiveWeights::latency_guided(2.0));
        let outcome = search.run(&ctx).unwrap();
        assert!(
            outcome.evaluation.hardware.latency_ms <= budget_ms * 1.05,
            "latency {} exceeds budget {}",
            outcome.evaluation.hardware.latency_ms,
            budget_ms
        );
    }

    #[test]
    fn outcome_is_bitwise_identical_across_store_modes() {
        use micronas_store::EvalStore;
        use std::sync::Arc;

        let config = MicroNasConfig::tiny_test();
        let search = MicroNasSearch::new(ObjectiveWeights::latency_guided(2.0));

        let off = search
            .run(&tiny_context(HardwareConstraints::unconstrained()))
            .unwrap();

        let store = Arc::new(EvalStore::in_memory(config.store_namespace()));
        let ctx_cold =
            SearchContext::with_store(DatasetKind::Cifar10, &config, store.clone()).unwrap();
        let cold = search.run(&ctx_cold).unwrap();

        let ctx_warm =
            SearchContext::with_store(DatasetKind::Cifar10, &config, store.clone()).unwrap();
        let warm = search.run(&ctx_warm).unwrap();

        for (label, other) in [("cold", &cold), ("warm", &warm)] {
            assert_eq!(off.best.index(), other.best.index(), "{label} best");
            assert_eq!(off.history, other.history, "{label} history");
            assert_eq!(off.evaluation, other.evaluation, "{label} evaluation");
            assert_eq!(off.test_accuracy, other.test_accuracy, "{label} accuracy");
        }
        assert_eq!(
            warm.cost.cache.misses, 0,
            "a pre-warmed store serves the whole search"
        );
    }

    #[test]
    fn outcome_is_bitwise_identical_across_pack_widths() {
        let reference = MicroNasSearch::te_nas_baseline()
            .run(&tiny_context(HardwareConstraints::unconstrained()))
            .unwrap();
        for width in [1usize, 3, 8] {
            let ctx = tiny_context(HardwareConstraints::unconstrained()).with_pack_width(width);
            let outcome = MicroNasSearch::te_nas_baseline().run(&ctx).unwrap();
            assert_eq!(
                reference.best.index(),
                outcome.best.index(),
                "width {width}"
            );
            assert_eq!(reference.history, outcome.history, "width {width}");
            assert_eq!(reference.evaluation, outcome.evaluation, "width {width}");
        }
    }

    #[test]
    fn search_is_deterministic_for_a_fixed_seed() {
        let ctx1 = tiny_context(HardwareConstraints::unconstrained());
        let ctx2 = tiny_context(HardwareConstraints::unconstrained());
        let a = MicroNasSearch::te_nas_baseline().run(&ctx1).unwrap();
        let b = MicroNasSearch::te_nas_baseline().run(&ctx2).unwrap();
        assert_eq!(a.best.index(), b.best.index());
    }
}
