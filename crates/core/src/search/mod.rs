//! Search algorithms: the MicroNAS hardware-aware pruning search and the
//! baselines it is compared against.

mod evolutionary;
mod pruning;
mod random;

pub use evolutionary::{EvolutionaryConfig, EvolutionarySearch};
pub use pruning::MicroNasSearch;
pub use random::RandomSearch;
