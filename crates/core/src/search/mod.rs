//! Search algorithms: the MicroNAS hardware-aware pruning search and the
//! baselines it is compared against.
//!
//! # Parallel candidate scoring
//!
//! All three algorithms score candidates on the rayon thread pool while
//! remaining **bitwise deterministic for every thread count**:
//!
//! * candidate *generation* is keyed per candidate — each sampled
//!   architecture comes from its own `ChaCha8Rng` seeded from
//!   `(base seed, candidate index)` — never from a shared stream whose
//!   consumption order could depend on scheduling;
//! * candidate *evaluation* ([`crate::SearchContext::evaluate`]) is a pure
//!   cached function of the cell;
//! * *reduction* (best-candidate / weakest-prune selection) walks the scored
//!   results in candidate order with first-wins tie-breaking.
//!
//! Pin a thread count with `rayon::ThreadPoolBuilder` + `install` to verify;
//! the tests below assert identical [`crate::SearchOutcome`] histories for
//! 1 thread and many.

mod evolutionary;
mod pruning;
mod random;
pub(crate) mod strategy;

pub use evolutionary::{EvolutionaryConfig, EvolutionarySearch};
pub use pruning::MicroNasSearch;
pub use random::RandomSearch;
pub use strategy::{NullObserver, SearchEvent, SearchObserver, SearchStrategy};

#[cfg(test)]
mod thread_determinism_tests {
    use super::*;
    use crate::{MicroNasConfig, ObjectiveWeights, SearchContext, SearchOutcome};
    use micronas_datasets::DatasetKind;
    use rayon::ThreadPoolBuilder;

    fn run_with_threads<F>(threads: usize, run: F) -> SearchOutcome
    where
        F: Fn(&SearchContext) -> SearchOutcome,
    {
        let pool = ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .unwrap();
        pool.install(|| {
            let ctx =
                SearchContext::new(DatasetKind::Cifar10, &MicroNasConfig::tiny_test()).unwrap();
            run(&ctx)
        })
    }

    fn assert_outcomes_identical(a: &SearchOutcome, b: &SearchOutcome) {
        assert_eq!(a.best.index(), b.best.index());
        assert_eq!(a.evaluation, b.evaluation);
        assert_eq!(a.test_accuracy, b.test_accuracy);
        assert_eq!(a.cost.evaluations, b.cost.evaluations);
        // The decisive check: bitwise-equal score trajectories.
        assert_eq!(a.history, b.history);
    }

    #[test]
    fn random_search_history_is_identical_across_thread_counts() {
        let search = RandomSearch::new(ObjectiveWeights::accuracy_only(), 8).unwrap();
        let single = run_with_threads(1, |ctx| search.run(ctx).unwrap());
        for threads in [2, 4, 7] {
            let multi = run_with_threads(threads, |ctx| search.run(ctx).unwrap());
            assert_outcomes_identical(&single, &multi);
        }
    }

    #[test]
    fn pruning_search_history_is_identical_across_thread_counts() {
        let search = MicroNasSearch::new(ObjectiveWeights::latency_guided(2.0));
        let single = run_with_threads(1, |ctx| search.run(ctx).unwrap());
        for threads in [3, 8] {
            let multi = run_with_threads(threads, |ctx| search.run(ctx).unwrap());
            assert_outcomes_identical(&single, &multi);
        }
    }

    #[test]
    fn evolutionary_search_history_is_identical_across_thread_counts() {
        let search = EvolutionarySearch::new(EvolutionaryConfig::fast_test()).unwrap();
        let single = run_with_threads(1, |ctx| search.run(ctx).unwrap());
        let multi = run_with_threads(5, |ctx| search.run(ctx).unwrap());
        assert_outcomes_identical(&single, &multi);
    }
}
