use crate::{
    BatchedEvaluator, MicroNasError, NullObserver, Result, SearchContext, SearchCost, SearchEvent,
    SearchObserver, SearchOutcome, SearchStrategy,
};
use micronas_searchspace::{mutate, random_architecture, Architecture, CellTopology};
use micronas_tensor::hash_mix;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{HashSet, VecDeque};
use std::time::Instant;

/// Configuration of the µNAS-style constrained evolutionary baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EvolutionaryConfig {
    /// Population size.
    pub population: usize,
    /// Number of evolution cycles (each cycle trains and evaluates one child).
    pub cycles: usize,
    /// Tournament sample size for parent selection.
    pub sample_size: usize,
}

impl EvolutionaryConfig {
    /// A configuration comparable to the paper's µNAS baseline budget:
    /// training-based evaluation of several hundred candidates.
    pub fn munas_default() -> Self {
        Self {
            population: 50,
            cycles: 450,
            sample_size: 10,
        }
    }

    /// A reduced configuration for tests.
    pub fn fast_test() -> Self {
        Self {
            population: 8,
            cycles: 24,
            sample_size: 3,
        }
    }
}

impl Default for EvolutionaryConfig {
    fn default() -> Self {
        Self::munas_default()
    }
}

/// µNAS-style baseline: constrained aging evolution whose fitness is the
/// *trained* accuracy of each candidate.
///
/// Unlike MicroNAS, every candidate this search evaluates must be trained, so
/// its search cost is dominated by simulated GPU hours (charged from the
/// surrogate benchmark's per-architecture training cost). Candidates that
/// violate the hardware budgets are rejected during sampling and mutation,
/// mirroring µNAS's resource-constrained search.
#[derive(Debug, Clone)]
pub struct EvolutionarySearch {
    config: EvolutionaryConfig,
}

impl EvolutionarySearch {
    /// Creates the baseline with the given configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MicroNasError::InvalidConfig`] for degenerate settings.
    pub fn new(config: EvolutionaryConfig) -> Result<Self> {
        if config.population < 2 || config.cycles == 0 || config.sample_size == 0 {
            return Err(MicroNasError::InvalidConfig(
                "evolutionary search needs population ≥ 2, cycles ≥ 1 and sample size ≥ 1".into(),
            ));
        }
        Ok(Self { config })
    }

    /// The configuration in use.
    pub fn config(&self) -> &EvolutionaryConfig {
        &self.config
    }

    /// Runs the baseline without progress reporting (equivalent to
    /// [`SearchStrategy::search`] with a [`NullObserver`]).
    ///
    /// # Errors
    ///
    /// Returns [`MicroNasError::NoFeasibleArchitecture`] if no feasible
    /// candidate can be sampled.
    pub fn run(&self, ctx: &SearchContext) -> Result<SearchOutcome> {
        self.search(ctx, &NullObserver)
    }
}

impl SearchStrategy for EvolutionarySearch {
    fn name(&self) -> &str {
        ALGORITHM_NAME
    }

    fn search(&self, ctx: &SearchContext, observer: &dyn SearchObserver) -> Result<SearchOutcome> {
        observer.on_event(&SearchEvent::Started {
            algorithm: self.name(),
        });
        let start = Instant::now();
        let cache_before = ctx.cache_stats();
        let batch_before = ctx.batch_stats();
        let mut rng = ChaCha8Rng::seed_from_u64(ctx.seed().wrapping_add(0x45564F));
        let mut simulated_gpu_hours = 0.0f64;
        let mut trained: HashSet<usize> = HashSet::new();
        let mut history = Vec::new();

        // Charge the (simulated) training bill for an architecture once.
        let fitness =
            |arch: &Architecture, trained: &mut HashSet<usize>, gpu_hours: &mut f64| -> f64 {
                let entry = ctx.benchmark().query(arch, ctx.dataset());
                if trained.insert(arch.index()) {
                    *gpu_hours += entry.train_cost_gpu_hours;
                }
                entry.test_accuracy
            };

        // Feasibility check uses only the cheap hardware indicators, as µNAS
        // does with its analytic resource models. It goes through the
        // context's cached path, so mutated children that revisit an
        // already-scored cell hit the cache (or the shared store) instead of
        // paying a fresh hardware pass.
        let feasible = |arch: &Architecture| -> Result<bool> { ctx.is_feasible(*arch.cell()) };

        // Seed the population with feasible random candidates. Candidate
        // `i` is drawn from its own ChaCha8 stream keyed by
        // `(base seed, attempt index)` and feasibility is checked in bulk
        // through the batched evaluator's front-end on the rayon pool; the
        // population is then filled in attempt order, so the result is
        // bitwise identical for every thread count.
        let base_seed = ctx.seed().wrapping_add(0x45564F);
        let evaluator = BatchedEvaluator::new(ctx);
        let mut population: VecDeque<(Architecture, f64)> =
            VecDeque::with_capacity(self.config.population);
        let max_attempts = self.config.population * 200;
        let mut attempt = 0usize;
        while population.len() < self.config.population && attempt < max_attempts {
            let round = self.config.population.min(max_attempts - attempt);
            let batch: Vec<Architecture> = (attempt..attempt + round)
                .map(|i| {
                    let mut arch_rng = ChaCha8Rng::seed_from_u64(hash_mix(base_seed, i as u64));
                    random_architecture(ctx.space(), &mut arch_rng)
                })
                .collect();
            let cells: Vec<CellTopology> = batch.iter().map(|arch| *arch.cell()).collect();
            let feasibility = evaluator.feasibility_all(&cells)?;
            for (arch, ok) in batch.into_iter().zip(feasibility) {
                if ok && population.len() < self.config.population {
                    let fit = fitness(&arch, &mut trained, &mut simulated_gpu_hours);
                    population.push_back((arch, fit));
                }
            }
            attempt += round;
        }
        if population.len() < self.config.population {
            return Err(MicroNasError::NoFeasibleArchitecture);
        }

        let mut best = population
            .iter()
            .cloned()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("accuracies are finite"))
            .expect("population is non-empty");
        observer.on_event(&SearchEvent::Step {
            index: history.len(),
            score: best.1,
        });
        history.push(best.1);

        // Aging evolution: tournament parent selection, single mutation,
        // oldest member dies.
        for _ in 0..self.config.cycles {
            let _step_span = micronas_telemetry::span!("strategy.step");
            let mut parent: Option<(Architecture, f64)> = None;
            for _ in 0..self.config.sample_size {
                let idx = rand::Rng::gen_range(&mut rng, 0..population.len());
                let candidate = population[idx];
                if parent.as_ref().is_none_or(|p| candidate.1 > p.1) {
                    parent = Some(candidate);
                }
            }
            let parent = parent.expect("sample size is at least one");

            // Mutate until a feasible child appears (bounded retries).
            let mut child = mutate(ctx.space(), &parent.0, &mut rng);
            let mut retries = 0;
            while !feasible(&child)? && retries < 50 {
                child = mutate(ctx.space(), &parent.0, &mut rng);
                retries += 1;
            }
            if !feasible(&child)? {
                observer.on_event(&SearchEvent::Step {
                    index: history.len(),
                    score: best.1,
                });
                history.push(best.1);
                continue;
            }
            let child_fit = fitness(&child, &mut trained, &mut simulated_gpu_hours);
            population.push_back((child, child_fit));
            population.pop_front();
            if child_fit > best.1 {
                best = (child, child_fit);
            }
            observer.on_event(&SearchEvent::Step {
                index: history.len(),
                score: best.1,
            });
            history.push(best.1);
        }

        let evaluation = ctx.evaluate(*best.0.cell())?;
        let outcome = SearchOutcome {
            best: best.0,
            evaluation: (*evaluation).clone(),
            test_accuracy: best.1,
            cost: SearchCost {
                wall_clock_seconds: start.elapsed().as_secs_f64(),
                simulated_gpu_hours,
                evaluations: trained.len(),
                cache: ctx.cache_stats().since(&cache_before),
                batch: ctx.batch_stats().since(&batch_before),
            },
            algorithm: ALGORITHM_NAME.to_string(),
            history,
        };
        observer.on_event(&SearchEvent::Finished { outcome: &outcome });
        Ok(outcome)
    }
}

/// Report name of the µNAS-style baseline.
const ALGORITHM_NAME: &str = "µNAS-style constrained evolution (training-based)";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MicroNasConfig;
    use micronas_datasets::DatasetKind;
    use micronas_hw::HardwareConstraints;

    fn tiny_context() -> SearchContext {
        SearchContext::new(DatasetKind::Cifar10, &MicroNasConfig::tiny_test()).unwrap()
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        assert!(EvolutionarySearch::new(EvolutionaryConfig {
            population: 1,
            cycles: 10,
            sample_size: 2
        })
        .is_err());
        assert!(EvolutionarySearch::new(EvolutionaryConfig {
            population: 4,
            cycles: 0,
            sample_size: 2
        })
        .is_err());
        assert!(EvolutionarySearch::new(EvolutionaryConfig {
            population: 4,
            cycles: 5,
            sample_size: 0
        })
        .is_err());
        assert!(EvolutionarySearch::new(EvolutionaryConfig::fast_test()).is_ok());
    }

    #[test]
    fn evolution_improves_or_maintains_best_fitness() {
        let ctx = tiny_context();
        let search = EvolutionarySearch::new(EvolutionaryConfig::fast_test()).unwrap();
        let outcome = search.run(&ctx).unwrap();
        // The best-so-far trajectory must be non-decreasing.
        for w in outcome.history.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(outcome.test_accuracy >= outcome.history[0]);
        assert!(
            outcome.cost.simulated_gpu_hours > 0.0,
            "training-based search must pay GPU hours"
        );
        assert!(outcome.cost.evaluations > 0);
    }

    #[test]
    fn simulated_cost_scales_with_number_of_trained_candidates() {
        let ctx = tiny_context();
        let small = EvolutionarySearch::new(EvolutionaryConfig {
            population: 4,
            cycles: 4,
            sample_size: 2,
        })
        .unwrap()
        .run(&ctx)
        .unwrap();
        let ctx2 = tiny_context();
        let large = EvolutionarySearch::new(EvolutionaryConfig {
            population: 8,
            cycles: 30,
            sample_size: 2,
        })
        .unwrap()
        .run(&ctx2)
        .unwrap();
        assert!(large.cost.simulated_gpu_hours > small.cost.simulated_gpu_hours);
    }

    #[test]
    fn revisited_children_hit_the_evaluation_cache() {
        let ctx = tiny_context();
        let search = EvolutionarySearch::new(EvolutionaryConfig::fast_test()).unwrap();
        let outcome = search.run(&ctx).unwrap();
        // Mutated children frequently land on already-scored cells; those
        // feasibility checks must be served from the cache, not recomputed.
        assert!(
            outcome.cost.cache.hits > 0,
            "revisits must hit the cache: {:?}",
            outcome.cost.cache
        );
        assert!(outcome.cost.cache.misses > 0, "fresh cells still compute");
    }

    #[test]
    fn shared_store_removes_duplicate_work_across_runs() {
        use micronas_store::EvalStore;
        use std::sync::Arc;

        let config = MicroNasConfig::tiny_test();
        let store = Arc::new(EvalStore::in_memory(config.store_namespace()));
        let search = EvolutionarySearch::new(EvolutionaryConfig::fast_test()).unwrap();

        let ctx1 = SearchContext::with_store(DatasetKind::Cifar10, &config, store.clone()).unwrap();
        let first = search.run(&ctx1).unwrap();

        let ctx2 = SearchContext::with_store(DatasetKind::Cifar10, &config, store.clone()).unwrap();
        let second = search.run(&ctx2).unwrap();

        // Identical search under a warm store: no fresh proxy passes at all,
        // and the outcome is bitwise identical.
        assert_eq!(second.cost.cache.misses, 0, "warm store must not recompute");
        assert_eq!(first.best.index(), second.best.index());
        assert_eq!(first.history, second.history);
        assert_eq!(first.evaluation, second.evaluation);
    }

    #[test]
    fn respects_hardware_constraints() {
        // Constrain parameters tightly; every member of the final population
        // must satisfy the budget.
        let config = MicroNasConfig::tiny_test()
            .with_constraints(HardwareConstraints::unconstrained().with_params_m(0.5));
        let ctx = SearchContext::new(DatasetKind::Cifar10, &config).unwrap();
        let search = EvolutionarySearch::new(EvolutionaryConfig::fast_test()).unwrap();
        let outcome = search.run(&ctx).unwrap();
        assert!(outcome.evaluation.hardware.params_m <= 0.5);
    }

    #[test]
    fn impossible_constraints_error_out() {
        let config = MicroNasConfig::tiny_test()
            .with_constraints(HardwareConstraints::unconstrained().with_latency_ms(1e-9));
        let ctx = SearchContext::new(DatasetKind::Cifar10, &config).unwrap();
        let search = EvolutionarySearch::new(EvolutionaryConfig::fast_test()).unwrap();
        assert!(matches!(
            search.run(&ctx),
            Err(MicroNasError::NoFeasibleArchitecture)
        ));
    }
}
