//! The [`SearchStrategy`] trait and the progress-observation surface.
//!
//! The three shipped algorithms — pruning ([`crate::MicroNasSearch`]),
//! random ([`crate::RandomSearch`]) and evolutionary
//! ([`crate::EvolutionarySearch`]) — used to expose three unrelated `run()`
//! signatures. [`SearchStrategy`] unifies them behind one object-safe
//! surface so drivers (the [`crate::SearchSession`] builder, the
//! experiment harness, conformance tests) can treat any search — including
//! external ones — as `&dyn SearchStrategy`.
//!
//! Progress is reported through a [`SearchObserver`]: strategies emit one
//! [`SearchEvent::Started`], one deterministic [`SearchEvent::Step`] per
//! decision step (the same entries that end up in
//! [`crate::SearchOutcome::history`], in the same order, regardless of
//! thread count) and one [`SearchEvent::Finished`]. Observers run on the
//! caller's thread during the *sequential* reduction phase of each step, so
//! they never perturb the parallel scoring and need no internal ordering.

use crate::{Result, SearchContext, SearchOutcome};

/// One progress event of a running search.
#[derive(Debug)]
pub enum SearchEvent<'a> {
    /// The search started. Emitted exactly once, before any evaluation.
    Started {
        /// Human-readable algorithm name ([`SearchStrategy::name`]).
        algorithm: &'a str,
    },
    /// One decision step completed. `score` is the step's history entry
    /// (objective score of the step's decision; best-so-far fitness for the
    /// evolutionary baseline) — events replay
    /// [`crate::SearchOutcome::history`] live, in order.
    Step {
        /// Zero-based step index.
        index: usize,
        /// The step's history entry.
        score: f64,
    },
    /// The search finished. Emitted exactly once, with the final outcome.
    Finished {
        /// The completed outcome (also returned by the strategy).
        outcome: &'a SearchOutcome,
    },
}

/// A progress-event sink for searches.
///
/// Implementations must be cheap and must not panic: strategies call them
/// inline from their sequential reduction loops. Events arrive in a
/// deterministic order that does not depend on the rayon thread count.
pub trait SearchObserver: Send + Sync {
    /// Receives one progress event.
    fn on_event(&self, event: &SearchEvent<'_>);
}

/// The do-nothing observer used when no observer is attached.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl SearchObserver for NullObserver {
    fn on_event(&self, _event: &SearchEvent<'_>) {}
}

/// An architecture-search algorithm, pluggable into a
/// [`crate::SearchSession`].
///
/// Implementations hold their *algorithm* parameters (objective weights,
/// budgets, population shape) and receive everything about the *evaluation
/// environment* — dataset, proxies, store, hardware budgets — through the
/// [`SearchContext`] at run time, so one configured strategy can run against
/// any number of sessions.
///
/// The contract every implementation must keep:
///
/// * **Determinism** — for a fixed context seed the outcome (including
///   [`crate::SearchOutcome::history`]) is bitwise identical on every run,
///   for every rayon thread count, and for every store mode (off, cold or
///   pre-warmed).
/// * **Events** — exactly one [`SearchEvent::Started`], then one
///   [`SearchEvent::Step`] per history entry in order, then exactly one
///   [`SearchEvent::Finished`].
pub trait SearchStrategy: Send + Sync {
    /// Human-readable algorithm name (also used in
    /// [`crate::SearchOutcome::algorithm`] and reports).
    fn name(&self) -> &str;

    /// Runs the search against `ctx`, reporting progress to `observer`.
    ///
    /// # Errors
    ///
    /// Propagates evaluation failures; returns
    /// [`crate::MicroNasError::NoFeasibleArchitecture`] when the hardware
    /// budgets cannot be met.
    fn search(&self, ctx: &SearchContext, observer: &dyn SearchObserver) -> Result<SearchOutcome>;
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use parking_lot::Mutex;

    /// Records every event for assertion.
    #[derive(Default)]
    pub struct RecordingObserver {
        pub started: Mutex<Vec<String>>,
        pub steps: Mutex<Vec<(usize, f64)>>,
        pub finished: Mutex<usize>,
    }

    impl SearchObserver for RecordingObserver {
        fn on_event(&self, event: &SearchEvent<'_>) {
            match event {
                SearchEvent::Started { algorithm } => {
                    self.started.lock().push((*algorithm).to_string());
                }
                SearchEvent::Step { index, score } => {
                    self.steps.lock().push((*index, *score));
                }
                SearchEvent::Finished { .. } => *self.finished.lock() += 1,
            }
        }
    }

    /// Asserts the full event contract of one completed search.
    pub fn assert_event_contract(observer: &RecordingObserver, outcome: &SearchOutcome) {
        assert_eq!(
            observer.started.lock().as_slice(),
            std::slice::from_ref(&outcome.algorithm)
        );
        assert_eq!(*observer.finished.lock(), 1);
        let steps = observer.steps.lock();
        assert_eq!(steps.len(), outcome.history.len());
        for (i, ((index, score), expected)) in steps.iter().zip(&outcome.history).enumerate() {
            assert_eq!(*index, i, "step indices are dense and ordered");
            assert_eq!(score.to_bits(), expected.to_bits(), "step {i} score");
        }
    }
}
