use crate::{
    BatchedEvaluator, HybridObjective, MicroNasError, NullObserver, ObjectiveWeights, Result,
    SearchContext, SearchCost, SearchEvent, SearchObserver, SearchOutcome, SearchStrategy,
};
use micronas_searchspace::{random_architecture, Architecture, CellTopology};
use micronas_tensor::hash_mix;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// Random search over the cell space using the same zero-cost objective.
///
/// This is the standard sanity baseline for zero-shot NAS: sample `budget`
/// architectures uniformly at random, score each with the hybrid objective
/// and keep the best feasible one.
///
/// Candidate evaluation goes through the mega-batched
/// [`BatchedEvaluator`]: the sample budget is sliced into packs that run
/// concurrently on the rayon pool, each pack fusing its candidates'
/// same-geometry convolutions into shared GEMM dispatches. Every
/// candidate's architecture is drawn from its own `ChaCha8Rng` seeded from
/// `(base seed, candidate index)`, and results are reduced in candidate
/// order, so the outcome — including the score history — is bitwise
/// identical for every thread count and pack width.
#[derive(Debug, Clone)]
pub struct RandomSearch {
    objective: HybridObjective,
    budget: usize,
}

impl RandomSearch {
    /// Creates a random search with the given objective weights and sample budget.
    ///
    /// # Errors
    ///
    /// Returns [`MicroNasError::InvalidConfig`] if `budget` is zero.
    pub fn new(weights: ObjectiveWeights, budget: usize) -> Result<Self> {
        if budget == 0 {
            return Err(MicroNasError::InvalidConfig(
                "random search budget must be positive".into(),
            ));
        }
        Ok(Self {
            objective: HybridObjective::new(weights),
            budget,
        })
    }

    /// The number of architectures sampled.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Runs the search without progress reporting (equivalent to
    /// [`SearchStrategy::search`] with a [`NullObserver`]).
    ///
    /// # Errors
    ///
    /// Returns [`MicroNasError::NoFeasibleArchitecture`] if every sampled
    /// architecture violates the hardware budgets, and propagates proxy
    /// failures.
    pub fn run(&self, ctx: &SearchContext) -> Result<SearchOutcome> {
        self.search(ctx, &NullObserver)
    }
}

impl SearchStrategy for RandomSearch {
    fn name(&self) -> &str {
        ALGORITHM_NAME
    }

    fn search(&self, ctx: &SearchContext, observer: &dyn SearchObserver) -> Result<SearchOutcome> {
        observer.on_event(&SearchEvent::Started {
            algorithm: self.name(),
        });
        let start = Instant::now();
        let evaluations_before = ctx.evaluation_count();
        let cache_before = ctx.cache_stats();
        let batch_before = ctx.batch_stats();
        let base_seed = ctx.seed().wrapping_add(RANDOM_STREAM);

        // Draw every candidate from its own deterministic stream so the
        // sample set does not depend on scoring order or thread count.
        let candidates: Vec<Architecture> = (0..self.budget)
            .map(|index| {
                let mut rng = ChaCha8Rng::seed_from_u64(hash_mix(base_seed, index as u64));
                random_architecture(ctx.space(), &mut rng)
            })
            .collect();

        // Evaluate the whole slate through the mega-batched path; handles
        // come back in candidate order.
        let cells: Vec<CellTopology> = candidates.iter().map(|arch| *arch.cell()).collect();
        let evals = {
            let _step_span = micronas_telemetry::span!("strategy.step");
            BatchedEvaluator::new(ctx).evaluate_all(&cells)?
        };

        // Sequential, order-preserving reduction: identical to the previous
        // one-at-a-time loop (first-seen candidate wins ties).
        let mut best: Option<(f64, SearchOutcome)> = None;
        let mut history = Vec::with_capacity(self.budget);
        for (arch, eval) in candidates.iter().zip(evals) {
            let score = self.objective.score(&eval.metrics, &eval.hardware);
            observer.on_event(&SearchEvent::Step {
                index: history.len(),
                score,
            });
            history.push(score);
            if !eval.feasible {
                continue;
            }
            let is_better = best.as_ref().is_none_or(|(s, _)| score > *s);
            if is_better {
                let outcome = SearchOutcome {
                    best: *arch,
                    evaluation: (*eval).clone(),
                    test_accuracy: ctx.trained_accuracy(arch),
                    cost: SearchCost::default(),
                    algorithm: ALGORITHM_NAME.to_string(),
                    history: Vec::new(),
                };
                best = Some((score, outcome));
            }
        }

        let (_, mut outcome) = best.ok_or(MicroNasError::NoFeasibleArchitecture)?;
        outcome.cost = SearchCost {
            wall_clock_seconds: start.elapsed().as_secs_f64(),
            simulated_gpu_hours: 0.0,
            evaluations: ctx.evaluation_count() - evaluations_before,
            cache: ctx.cache_stats().since(&cache_before),
            batch: ctx.batch_stats().since(&batch_before),
        };
        outcome.history = history;
        observer.on_event(&SearchEvent::Finished { outcome: &outcome });
        Ok(outcome)
    }
}

/// Seed-stream tag for the random-search RNG.
const RANDOM_STREAM: u64 = 0x52_41_4E_44;

/// Report name of the random-search baseline.
const ALGORITHM_NAME: &str = "Random search (zero-cost objective)";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MicroNasConfig;
    use micronas_datasets::DatasetKind;
    use micronas_hw::HardwareConstraints;

    fn tiny_context() -> SearchContext {
        SearchContext::new(DatasetKind::Cifar10, &MicroNasConfig::tiny_test()).unwrap()
    }

    #[test]
    fn zero_budget_is_rejected() {
        assert!(RandomSearch::new(ObjectiveWeights::accuracy_only(), 0).is_err());
        assert!(RandomSearch::new(ObjectiveWeights::accuracy_only(), 5).is_ok());
    }

    #[test]
    fn finds_a_feasible_architecture_and_counts_cost() {
        let ctx = tiny_context();
        let search = RandomSearch::new(ObjectiveWeights::accuracy_only(), 6).unwrap();
        let outcome = search.run(&ctx).unwrap();
        assert!(outcome.evaluation.feasible);
        assert_eq!(outcome.history.len(), 6);
        assert!(outcome.cost.evaluations <= 6);
        assert!(outcome.cost.wall_clock_seconds > 0.0);
        assert_eq!(
            outcome.cost.batch.packed_candidates, 6,
            "the whole budget rides the packed path"
        );
        assert!(outcome.cost.batch.dispatches >= 1);
    }

    #[test]
    fn outcome_is_bitwise_identical_across_pack_widths() {
        let search = RandomSearch::new(ObjectiveWeights::latency_guided(1.0), 7).unwrap();
        let reference = search.run(&tiny_context()).unwrap();
        for width in [1usize, 2, 16] {
            let ctx = tiny_context().with_pack_width(width);
            let outcome = search.run(&ctx).unwrap();
            assert_eq!(
                reference.best.index(),
                outcome.best.index(),
                "width {width}"
            );
            assert_eq!(reference.history, outcome.history, "width {width}");
            assert_eq!(reference.evaluation, outcome.evaluation, "width {width}");
        }
    }

    #[test]
    fn impossible_constraints_yield_no_feasible_architecture() {
        let config = MicroNasConfig::tiny_test()
            .with_constraints(HardwareConstraints::unconstrained().with_latency_ms(1e-9));
        let ctx = SearchContext::new(DatasetKind::Cifar10, &config).unwrap();
        let search = RandomSearch::new(ObjectiveWeights::latency_guided(1.0), 4).unwrap();
        assert!(matches!(
            search.run(&ctx),
            Err(MicroNasError::NoFeasibleArchitecture)
        ));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = RandomSearch::new(ObjectiveWeights::accuracy_only(), 5)
            .unwrap()
            .run(&tiny_context())
            .unwrap();
        let b = RandomSearch::new(ObjectiveWeights::accuracy_only(), 5)
            .unwrap()
            .run(&tiny_context())
            .unwrap();
        assert_eq!(a.best.index(), b.best.index());
    }
}
