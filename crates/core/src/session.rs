//! The [`SearchSession`] builder: one entry point for configuring and
//! running searches.
//!
//! A session bundles everything a search needs — dataset, proxy
//! configuration, pluggable [`Proxy`] plugins, objective weights, an
//! optional shared [`EvalStore`] and an optional progress
//! [`SearchObserver`] — behind one builder, so every strategy runs through
//! the same evaluation surface:
//!
//! ```no_run
//! use micronas::{MicroNasConfig, ObjectiveWeights, SearchSession};
//! use micronas_datasets::DatasetKind;
//!
//! # fn main() -> Result<(), micronas::MicroNasError> {
//! let session = SearchSession::builder()
//!     .dataset(DatasetKind::Cifar10)
//!     .config(MicroNasConfig::fast())
//!     .objective(ObjectiveWeights::latency_guided(2.0))
//!     .build()?;
//! let outcome = session.run_micronas()?;
//! println!("discovered {}", outcome.best);
//! # Ok(())
//! # }
//! ```

use crate::{
    MicroNasConfig, MicroNasSearch, NullObserver, ObjectiveWeights, Result, SearchContext,
    SearchObserver, SearchOutcome, SearchStrategy,
};
use micronas_datasets::DatasetKind;
use micronas_proxies::Proxy;
use micronas_store::EvalStore;
use std::sync::Arc;

/// A fully configured search environment: an evaluation context plus the
/// session-level objective weights and progress observer.
///
/// Build one with [`SearchSession::builder`], then [`SearchSession::run`]
/// any number of [`SearchStrategy`] values against it — they share the
/// session's caches (and store), so overlapping candidate sets are
/// evaluated once.
pub struct SearchSession {
    context: SearchContext,
    weights: ObjectiveWeights,
    observer: Arc<dyn SearchObserver>,
    telemetry: Option<Arc<dyn micronas_telemetry::TelemetrySink>>,
    fabric: Option<Arc<micronas_fabric::RemoteTier>>,
}

impl SearchSession {
    /// Starts building a session. Defaults: CIFAR-10, the paper-default
    /// configuration, the proxy-only objective, no plugins, no store, no
    /// observer.
    pub fn builder() -> SearchSessionBuilder {
        SearchSessionBuilder::default()
    }

    /// The evaluation context strategies run against.
    pub fn context(&self) -> &SearchContext {
        &self.context
    }

    /// The session's objective weights (used by
    /// [`SearchSession::run_micronas`]; strategies constructed explicitly
    /// carry their own).
    pub fn weights(&self) -> &ObjectiveWeights {
        &self.weights
    }

    /// Runs `strategy` against this session's context, reporting progress
    /// to the session observer.
    ///
    /// # Errors
    ///
    /// Propagates the strategy's failures.
    pub fn run(&self, strategy: &dyn SearchStrategy) -> Result<SearchOutcome> {
        let _scope = self
            .telemetry
            .as_ref()
            .map(|sink| micronas_telemetry::install_scoped(sink.clone()));
        strategy.search(&self.context, self.observer.as_ref())
    }

    /// Runs the MicroNAS pruning search with the session's objective
    /// weights.
    ///
    /// # Errors
    ///
    /// Propagates search failures.
    pub fn run_micronas(&self) -> Result<SearchOutcome> {
        self.run(&MicroNasSearch::new(self.weights.clone()))
    }

    /// The remote fabric tier this session's store reads through, when the
    /// configuration joined one (`fabric` in [`MicroNasConfig`] or
    /// [`SearchSessionBuilder::fabric`]). Use it to inspect remote
    /// hit/miss/degradation counters or to [`flush`] write-behind offers at
    /// a sweep boundary.
    ///
    /// [`flush`]: micronas_fabric::RemoteTier::flush
    pub fn fabric_tier(&self) -> Option<&Arc<micronas_fabric::RemoteTier>> {
        self.fabric.as_ref()
    }
}

impl std::fmt::Debug for SearchSession {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchSession")
            .field("context", &self.context)
            .field("weights", &self.weights)
            .finish()
    }
}

/// Builder for a [`SearchSession`]; see [`SearchSession::builder`].
#[derive(Default)]
pub struct SearchSessionBuilder {
    dataset: Option<DatasetKind>,
    config: Option<MicroNasConfig>,
    weights: Option<ObjectiveWeights>,
    proxies: Vec<Arc<dyn Proxy>>,
    store: Option<Arc<EvalStore>>,
    observer: Option<Arc<dyn SearchObserver>>,
    backend: Option<micronas_tensor::KernelBackendKind>,
    compiler: Option<micronas_graph::CompilerKind>,
    pack_width: Option<usize>,
    telemetry: Option<Arc<dyn micronas_telemetry::TelemetrySink>>,
    fabric: Option<micronas_fabric::FabricConfig>,
}

impl SearchSessionBuilder {
    /// Sets the dataset the search targets (default: CIFAR-10).
    #[must_use]
    pub fn dataset(mut self, dataset: DatasetKind) -> Self {
        self.dataset = Some(dataset);
        self
    }

    /// Sets the proxy/hardware configuration (default:
    /// [`MicroNasConfig::paper_default`]).
    #[must_use]
    pub fn config(mut self, config: MicroNasConfig) -> Self {
        self.config = Some(config);
        self
    }

    /// Sets the session objective weights (default:
    /// [`ObjectiveWeights::accuracy_only`]). Weights may reference any
    /// metric id, including ids published by registered plugins.
    #[must_use]
    pub fn objective(mut self, weights: ObjectiveWeights) -> Self {
        self.weights = Some(weights);
        self
    }

    /// Registers one pluggable proxy. Its score joins every candidate's
    /// [`micronas_proxies::MetricSet`] under the proxy's id.
    #[must_use]
    pub fn proxy(mut self, proxy: Arc<dyn Proxy>) -> Self {
        self.proxies.push(proxy);
        self
    }

    /// Registers several pluggable proxies (appending, in order).
    #[must_use]
    pub fn proxies(mut self, proxies: impl IntoIterator<Item = Arc<dyn Proxy>>) -> Self {
        self.proxies.extend(proxies);
        self
    }

    /// Attaches a shared evaluation store. Must have been created for the
    /// session configuration's namespace
    /// ([`MicroNasConfig::store_namespace`]).
    #[must_use]
    pub fn store(mut self, store: Arc<EvalStore>) -> Self {
        self.store = Some(store);
        self
    }

    /// Selects the execution backend the session's **built-in** indicators
    /// (NTK, linear regions) run on (overrides the configuration's
    /// `backend` field; default: the bitwise paper-default
    /// [`micronas_tensor::KernelBackendKind::BlockedGemm`]). A numerically
    /// divergent backend moves the session into its own store namespace, so
    /// an attached store must have been created for that namespace.
    ///
    /// Plugin proxies registered via [`SearchSessionBuilder::proxy`] are
    /// opaque to the session and keep whatever execution configuration they
    /// were constructed with — a plugin that supports backend selection
    /// exposes its own `with_backend` constructor (and must fold the
    /// backend into its `config_fingerprint`, see
    /// [`micronas_proxies::fold_backend`]).
    #[must_use]
    pub fn backend(mut self, backend: micronas_tensor::KernelBackendKind) -> Self {
        self.backend = Some(backend);
        self
    }

    /// Routes the session's built-in indicators (NTK, linear regions)
    /// through a compiled kernel-graph plan instead of the eager call tree
    /// (overrides the configuration's `compiler` field; default: eager).
    ///
    /// [`micronas_graph::CompilerKind::Interpreter`] replays the eager
    /// schedule bitwise and keeps the paper store namespace; a numerically
    /// divergent compiler such as [`micronas_graph::CompilerKind::Fusing`]
    /// moves the session into its own namespace — exactly like a divergent
    /// backend — so an attached store must have been created for it.
    #[must_use]
    pub fn compiler(mut self, compiler: micronas_graph::CompilerKind) -> Self {
        self.compiler = Some(compiler);
        self
    }

    /// Sets the maximum number of candidates the session's context packs
    /// into one mega-batched proxy sweep (default:
    /// [`crate::DEFAULT_PACK_WIDTH`]; clamped to at least 1, and 1 disables
    /// cross-candidate packing). Search outcomes are bitwise identical for
    /// every width — only GEMM dispatch density and wall-clock change.
    #[must_use]
    pub fn pack_width(mut self, width: usize) -> Self {
        self.pack_width = Some(width);
        self
    }

    /// Joins a distributed evaluation fabric (overrides the
    /// configuration's `fabric` field): the session's store reads through
    /// the fleet on local misses and offers fresh evaluations back
    /// write-behind. If no store was attached explicitly, an in-memory
    /// store for the configuration's namespace is created to carry the
    /// fabric tier.
    ///
    /// The fabric never changes search results — records are
    /// content-addressed and evaluations deterministic, so outcomes are
    /// bitwise identical with the fabric enabled, degraded or absent; only
    /// the hit/miss economics move.
    #[must_use]
    pub fn fabric(mut self, fabric: micronas_fabric::FabricConfig) -> Self {
        self.fabric = Some(fabric);
        self
    }

    /// Attaches a progress observer that receives every
    /// [`crate::SearchEvent`] of searches run through the session.
    #[must_use]
    pub fn observer(mut self, observer: Arc<dyn SearchObserver>) -> Self {
        self.observer = Some(observer);
        self
    }

    /// Attaches a telemetry sink ([`micronas_telemetry::TelemetrySink`])
    /// that every [`SearchSession::run`] installs for the duration of the
    /// search (restoring the previous sink afterwards), so spans and
    /// counters from all layers — tensor kernels, network forward passes,
    /// proxies, the store and the strategy itself — flow into it. Use a
    /// [`micronas_telemetry::Collector`] and read its
    /// [`micronas_telemetry::Collector::report`] after the run.
    ///
    /// Telemetry is provably inert: outcomes, histories and cache/batch
    /// statistics are bitwise identical with and without a sink attached.
    #[must_use]
    pub fn telemetry(mut self, sink: Arc<dyn micronas_telemetry::TelemetrySink>) -> Self {
        self.telemetry = Some(sink);
        self
    }

    /// Builds the session.
    ///
    /// # Errors
    ///
    /// Returns [`crate::MicroNasError::InvalidConfig`] if the configuration
    /// is invalid, a proxy id collides, or the store namespace does not
    /// match the configuration.
    pub fn build(self) -> Result<SearchSession> {
        let dataset = self.dataset.unwrap_or(DatasetKind::Cifar10);
        let mut config = self.config.unwrap_or_default();
        if let Some(backend) = self.backend {
            config.backend = backend;
        }
        if let Some(compiler) = self.compiler {
            config.compiler = Some(compiler);
        }
        if let Some(fabric) = self.fabric {
            config.fabric = Some(fabric);
        }
        // Joining a fabric needs a store to carry the remote tier; sessions
        // that did not attach one get a private in-memory store for the
        // configuration's namespace. `attach_remote` re-checks the
        // namespace, so a store created for a different configuration is
        // rejected here rather than serving foreign records.
        let (store, fabric_tier) = match &config.fabric {
            Some(fabric_config) => {
                let namespace = config.store_namespace();
                let store = self
                    .store
                    .unwrap_or_else(|| Arc::new(EvalStore::in_memory(namespace)));
                let tier = Arc::new(micronas_fabric::RemoteTier::from_config(
                    namespace,
                    fabric_config,
                ));
                store.attach_remote(Arc::clone(&tier) as Arc<dyn micronas_store::RemoteBackend>)?;
                (Some(store), Some(tier))
            }
            None => (self.store, None),
        };
        let mut context = SearchContext::with_proxies(dataset, &config, store, self.proxies)?;
        if let Some(width) = self.pack_width {
            context = context.with_pack_width(width);
        }
        Ok(SearchSession {
            context,
            weights: self.weights.unwrap_or_default(),
            observer: self
                .observer
                .unwrap_or_else(|| Arc::new(NullObserver) as Arc<dyn SearchObserver>),
            telemetry: self.telemetry,
            fabric: fabric_tier,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::strategy::test_support::{assert_event_contract, RecordingObserver};
    use crate::{EvolutionaryConfig, EvolutionarySearch, RandomSearch};
    use micronas_proxies::{metric_ids, SynFlowConfig, SynFlowProxy};

    fn tiny_builder() -> SearchSessionBuilder {
        SearchSession::builder().config(MicroNasConfig::tiny_test())
    }

    #[test]
    fn defaults_are_filled_in() {
        let session = tiny_builder().build().unwrap();
        assert_eq!(session.context().dataset(), DatasetKind::Cifar10);
        assert_eq!(session.weights(), &ObjectiveWeights::accuracy_only());
        assert!(format!("{session:?}").contains("SearchSession"));
    }

    #[test]
    fn session_runs_match_direct_strategy_runs_bitwise() {
        let config = MicroNasConfig::tiny_test();
        let session = SearchSession::builder()
            .dataset(DatasetKind::Cifar10)
            .config(config.clone())
            .objective(ObjectiveWeights::latency_guided(2.0))
            .build()
            .unwrap();
        let via_session = session.run_micronas().unwrap();

        let ctx = SearchContext::new(DatasetKind::Cifar10, &config).unwrap();
        let direct = MicroNasSearch::new(ObjectiveWeights::latency_guided(2.0))
            .run(&ctx)
            .unwrap();
        assert_eq!(via_session.best.index(), direct.best.index());
        assert_eq!(via_session.history, direct.history);
        assert_eq!(via_session.evaluation, direct.evaluation);
    }

    #[test]
    fn observer_receives_the_full_event_contract_for_every_strategy() {
        let strategies: Vec<Box<dyn SearchStrategy>> = vec![
            Box::new(MicroNasSearch::te_nas_baseline()),
            Box::new(RandomSearch::new(ObjectiveWeights::accuracy_only(), 5).unwrap()),
            Box::new(EvolutionarySearch::new(EvolutionaryConfig::fast_test()).unwrap()),
        ];
        for strategy in &strategies {
            let observer = Arc::new(RecordingObserver::default());
            let session = tiny_builder().observer(observer.clone()).build().unwrap();
            let outcome = session.run(strategy.as_ref()).unwrap();
            assert_eq!(outcome.algorithm, strategy.name());
            assert_event_contract(&observer, &outcome);
        }
    }

    #[test]
    fn plugin_weighted_objective_changes_the_session_search() {
        // A session with a SynFlow plugin and a weight on its metric id must
        // run end-to-end; weighting an unpublished id must change nothing.
        let with_plugin = tiny_builder()
            .proxy(Arc::new(SynFlowProxy::new(SynFlowConfig::fast())))
            .objective(ObjectiveWeights::accuracy_only().with_metric(metric_ids::SYNFLOW, 0.5))
            .build()
            .unwrap();
        let outcome = with_plugin.run_micronas().unwrap();
        assert!(outcome
            .evaluation
            .metrics
            .get(metric_ids::SYNFLOW)
            .is_some());

        let baseline = tiny_builder().build().unwrap().run_micronas().unwrap();
        let weight_without_plugin = tiny_builder()
            .objective(ObjectiveWeights::accuracy_only().with_metric(metric_ids::SYNFLOW, 0.5))
            .build()
            .unwrap()
            .run_micronas()
            .unwrap();
        assert_eq!(
            baseline.history, weight_without_plugin.history,
            "weighting a metric no proxy publishes must be a no-op"
        );
    }

    #[test]
    fn ported_built_in_proxies_are_registrable_as_plugins() {
        use micronas_proxies::{LinearRegionConfig, LinearRegionProxy, NtkConfig, NtkProxy};

        // A second, differently-configured probe of each built-in family
        // rides along as a plugin — their ids ("ntk",
        // "linear_region_score") must not collide with the built-in metric
        // ids the session always publishes.
        let session = tiny_builder()
            .proxy(Arc::new(NtkProxy::new(NtkConfig::fast())))
            .proxy(Arc::new(LinearRegionProxy::new(LinearRegionConfig::fast())))
            .build()
            .unwrap();
        let cell = session.context().space().cell(42).unwrap();
        let eval = session.context().evaluate(cell).unwrap();
        assert!(eval.metrics.contains("ntk"));
        assert!(eval.metrics.contains("linear_region_score"));
        // The built-in entries are still present and untouched alongside.
        assert!(eval.metrics.contains(metric_ids::LINEAR_REGIONS));
        assert!(eval.metrics.contains(metric_ids::NTK_CONDITION));
    }

    #[test]
    fn pack_width_flows_into_the_context_and_preserves_outcomes() {
        let narrow = tiny_builder().pack_width(1).build().unwrap();
        assert_eq!(narrow.context().pack_width(), 1);
        let wide = tiny_builder().pack_width(16).build().unwrap();
        assert_eq!(wide.context().pack_width(), 16);
        assert_eq!(
            tiny_builder().build().unwrap().context().pack_width(),
            crate::DEFAULT_PACK_WIDTH
        );

        let a = narrow.run_micronas().unwrap();
        let b = wide.run_micronas().unwrap();
        assert_eq!(a.best.index(), b.best.index());
        assert_eq!(a.history, b.history);
        assert_eq!(a.evaluation, b.evaluation);
        assert!(
            b.cost.batch.dispatches >= 1,
            "wide session must actually pack: {:?}",
            b.cost.batch
        );
        assert_eq!(
            a.cost.batch.packed_candidates, 0,
            "width 1 disables packing: {:?}",
            a.cost.batch
        );
    }

    #[test]
    fn telemetry_sink_collects_spans_without_perturbing_the_search() {
        let plain = tiny_builder().build().unwrap().run_micronas().unwrap();
        let collector = Arc::new(micronas_telemetry::Collector::new());
        let session = tiny_builder().telemetry(collector.clone()).build().unwrap();
        let traced = session.run_micronas().unwrap();
        assert_eq!(traced.best.index(), plain.best.index());
        assert_eq!(traced.history, plain.history);
        assert_eq!(traced.evaluation, plain.evaluation);
        let report = collector.report();
        assert!(report.span("strategy.step").is_some(), "{}", report.table());
    }

    #[test]
    fn mismatched_store_namespace_is_rejected_at_build_time() {
        let store = Arc::new(EvalStore::in_memory(1234));
        assert!(tiny_builder().store(store).build().is_err());
    }

    #[test]
    fn fabric_sessions_share_evaluations_and_preserve_outcomes() {
        // A one-node "fleet" on loopback: the first session computes and
        // writes behind; a second, cold session reads everything through
        // the fabric — bitwise-identical outcome, remote hits visible.
        let namespace = MicroNasConfig::tiny_test().store_namespace();
        let node =
            micronas_fabric::FabricNode::serve(Arc::new(EvalStore::in_memory(namespace))).unwrap();
        let fabric = micronas_fabric::FabricConfig::with_peers(vec![node.addr()]);

        let baseline = tiny_builder().build().unwrap().run_micronas().unwrap();

        let warm_up = tiny_builder().fabric(fabric.clone()).build().unwrap();
        let first = warm_up.run_micronas().unwrap();
        let tier = warm_up
            .fabric_tier()
            .expect("fabric session carries a tier");
        tier.flush().unwrap();
        assert!(tier.stats().delivered > 0, "{:?}", tier.stats());
        assert_eq!(first.best.index(), baseline.best.index());
        assert_eq!(first.history, baseline.history);

        let cold = tiny_builder().fabric(fabric).build().unwrap();
        let second = cold.run_micronas().unwrap();
        assert_eq!(second.best.index(), baseline.best.index());
        assert_eq!(second.history, baseline.history);
        assert_eq!(second.evaluation, baseline.evaluation);
        let stats = cold.fabric_tier().unwrap().stats();
        assert!(stats.remote_hits > 0, "{stats:?}");

        // Sessions without a fabric expose no tier.
        assert!(tiny_builder().build().unwrap().fabric_tier().is_none());
    }

    #[test]
    fn fabric_with_a_divergent_namespace_peer_degrades_not_corrupts() {
        // A node serving a *different* evaluation configuration must be
        // refused at the handshake; the session still runs, locally.
        let foreign_ns = MicroNasConfig::fast().store_namespace();
        let node =
            micronas_fabric::FabricNode::serve(Arc::new(EvalStore::in_memory(foreign_ns))).unwrap();
        let mut fabric = micronas_fabric::FabricConfig::with_peers(vec![node.addr()]);
        fabric.retries = 0;
        fabric.timeout_ms = 200;

        let session = tiny_builder().fabric(fabric).build().unwrap();
        let tier = session.fabric_tier().unwrap();
        let err = tier.connect_all().unwrap_err();
        assert!(
            matches!(err, micronas_fabric::FabricError::HandshakeRefused { .. }),
            "{err:?}"
        );
        let outcome = session.run_micronas().unwrap();
        let baseline = tiny_builder().build().unwrap().run_micronas().unwrap();
        assert_eq!(outcome.history, baseline.history);
        assert_eq!(node.stats().gets, 0, "no request may cross the handshake");
        assert!(node.stats().refused_handshakes > 0);
    }
}
