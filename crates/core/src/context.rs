use crate::{BatchStats, EvalCacheStats, MicroNasConfig, Result};
use micronas_datasets::DatasetKind;
use micronas_hw::{HardwareConstraints, HardwareEvaluator, HardwareIndicators};
use micronas_nasbench::SurrogateBenchmark;
use micronas_proxies::{MetricSet, Proxy, ZeroCostEvaluator, ZeroCostMetrics};
use micronas_searchspace::{Architecture, CellTopology, MacroSkeleton, SearchSpace};
use micronas_store::{custom_proxy_digest, EvalKey, EvalRecord, EvalStore, GetOrInsertError};
use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// One registered pluggable proxy plus its precomputed store identity.
struct RegisteredProxy {
    proxy: Arc<dyn Proxy>,
    /// [`custom_proxy_digest`] of `(id, config fingerprint)`, computed once.
    digest: u64,
}

/// Everything a search algorithm needs to evaluate candidates on one dataset:
/// the search space, the zero-cost proxies, the hardware evaluator, the
/// hardware budgets and (for baselines and final reporting only) the
/// surrogate accuracy benchmark.
///
/// # Caching and the shared evaluation store
///
/// Candidate evaluations are cached at two levels. The context's own cache
/// (keyed by architecture index) makes repeated visits during pruning or
/// evolution free, mirroring how the paper's implementation caches its
/// per-operation measurements. Optionally, a shared
/// [`micronas_store::EvalStore`] sits behind it: a content-addressed,
/// possibly persistent store that other searches — in this process or an
/// earlier one — may already have warmed (see [`SearchContext::with_store`]).
///
/// # Canonical evaluation
///
/// Proxy and hardware values are always computed on the cell's *canonical
/// form* (the representative of its isomorphism orbit —
/// [`CellTopology::canonical_form`]). Evaluation is therefore a pure
/// function of architecture *identity* rather than representation: two
/// isomorphic cells receive bitwise-identical scores, and results are
/// bitwise-identical whether the store is enabled, disabled or pre-warmed.
///
/// # Pluggable proxies
///
/// Beyond the two built-in indicators, any number of [`Proxy`] plugins can
/// be registered ([`SearchContext::with_proxies`], usually via
/// `SearchSession::builder().proxies(..)`). Each plugin's score joins the
/// candidate's [`MetricSet`] under the proxy's id and is cached in the
/// shared store under a `ProxyKind::Custom` key derived from the proxy's
/// stable identity — adding a proxy never perturbs the built-in records.
pub struct SearchContext {
    space: SearchSpace,
    dataset: DatasetKind,
    zero_cost: ZeroCostEvaluator,
    extra_proxies: Vec<RegisteredProxy>,
    hardware: HardwareEvaluator,
    constraints: HardwareConstraints,
    benchmark: SurrogateBenchmark,
    seed: u64,
    ntk_batch: u16,
    store: Option<Arc<EvalStore>>,
    /// Full evaluations by architecture index. `Arc`-boxed so a cache hit
    /// costs one refcount bump inside the critical section — the deep clone
    /// of the heap-backed [`MetricSet`] happens after the lock is released,
    /// off the contended path the rayon scoring workers hammer.
    cache: Mutex<HashMap<usize, Arc<CandidateEvaluation>>>,
    /// Hardware indicators by canonical digest. An `RwLock` so the warm
    /// feasibility path — hammered by rayon workers during evolutionary
    /// population seeding — takes only a shared read lock.
    hw_cache: RwLock<HashMap<u64, HardwareIndicators>>,
    evaluations: Mutex<usize>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    /// Maximum number of candidates packed into one mega-batched proxy
    /// sweep (see [`SearchContext::evaluate_pack`]).
    pack_width: usize,
    /// Packed proxy sweeps dispatched to the kernels.
    batch_dispatches: AtomicUsize,
    /// Candidates submitted through [`SearchContext::evaluate_pack`].
    batch_packed: AtomicUsize,
    /// Candidates freshly computed inside a packed sweep.
    batch_computed: AtomicUsize,
    /// Snapshot of the process-global packed-kernel fill counters
    /// ([`micronas_nn::pack_kernel_stats`]) at construction, so
    /// [`SearchContext::batch_stats`] reports this context's lifetime
    /// rather than the whole process history. A construction-time baseline
    /// (instead of per-call deltas) keeps concurrently running packs from
    /// double-attributing each other's kernel work.
    kernel_baseline: micronas_nn::PackKernelStats,
}

/// Default number of candidates packed into one mega-batched proxy sweep.
///
/// Eight keeps the packed im2col panels comfortably inside the retained
/// scratch arena at the paper's probe resolutions while already amortising
/// the GEMM dispatch overhead across candidates; override per context with
/// [`SearchContext::with_pack_width`].
pub const DEFAULT_PACK_WIDTH: usize = 8;

/// The cached evaluation record of one candidate architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateEvaluation {
    /// The candidate's index in the search space.
    pub arch_index: usize,
    /// Every network-analysis metric of the candidate, by id: the built-in
    /// indicators (`ntk_condition`, `linear_regions`, `trainability`,
    /// `expressivity`) followed by one entry per registered pluggable
    /// proxy, in registration order.
    pub metrics: MetricSet,
    /// Hardware indicators.
    pub hardware: HardwareIndicators,
    /// Whether the candidate satisfies the context's hardware constraints.
    pub feasible: bool,
}

impl SearchContext {
    /// Builds a context for `dataset` from a [`MicroNasConfig`], without a
    /// shared store (the context still caches privately).
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn new(dataset: DatasetKind, config: &MicroNasConfig) -> Result<Self> {
        Self::build(dataset, config, None, Vec::new())
    }

    /// Builds a context that shares (and warms) `store`. The store must have
    /// been created for this configuration's namespace
    /// ([`MicroNasConfig::store_namespace`]); sharing a store across
    /// incompatible proxy/hardware configurations would serve wrong values.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid or the store
    /// namespace does not match the configuration.
    pub fn with_store(
        dataset: DatasetKind,
        config: &MicroNasConfig,
        store: Arc<EvalStore>,
    ) -> Result<Self> {
        ensure_store_namespace(&store, config)?;
        Self::build(dataset, config, Some(store), Vec::new())
    }

    /// Builds a context with additional pluggable proxies (and optionally a
    /// shared store). Every registered proxy is evaluated per candidate, its
    /// score published in the candidate's [`MetricSet`] under the proxy's id
    /// and cached in the store under a `ProxyKind::Custom` key.
    ///
    /// Proxy ids must be unique (and must not collide with the built-in
    /// metric ids), or two plugins would overwrite each other's metrics and
    /// cached records.
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid, a proxy id
    /// collides, or the store namespace does not match the configuration.
    pub fn with_proxies(
        dataset: DatasetKind,
        config: &MicroNasConfig,
        store: Option<Arc<EvalStore>>,
        proxies: Vec<Arc<dyn Proxy>>,
    ) -> Result<Self> {
        if let Some(store) = store.as_deref() {
            ensure_store_namespace(store, config)?;
        }
        Self::build(dataset, config, store, proxies)
    }

    fn build(
        dataset: DatasetKind,
        config: &MicroNasConfig,
        store: Option<Arc<EvalStore>>,
        proxies: Vec<Arc<dyn Proxy>>,
    ) -> Result<Self> {
        config.validate()?;
        let extra_proxies = register_proxies(proxies)?;
        let benchmark = SurrogateBenchmark::new(config.seed);
        let skeleton = benchmark.skeleton_for(dataset);
        let mut zero_cost = ZeroCostEvaluator::with_backend(
            config.ntk,
            config.linear_regions,
            config.backend.instantiate(),
        );
        if let Some(kind) = config.compiler {
            zero_cost = zero_cost.with_compiler(kind.instantiate());
        }
        Ok(Self {
            space: SearchSpace::nas_bench_201(),
            dataset,
            zero_cost,
            extra_proxies,
            hardware: HardwareEvaluator::new(skeleton, config.mcu.clone()),
            constraints: config.constraints,
            benchmark,
            seed: config.seed,
            ntk_batch: config.ntk.batch_size as u16,
            store,
            cache: Mutex::new(HashMap::new()),
            hw_cache: RwLock::new(HashMap::new()),
            evaluations: Mutex::new(0),
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            pack_width: DEFAULT_PACK_WIDTH,
            batch_dispatches: AtomicUsize::new(0),
            batch_packed: AtomicUsize::new(0),
            batch_computed: AtomicUsize::new(0),
            kernel_baseline: micronas_nn::pack_kernel_stats(),
        })
    }

    /// Sets the maximum number of candidates packed into one mega-batched
    /// proxy sweep (clamped to at least 1; 1 disables cross-candidate
    /// packing). Results are bitwise identical for every width — only
    /// dispatch density changes.
    #[must_use]
    pub fn with_pack_width(mut self, width: usize) -> Self {
        self.pack_width = width.max(1);
        self
    }

    /// The maximum number of candidates packed into one mega-batched proxy
    /// sweep.
    pub fn pack_width(&self) -> usize {
        self.pack_width
    }

    /// The search space.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// The dataset the search targets.
    pub fn dataset(&self) -> DatasetKind {
        self.dataset
    }

    /// The hardware budgets in force.
    pub fn constraints(&self) -> &HardwareConstraints {
        &self.constraints
    }

    /// The macro skeleton used for hardware estimation.
    pub fn skeleton(&self) -> &MacroSkeleton {
        self.hardware.skeleton()
    }

    /// The surrogate benchmark (used by training-based baselines and for
    /// reporting the final accuracy of discovered models).
    pub fn benchmark(&self) -> &SurrogateBenchmark {
        &self.benchmark
    }

    /// The hardware evaluator.
    pub fn hardware(&self) -> &HardwareEvaluator {
        &self.hardware
    }

    /// The zero-cost evaluator.
    pub fn zero_cost(&self) -> &ZeroCostEvaluator {
        &self.zero_cost
    }

    /// Ids of the registered pluggable proxies, in registration order.
    pub fn extra_proxy_ids(&self) -> impl Iterator<Item = &str> {
        self.extra_proxies.iter().map(|p| p.proxy.id())
    }

    /// The shared evaluation store, if one is attached.
    pub fn store(&self) -> Option<&Arc<EvalStore>> {
        self.store.as_ref()
    }

    /// The reproducibility seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of distinct architectures evaluated so far (cache misses).
    pub fn evaluation_count(&self) -> usize {
        *self.evaluations.lock()
    }

    /// Snapshot of the hit/miss counters: requests served from the context
    /// cache or the shared store versus freshly computed proxy passes.
    pub fn cache_stats(&self) -> EvalCacheStats {
        EvalCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of the pack-density counters of the mega-batched evaluation
    /// path (see [`SearchContext::evaluate_pack`]).
    ///
    /// The candidate-level counters are private to this context; the
    /// kernel-level forward/backward fill counters are process-wide deltas
    /// since this context's construction (other contexts packing in the same
    /// process would show up here — diff two snapshots around a search with
    /// [`BatchStats::since`] for an exact attribution).
    pub fn batch_stats(&self) -> BatchStats {
        let kernel = micronas_nn::pack_kernel_stats().since(&self.kernel_baseline);
        BatchStats {
            dispatches: self.batch_dispatches.load(Ordering::Relaxed),
            packed_candidates: self.batch_packed.load(Ordering::Relaxed),
            computed_candidates: self.batch_computed.load(Ordering::Relaxed),
            pack_width: self.pack_width,
            forward_kernel_dispatches: kernel.forward_dispatches as usize,
            forward_kernel_members: kernel.forward_members as usize,
            backward_kernel_dispatches: kernel.backward_dispatches as usize,
            backward_kernel_members: kernel.backward_members as usize,
        }
    }

    /// Fetches (or computes) the zero-cost metrics of the canonical cell.
    fn fetch_zero_cost(&self, canonical: CellTopology) -> Result<ZeroCostMetrics> {
        let Some(store) = &self.store else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Ok(self
                .zero_cost
                .evaluate(canonical, self.dataset, self.seed)?);
        };
        let key = EvalKey::zero_cost(&canonical, self.dataset, self.seed, self.ntk_batch);
        let (record, hit) = store
            .get_or_try_insert_with(key, || {
                self.zero_cost
                    .evaluate(canonical, self.dataset, self.seed)
                    .map(EvalRecord::ZeroCost)
            })
            .map_err(flatten_store_error)?;
        self.count(hit);
        record
            .as_zero_cost()
            .ok_or_else(|| record_kind_error("zero-cost"))
    }

    /// Fetches (or computes) one pluggable proxy's score of the canonical
    /// cell, cached under its `ProxyKind::Custom` store key.
    fn fetch_custom(&self, canonical: CellTopology, entry: &RegisteredProxy) -> Result<f64> {
        let Some(store) = &self.store else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return Ok(entry.proxy.evaluate(canonical, self.dataset, self.seed)?);
        };
        let key = EvalKey::custom(&canonical, self.dataset, self.seed, entry.digest, 0);
        let (record, hit) = store
            .get_or_try_insert_with(key, || {
                entry
                    .proxy
                    .evaluate(canonical, self.dataset, self.seed)
                    .map(EvalRecord::Scalar)
            })
            .map_err(flatten_store_error)?;
        self.count(hit);
        record
            .as_scalar()
            .ok_or_else(|| record_kind_error(entry.proxy.id()))
    }

    /// Fetches (or computes) the hardware indicators of the canonical cell.
    fn fetch_hardware(&self, canonical: CellTopology) -> Result<HardwareIndicators> {
        let digest = micronas_store::ArchDigest::of(&canonical).value();
        if let Some(hit) = self.hw_cache.read().get(&digest) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(*hit);
        }
        let indicators = match &self.store {
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                self.hardware.evaluate(canonical)
            }
            Some(store) => {
                let key = EvalKey::hardware(&canonical, self.dataset);
                let (record, hit) = store
                    .get_or_try_insert_with(key, || {
                        Ok::<_, crate::MicroNasError>(EvalRecord::Hardware(
                            self.hardware.evaluate(canonical),
                        ))
                    })
                    .map_err(flatten_store_error)?;
                self.count(hit);
                record
                    .as_hardware()
                    .ok_or_else(|| record_kind_error("hardware"))?
            }
        };
        self.hw_cache.write().insert(digest, indicators);
        Ok(indicators)
    }

    fn count(&self, hit: bool) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Evaluates (or retrieves from cache) the zero-cost and hardware
    /// indicators of a cell.
    ///
    /// Returns a shared handle to the cached record: a warm hit costs one
    /// refcount bump, never a deep copy of the metric set.
    ///
    /// Safe to call from parallel candidate-scoring workers: the result is a
    /// pure function of `(architecture identity, dataset, seed)` — proxies
    /// run on the cell's canonical form — and the evaluation counter only
    /// advances when a cell enters the cache for the first time, so counts
    /// are identical regardless of thread count or interleaving.
    ///
    /// # Errors
    ///
    /// Propagates proxy evaluation failures.
    pub fn evaluate(&self, cell: CellTopology) -> Result<Arc<CandidateEvaluation>> {
        let arch = Architecture::from_cell(&self.space, cell);
        let cached = self.cache.lock().get(&arch.index()).map(Arc::clone);
        if let Some(hit) = cached {
            // The unit of the hit/miss counters is one *record* fetch. A
            // full evaluation fetches one record per proxy family (zero-cost
            // + hardware + each registered plugin), so a context-cache hit —
            // which short-circuits all of them — counts them all, keeping
            // hit rates comparable across cache layers and store modes.
            self.hits
                .fetch_add(2 + self.extra_proxies.len(), Ordering::Relaxed);
            return Ok(hit);
        }
        let canonical = cell.canonical_form();
        let mut metrics = self.fetch_zero_cost(canonical)?.metric_set();
        for entry in &self.extra_proxies {
            metrics.insert(entry.proxy.id(), self.fetch_custom(canonical, entry)?);
        }
        let hardware = self.fetch_hardware(canonical)?;
        let feasible = self.constraints.satisfied_by(&hardware);
        let eval = Arc::new(CandidateEvaluation {
            arch_index: arch.index(),
            metrics,
            hardware,
            feasible,
        });
        // Two workers may race to evaluate the same cell; both compute the
        // same pure value, but only the first insertion counts it.
        if self
            .cache
            .lock()
            .insert(arch.index(), Arc::clone(&eval))
            .is_none()
        {
            *self.evaluations.lock() += 1;
        }
        Ok(eval)
    }

    /// Evaluates a group of candidate cells through the cross-candidate
    /// mega-batched proxy path.
    ///
    /// Candidates not already served by the context cache or the shared
    /// store are deduplicated by canonical form and dispatched as **one**
    /// packed zero-cost sweep
    /// ([`ZeroCostEvaluator::evaluate_pack`][zc-pack]), in which
    /// same-geometry convolutions of different candidates share a single
    /// wide GEMM per layer. Element `i` of the result is the same shared
    /// handle [`SearchContext::evaluate`] would have returned for
    /// `cells[i]`, bitwise identical at every pack width and thread count,
    /// and the hit/miss/evaluation counters advance exactly as if the
    /// candidates had been evaluated one at a time in order.
    ///
    /// [zc-pack]: micronas_proxies::ZeroCostEvaluator::evaluate_pack
    ///
    /// # Errors
    ///
    /// Propagates proxy evaluation failures.
    pub fn evaluate_pack(&self, cells: &[CellTopology]) -> Result<Vec<Arc<CandidateEvaluation>>> {
        if cells.len() <= 1 {
            return cells.iter().map(|&cell| self.evaluate(cell)).collect();
        }
        self.batch_packed.fetch_add(cells.len(), Ordering::Relaxed);
        micronas_telemetry::counter_add("search.pack.candidates", cells.len() as u64);

        // Per-candidate resolution state while the pack is in flight.
        enum Slot {
            Done(Arc<CandidateEvaluation>),
            /// Same architecture index as an earlier pack member: shares its
            /// record, exactly as the sequential loop's context-cache hit
            /// would.
            DuplicateOf(usize),
            Pending {
                arch_index: usize,
                canonical: CellTopology,
                /// Zero-cost metrics probed from the warm store, if any.
                stored: Option<ZeroCostMetrics>,
            },
        }

        let extra = self.extra_proxies.len();
        let mut slots: Vec<Slot> = Vec::with_capacity(cells.len());
        let mut first_slot_of: HashMap<usize, usize> = HashMap::new();
        for (i, &cell) in cells.iter().enumerate() {
            let arch = Architecture::from_cell(&self.space, cell);
            let cached = self.cache.lock().get(&arch.index()).map(Arc::clone);
            if let Some(hit) = cached {
                self.hits.fetch_add(2 + extra, Ordering::Relaxed);
                slots.push(Slot::Done(hit));
                continue;
            }
            if let Some(&first) = first_slot_of.get(&arch.index()) {
                // By the time the sequential loop reached this candidate,
                // its first occurrence would already sit in the context
                // cache — count the same hits here.
                self.hits.fetch_add(2 + extra, Ordering::Relaxed);
                slots.push(Slot::DuplicateOf(first));
                continue;
            }
            first_slot_of.insert(arch.index(), i);
            let canonical = cell.canonical_form();
            // Probe the store *without* inserting, so a warm store keeps
            // short-circuiting the proxies before any kernel runs. A hit
            // counts exactly where the sequential path counts it; a probe
            // miss stays silent — the post-sweep insertion below counts the
            // miss (or the hit, if another worker races us in).
            let stored = match &self.store {
                Some(store) => {
                    let key =
                        EvalKey::zero_cost(&canonical, self.dataset, self.seed, self.ntk_batch);
                    let stored = store.get(&key).and_then(|record| record.as_zero_cost());
                    if stored.is_some() {
                        self.count(true);
                    }
                    stored
                }
                None => None,
            };
            slots.push(Slot::Pending {
                arch_index: arch.index(),
                canonical,
                stored,
            });
        }

        // Deduplicate the unresolved canonicals and run them through ONE
        // packed proxy sweep. Evaluation is a pure function of the canonical
        // form, so isomorphic pack members share one computation.
        let mut unique: Vec<CellTopology> = Vec::new();
        let mut unique_index_of: HashMap<u64, usize> = HashMap::new();
        for slot in &slots {
            if let Slot::Pending {
                canonical,
                stored: None,
                ..
            } = slot
            {
                let digest = micronas_store::ArchDigest::of(canonical).value();
                if let std::collections::hash_map::Entry::Vacant(entry) =
                    unique_index_of.entry(digest)
                {
                    entry.insert(unique.len());
                    unique.push(*canonical);
                }
            }
        }
        let computed: Vec<ZeroCostMetrics> = if unique.is_empty() {
            Vec::new()
        } else {
            self.batch_dispatches.fetch_add(1, Ordering::Relaxed);
            self.batch_computed
                .fetch_add(unique.len(), Ordering::Relaxed);
            micronas_telemetry::counter_add("search.pack.dispatches", 1);
            micronas_telemetry::counter_add("search.pack.computed_candidates", unique.len() as u64);
            micronas_telemetry::gauge_max(
                "search.pack.fill_permille",
                (unique.len().min(self.pack_width) * 1000 / self.pack_width.max(1)) as u64,
            );
            let metrics = {
                let _span = micronas_telemetry::span!("search.pack_eval");
                self.zero_cost
                    .evaluate_pack(&unique, self.dataset, self.seed)?
            };
            // Measured kernel-level pack density, split by sweep direction
            // (permille of pack members per packed dispatch, scaled by the
            // configured width): a backward gauge lagging the forward one
            // means the per-sample gradient sweeps only partially merged.
            let kernel = micronas_nn::pack_kernel_stats().since(&self.kernel_baseline);
            if kernel.forward_dispatches > 0 {
                micronas_telemetry::gauge_max(
                    "search.pack.forward_fill_permille",
                    (kernel.forward_fill() * 1000.0 / self.pack_width.max(1) as f64) as u64,
                );
            }
            if kernel.backward_dispatches > 0 {
                micronas_telemetry::gauge_max(
                    "search.pack.backward_fill_permille",
                    (kernel.backward_fill() * 1000.0 / self.pack_width.max(1) as f64) as u64,
                );
            }
            metrics
        };

        // Resolve every candidate in order; the per-record bookkeeping below
        // mirrors the sequential path line for line.
        let mut out: Vec<Arc<CandidateEvaluation>> = Vec::with_capacity(cells.len());
        for slot in &slots {
            match slot {
                Slot::Done(eval) => out.push(Arc::clone(eval)),
                Slot::DuplicateOf(first) => out.push(Arc::clone(&out[*first])),
                Slot::Pending {
                    arch_index,
                    canonical,
                    stored,
                } => {
                    let zero_cost = match (stored, &self.store) {
                        (Some(zc), _) => *zc,
                        (None, None) => {
                            self.misses.fetch_add(1, Ordering::Relaxed);
                            let digest = micronas_store::ArchDigest::of(canonical).value();
                            computed[unique_index_of[&digest]]
                        }
                        (None, Some(store)) => {
                            let digest = micronas_store::ArchDigest::of(canonical).value();
                            let value = computed[unique_index_of[&digest]];
                            let key = EvalKey::zero_cost(
                                canonical,
                                self.dataset,
                                self.seed,
                                self.ntk_batch,
                            );
                            let (record, hit) = store
                                .get_or_try_insert_with(key, || {
                                    Ok::<_, crate::MicroNasError>(EvalRecord::ZeroCost(value))
                                })
                                .map_err(flatten_store_error)?;
                            self.count(hit);
                            record
                                .as_zero_cost()
                                .ok_or_else(|| record_kind_error("zero-cost"))?
                        }
                    };
                    let mut metrics = zero_cost.metric_set();
                    for entry in &self.extra_proxies {
                        metrics.insert(entry.proxy.id(), self.fetch_custom(*canonical, entry)?);
                    }
                    let hardware = self.fetch_hardware(*canonical)?;
                    let feasible = self.constraints.satisfied_by(&hardware);
                    let eval = Arc::new(CandidateEvaluation {
                        arch_index: *arch_index,
                        metrics,
                        hardware,
                        feasible,
                    });
                    if self
                        .cache
                        .lock()
                        .insert(*arch_index, Arc::clone(&eval))
                        .is_none()
                    {
                        *self.evaluations.lock() += 1;
                    }
                    out.push(eval);
                }
            }
        }
        Ok(out)
    }

    /// The hardware indicators of a cell, served from the caches or the
    /// shared store when possible. Cheaper than [`SearchContext::evaluate`]
    /// because no zero-cost proxies run.
    ///
    /// # Errors
    ///
    /// Propagates store I/O failures.
    pub fn hardware_indicators(&self, cell: CellTopology) -> Result<HardwareIndicators> {
        self.fetch_hardware(cell.canonical_form())
    }

    /// Whether a cell satisfies this context's hardware budgets, using the
    /// cached/stored hardware indicators. Revisited cells — e.g. mutated
    /// children that land on an already-scored architecture — hit the store
    /// instead of paying a fresh hardware pass.
    ///
    /// # Errors
    ///
    /// Propagates store I/O failures.
    pub fn is_feasible(&self, cell: CellTopology) -> Result<bool> {
        Ok(self
            .constraints
            .satisfied_by(&self.hardware_indicators(cell)?))
    }

    /// The surrogate "trained" accuracy of an architecture — never consulted
    /// by the zero-shot search itself, only by training-based baselines and
    /// final reporting.
    pub fn trained_accuracy(&self, arch: &Architecture) -> f64 {
        self.benchmark.query(arch, self.dataset).test_accuracy
    }
}

/// Validates a set of pluggable proxies and precomputes their store
/// identities. Rejects duplicate ids and collisions with the metric ids the
/// built-in indicators always publish — either would overwrite entries in
/// every candidate's [`MetricSet`] and alias cached store records.
fn register_proxies(proxies: Vec<Arc<dyn Proxy>>) -> Result<Vec<RegisteredProxy>> {
    let mut registered: Vec<RegisteredProxy> = Vec::with_capacity(proxies.len());
    for proxy in proxies {
        let id = proxy.id();
        if micronas_proxies::metric_ids::BUILT_IN.contains(&id) {
            return Err(crate::MicroNasError::InvalidConfig(format!(
                "proxy id {id:?} collides with a built-in metric id"
            )));
        }
        if registered.iter().any(|r| r.proxy.id() == id) {
            return Err(crate::MicroNasError::InvalidConfig(format!(
                "duplicate proxy id {id:?}"
            )));
        }
        let digest = custom_proxy_digest(id, proxy.config_fingerprint());
        registered.push(RegisteredProxy { proxy, digest });
    }
    Ok(registered)
}

/// Verifies that `store` was opened for `config`'s evaluation namespace.
/// Every entry point that reads or writes a store on behalf of a
/// configuration must call this first — serving or appending records under
/// the wrong namespace would poison the store's persistent log.
///
/// # Errors
///
/// Returns [`crate::MicroNasError::InvalidConfig`] on a mismatch.
pub(crate) fn ensure_store_namespace(store: &EvalStore, config: &MicroNasConfig) -> Result<()> {
    if store.namespace() != config.store_namespace() {
        return Err(crate::MicroNasError::InvalidConfig(format!(
            "evaluation store namespace {:#018x} does not match the \
             configuration's {:#018x}",
            store.namespace(),
            config.store_namespace()
        )));
    }
    Ok(())
}

/// Maps a store-layer error (compute failure or log I/O) onto the crate
/// error type.
fn flatten_store_error<E: Into<crate::MicroNasError>>(
    e: GetOrInsertError<E>,
) -> crate::MicroNasError {
    match e {
        GetOrInsertError::Compute(e) => e.into(),
        GetOrInsertError::Store(e) => e.into(),
    }
}

/// A record of an unexpected kind under a typed key — only possible if a
/// foreign log was forged into the store's namespace.
fn record_kind_error(expected: &str) -> crate::MicroNasError {
    crate::MicroNasError::Store(format!(
        "store returned a record of the wrong kind (expected {expected})"
    ))
}

impl std::fmt::Debug for SearchContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchContext")
            .field("dataset", &self.dataset)
            .field("seed", &self.seed)
            .field("cached_evaluations", &self.cache.lock().len())
            .field("store", &self.store.as_ref().map(|s| s.namespace()))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MicroNasConfig;
    use micronas_searchspace::Operation;

    #[test]
    fn evaluations_are_cached() {
        let config = MicroNasConfig::tiny_test();
        let ctx = SearchContext::new(DatasetKind::Cifar10, &config).unwrap();
        let cell = ctx.space().cell(5_000).unwrap();
        let a = ctx.evaluate(cell).unwrap();
        assert_eq!(ctx.evaluation_count(), 1);
        let b = ctx.evaluate(cell).unwrap();
        assert_eq!(
            ctx.evaluation_count(),
            1,
            "second evaluation must hit the cache"
        );
        assert_eq!(a, b);
        let stats = ctx.cache_stats();
        assert!(stats.hits >= 1, "the revisit counts as a hit");
        assert!(stats.misses >= 1, "the first visit computed fresh values");
    }

    #[test]
    fn isomorphic_cells_evaluate_identically() {
        let config = MicroNasConfig::tiny_test();
        let ctx = SearchContext::new(DatasetKind::Cifar10, &config).unwrap();
        let cell = CellTopology::new([
            Operation::NorConv3x3,
            Operation::SkipConnect,
            Operation::None,
            Operation::AvgPool3x3,
            Operation::NorConv1x1,
            Operation::None,
        ]);
        let twin = cell.intermediate_swap().unwrap();
        let a = ctx.evaluate(cell).unwrap();
        let b = ctx.evaluate(twin).unwrap();
        assert_ne!(a.arch_index, b.arch_index, "distinct representations");
        assert_eq!(a.metrics, b.metrics, "identical proxy scores");
        assert_eq!(a.hardware, b.hardware, "identical hardware indicators");
    }

    #[test]
    fn shared_store_serves_hits_across_contexts() {
        let config = MicroNasConfig::tiny_test();
        let store = Arc::new(EvalStore::in_memory(config.store_namespace()));
        let cell = CellTopology::new([Operation::NorConv3x3; 6]);

        let ctx1 = SearchContext::with_store(DatasetKind::Cifar10, &config, store.clone()).unwrap();
        let a = ctx1.evaluate(cell).unwrap();
        let cold = store.stats();
        assert!(cold.misses > 0, "cold store computes fresh values");

        // A brand-new context with an empty private cache: everything must
        // come from the shared store.
        let ctx2 = SearchContext::with_store(DatasetKind::Cifar10, &config, store.clone()).unwrap();
        let b = ctx2.evaluate(cell).unwrap();
        assert_eq!(a, b);
        let warm = store.stats().since(&cold);
        assert_eq!(warm.misses, 0, "warm store must not recompute");
        assert!(warm.hits >= 2, "zero-cost and hardware records both hit");
    }

    #[test]
    fn store_modes_agree_bitwise() {
        let config = MicroNasConfig::tiny_test();
        let cell = CellTopology::new([
            Operation::SkipConnect,
            Operation::NorConv1x1,
            Operation::None,
            Operation::AvgPool3x3,
            Operation::NorConv3x3,
            Operation::None,
        ]);

        let off = SearchContext::new(DatasetKind::Cifar10, &config)
            .unwrap()
            .evaluate(cell)
            .unwrap();

        let store = Arc::new(EvalStore::in_memory(config.store_namespace()));
        let cold = SearchContext::with_store(DatasetKind::Cifar10, &config, store.clone())
            .unwrap()
            .evaluate(cell)
            .unwrap();
        let warm = SearchContext::with_store(DatasetKind::Cifar10, &config, store)
            .unwrap()
            .evaluate(cell)
            .unwrap();

        assert_eq!(off, cold, "store-off vs cold store");
        assert_eq!(off, warm, "store-off vs pre-warmed store");
    }

    #[test]
    fn mismatched_store_namespace_is_rejected() {
        let config = MicroNasConfig::tiny_test();
        let store = Arc::new(EvalStore::in_memory(12345));
        assert!(SearchContext::with_store(DatasetKind::Cifar10, &config, store).is_err());
    }

    #[test]
    fn feasibility_uses_the_hardware_cache() {
        let config = MicroNasConfig::tiny_test();
        let ctx = SearchContext::new(DatasetKind::Cifar10, &config).unwrap();
        let cell = CellTopology::new([Operation::NorConv3x3; 6]);
        assert!(ctx.is_feasible(cell).unwrap());
        let after_first = ctx.cache_stats();
        assert!(ctx.is_feasible(cell).unwrap());
        let delta = ctx.cache_stats().since(&after_first);
        assert_eq!(delta.misses, 0, "second feasibility check is cached");
        assert_eq!(delta.hits, 1);
    }

    #[test]
    fn feasibility_reflects_constraints() {
        let config = MicroNasConfig::tiny_test().with_constraints(
            micronas_hw::HardwareConstraints::unconstrained().with_latency_ms(1e-6),
        );
        let ctx = SearchContext::new(DatasetKind::Cifar10, &config).unwrap();
        let eval = ctx
            .evaluate(CellTopology::new([Operation::NorConv3x3; 6]))
            .unwrap();
        assert!(
            !eval.feasible,
            "an impossible latency budget marks everything infeasible"
        );

        let relaxed = MicroNasConfig::tiny_test();
        let ctx = SearchContext::new(DatasetKind::Cifar10, &relaxed).unwrap();
        let eval = ctx
            .evaluate(CellTopology::new([Operation::NorConv3x3; 6]))
            .unwrap();
        assert!(eval.feasible);
    }

    #[test]
    fn trained_accuracy_comes_from_the_surrogate() {
        let config = MicroNasConfig::tiny_test();
        let ctx = SearchContext::new(DatasetKind::Cifar10, &config).unwrap();
        let arch = ctx.space().architecture(1_234).unwrap();
        let acc = ctx.trained_accuracy(&arch);
        let direct = ctx
            .benchmark()
            .query(&arch, DatasetKind::Cifar10)
            .test_accuracy;
        assert_eq!(acc, direct);
    }

    #[test]
    fn registered_proxies_join_the_metric_set_in_order() {
        use micronas_proxies::{
            JacobianCovarianceConfig, JacobianCovarianceProxy, SynFlowConfig, SynFlowProxy,
        };

        let config = MicroNasConfig::tiny_test();
        let proxies: Vec<Arc<dyn micronas_proxies::Proxy>> = vec![
            Arc::new(SynFlowProxy::new(SynFlowConfig::fast())),
            Arc::new(JacobianCovarianceProxy::new(
                JacobianCovarianceConfig::fast(),
            )),
        ];
        let ctx =
            SearchContext::with_proxies(DatasetKind::Cifar10, &config, None, proxies).unwrap();
        let ids: Vec<&str> = ctx.extra_proxy_ids().collect();
        assert_eq!(ids, ["synflow", "jacob_cov"]);

        let eval = ctx.evaluate(ctx.space().cell(5_000).unwrap()).unwrap();
        let metric_ids: Vec<&str> = eval.metrics.ids().collect();
        assert_eq!(
            metric_ids,
            [
                "ntk_condition",
                "linear_regions",
                "trainability",
                "expressivity",
                "synflow",
                "jacob_cov"
            ],
            "built-ins first, then plugins in registration order"
        );
        assert!(eval.metrics.get("synflow").unwrap().is_finite());
        assert!(eval.metrics.get("jacob_cov").unwrap().is_finite());
    }

    #[test]
    fn plugin_scores_are_cached_under_custom_store_keys() {
        use micronas_proxies::{Proxy, SynFlowConfig, SynFlowProxy};

        let config = MicroNasConfig::tiny_test();
        let store = Arc::new(EvalStore::in_memory(config.store_namespace()));
        let proxy = SynFlowProxy::new(SynFlowConfig::fast());
        let digest = custom_proxy_digest(proxy.id(), proxy.config_fingerprint());
        let cell = CellTopology::new([Operation::NorConv3x3; 6]);
        let direct = proxy
            .evaluate(cell.canonical_form(), DatasetKind::Cifar10, config.seed)
            .unwrap();

        let ctx = SearchContext::with_proxies(
            DatasetKind::Cifar10,
            &config,
            Some(store.clone()),
            vec![Arc::new(proxy)],
        )
        .unwrap();
        let eval = ctx.evaluate(cell).unwrap();
        assert_eq!(eval.metrics.get("synflow"), Some(direct));

        // The score landed in the store under the proxy's Custom key.
        let key = EvalKey::custom(
            &cell.canonical_form(),
            DatasetKind::Cifar10,
            config.seed,
            digest,
            0,
        );
        let record = store.get(&key).expect("custom record must be stored");
        assert_eq!(record.as_scalar(), Some(direct));

        // A second context sharing the store serves the plugin from cache.
        let proxy2: Arc<dyn Proxy> = Arc::new(SynFlowProxy::new(SynFlowConfig::fast()));
        let ctx2 = SearchContext::with_proxies(
            DatasetKind::Cifar10,
            &config,
            Some(store.clone()),
            vec![proxy2],
        )
        .unwrap();
        let before = store.stats();
        let again = ctx2.evaluate(cell).unwrap();
        assert_eq!(again, eval);
        assert_eq!(
            store.stats().since(&before).misses,
            0,
            "warm store must serve the plugin score"
        );
    }

    #[test]
    fn colliding_proxy_ids_are_rejected() {
        use micronas_proxies::{SynFlowConfig, SynFlowProxy};

        let config = MicroNasConfig::tiny_test();
        let dup: Vec<Arc<dyn micronas_proxies::Proxy>> = vec![
            Arc::new(SynFlowProxy::new(SynFlowConfig::fast())),
            Arc::new(SynFlowProxy::new(SynFlowConfig::fast())),
        ];
        assert!(
            SearchContext::with_proxies(DatasetKind::Cifar10, &config, None, dup).is_err(),
            "duplicate plugin ids must be rejected"
        );

        struct Impostor;
        impl micronas_proxies::Proxy for Impostor {
            fn id(&self) -> &str {
                micronas_proxies::metric_ids::TRAINABILITY
            }
            fn config_fingerprint(&self) -> u64 {
                0
            }
            fn evaluate_with(
                &self,
                _cell: CellTopology,
                _dataset: DatasetKind,
                _seed: u64,
                _workspace: &mut micronas_tensor::Workspace,
            ) -> micronas_proxies::Result<f64> {
                Ok(0.0)
            }
        }
        assert!(
            SearchContext::with_proxies(
                DatasetKind::Cifar10,
                &config,
                None,
                vec![Arc::new(Impostor)]
            )
            .is_err(),
            "built-in metric ids are reserved"
        );
    }

    /// A pack mixing fresh cells, an exact duplicate and an isomorphic twin
    /// — the shapes the batched strategies submit.
    fn pack_cells(ctx: &SearchContext) -> Vec<CellTopology> {
        let base = CellTopology::new([
            Operation::NorConv3x3,
            Operation::SkipConnect,
            Operation::None,
            Operation::AvgPool3x3,
            Operation::NorConv1x1,
            Operation::None,
        ]);
        vec![
            ctx.space().cell(5_000).unwrap(),
            base,
            ctx.space().cell(7_000).unwrap(),
            ctx.space().cell(5_000).unwrap(),
            base.intermediate_swap().unwrap(),
        ]
    }

    #[test]
    fn packed_evaluation_matches_sequential_evaluation_and_counters() {
        let config = MicroNasConfig::tiny_test();
        let seq_ctx = SearchContext::new(DatasetKind::Cifar10, &config).unwrap();
        let pack_ctx = SearchContext::new(DatasetKind::Cifar10, &config).unwrap();
        let cells = pack_cells(&seq_ctx);

        let sequential: Vec<_> = cells
            .iter()
            .map(|&c| seq_ctx.evaluate(c).unwrap())
            .collect();
        let packed = pack_ctx.evaluate_pack(&cells).unwrap();

        assert_eq!(packed.len(), sequential.len());
        for (i, (s, p)) in sequential.iter().zip(&packed).enumerate() {
            assert_eq!(**s, **p, "member {i}");
        }
        assert_eq!(seq_ctx.evaluation_count(), pack_ctx.evaluation_count());
        assert_eq!(seq_ctx.cache_stats(), pack_ctx.cache_stats());
        let batch = pack_ctx.batch_stats();
        assert_eq!(batch.dispatches, 1, "one packed sweep for the fresh cells");
        assert_eq!(batch.packed_candidates, cells.len());
        assert_eq!(
            batch.computed_candidates, 3,
            "duplicate and isomorphic members dedup before dispatch"
        );
    }

    #[test]
    fn packed_evaluation_counters_match_on_a_warm_store() {
        let config = MicroNasConfig::tiny_test();
        let store = Arc::new(EvalStore::in_memory(config.store_namespace()));
        let warmer =
            SearchContext::with_store(DatasetKind::Cifar10, &config, store.clone()).unwrap();
        let cells = pack_cells(&warmer);
        let expected = warmer.evaluate_pack(&cells).unwrap();

        let warm = SearchContext::with_store(DatasetKind::Cifar10, &config, store).unwrap();
        let packed = warm.evaluate_pack(&cells).unwrap();
        for (s, p) in expected.iter().zip(&packed) {
            assert_eq!(**s, **p);
        }
        assert_eq!(
            warm.cache_stats().misses,
            0,
            "a warm store serves the whole pack without running kernels"
        );
        assert_eq!(
            warm.batch_stats().dispatches,
            0,
            "nothing left to dispatch under a warm store"
        );
    }

    #[test]
    fn packed_evaluation_handles_degenerate_packs() {
        let config = MicroNasConfig::tiny_test();
        let ctx = SearchContext::new(DatasetKind::Cifar10, &config).unwrap();
        assert!(ctx.evaluate_pack(&[]).unwrap().is_empty());
        let cell = ctx.space().cell(123).unwrap();
        let one = ctx.evaluate_pack(&[cell]).unwrap();
        assert_eq!(one.len(), 1);
        assert_eq!(*one[0], *ctx.evaluate(cell).unwrap());
        assert_eq!(
            ctx.batch_stats().packed_candidates,
            0,
            "width-1 packs take the sequential path"
        );
        assert_eq!(ctx.with_pack_width(0).pack_width(), 1, "width clamps to 1");
    }

    #[test]
    fn debug_format_mentions_dataset() {
        let config = MicroNasConfig::tiny_test();
        let ctx = SearchContext::new(DatasetKind::Cifar100, &config).unwrap();
        assert!(format!("{ctx:?}").contains("Cifar100"));
    }
}
