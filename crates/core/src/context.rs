use crate::{MicroNasConfig, Result};
use micronas_datasets::DatasetKind;
use micronas_hw::{HardwareConstraints, HardwareEvaluator, HardwareIndicators};
use micronas_nasbench::SurrogateBenchmark;
use micronas_proxies::{ZeroCostEvaluator, ZeroCostMetrics};
use micronas_searchspace::{Architecture, CellTopology, MacroSkeleton, SearchSpace};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Everything a search algorithm needs to evaluate candidates on one dataset:
/// the search space, the zero-cost proxies, the hardware evaluator, the
/// hardware budgets and (for baselines and final reporting only) the
/// surrogate accuracy benchmark.
///
/// Candidate evaluations are cached by architecture index, so repeated visits
/// during pruning or evolution are free — mirroring how the paper's
/// implementation caches its per-operation measurements.
pub struct SearchContext {
    space: SearchSpace,
    dataset: DatasetKind,
    zero_cost: ZeroCostEvaluator,
    hardware: HardwareEvaluator,
    constraints: HardwareConstraints,
    benchmark: SurrogateBenchmark,
    seed: u64,
    cache: Mutex<HashMap<usize, CandidateEvaluation>>,
    evaluations: Mutex<usize>,
}

/// The cached evaluation record of one candidate architecture.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CandidateEvaluation {
    /// The candidate's index in the search space.
    pub arch_index: usize,
    /// Zero-cost network-analysis metrics.
    pub zero_cost: ZeroCostMetrics,
    /// Hardware indicators.
    pub hardware: HardwareIndicators,
    /// Whether the candidate satisfies the context's hardware constraints.
    pub feasible: bool,
}

impl SearchContext {
    /// Builds a context for `dataset` from a [`MicroNasConfig`].
    ///
    /// # Errors
    ///
    /// Returns an error if the configuration is invalid.
    pub fn new(dataset: DatasetKind, config: &MicroNasConfig) -> Result<Self> {
        config.validate()?;
        let benchmark = SurrogateBenchmark::new(config.seed);
        let skeleton = benchmark.skeleton_for(dataset);
        Ok(Self {
            space: SearchSpace::nas_bench_201(),
            dataset,
            zero_cost: ZeroCostEvaluator::new(config.ntk, config.linear_regions),
            hardware: HardwareEvaluator::new(skeleton, config.mcu.clone()),
            constraints: config.constraints,
            benchmark,
            seed: config.seed,
            cache: Mutex::new(HashMap::new()),
            evaluations: Mutex::new(0),
        })
    }

    /// The search space.
    pub fn space(&self) -> &SearchSpace {
        &self.space
    }

    /// The dataset the search targets.
    pub fn dataset(&self) -> DatasetKind {
        self.dataset
    }

    /// The hardware budgets in force.
    pub fn constraints(&self) -> &HardwareConstraints {
        &self.constraints
    }

    /// The macro skeleton used for hardware estimation.
    pub fn skeleton(&self) -> &MacroSkeleton {
        self.hardware.skeleton()
    }

    /// The surrogate benchmark (used by training-based baselines and for
    /// reporting the final accuracy of discovered models).
    pub fn benchmark(&self) -> &SurrogateBenchmark {
        &self.benchmark
    }

    /// The hardware evaluator.
    pub fn hardware(&self) -> &HardwareEvaluator {
        &self.hardware
    }

    /// The zero-cost evaluator.
    pub fn zero_cost(&self) -> &ZeroCostEvaluator {
        &self.zero_cost
    }

    /// The reproducibility seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of distinct architectures evaluated so far (cache misses).
    pub fn evaluation_count(&self) -> usize {
        *self.evaluations.lock()
    }

    /// Evaluates (or retrieves from cache) the zero-cost and hardware
    /// indicators of a cell.
    ///
    /// Safe to call from parallel candidate-scoring workers: the result is a
    /// pure function of `(cell, dataset, seed)`, and the evaluation counter
    /// only advances when a cell enters the cache for the first time, so
    /// counts are identical regardless of thread count or interleaving.
    ///
    /// # Errors
    ///
    /// Propagates proxy evaluation failures.
    pub fn evaluate(&self, cell: CellTopology) -> Result<CandidateEvaluation> {
        let arch = Architecture::from_cell(&self.space, cell);
        if let Some(hit) = self.cache.lock().get(&arch.index()) {
            return Ok(*hit);
        }
        let zero_cost = self.zero_cost.evaluate(cell, self.dataset, self.seed)?;
        let hardware = self.hardware.evaluate(cell);
        let feasible = self.constraints.satisfied_by(&hardware);
        let eval = CandidateEvaluation {
            arch_index: arch.index(),
            zero_cost,
            hardware,
            feasible,
        };
        // Two workers may race to evaluate the same cell; both compute the
        // same pure value, but only the first insertion counts it.
        if self.cache.lock().insert(arch.index(), eval).is_none() {
            *self.evaluations.lock() += 1;
        }
        Ok(eval)
    }

    /// The surrogate "trained" accuracy of an architecture — never consulted
    /// by the zero-shot search itself, only by training-based baselines and
    /// final reporting.
    pub fn trained_accuracy(&self, arch: &Architecture) -> f64 {
        self.benchmark.query(arch, self.dataset).test_accuracy
    }
}

impl std::fmt::Debug for SearchContext {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchContext")
            .field("dataset", &self.dataset)
            .field("seed", &self.seed)
            .field("cached_evaluations", &self.cache.lock().len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MicroNasConfig;
    use micronas_searchspace::Operation;

    #[test]
    fn evaluations_are_cached() {
        let config = MicroNasConfig::tiny_test();
        let ctx = SearchContext::new(DatasetKind::Cifar10, &config).unwrap();
        let cell = ctx.space().cell(5_000).unwrap();
        let a = ctx.evaluate(cell).unwrap();
        assert_eq!(ctx.evaluation_count(), 1);
        let b = ctx.evaluate(cell).unwrap();
        assert_eq!(
            ctx.evaluation_count(),
            1,
            "second evaluation must hit the cache"
        );
        assert_eq!(a, b);
    }

    #[test]
    fn feasibility_reflects_constraints() {
        let config = MicroNasConfig::tiny_test().with_constraints(
            micronas_hw::HardwareConstraints::unconstrained().with_latency_ms(1e-6),
        );
        let ctx = SearchContext::new(DatasetKind::Cifar10, &config).unwrap();
        let eval = ctx
            .evaluate(CellTopology::new([Operation::NorConv3x3; 6]))
            .unwrap();
        assert!(
            !eval.feasible,
            "an impossible latency budget marks everything infeasible"
        );

        let relaxed = MicroNasConfig::tiny_test();
        let ctx = SearchContext::new(DatasetKind::Cifar10, &relaxed).unwrap();
        let eval = ctx
            .evaluate(CellTopology::new([Operation::NorConv3x3; 6]))
            .unwrap();
        assert!(eval.feasible);
    }

    #[test]
    fn trained_accuracy_comes_from_the_surrogate() {
        let config = MicroNasConfig::tiny_test();
        let ctx = SearchContext::new(DatasetKind::Cifar10, &config).unwrap();
        let arch = ctx.space().architecture(1_234).unwrap();
        let acc = ctx.trained_accuracy(&arch);
        let direct = ctx
            .benchmark()
            .query(&arch, DatasetKind::Cifar10)
            .test_accuracy;
        assert_eq!(acc, direct);
    }

    #[test]
    fn debug_format_mentions_dataset() {
        let config = MicroNasConfig::tiny_test();
        let ctx = SearchContext::new(DatasetKind::Cifar100, &config).unwrap();
        assert!(format!("{ctx:?}").contains("Cifar100"));
    }
}
