//! Deterministic recording and replay of [`SearchEvent`] streams.
//!
//! [`EventRecorder`] is a [`SearchObserver`] that serializes every event to
//! the JSONL line format of [`micronas_telemetry::events`]: the `"event"`
//! section holds only deterministic fields (step scores are written as
//! `f64::to_bits` hex so the text is byte-stable, never a rounded decimal),
//! while wall-clock data lives in the segregated `"timing"` section that
//! [`replay_diff`] ignores. Two same-seed searches therefore record streams
//! whose deterministic sections are byte-identical — the property the
//! `telemetry_inertness` integration tests pin.
//!
//! [`RecordedEvent`] is the typed replay: parse a recording back and fold
//! it into tooling (progress UIs, daemon job logs, regression diffs)
//! without re-running the search.

use crate::{SearchEvent, SearchObserver};
use micronas_telemetry::events::{format_line, parse_stream};
use micronas_telemetry::json::{escape_string, JsonValue};
use parking_lot::Mutex;
use std::path::Path;
use std::time::Instant;

pub use micronas_telemetry::events::replay_diff;

/// A [`SearchObserver`] that records every event as one deterministic
/// JSONL line.
///
/// The recorder is reusable: [`EventRecorder::take_jsonl`] drains the
/// recording so one recorder can capture several runs back to back.
pub struct EventRecorder {
    lines: Mutex<Vec<String>>,
    start: Instant,
}

impl Default for EventRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl EventRecorder {
    /// Creates an empty recorder; timing offsets count from this moment.
    pub fn new() -> Self {
        Self {
            lines: Mutex::new(Vec::new()),
            start: Instant::now(),
        }
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.lines.lock().len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.lines.lock().is_empty()
    }

    /// The recording as a JSONL string (one event per line, trailing
    /// newline when non-empty).
    pub fn to_jsonl(&self) -> String {
        let lines = self.lines.lock();
        if lines.is_empty() {
            String::new()
        } else {
            let mut out = lines.join("\n");
            out.push('\n');
            out
        }
    }

    /// Drains the recording, returning it as a JSONL string.
    pub fn take_jsonl(&self) -> String {
        let drained = std::mem::take(&mut *self.lines.lock());
        if drained.is_empty() {
            String::new()
        } else {
            let mut out = drained.join("\n");
            out.push('\n');
            out
        }
    }

    /// Writes the recording to `path` as JSONL.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn write_jsonl(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_jsonl())
    }

    /// Parses the recording back into typed events.
    ///
    /// # Errors
    ///
    /// Describes the first malformed line or unknown event shape.
    pub fn replay(&self) -> Result<Vec<RecordedEvent>, String> {
        replay_events(&self.to_jsonl())
    }

    fn push(&self, event_json: String) {
        let elapsed = self.start.elapsed().as_nanos() as u64;
        let timing = format!("{{\"elapsed_ns\":{elapsed}}}");
        self.lines
            .lock()
            .push(format_line(&event_json, Some(&timing)));
    }
}

impl SearchObserver for EventRecorder {
    fn on_event(&self, event: &SearchEvent<'_>) {
        let json = match event {
            SearchEvent::Started { algorithm } => {
                format!(
                    "{{\"type\":\"started\",\"algorithm\":{}}}",
                    escape_string(algorithm)
                )
            }
            SearchEvent::Step { index, score } => {
                format!(
                    "{{\"type\":\"step\",\"index\":{index},\"score_bits\":\"0x{:016x}\"}}",
                    score.to_bits()
                )
            }
            SearchEvent::Finished { outcome } => {
                format!(
                    "{{\"type\":\"finished\",\"algorithm\":{},\"best_index\":{},\"steps\":{}}}",
                    escape_string(&outcome.algorithm),
                    outcome.evaluation.arch_index,
                    outcome.history.len()
                )
            }
        };
        self.push(json);
    }
}

/// One replayed event, parsed back from a recording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordedEvent {
    /// A search started.
    Started {
        /// Algorithm name as recorded.
        algorithm: String,
    },
    /// One decision step; `score_bits` is the exact `f64::to_bits` of the
    /// history entry (use [`f64::from_bits`] to recover the score).
    Step {
        /// Zero-based step index.
        index: usize,
        /// Bit pattern of the step's history entry.
        score_bits: u64,
    },
    /// A search finished.
    Finished {
        /// Algorithm name as recorded.
        algorithm: String,
        /// NAS-Bench-201 index of the discovered architecture.
        best_index: usize,
        /// Number of recorded decision steps.
        steps: usize,
    },
}

fn field<'a>(event: &'a JsonValue, key: &str) -> Result<&'a JsonValue, String> {
    event
        .get(key)
        .ok_or_else(|| format!("event has no \"{key}\" field"))
}

fn usize_field(event: &JsonValue, key: &str) -> Result<usize, String> {
    let value = field(event, key)?
        .as_f64()
        .ok_or_else(|| format!("\"{key}\" is not a number"))?;
    if value < 0.0 || value.fract() != 0.0 {
        return Err(format!("\"{key}\" is not a non-negative integer"));
    }
    Ok(value as usize)
}

fn string_field(event: &JsonValue, key: &str) -> Result<String, String> {
    Ok(field(event, key)?
        .as_str()
        .ok_or_else(|| format!("\"{key}\" is not a string"))?
        .to_string())
}

impl RecordedEvent {
    /// Parses one deterministic event section.
    ///
    /// # Errors
    ///
    /// Describes the missing or malformed field.
    pub fn from_json(event: &JsonValue) -> Result<Self, String> {
        match field(event, "type")?.as_str() {
            Some("started") => Ok(Self::Started {
                algorithm: string_field(event, "algorithm")?,
            }),
            Some("step") => {
                let bits = string_field(event, "score_bits")?;
                let hex = bits
                    .strip_prefix("0x")
                    .ok_or_else(|| format!("\"score_bits\" {bits:?} lacks the 0x prefix"))?;
                let score_bits = u64::from_str_radix(hex, 16)
                    .map_err(|e| format!("\"score_bits\" {bits:?} is not hex: {e}"))?;
                Ok(Self::Step {
                    index: usize_field(event, "index")?,
                    score_bits,
                })
            }
            Some("finished") => Ok(Self::Finished {
                algorithm: string_field(event, "algorithm")?,
                best_index: usize_field(event, "best_index")?,
                steps: usize_field(event, "steps")?,
            }),
            Some(other) => Err(format!("unknown event type {other:?}")),
            None => Err("\"type\" is not a string".to_string()),
        }
    }
}

/// Parses a JSONL recording back into typed events.
///
/// # Errors
///
/// Reports the first malformed line (1-based) or unparseable event.
pub fn replay_events(jsonl: &str) -> Result<Vec<RecordedEvent>, String> {
    parse_stream(jsonl)?
        .iter()
        .enumerate()
        .map(|(i, e)| RecordedEvent::from_json(e).map_err(|err| format!("event {i}: {err}")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SearchOutcome;
    use crate::{CandidateEvaluation, SearchCost};
    use micronas_hw::HardwareIndicators;
    use micronas_proxies::ZeroCostMetrics;
    use micronas_searchspace::SearchSpace;

    fn outcome() -> SearchOutcome {
        let space = SearchSpace::nas_bench_201();
        SearchOutcome {
            best: space.architecture(42).unwrap(),
            evaluation: CandidateEvaluation {
                arch_index: 42,
                metrics: ZeroCostMetrics {
                    ntk_condition: 1.0,
                    linear_regions: 2,
                    trainability: -1.0,
                    expressivity: 0.5,
                }
                .metric_set(),
                hardware: HardwareIndicators {
                    flops_m: 1.0,
                    macs_m: 0.5,
                    params_m: 0.1,
                    latency_ms: 3.0,
                    peak_sram_kib: 64.0,
                    flash_kib: 128.0,
                },
                feasible: true,
            },
            test_accuracy: 90.0,
            cost: SearchCost::default(),
            algorithm: "micronas-pruning".to_string(),
            history: vec![0.25, 0.5],
        }
    }

    fn record_run(recorder: &EventRecorder) {
        let outcome = outcome();
        recorder.on_event(&SearchEvent::Started {
            algorithm: "micronas-pruning",
        });
        for (index, score) in outcome.history.iter().enumerate() {
            recorder.on_event(&SearchEvent::Step {
                index,
                score: *score,
            });
        }
        recorder.on_event(&SearchEvent::Finished { outcome: &outcome });
    }

    #[test]
    fn records_and_replays_typed_events() {
        let recorder = EventRecorder::new();
        record_run(&recorder);
        assert_eq!(recorder.len(), 4);
        let events = recorder.replay().unwrap();
        assert_eq!(
            events[0],
            RecordedEvent::Started {
                algorithm: "micronas-pruning".to_string()
            }
        );
        assert_eq!(
            events[1],
            RecordedEvent::Step {
                index: 0,
                score_bits: 0.25f64.to_bits()
            }
        );
        assert_eq!(
            events[3],
            RecordedEvent::Finished {
                algorithm: "micronas-pruning".to_string(),
                best_index: 42,
                steps: 2
            }
        );
    }

    #[test]
    fn two_recordings_diff_empty_despite_timing() {
        let a = EventRecorder::new();
        record_run(&a);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let b = EventRecorder::new();
        record_run(&b);
        // Raw lines differ (timing), deterministic sections do not.
        assert!(replay_diff(&a.to_jsonl(), &b.to_jsonl()).is_empty());
    }

    #[test]
    fn take_jsonl_drains_the_recording() {
        let recorder = EventRecorder::new();
        record_run(&recorder);
        let first = recorder.take_jsonl();
        assert!(!first.is_empty());
        assert!(recorder.is_empty());
        assert!(recorder.take_jsonl().is_empty());
    }

    #[test]
    fn replay_rejects_malformed_events() {
        assert!(replay_events("{\"event\":{\"type\":\"warp\"}}\n")
            .unwrap_err()
            .contains("unknown event type"));
        assert!(
            replay_events("{\"event\":{\"type\":\"step\",\"index\":0}}\n")
                .unwrap_err()
                .contains("score_bits")
        );
        assert!(replay_events(
            "{\"event\":{\"type\":\"step\",\"index\":0,\"score_bits\":\"3ff\"}}\n"
        )
        .unwrap_err()
        .contains("0x prefix"));
    }
}
