use crate::{MicroNasError, Result};
use micronas_hw::HardwareConstraints;
use micronas_mcu::McuSpec;
use micronas_nn::ProxyNetworkConfig;
use micronas_proxies::{LinearRegionConfig, NtkConfig};
use serde::{Deserialize, Serialize};

/// Top-level configuration of a MicroNAS run: proxy settings, target device,
/// hardware constraints and reproducibility seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroNasConfig {
    /// NTK proxy configuration (the paper adopts batch size 32).
    pub ntk: NtkConfig,
    /// Linear-region proxy configuration.
    pub linear_regions: LinearRegionConfig,
    /// Target microcontroller.
    pub mcu: McuSpec,
    /// Hardware budgets enforced during the search.
    pub constraints: HardwareConstraints,
    /// Global seed for every stochastic component.
    pub seed: u64,
}

impl MicroNasConfig {
    /// The configuration used for the paper-scale experiments: batch-32 NTK
    /// on the STM32F746ZG with the device's memory budgets.
    pub fn paper_default() -> Self {
        let mcu = McuSpec::stm32f746zg();
        Self {
            ntk: NtkConfig::paper_default(),
            linear_regions: LinearRegionConfig::paper_default(),
            constraints: HardwareConstraints::for_device(&mcu),
            mcu,
            seed: 0,
        }
    }

    /// A reduced configuration that keeps searches fast enough for unit
    /// tests and quick experimentation, while the NTK proxy still ranks
    /// architectures the way the paper-scale configuration does
    /// (12×12 probes, 6 channels, batch-12 NTK).
    pub fn fast() -> Self {
        let mcu = McuSpec::stm32f746zg();
        Self {
            ntk: NtkConfig::fast(),
            linear_regions: LinearRegionConfig::fast(),
            constraints: HardwareConstraints::unconstrained(),
            mcu,
            seed: 0,
        }
    }

    /// Alias of [`MicroNasConfig::fast`] used by the shape-checking
    /// experiment tests; kept separate so the test intent is explicit.
    pub fn small() -> Self {
        Self::fast()
    }

    /// An even smaller configuration used by the test-suite: 6×6 probe
    /// inputs, 3-channel networks, 4-sample NTK batches.
    pub fn tiny_test() -> Self {
        let network = ProxyNetworkConfig {
            input_channels: 3,
            input_resolution: 6,
            channels: 3,
            num_cells: 1,
            num_classes: 10,
            init: micronas_tensor::InitKind::KaimingNormal,
        };
        let mcu = McuSpec::stm32f746zg();
        Self {
            ntk: NtkConfig {
                batch_size: 4,
                repeats: 1,
                network,
                max_condition_index: 4,
            },
            linear_regions: LinearRegionConfig {
                num_segments: 2,
                points_per_segment: 6,
                network,
            },
            constraints: HardwareConstraints::unconstrained(),
            mcu,
            seed: 0,
        }
    }

    /// Replaces the seed, keeping everything else.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the hardware constraints, keeping everything else.
    pub fn with_constraints(mut self, constraints: HardwareConstraints) -> Self {
        self.constraints = constraints;
        self
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MicroNasError::InvalidConfig`] for degenerate proxy settings.
    pub fn validate(&self) -> Result<()> {
        if self.ntk.batch_size < 2 {
            return Err(MicroNasError::InvalidConfig(
                "NTK batch size must be at least 2".into(),
            ));
        }
        if self.linear_regions.num_segments == 0 {
            return Err(MicroNasError::InvalidConfig(
                "at least one linear-region probe segment is required".into(),
            ));
        }
        Ok(())
    }
}

impl Default for MicroNasConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        assert!(MicroNasConfig::paper_default().validate().is_ok());
        assert!(MicroNasConfig::fast().validate().is_ok());
        assert!(MicroNasConfig::small().validate().is_ok());
        assert!(MicroNasConfig::tiny_test().validate().is_ok());
    }

    #[test]
    fn paper_default_matches_paper_settings() {
        let cfg = MicroNasConfig::paper_default();
        assert_eq!(
            cfg.ntk.batch_size, 32,
            "the paper adopts a batch size of 32"
        );
        assert!(cfg.mcu.name.contains("STM32F746"));
        assert_eq!(cfg.constraints.max_sram_kib, Some(320.0));
    }

    #[test]
    fn builders_replace_fields() {
        let cfg = MicroNasConfig::fast().with_seed(99);
        assert_eq!(cfg.seed, 99);
        let c = HardwareConstraints::unconstrained().with_latency_ms(100.0);
        let cfg = cfg.with_constraints(c);
        assert_eq!(cfg.constraints.max_latency_ms, Some(100.0));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = MicroNasConfig::fast();
        cfg.ntk.batch_size = 1;
        assert!(cfg.validate().is_err());
        let mut cfg = MicroNasConfig::fast();
        cfg.linear_regions.num_segments = 0;
        assert!(cfg.validate().is_err());
    }
}
