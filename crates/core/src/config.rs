use crate::{MicroNasError, Result};
use micronas_graph::CompilerKind;
use micronas_hw::HardwareConstraints;
use micronas_mcu::McuSpec;
use micronas_nn::ProxyNetworkConfig;
use micronas_proxies::{LinearRegionConfig, NtkConfig};
use micronas_tensor::KernelBackendKind;
use serde::{Deserialize, Serialize};

/// Top-level configuration of a MicroNAS run: proxy settings, target device,
/// hardware constraints, execution backend and reproducibility seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MicroNasConfig {
    /// NTK proxy configuration (the paper adopts batch size 32).
    pub ntk: NtkConfig,
    /// Linear-region proxy configuration.
    pub linear_regions: LinearRegionConfig,
    /// Target microcontroller.
    pub mcu: McuSpec,
    /// Hardware budgets enforced during the search.
    pub constraints: HardwareConstraints,
    /// Global seed for every stochastic component.
    pub seed: u64,
    /// Execution backend the proxy networks run on. The default
    /// ([`KernelBackendKind::BlockedGemm`]) is bitwise-identical to the
    /// paper pipeline; any other backend changes proxy numerics and
    /// therefore gets its own store namespace (see
    /// [`MicroNasConfig::store_namespace`]).
    pub backend: KernelBackendKind,
    /// Graph compiler the proxy networks execute through. `None` (the
    /// default) is the eager kernel path; [`CompilerKind::Interpreter`]
    /// replays the same kernels through a compiled plan (bitwise identical,
    /// shares the store namespace); any numerically divergent compiler
    /// (e.g. [`CompilerKind::Fusing`]) folds into the namespace like a
    /// divergent backend.
    pub compiler: Option<CompilerKind>,
    /// Distributed evaluation fabric this worker joins: peer addresses and
    /// transport tuning (`None` = standalone). The fabric only changes
    /// *where* warm records come from, never what is computed, so it does
    /// **not** fold into [`MicroNasConfig::store_namespace`] — instead the
    /// namespace is what the fabric handshake checks, refusing peers whose
    /// evaluation configuration diverges.
    pub fabric: Option<micronas_fabric::FabricConfig>,
}

impl MicroNasConfig {
    /// The configuration used for the paper-scale experiments: batch-32 NTK
    /// on the STM32F746ZG with the device's memory budgets.
    pub fn paper_default() -> Self {
        let mcu = McuSpec::stm32f746zg();
        Self {
            ntk: NtkConfig::paper_default(),
            linear_regions: LinearRegionConfig::paper_default(),
            constraints: HardwareConstraints::for_device(&mcu),
            mcu,
            seed: 0,
            backend: KernelBackendKind::BlockedGemm,
            compiler: None,
            fabric: None,
        }
    }

    /// A reduced configuration that keeps searches fast enough for unit
    /// tests and quick experimentation, while the NTK proxy still ranks
    /// architectures the way the paper-scale configuration does
    /// (12×12 probes, 6 channels, batch-12 NTK).
    pub fn fast() -> Self {
        let mcu = McuSpec::stm32f746zg();
        Self {
            ntk: NtkConfig::fast(),
            linear_regions: LinearRegionConfig::fast(),
            constraints: HardwareConstraints::unconstrained(),
            mcu,
            seed: 0,
            backend: KernelBackendKind::BlockedGemm,
            compiler: None,
            fabric: None,
        }
    }

    /// Alias of [`MicroNasConfig::fast`] used by the shape-checking
    /// experiment tests; kept separate so the test intent is explicit.
    pub fn small() -> Self {
        Self::fast()
    }

    /// An even smaller configuration used by the test-suite: 6×6 probe
    /// inputs, 3-channel networks, 4-sample NTK batches.
    pub fn tiny_test() -> Self {
        let network = ProxyNetworkConfig {
            input_channels: 3,
            input_resolution: 6,
            channels: 3,
            num_cells: 1,
            num_classes: 10,
            init: micronas_tensor::InitKind::KaimingNormal,
        };
        let mcu = McuSpec::stm32f746zg();
        Self {
            ntk: NtkConfig {
                batch_size: 4,
                repeats: 1,
                network,
                max_condition_index: 4,
            },
            linear_regions: LinearRegionConfig {
                num_segments: 2,
                points_per_segment: 6,
                network,
            },
            constraints: HardwareConstraints::unconstrained(),
            mcu,
            seed: 0,
            backend: KernelBackendKind::BlockedGemm,
            compiler: None,
            fabric: None,
        }
    }

    /// Replaces the seed, keeping everything else.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the hardware constraints, keeping everything else.
    pub fn with_constraints(mut self, constraints: HardwareConstraints) -> Self {
        self.constraints = constraints;
        self
    }

    /// Replaces the execution backend, keeping everything else. Choosing a
    /// backend that is not bitwise-identical to the paper default moves the
    /// configuration into its own store namespace — persisted logs written
    /// under the default numerics refuse to open rather than serve values
    /// the new backend cannot reproduce.
    pub fn with_backend(mut self, backend: KernelBackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Replaces the graph compiler, keeping everything else. `None` is the
    /// eager path. Like [`MicroNasConfig::with_backend`], a compiler that is
    /// not bitwise-identical to the eager pipeline moves the configuration
    /// into its own store namespace — persisted logs written under other
    /// schedules refuse to open rather than serve values this compiler
    /// cannot reproduce.
    pub fn with_compiler(mut self, compiler: Option<CompilerKind>) -> Self {
        self.compiler = compiler;
        self
    }

    /// The evaluation-store namespace of this configuration: a stable
    /// fingerprint of everything that shapes proxy and hardware values
    /// (probe-network geometry, NTK repeats, linear-region probing, the
    /// target MCU).
    ///
    /// The fingerprint hashes an explicit, version-tagged little-endian
    /// encoding of the configuration *values* — never `Debug` renderings or
    /// `std` hashes, which are allowed to change across refactors and
    /// toolchains and would silently orphan every persisted log.
    ///
    /// The NTK *batch size* is deliberately excluded — it is part of every
    /// store key instead ([`micronas_store::ProxyKind`]), because it is the
    /// one axis the paper sweeps (Fig. 2b). The seed and the hardware
    /// budgets are excluded too: the seed is a key coordinate, and
    /// feasibility is recomputed per context from the stored indicators.
    ///
    /// # Versioning rule
    ///
    /// The version tag below must be bumped whenever proxy *outputs* change
    /// for identical inputs — not just when this encoding changes. A
    /// numerical rework (e.g. the batched per-sample gradients and GEMM
    /// Gram build of namespace v2, which reorder floating-point reductions)
    /// silently invalidates every cached evaluation; bumping the tag makes
    /// old logs refuse to open rather than serve stale values.
    pub fn store_namespace(&self) -> u64 {
        let mut h = micronas_store::Fnv1a::new();
        h.update(b"micronas/namespace/v2");
        encode_network(&mut h, &self.ntk.network);
        h.update(&(self.ntk.repeats as u64).to_le_bytes());
        h.update(&(self.linear_regions.num_segments as u64).to_le_bytes());
        h.update(&(self.linear_regions.points_per_segment as u64).to_le_bytes());
        encode_network(&mut h, &self.linear_regions.network);
        h.update(&(self.mcu.name.len() as u64).to_le_bytes());
        h.update(self.mcu.name.as_bytes());
        for v in [
            self.mcu.clock_mhz,
            self.mcu.macs_per_cycle,
            self.mcu.per_element_overhead_cycles,
            self.mcu.flash_wait_states,
            self.mcu.bus_width_bytes,
            self.mcu.layer_invocation_cycles,
            self.mcu.inference_overhead_cycles,
        ] {
            h.update(&v.to_bits().to_le_bytes());
        }
        h.update(&(self.mcu.sram_kib as u64).to_le_bytes());
        h.update(&(self.mcu.flash_kib as u64).to_le_bytes());
        // Execution backend: the paper-default backend contributes NOTHING,
        // so every namespace (and log) minted before the backend layer
        // existed keeps resolving. Any backend with divergent numerics is
        // folded in — its evaluations land in a disjoint namespace, and
        // opening a default-numerics log under it is *refused* instead of
        // silently serving values the backend cannot reproduce.
        if !self.backend.bitwise_paper_identical() {
            h.update(b"backend/");
            let id = self.backend.id();
            h.update(&(id.len() as u64).to_le_bytes());
            h.update(id.as_bytes());
            h.update(
                &self
                    .backend
                    .instantiate()
                    .config_fingerprint()
                    .to_le_bytes(),
            );
        }
        // Graph compiler: `None` and any bitwise-identical compiler (the
        // interpreter replays the eager kernel sequence exactly) contribute
        // NOTHING, so eager-era logs keep resolving under them. A divergent
        // schedule (the fusing compiler) folds its `(id, fingerprint)` in —
        // its evaluations land in a disjoint namespace, and logs written
        // under other numerics refuse to open.
        if let Some(kind) = self.compiler {
            if !kind.bitwise_paper_identical() {
                h.update(b"compiler/");
                let id = kind.id();
                h.update(&(id.len() as u64).to_le_bytes());
                h.update(id.as_bytes());
                h.update(&kind.instantiate().config_fingerprint().to_le_bytes());
            }
        }
        h.finish()
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`MicroNasError::InvalidConfig`] for degenerate proxy settings.
    pub fn validate(&self) -> Result<()> {
        if self.ntk.batch_size < 2 {
            return Err(MicroNasError::InvalidConfig(
                "NTK batch size must be at least 2".into(),
            ));
        }
        if !self.backend.supports_gradients() {
            return Err(MicroNasError::InvalidConfig(format!(
                "execution backend {:?} is inference-only: the NTK proxy needs gradient \
                 kernels. Use it for deployment checks (e.g. \
                 LinearRegionEvaluator::with_backend) instead of driving a search",
                self.backend.id()
            )));
        }
        if self.ntk.batch_size > MAX_NTK_BATCH {
            return Err(MicroNasError::InvalidConfig(format!(
                "NTK batch size {} exceeds the supported maximum {MAX_NTK_BATCH} \
                 (store keys encode the batch in 16 bits)",
                self.ntk.batch_size
            )));
        }
        if self.ntk.max_condition_index > micronas_store::MAX_SPECTRUM_INDICES {
            return Err(MicroNasError::InvalidConfig(format!(
                "NTK max condition index {} exceeds the storable spectrum length {}",
                self.ntk.max_condition_index,
                micronas_store::MAX_SPECTRUM_INDICES
            )));
        }
        if self.linear_regions.num_segments == 0 {
            return Err(MicroNasError::InvalidConfig(
                "at least one linear-region probe segment is required".into(),
            ));
        }
        Ok(())
    }
}

impl Default for MicroNasConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Largest NTK batch size accepted by [`MicroNasConfig::validate`]: store
/// keys encode the batch in 16 bits, and the paper sweeps 4–128.
const MAX_NTK_BATCH: usize = u16::MAX as usize;

/// Stable value encoding of a proxy-network geometry for the namespace
/// fingerprint.
fn encode_network(h: &mut micronas_store::Fnv1a, net: &micronas_nn::ProxyNetworkConfig) {
    for v in [
        net.input_channels,
        net.input_resolution,
        net.channels,
        net.num_cells,
        net.num_classes,
    ] {
        h.update(&(v as u64).to_le_bytes());
    }
    let init_tag: u8 = match net.init {
        micronas_tensor::InitKind::KaimingNormal => 0,
        micronas_tensor::InitKind::KaimingUniform => 1,
        micronas_tensor::InitKind::XavierUniform => 2,
    };
    h.update(&[init_tag]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        assert!(MicroNasConfig::paper_default().validate().is_ok());
        assert!(MicroNasConfig::fast().validate().is_ok());
        assert!(MicroNasConfig::small().validate().is_ok());
        assert!(MicroNasConfig::tiny_test().validate().is_ok());
    }

    #[test]
    fn paper_default_matches_paper_settings() {
        let cfg = MicroNasConfig::paper_default();
        assert_eq!(
            cfg.ntk.batch_size, 32,
            "the paper adopts a batch size of 32"
        );
        assert!(cfg.mcu.name.contains("STM32F746"));
        assert_eq!(cfg.constraints.max_sram_kib, Some(320.0));
    }

    #[test]
    fn builders_replace_fields() {
        let cfg = MicroNasConfig::fast().with_seed(99);
        assert_eq!(cfg.seed, 99);
        let c = HardwareConstraints::unconstrained().with_latency_ms(100.0);
        let cfg = cfg.with_constraints(c);
        assert_eq!(cfg.constraints.max_latency_ms, Some(100.0));
    }

    #[test]
    fn store_namespace_tracks_proxy_configuration() {
        let a = MicroNasConfig::fast();
        assert_eq!(
            a.store_namespace(),
            MicroNasConfig::fast().store_namespace()
        );
        assert_ne!(
            a.store_namespace(),
            MicroNasConfig::tiny_test().store_namespace(),
            "different probe networks must not share a namespace"
        );
        // Seed, constraints and NTK batch size do NOT change the namespace.
        assert_eq!(
            a.store_namespace(),
            MicroNasConfig::fast().with_seed(99).store_namespace()
        );
        let mut swept = MicroNasConfig::fast();
        swept.ntk.batch_size = 64;
        assert_eq!(a.store_namespace(), swept.store_namespace());
    }

    #[test]
    fn store_namespace_is_pinned() {
        // Golden value: the namespace is part of the persisted log header,
        // so it must never drift across refactors or toolchains. If this
        // assertion fails, the encoding changed — bump the version tag and
        // plan a migration, never silently re-fingerprint.
        assert_eq!(
            MicroNasConfig::paper_default().store_namespace(),
            0xa01c_0bcb_e15a_bdf4,
            "got {:#018x}",
            MicroNasConfig::paper_default().store_namespace()
        );
    }

    #[test]
    fn backend_selection_controls_the_namespace() {
        let default_ns = MicroNasConfig::fast().store_namespace();
        // The paper-default backend folds nothing: pre-backend namespaces
        // keep resolving.
        assert_eq!(
            default_ns,
            MicroNasConfig::fast()
                .with_backend(KernelBackendKind::BlockedGemm)
                .store_namespace()
        );
        // Every numerically divergent backend gets its own namespace.
        let simd_ns = MicroNasConfig::fast()
            .with_backend(KernelBackendKind::Simd)
            .store_namespace();
        let direct_ns = MicroNasConfig::fast()
            .with_backend(KernelBackendKind::Direct)
            .store_namespace();
        assert_ne!(default_ns, simd_ns);
        assert_ne!(default_ns, direct_ns);
        assert_ne!(simd_ns, direct_ns);
    }

    #[test]
    fn compiler_selection_controls_the_namespace() {
        let default_ns = MicroNasConfig::fast().store_namespace();
        // Eager execution and the bitwise interpreter share the namespace:
        // the interpreter replays the eager schedule value-for-value, so
        // logs written under either must keep resolving under the other.
        assert_eq!(
            default_ns,
            MicroNasConfig::fast()
                .with_compiler(Some(CompilerKind::Interpreter))
                .store_namespace()
        );
        // The paper pin survives the graph pipeline.
        assert_eq!(
            MicroNasConfig::paper_default()
                .with_compiler(Some(CompilerKind::Interpreter))
                .store_namespace(),
            0xa01c_0bcb_e15a_bdf4
        );
        // A fusing compiler reassociates reductions, so it gets its own
        // namespace — exactly like a divergent backend.
        let fused_ns = MicroNasConfig::fast()
            .with_compiler(Some(CompilerKind::Fusing))
            .store_namespace();
        assert_ne!(default_ns, fused_ns);
        // Backend and compiler folds compose: divergent backend + divergent
        // compiler is a third namespace.
        let simd_fused_ns = MicroNasConfig::fast()
            .with_backend(KernelBackendKind::Simd)
            .with_compiler(Some(CompilerKind::Fusing))
            .store_namespace();
        assert_ne!(fused_ns, simd_fused_ns);
        assert_ne!(
            MicroNasConfig::fast()
                .with_backend(KernelBackendKind::Simd)
                .store_namespace(),
            simd_fused_ns
        );
    }

    #[test]
    fn fabric_membership_never_moves_the_namespace() {
        // The fabric changes where warm records come from, not what is
        // computed — so joining (or re-sizing) a fleet must keep every
        // worker in the same namespace, or the fleet could never share.
        let mut cfg = MicroNasConfig::fast();
        let standalone_ns = cfg.store_namespace();
        cfg.fabric = Some(micronas_fabric::FabricConfig::with_peers(vec![
            "10.0.0.1:7000".into(),
            "10.0.0.2:7000".into(),
        ]));
        assert_eq!(cfg.store_namespace(), standalone_ns);
        cfg.fabric
            .as_mut()
            .unwrap()
            .peers
            .push("10.0.0.3:7000".into());
        cfg.fabric.as_mut().unwrap().timeout_ms = 5;
        assert_eq!(cfg.store_namespace(), standalone_ns);
    }

    #[test]
    fn inference_only_backends_cannot_drive_a_search() {
        let cfg = MicroNasConfig::fast().with_backend(KernelBackendKind::Int8Mcu);
        let err = cfg.validate().unwrap_err();
        assert!(err.to_string().contains("inference-only"), "{err}");
        assert!(MicroNasConfig::fast()
            .with_backend(KernelBackendKind::Simd)
            .validate()
            .is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let mut cfg = MicroNasConfig::fast();
        cfg.ntk.batch_size = 1;
        assert!(cfg.validate().is_err());
        let mut cfg = MicroNasConfig::fast();
        cfg.ntk.batch_size = (u16::MAX as usize) + 1;
        assert!(
            cfg.validate().is_err(),
            "batch sizes beyond the 16-bit key range must be rejected"
        );
        let mut cfg = MicroNasConfig::fast();
        cfg.linear_regions.num_segments = 0;
        assert!(cfg.validate().is_err());
    }
}
