//! Cross-candidate mega-batching: the [`BatchedEvaluator`] owns the
//! candidate evaluation queue of every search strategy.
//!
//! Search strategies enumerate whole slates of candidates per decision step
//! (the pruning search scores every undecided `(edge, op)` pair, random
//! search scores its entire sample budget). Evaluating those candidates one
//! at a time leaves the GEMM kernels starved: at MCU-scale probe resolutions
//! a single candidate's im2col panel is far below the blocked kernel's
//! saturation point. The batched evaluator therefore plans the **whole
//! slate** with a [`SlateScheduler`] before anything runs: candidates are
//! deduplicated by canonical digest, the distinct survivors are bucketed by
//! geometry signature (which edges carry a 1×1 or a 3×3 convolution) across
//! the entire slate instead of by arrival stride, and maximal-fill packs of
//! [`SearchContext::pack_width`] are emitted in a deterministic order. Each
//! pack then runs through [`SearchContext::evaluate_pack`], where
//! same-geometry convolutions of different candidates fuse into one grouped
//! GEMM per layer in both the forward probe and the packed per-sample
//! gradient sweep — so the denser the geometry buckets, the fewer kernel
//! dispatches the slate costs.
//!
//! Packing is a pure scheduling change: results are bitwise identical to
//! one-at-a-time evaluation at every pack width and thread count, packs
//! complete out of order on the rayon pool and are re-assembled in slate
//! order, and the context's cache/store bookkeeping advances exactly as the
//! sequential path would. Duplicates travel in the same pack as their first
//! occurrence, so their cache accounting stays deterministic even while
//! packs race on the pool.

use crate::{CandidateEvaluation, Result, SearchContext};
use micronas_searchspace::{CellTopology, Operation};
use rayon::prelude::*;
use std::collections::HashMap;
use std::sync::Arc;

/// Geometry-bucketed, cross-candidate batched front-end to
/// [`SearchContext::evaluate`].
///
/// Borrowing the context keeps the evaluator trivially shareable across the
/// rayon scoring workers; it holds no mutable state of its own — all
/// caching, counting and pack-density accounting lives in the context, so
/// evaluations issued through this type and through
/// [`SearchContext::evaluate`] share one coherent view.
#[derive(Debug, Clone, Copy)]
pub struct BatchedEvaluator<'a> {
    ctx: &'a SearchContext,
    scheduler: SlateScheduler,
}

impl<'a> BatchedEvaluator<'a> {
    /// Wraps a context.
    pub fn new(ctx: &'a SearchContext) -> Self {
        Self {
            ctx,
            scheduler: SlateScheduler::new(ctx.pack_width()),
        }
    }

    /// The wrapped context.
    pub fn context(&self) -> &'a SearchContext {
        self.ctx
    }

    /// The slate scheduler in force (width = the context's pack width).
    pub fn scheduler(&self) -> &SlateScheduler {
        &self.scheduler
    }

    /// Evaluates a whole candidate slate: plans it with the
    /// [`SlateScheduler`] (canonical-digest dedup, geometry-signature
    /// buckets, maximal-fill packs), runs the packs concurrently on the
    /// rayon pool and returns the evaluations in slate order.
    ///
    /// Element `i` is the same shared handle [`SearchContext::evaluate`]
    /// would return for `cells[i]` — bitwise identical for every pack width
    /// and thread count. Width 1 disables cross-candidate packing entirely:
    /// the slate evaluates candidate by candidate (still concurrently), and
    /// the context's pack counters stay untouched.
    ///
    /// # Errors
    ///
    /// Propagates proxy evaluation failures (the first failing pack in
    /// schedule order wins).
    pub fn evaluate_all(&self, cells: &[CellTopology]) -> Result<Vec<Arc<CandidateEvaluation>>> {
        if self.scheduler.width() <= 1 {
            return cells
                .par_iter()
                .map(|&cell| self.ctx.evaluate(cell))
                .collect();
        }
        let plan = self.scheduler.plan(cells);
        let results: Vec<Result<Vec<Arc<CandidateEvaluation>>>> = plan
            .packs()
            .par_iter()
            .map(|pack| {
                let members: Vec<CellTopology> = pack.iter().map(|&i| cells[i]).collect();
                self.ctx.evaluate_pack(&members)
            })
            .collect();
        let mut out: Vec<Option<Arc<CandidateEvaluation>>> = vec![None; cells.len()];
        for (pack, result) in plan.packs().iter().zip(results) {
            for (&i, eval) in pack.iter().zip(result?) {
                out[i] = Some(eval);
            }
        }
        Ok(out
            .into_iter()
            .map(|slot| slot.expect("the slate plan covers every slate index exactly once"))
            .collect())
    }

    /// Checks hardware feasibility of a whole candidate slate on the rayon
    /// pool, returning the verdicts in slate order.
    ///
    /// Feasibility needs only the analytic hardware indicators — no proxy
    /// kernels run, so there is nothing to pack; this entry exists so every
    /// strategy's bulk candidate traffic flows through one front-end.
    ///
    /// # Errors
    ///
    /// Propagates store I/O failures (the first failing candidate in slate
    /// order wins).
    pub fn feasibility_all(&self, cells: &[CellTopology]) -> Result<Vec<bool>> {
        cells
            .par_iter()
            .map(|&cell| self.ctx.is_feasible(cell))
            .collect()
    }
}

/// Plans a candidate slate into geometry-bucketed, maximal-fill packs.
///
/// The fixed-stride slicing this replaces (`cells.chunks(width)`) packed
/// candidates by arrival order, so one mixed slate produced packs whose
/// members rarely shared convolution geometry — each pack then split into
/// many half-empty per-edge kernel buckets. The scheduler looks at the whole
/// slate instead:
///
/// 1. **Dedup** — candidates are keyed by the digest of their canonical
///    form; only the first occurrence of each digest (its *owner*) takes a
///    pack slot, and later duplicates ride in the owner's pack where
///    [`SearchContext::evaluate_pack`] resolves them as cache shares.
/// 2. **Bucket** — owners group by geometry signature (the per-edge
///    conv-kernel classes of the canonical form), in first-appearance
///    order.
/// 3. **Emit** — each bucket yields its full packs, then the remainders
///    coalesce across buckets (in bucket order) into the final packs, so
///    the pack count is exactly `ceil(owners / width)` — the minimum any
///    width-bounded schedule can achieve, hence fill never falls below the
///    fixed-stride slicing.
///
/// Planning is pure and deterministic: no hash-map iteration order leaks
/// into the plan, so the same slate always yields the same packs.
#[derive(Debug, Clone, Copy)]
pub struct SlateScheduler {
    width: usize,
}

/// The deterministic pack schedule of one slate (see
/// [`SlateScheduler::plan`]): a partition of the slate indices into packs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlatePlan {
    packs: Vec<Vec<usize>>,
    owners: usize,
}

impl SlatePlan {
    /// The scheduled packs: each inner slice holds slate indices, sorted
    /// ascending (so a duplicate always follows its owner), and every slate
    /// index appears in exactly one pack.
    pub fn packs(&self) -> &[Vec<usize>] {
        &self.packs
    }

    /// Number of distinct candidates (by canonical digest) in the slate —
    /// the candidates that actually occupy pack slots.
    pub fn owner_count(&self) -> usize {
        self.owners
    }
}

impl SlateScheduler {
    /// A scheduler emitting packs of at most `width` distinct candidates
    /// (clamped to at least 1).
    pub fn new(width: usize) -> Self {
        Self {
            width: width.max(1),
        }
    }

    /// The maximum number of distinct candidates per pack.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Plans `cells` into packs: canonical-digest dedup, geometry-signature
    /// buckets over the whole slate, maximal-fill packs in deterministic
    /// order (full packs per bucket first, remainders coalesced in bucket
    /// order), duplicates attached to their owner's pack.
    pub fn plan(&self, cells: &[CellTopology]) -> SlatePlan {
        // Owner slate index per canonical digest, and the geometry buckets
        // of the owners in first-appearance order. Maps are lookup-only —
        // never iterated — so the plan is independent of hash order.
        let mut owner_of_digest: HashMap<u64, usize> = HashMap::new();
        let mut duplicates: Vec<(usize, u64)> = Vec::new();
        let mut bucket_of_sig: HashMap<u64, usize> = HashMap::new();
        let mut buckets: Vec<Vec<usize>> = Vec::new();
        for (i, cell) in cells.iter().enumerate() {
            let canonical = cell.canonical_form();
            let digest = micronas_store::ArchDigest::of(&canonical).value();
            if owner_of_digest.contains_key(&digest) {
                duplicates.push((i, digest));
                continue;
            }
            owner_of_digest.insert(digest, i);
            let sig = geometry_signature(&canonical);
            let bucket = *bucket_of_sig.entry(sig).or_insert_with(|| {
                buckets.push(Vec::new());
                buckets.len() - 1
            });
            buckets[bucket].push(i);
        }
        let owners = cells.len() - duplicates.len();

        // Maximal fill: full packs bucket by bucket, then one coalescing
        // sweep over the remainders. Exactly ceil(owners / width) packs.
        let mut packs: Vec<Vec<usize>> = Vec::new();
        let mut remainder: Vec<usize> = Vec::new();
        for bucket in &buckets {
            let full = bucket.len() / self.width * self.width;
            for pack in bucket[..full].chunks(self.width) {
                packs.push(pack.to_vec());
            }
            remainder.extend_from_slice(&bucket[full..]);
        }
        for pack in remainder.chunks(self.width) {
            packs.push(pack.to_vec());
        }

        // Duplicates join the pack of their owner: evaluate_pack resolves
        // them as in-pack cache shares, which keeps the cache counters
        // deterministic however the packs interleave on the pool.
        let mut pack_of_owner: HashMap<usize, usize> = HashMap::new();
        for (p, pack) in packs.iter().enumerate() {
            for &i in pack {
                pack_of_owner.insert(i, p);
            }
        }
        for (i, digest) in duplicates {
            packs[pack_of_owner[&owner_of_digest[&digest]]].push(i);
        }
        for pack in &mut packs {
            pack.sort_unstable();
        }
        SlatePlan { packs, owners }
    }
}

/// The packing-relevant geometry of a canonical cell: which edges carry a
/// 1×1 conv, a 3×3 conv, or no convolution at all. Cells with equal
/// signatures fill every per-edge conv bucket of a pack completely; the
/// non-conv operations (none / skip / pool) never pack, so they all map to
/// one class.
fn geometry_signature(cell: &CellTopology) -> u64 {
    cell.edge_ops().iter().fold(0u64, |sig, op| {
        sig * 4
            + match op {
                Operation::NorConv1x1 => 1,
                Operation::NorConv3x3 => 2,
                Operation::None | Operation::SkipConnect | Operation::AvgPool3x3 => 0,
            }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MicroNasConfig, SearchContext};
    use micronas_datasets::DatasetKind;
    use micronas_searchspace::SearchSpace;

    fn tiny_context(width: usize) -> SearchContext {
        SearchContext::new(DatasetKind::Cifar10, &MicroNasConfig::tiny_test())
            .unwrap()
            .with_pack_width(width)
    }

    #[test]
    fn evaluate_all_is_bitwise_identical_across_pack_widths() {
        let space = micronas_searchspace::SearchSpace::nas_bench_201();
        let cells: Vec<CellTopology> = [5_000usize, 7_000, 404, 11_111, 0, 8_888, 5_000]
            .iter()
            .map(|&i| space.cell(i).unwrap())
            .collect();
        let reference: Vec<_> = {
            let ctx = tiny_context(1);
            cells.iter().map(|&c| ctx.evaluate(c).unwrap()).collect()
        };
        for width in [1usize, 2, 8] {
            let ctx = tiny_context(width);
            let batched = BatchedEvaluator::new(&ctx).evaluate_all(&cells).unwrap();
            assert_eq!(batched.len(), cells.len());
            for (i, (r, b)) in reference.iter().zip(&batched).enumerate() {
                assert_eq!(**r, **b, "width {width} member {i}");
            }
        }
    }

    #[test]
    fn feasibility_all_matches_per_cell_checks() {
        let ctx = tiny_context(8);
        let cells: Vec<CellTopology> = (0..6).map(|i| ctx.space().cell(i * 999).unwrap()).collect();
        let bulk = BatchedEvaluator::new(&ctx).feasibility_all(&cells).unwrap();
        for (cell, &ok) in cells.iter().zip(&bulk) {
            assert_eq!(ctx.is_feasible(*cell).unwrap(), ok);
        }
    }

    #[test]
    fn evaluator_exposes_its_context() {
        let ctx = tiny_context(4);
        let eval = BatchedEvaluator::new(&ctx);
        assert_eq!(eval.context().pack_width(), 4);
        assert_eq!(eval.scheduler().width(), 4);
        assert!(eval.evaluate_all(&[]).unwrap().is_empty());
    }

    #[test]
    fn scheduler_groups_same_geometry_and_attaches_duplicates_to_owners() {
        use micronas_searchspace::Operation as Op;
        let space = SearchSpace::nas_bench_201();
        // Hunt down two distinct candidates whose canonical forms share a
        // geometry signature, plus one with a different signature — the
        // scheduler sees canonical geometry, which arbitrary hand-built
        // cells do not control.
        let sig_of = |cell: &CellTopology| geometry_signature(&cell.canonical_form());
        let digest_of =
            |cell: &CellTopology| micronas_store::ArchDigest::of(&cell.canonical_form()).value();
        let a = space.cell(7_000).unwrap();
        let b = (0..15_625)
            .map(|i| space.cell(i).unwrap())
            .find(|c| sig_of(c) == sig_of(&a) && digest_of(c) != digest_of(&a))
            .expect("some other candidate shares cell 7000's conv layout");
        let c = (0..15_625)
            .map(|i| space.cell(i).unwrap())
            .find(|c| sig_of(c) != sig_of(&a))
            .expect("some candidate has a different conv layout");

        let slate = vec![a, c, b, a];
        let plan = SlateScheduler::new(2).plan(&slate);
        assert_eq!(plan.owner_count(), 3);
        assert_eq!(plan.packs().len(), 2, "ceil(3 owners / width 2)");
        // The same-signature owners (0 and 2) pack together despite the
        // different-signature candidate arriving between them, the
        // duplicate rides with its owner, and the odd one out fills the
        // remainder pack.
        assert_eq!(plan.packs()[0], vec![0, 2, 3]);
        assert_eq!(plan.packs()[1], vec![1]);

        // Isomorphic twins dedup to one owner: the canonical digest, not
        // the raw representation, keys ownership.
        let conv = CellTopology::new([
            Op::NorConv3x3,
            Op::SkipConnect,
            Op::None,
            Op::AvgPool3x3,
            Op::NorConv1x1,
            Op::None,
        ]);
        let twins = vec![conv, conv.intermediate_swap().unwrap()];
        let twin_plan = SlateScheduler::new(2).plan(&twins);
        assert_eq!(twin_plan.owner_count(), 1);
        assert_eq!(twin_plan.packs(), &[vec![0, 1]]);
    }

    /// Satellite property check: on randomized mixed-geometry slates the
    /// plan is a permutation of the slate and its pack count is the
    /// information-theoretic minimum `ceil(owners / width)` — so its fill
    /// (owners per dispatched pack) is at least what fixed-stride slicing
    /// achieves even when the stride path is granted a perfectly warm
    /// cross-pack cache (every chunk holding at least one first-occurrence
    /// candidate costs it a dispatch).
    #[test]
    fn scheduler_plan_is_a_permutation_with_fill_at_least_fixed_stride() {
        let space = SearchSpace::nas_bench_201();
        let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for trial in 0..32 {
            let width = 1 + (next() % 8) as usize;
            let len = 1 + (next() % 40) as usize;
            let cells: Vec<CellTopology> = (0..len)
                .map(|_| {
                    // A third of the draws come from a small pool so slates
                    // carry duplicates; the rest roam the whole space.
                    let idx = if next() % 3 == 0 {
                        (next() % 40) as usize
                    } else {
                        (next() % 15_625) as usize
                    };
                    space.cell(idx).unwrap()
                })
                .collect();
            let plan = SlateScheduler::new(width).plan(&cells);

            let mut seen: Vec<usize> = plan.packs().iter().flatten().copied().collect();
            seen.sort_unstable();
            let expected: Vec<usize> = (0..len).collect();
            assert_eq!(seen, expected, "trial {trial}: plan must permute the slate");

            let owners = plan.owner_count();
            assert_eq!(
                plan.packs().len(),
                owners.div_ceil(width),
                "trial {trial}: pack count must be minimal"
            );
            for pack in plan.packs() {
                let distinct: std::collections::HashSet<u64> = pack
                    .iter()
                    .map(|&i| micronas_store::ArchDigest::of(&cells[i].canonical_form()).value())
                    .collect();
                assert!(
                    distinct.len() <= width,
                    "trial {trial}: a pack holds more than `width` distinct candidates"
                );
            }

            // Fixed-stride baseline: mark each slate position that carries
            // the first occurrence of its canonical digest, then count the
            // chunks containing at least one of them.
            let mut first_seen = std::collections::HashSet::new();
            let firsts: Vec<bool> = cells
                .iter()
                .map(|cell| {
                    first_seen
                        .insert(micronas_store::ArchDigest::of(&cell.canonical_form()).value())
                })
                .collect();
            let stride_dispatches = firsts
                .chunks(width)
                .filter(|chunk| chunk.iter().any(|&f| f))
                .count();
            assert!(
                plan.packs().len() <= stride_dispatches,
                "trial {trial}: {} scheduled packs vs {} fixed-stride dispatches",
                plan.packs().len(),
                stride_dispatches
            );
        }
    }

    #[test]
    fn evaluate_all_resolves_duplicates_exactly_like_the_sequential_path() {
        let space = SearchSpace::nas_bench_201();
        // A slate longer than one pack whose duplicates straddle what the
        // old fixed-stride slicing would have made separate packs.
        let indices = [7_000usize, 42, 7_000, 11_111, 404, 42, 9_000, 7_000, 1];
        let cells: Vec<CellTopology> = indices.iter().map(|&i| space.cell(i).unwrap()).collect();
        let seq_ctx = tiny_context(4);
        let batch_ctx = tiny_context(4);
        let sequential: Vec<_> = cells
            .iter()
            .map(|&c| seq_ctx.evaluate(c).unwrap())
            .collect();
        let batched = BatchedEvaluator::new(&batch_ctx)
            .evaluate_all(&cells)
            .unwrap();
        for (i, (s, b)) in sequential.iter().zip(&batched).enumerate() {
            assert_eq!(**s, **b, "member {i}");
        }
        assert_eq!(seq_ctx.evaluation_count(), batch_ctx.evaluation_count());
        assert_eq!(
            seq_ctx.cache_stats(),
            batch_ctx.cache_stats(),
            "duplicates riding in their owner's pack must count exactly like \
             sequential context-cache hits"
        );
    }
}
