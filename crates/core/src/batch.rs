//! Cross-candidate mega-batching: the [`BatchedEvaluator`] owns the
//! candidate evaluation queue of every search strategy.
//!
//! Search strategies enumerate whole slates of candidates per decision step
//! (the pruning search scores every undecided `(edge, op)` pair, random
//! search scores its entire sample budget). Evaluating those candidates one
//! at a time leaves the GEMM kernels starved: at MCU-scale probe resolutions
//! a single candidate's im2col panel is far below the blocked kernel's
//! saturation point. The batched evaluator instead slices the slate into
//! packs of [`SearchContext::pack_width`] candidates and submits each pack
//! through [`SearchContext::evaluate_pack`], where same-geometry
//! convolutions of different candidates are fused into one wide GEMM per
//! layer.
//!
//! Packing is a pure scheduling change: results are bitwise identical to
//! one-at-a-time evaluation at every pack width and thread count, packs
//! complete out of order on the rayon pool and are re-assembled in slate
//! order, and the context's cache/store bookkeeping advances exactly as the
//! sequential path would.

use crate::{CandidateEvaluation, Result, SearchContext};
use micronas_searchspace::CellTopology;
use rayon::prelude::*;
use std::sync::Arc;

/// Geometry-bucketed, cross-candidate batched front-end to
/// [`SearchContext::evaluate`].
///
/// Borrowing the context keeps the evaluator trivially shareable across the
/// rayon scoring workers; it holds no state of its own — all caching,
/// counting and pack-density accounting lives in the context, so evaluations
/// issued through this type and through [`SearchContext::evaluate`] share
/// one coherent view.
#[derive(Debug, Clone, Copy)]
pub struct BatchedEvaluator<'a> {
    ctx: &'a SearchContext,
}

impl<'a> BatchedEvaluator<'a> {
    /// Wraps a context.
    pub fn new(ctx: &'a SearchContext) -> Self {
        Self { ctx }
    }

    /// The wrapped context.
    pub fn context(&self) -> &'a SearchContext {
        self.ctx
    }

    /// Evaluates a whole candidate slate: slices it into packs of
    /// [`SearchContext::pack_width`] cells, runs the packs concurrently on
    /// the rayon pool and returns the evaluations in slate order.
    ///
    /// Element `i` is the same shared handle [`SearchContext::evaluate`]
    /// would return for `cells[i]` — bitwise identical for every pack width
    /// and thread count.
    ///
    /// # Errors
    ///
    /// Propagates proxy evaluation failures (the first failing pack in
    /// slate order wins).
    pub fn evaluate_all(&self, cells: &[CellTopology]) -> Result<Vec<Arc<CandidateEvaluation>>> {
        let width = self.ctx.pack_width();
        let slices: Vec<&[CellTopology]> = cells.chunks(width).collect();
        let packs: Vec<Result<Vec<Arc<CandidateEvaluation>>>> = slices
            .par_iter()
            .map(|pack| self.ctx.evaluate_pack(pack))
            .collect();
        let mut out = Vec::with_capacity(cells.len());
        for pack in packs {
            out.extend(pack?);
        }
        Ok(out)
    }

    /// Checks hardware feasibility of a whole candidate slate on the rayon
    /// pool, returning the verdicts in slate order.
    ///
    /// Feasibility needs only the analytic hardware indicators — no proxy
    /// kernels run, so there is nothing to pack; this entry exists so every
    /// strategy's bulk candidate traffic flows through one front-end.
    ///
    /// # Errors
    ///
    /// Propagates store I/O failures (the first failing candidate in slate
    /// order wins).
    pub fn feasibility_all(&self, cells: &[CellTopology]) -> Result<Vec<bool>> {
        cells
            .par_iter()
            .map(|&cell| self.ctx.is_feasible(cell))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MicroNasConfig, SearchContext};
    use micronas_datasets::DatasetKind;

    fn tiny_context(width: usize) -> SearchContext {
        SearchContext::new(DatasetKind::Cifar10, &MicroNasConfig::tiny_test())
            .unwrap()
            .with_pack_width(width)
    }

    #[test]
    fn evaluate_all_is_bitwise_identical_across_pack_widths() {
        let space = micronas_searchspace::SearchSpace::nas_bench_201();
        let cells: Vec<CellTopology> = [5_000usize, 7_000, 404, 11_111, 0, 8_888, 5_000]
            .iter()
            .map(|&i| space.cell(i).unwrap())
            .collect();
        let reference: Vec<_> = {
            let ctx = tiny_context(1);
            cells.iter().map(|&c| ctx.evaluate(c).unwrap()).collect()
        };
        for width in [1usize, 2, 8] {
            let ctx = tiny_context(width);
            let batched = BatchedEvaluator::new(&ctx).evaluate_all(&cells).unwrap();
            assert_eq!(batched.len(), cells.len());
            for (i, (r, b)) in reference.iter().zip(&batched).enumerate() {
                assert_eq!(**r, **b, "width {width} member {i}");
            }
        }
    }

    #[test]
    fn feasibility_all_matches_per_cell_checks() {
        let ctx = tiny_context(8);
        let cells: Vec<CellTopology> = (0..6).map(|i| ctx.space().cell(i * 999).unwrap()).collect();
        let bulk = BatchedEvaluator::new(&ctx).feasibility_all(&cells).unwrap();
        for (cell, &ok) in cells.iter().zip(&bulk) {
            assert_eq!(ctx.is_feasible(*cell).unwrap(), ok);
        }
    }

    #[test]
    fn evaluator_exposes_its_context() {
        let ctx = tiny_context(4);
        let eval = BatchedEvaluator::new(&ctx);
        assert_eq!(eval.context().pack_width(), 4);
        assert!(eval.evaluate_all(&[]).unwrap().is_empty());
    }
}
