use serde::{Deserialize, Serialize};

/// Search-cost accounting, used for the paper's efficiency comparison
/// (Table I "Search Time" column and the ≈1104× claim).
///
/// Zero-shot searches are charged their measured wall-clock time. Training
/// based baselines (µNAS-style evolution) are additionally charged the
/// *simulated* GPU hours that fully training their evaluated candidates would
/// have cost, because that — not the negligible surrogate lookup — is what a
/// real deployment would pay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SearchCost {
    /// Measured wall-clock duration of the search in seconds.
    pub wall_clock_seconds: f64,
    /// Simulated training cost charged to the search, in GPU hours
    /// (zero for train-free methods).
    pub simulated_gpu_hours: f64,
    /// Number of candidate architectures evaluated.
    pub evaluations: usize,
}

impl SearchCost {
    /// Total cost expressed in hours: wall clock plus simulated training.
    pub fn total_hours(&self) -> f64 {
        self.wall_clock_seconds / 3_600.0 + self.simulated_gpu_hours
    }

    /// Efficiency factor of `self` relative to `other`
    /// (how many times cheaper `self` is).
    pub fn efficiency_vs(&self, other: &SearchCost) -> f64 {
        other.total_hours() / self.total_hours().max(1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_hours_combines_both_components() {
        let c = SearchCost {
            wall_clock_seconds: 3_600.0,
            simulated_gpu_hours: 2.0,
            evaluations: 10,
        };
        assert!((c.total_hours() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn efficiency_ratio_matches_paper_style_comparison() {
        // A 552 GPU-hour baseline versus a half-GPU-hour zero-shot search is
        // roughly a 1100x efficiency gap — the shape of the paper's claim.
        let micro = SearchCost {
            wall_clock_seconds: 1_800.0,
            simulated_gpu_hours: 0.0,
            evaluations: 400,
        };
        let munas = SearchCost {
            wall_clock_seconds: 0.0,
            simulated_gpu_hours: 552.0,
            evaluations: 500,
        };
        let ratio = micro.efficiency_vs(&munas);
        assert!(ratio > 1_000.0 && ratio < 1_300.0, "ratio {ratio}");
    }

    #[test]
    fn efficiency_handles_zero_cost_gracefully() {
        let zero = SearchCost::default();
        let other = SearchCost {
            wall_clock_seconds: 60.0,
            ..Default::default()
        };
        assert!(zero.efficiency_vs(&other).is_finite());
    }
}
