use serde::{Deserialize, Serialize};

/// Search-cost accounting, used for the paper's efficiency comparison
/// (Table I "Search Time" column and the ≈1104× claim).
///
/// Zero-shot searches are charged their measured wall-clock time. Training
/// based baselines (µNAS-style evolution) are additionally charged the
/// *simulated* GPU hours that fully training their evaluated candidates would
/// have cost, because that — not the negligible surrogate lookup — is what a
/// real deployment would pay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SearchCost {
    /// Measured wall-clock duration of the search in seconds.
    pub wall_clock_seconds: f64,
    /// Simulated training cost charged to the search, in GPU hours
    /// (zero for train-free methods).
    pub simulated_gpu_hours: f64,
    /// Number of candidate architectures evaluated.
    pub evaluations: usize,
    /// Evaluation-cache traffic of the search: requests served from the
    /// context cache or the shared evaluation store versus freshly computed.
    pub cache: EvalCacheStats,
    /// Pack-density accounting of the cross-candidate mega-batched
    /// evaluation path (all-zero for searches that never packed).
    pub batch: BatchStats,
}

/// Pack-density accounting for the cross-candidate mega-batched evaluator.
///
/// The batched candidate path ([`crate::BatchedEvaluator`] /
/// `SearchContext::evaluate_pack`) groups several candidates into one proxy
/// sweep so same-geometry convolutions share a single wide GEMM dispatch.
/// These counters record how densely that packing actually ran: how many
/// packed sweeps were issued, how many candidates rode through them, and how
/// many of those candidates' proxies were computed fresh inside a sweep (the
/// rest were served by a cache or the shared store before any kernel ran).
/// Like [`EvalCacheStats`], pack density varies with cache and store warmth,
/// so it lives in the cost record, not in the bitwise-stable outcome parts.
///
/// Since the backward sweep packs too, the candidate-level counters above
/// are joined by **kernel-level** fill counters split by sweep direction:
/// one *forward* dispatch is a packed forward conv bucket, one *backward*
/// dispatch is a packed weight-gradient or input-gradient bucket (the stem's
/// full-width packed backward included), and `members / dispatches` is the
/// measured average pack fill of each direction. A backward fill lagging the
/// forward fill would mean per-sample gradient sweeps only partially merged
/// — visible here instead of averaged into one number. The kernel counters
/// are process-wide (reported relative to the context's construction), so
/// they are meaningful as deltas around a search, not across concurrently
/// running contexts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct BatchStats {
    /// Packed proxy sweeps issued (one per [`ZeroCostEvaluator::evaluate_pack`]
    /// call that reached the kernels).
    ///
    /// [`ZeroCostEvaluator::evaluate_pack`]: micronas_proxies::ZeroCostEvaluator::evaluate_pack
    pub dispatches: usize,
    /// Candidates submitted through the packed evaluation path.
    pub packed_candidates: usize,
    /// Candidates whose zero-cost proxies were freshly computed inside a
    /// packed sweep (deduplicated by canonical form before dispatch).
    pub computed_candidates: usize,
    /// The configured maximum pack width (candidates per sweep).
    pub pack_width: usize,
    /// Packed forward conv kernel buckets dispatched.
    pub forward_kernel_dispatches: usize,
    /// Pack members served by the packed forward conv buckets.
    pub forward_kernel_members: usize,
    /// Packed backward kernel buckets dispatched (weight-gradient +
    /// input-gradient, the stem's full-width packed backward included).
    pub backward_kernel_dispatches: usize,
    /// Pack members served by the packed backward buckets.
    pub backward_kernel_members: usize,
}

impl BatchStats {
    /// Counter deltas accumulated since an earlier snapshot (the
    /// configuration-like `pack_width` is carried over, not subtracted).
    pub fn since(&self, earlier: &BatchStats) -> BatchStats {
        BatchStats {
            dispatches: self.dispatches - earlier.dispatches,
            packed_candidates: self.packed_candidates - earlier.packed_candidates,
            computed_candidates: self.computed_candidates - earlier.computed_candidates,
            pack_width: self.pack_width,
            forward_kernel_dispatches: self.forward_kernel_dispatches
                - earlier.forward_kernel_dispatches,
            forward_kernel_members: self.forward_kernel_members - earlier.forward_kernel_members,
            backward_kernel_dispatches: self.backward_kernel_dispatches
                - earlier.backward_kernel_dispatches,
            backward_kernel_members: self.backward_kernel_members - earlier.backward_kernel_members,
        }
    }

    /// Average pack members per packed forward conv dispatch; 0.0 when no
    /// packed forward bucket ran.
    pub fn forward_fill(&self) -> f64 {
        if self.forward_kernel_dispatches == 0 {
            0.0
        } else {
            self.forward_kernel_members as f64 / self.forward_kernel_dispatches as f64
        }
    }

    /// Average pack members per packed backward dispatch; 0.0 when no packed
    /// backward bucket ran.
    pub fn backward_fill(&self) -> f64 {
        if self.backward_kernel_dispatches == 0 {
            0.0
        } else {
            self.backward_kernel_members as f64 / self.backward_kernel_dispatches as f64
        }
    }

    /// Mean number of freshly computed candidates per packed sweep; 0.0 when
    /// no sweep was dispatched.
    pub fn candidates_per_dispatch(&self) -> f64 {
        if self.dispatches == 0 {
            0.0
        } else {
            self.computed_candidates as f64 / self.dispatches as f64
        }
    }

    /// Fraction of the issued pack capacity that carried fresh work, in
    /// `[0, 1]`; 0.0 when nothing was dispatched.
    pub fn fill_rate(&self) -> f64 {
        let capacity = self.dispatches * self.pack_width.max(1);
        if capacity == 0 {
            0.0
        } else {
            self.computed_candidates as f64 / capacity as f64
        }
    }
}

/// Hit/miss accounting for candidate evaluations.
///
/// The unit counted is one **record fetch**: a full candidate evaluation
/// requests two records (zero-cost metrics and hardware indicators), a
/// feasibility check requests one. A **hit** was answered without running
/// the proxies — by the context's own caches or an attached
/// [`micronas_store::EvalStore`] (a context-cache hit counts both records it
/// short-circuits, so rates stay comparable across cache layers). A **miss**
/// paid for a fresh computation. Cache traffic varies with store warmth (a
/// pre-warmed store turns every miss into a hit), so these counters live in
/// the cost record, *not* in the parts of [`crate::SearchOutcome`] that must
/// stay bitwise identical across store modes.
///
/// Deliberately distinct from [`micronas_store::StoreStats`]: that type
/// counts traffic *at the store*, across every context sharing it; this one
/// counts requests *of one search*, including those its context's private
/// caches absorbed before the store ever saw them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct EvalCacheStats {
    /// Requests served from a cache or the shared store.
    pub hits: usize,
    /// Requests that computed fresh proxy or hardware values.
    pub misses: usize,
}

impl EvalCacheStats {
    /// Counter deltas accumulated since an earlier snapshot.
    pub fn since(&self, earlier: &EvalCacheStats) -> EvalCacheStats {
        EvalCacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
        }
    }

    /// Hit rate in `[0, 1]`; 1.0 when nothing was requested.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            1.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

impl SearchCost {
    /// Total cost expressed in hours: wall clock plus simulated training.
    pub fn total_hours(&self) -> f64 {
        self.wall_clock_seconds / 3_600.0 + self.simulated_gpu_hours
    }

    /// Efficiency factor of `self` relative to `other`
    /// (how many times cheaper `self` is).
    pub fn efficiency_vs(&self, other: &SearchCost) -> f64 {
        other.total_hours() / self.total_hours().max(1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_hours_combines_both_components() {
        let c = SearchCost {
            wall_clock_seconds: 3_600.0,
            simulated_gpu_hours: 2.0,
            evaluations: 10,
            ..Default::default()
        };
        assert!((c.total_hours() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn cache_stats_delta_and_hit_rate() {
        let earlier = EvalCacheStats { hits: 3, misses: 2 };
        let later = EvalCacheStats {
            hits: 10,
            misses: 2,
        };
        let delta = later.since(&earlier);
        assert_eq!(delta, EvalCacheStats { hits: 7, misses: 0 });
        assert_eq!(delta.hit_rate(), 1.0);
        assert_eq!(EvalCacheStats::default().hit_rate(), 1.0);
        assert!((earlier.hit_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn efficiency_ratio_matches_paper_style_comparison() {
        // A 552 GPU-hour baseline versus a half-GPU-hour zero-shot search is
        // roughly a 1100x efficiency gap — the shape of the paper's claim.
        let micro = SearchCost {
            wall_clock_seconds: 1_800.0,
            simulated_gpu_hours: 0.0,
            evaluations: 400,
            ..Default::default()
        };
        let munas = SearchCost {
            wall_clock_seconds: 0.0,
            simulated_gpu_hours: 552.0,
            evaluations: 500,
            ..Default::default()
        };
        let ratio = micro.efficiency_vs(&munas);
        assert!(ratio > 1_000.0 && ratio < 1_300.0, "ratio {ratio}");
    }

    #[test]
    fn batch_stats_density_and_delta() {
        let earlier = BatchStats {
            dispatches: 1,
            packed_candidates: 8,
            computed_candidates: 6,
            pack_width: 8,
            forward_kernel_dispatches: 4,
            forward_kernel_members: 20,
            backward_kernel_dispatches: 9,
            backward_kernel_members: 48,
        };
        let later = BatchStats {
            dispatches: 3,
            packed_candidates: 24,
            computed_candidates: 18,
            pack_width: 8,
            forward_kernel_dispatches: 12,
            forward_kernel_members: 68,
            backward_kernel_dispatches: 25,
            backward_kernel_members: 160,
        };
        let delta = later.since(&earlier);
        assert_eq!(delta.dispatches, 2);
        assert_eq!(delta.packed_candidates, 16);
        assert_eq!(delta.computed_candidates, 12);
        assert_eq!(delta.pack_width, 8, "pack width carries over");
        assert!((delta.candidates_per_dispatch() - 6.0).abs() < 1e-12);
        assert!((delta.fill_rate() - 0.75).abs() < 1e-12);
        assert_eq!(delta.forward_kernel_dispatches, 8);
        assert_eq!(delta.forward_kernel_members, 48);
        assert_eq!(delta.backward_kernel_dispatches, 16);
        assert_eq!(delta.backward_kernel_members, 112);
        assert!((delta.forward_fill() - 6.0).abs() < 1e-12);
        assert!((delta.backward_fill() - 7.0).abs() < 1e-12);
        assert_eq!(BatchStats::default().candidates_per_dispatch(), 0.0);
        assert_eq!(BatchStats::default().fill_rate(), 0.0);
        assert_eq!(BatchStats::default().forward_fill(), 0.0);
        assert_eq!(BatchStats::default().backward_fill(), 0.0);
    }

    #[test]
    fn efficiency_handles_zero_cost_gracefully() {
        let zero = SearchCost::default();
        let other = SearchCost {
            wall_clock_seconds: 60.0,
            ..Default::default()
        };
        assert!(zero.efficiency_vs(&other).is_finite());
    }
}
