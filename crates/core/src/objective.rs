use micronas_hw::HardwareIndicators;
use micronas_proxies::ZeroCostMetrics;
use serde::{Deserialize, Serialize};

/// Weights of the hybrid objective function (§II of the paper).
///
/// The objective combines two network-analysis terms (trainability from the
/// NTK spectrum, expressivity from the linear-region count) with hardware
/// terms (FLOPs, estimated latency, and — as the paper's future-work
/// extension — peak memory). The hardware weights are the paper's "tunable
/// weight factors for precise control over the contributions of F and L".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveWeights {
    /// Weight of the trainability score (negated log NTK condition number).
    pub trainability: f64,
    /// Weight of the expressivity score (log linear-region count).
    pub expressivity: f64,
    /// Weight of the FLOPs penalty.
    pub flops: f64,
    /// Weight of the latency penalty.
    pub latency: f64,
    /// Weight of the peak-memory penalty (extension).
    pub memory: f64,
}

impl ObjectiveWeights {
    /// The proxy-only objective used by the TE-NAS baseline and by the
    /// paper's "no hardware constraints" configuration.
    pub fn accuracy_only() -> Self {
        Self {
            trainability: 1.0,
            expressivity: 1.0,
            flops: 0.0,
            latency: 0.0,
            memory: 0.0,
        }
    }

    /// The latency-guided objective (the paper's best-performing setting).
    pub fn latency_guided(weight: f64) -> Self {
        Self {
            latency: weight,
            ..Self::accuracy_only()
        }
    }

    /// The FLOPs-guided objective.
    pub fn flops_guided(weight: f64) -> Self {
        Self {
            flops: weight,
            ..Self::accuracy_only()
        }
    }

    /// The memory-guided objective (future-work extension, experiment E7).
    pub fn memory_guided(weight: f64) -> Self {
        Self {
            memory: weight,
            ..Self::accuracy_only()
        }
    }
}

impl Default for ObjectiveWeights {
    fn default() -> Self {
        Self::accuracy_only()
    }
}

/// Reference scales used to bring the hardware penalties onto the same
/// footing as the (log-scale) network-analysis scores.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HybridObjective {
    /// Objective weights.
    pub weights: ObjectiveWeights,
    /// FLOPs (millions) that map to a penalty of 1.0.
    pub flops_scale_m: f64,
    /// Latency (milliseconds) that maps to a penalty of 1.0.
    pub latency_scale_ms: f64,
    /// Peak memory (KiB) that maps to a penalty of 1.0.
    pub memory_scale_kib: f64,
}

impl HybridObjective {
    /// Creates an objective with the default NAS-Bench-201 / STM32F746
    /// reference scales: 200 MFLOPs, 600 ms latency and 320 KiB SRAM each
    /// count as one unit of penalty.
    ///
    /// The FLOPs and latency scales are calibrated against each other: the
    /// cycle-approximate MCU model executes a 200-MFLOP cell network in
    /// roughly 600 ms, so one unit of FLOPs penalty corresponds to one unit
    /// of latency penalty for conv-dominated models. With consistent units,
    /// a FLOPs-guided and a latency-guided search at the same weight exert
    /// the same pruning pressure, and any divergence between them comes from
    /// the MCU-specific effects the latency model captures (pooling and
    /// memory traffic that are cheap in FLOPs but not in cycles).
    pub fn new(weights: ObjectiveWeights) -> Self {
        Self {
            weights,
            flops_scale_m: 200.0,
            latency_scale_ms: 600.0,
            memory_scale_kib: 320.0,
        }
    }

    /// Creates an objective with explicit reference scales.
    pub fn with_scales(
        weights: ObjectiveWeights,
        flops_scale_m: f64,
        latency_scale_ms: f64,
        memory_scale_kib: f64,
    ) -> Self {
        Self {
            weights,
            flops_scale_m,
            latency_scale_ms,
            memory_scale_kib,
        }
    }

    /// Scalar score of a candidate (larger is better).
    pub fn score(&self, zero_cost: &ZeroCostMetrics, hw: &HardwareIndicators) -> f64 {
        let w = &self.weights;
        w.trainability * zero_cost.trainability + w.expressivity * zero_cost.expressivity
            - w.flops * hw.flops_m / self.flops_scale_m
            - w.latency * hw.latency_ms / self.latency_scale_ms
            - w.memory * hw.peak_sram_kib / self.memory_scale_kib
    }
}

impl Default for HybridObjective {
    fn default() -> Self {
        Self::new(ObjectiveWeights::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zc(trainability: f64, expressivity: f64) -> ZeroCostMetrics {
        ZeroCostMetrics {
            ntk_condition: (-trainability).exp(),
            linear_regions: expressivity.exp() as usize,
            trainability,
            expressivity,
        }
    }

    fn hw(flops_m: f64, latency_ms: f64, sram: f64) -> HardwareIndicators {
        HardwareIndicators {
            flops_m,
            macs_m: flops_m / 2.0,
            params_m: 0.4,
            latency_ms,
            peak_sram_kib: sram,
            flash_kib: 500.0,
        }
    }

    #[test]
    fn accuracy_only_ignores_hardware() {
        let obj = HybridObjective::new(ObjectiveWeights::accuracy_only());
        let a = obj.score(&zc(-2.0, 3.0), &hw(50.0, 100.0, 64.0));
        let b = obj.score(&zc(-2.0, 3.0), &hw(400.0, 2_000.0, 512.0));
        assert_eq!(a, b);
        assert_eq!(a, 1.0);
    }

    #[test]
    fn latency_weight_penalises_slow_candidates() {
        let obj = HybridObjective::new(ObjectiveWeights::latency_guided(2.0));
        let fast = obj.score(&zc(-2.0, 3.0), &hw(50.0, 200.0, 64.0));
        let slow = obj.score(&zc(-2.0, 3.0), &hw(50.0, 1_200.0, 64.0));
        assert!(fast > slow);
        // A 1000 ms latency gap costs weight * gap / scale.
        assert!((fast - slow - 2.0 * 1_000.0 / obj.latency_scale_ms).abs() < 1e-12);
    }

    #[test]
    fn flops_and_memory_weights_penalise_heavier_candidates() {
        let fl = HybridObjective::new(ObjectiveWeights::flops_guided(1.0));
        assert!(
            fl.score(&zc(0.0, 0.0), &hw(50.0, 100.0, 64.0))
                > fl.score(&zc(0.0, 0.0), &hw(300.0, 100.0, 64.0))
        );
        let mem = HybridObjective::new(ObjectiveWeights::memory_guided(1.0));
        assert!(
            mem.score(&zc(0.0, 0.0), &hw(50.0, 100.0, 64.0))
                > mem.score(&zc(0.0, 0.0), &hw(50.0, 100.0, 256.0))
        );
    }

    #[test]
    fn better_proxies_increase_the_score() {
        let obj = HybridObjective::new(ObjectiveWeights::latency_guided(1.0));
        let hw0 = hw(50.0, 300.0, 64.0);
        assert!(obj.score(&zc(-1.0, 4.0), &hw0) > obj.score(&zc(-3.0, 4.0), &hw0));
        assert!(obj.score(&zc(-1.0, 5.0), &hw0) > obj.score(&zc(-1.0, 3.0), &hw0));
    }

    #[test]
    fn custom_scales_change_relative_weighting() {
        let w = ObjectiveWeights::latency_guided(1.0);
        let default = HybridObjective::new(w);
        let strict = HybridObjective::with_scales(w, 200.0, 100.0, 320.0);
        let zc0 = zc(0.0, 0.0);
        let hw0 = hw(50.0, 300.0, 64.0);
        assert!(strict.score(&zc0, &hw0) < default.score(&zc0, &hw0));
    }
}
