use micronas_hw::HardwareIndicators;
use micronas_proxies::{metric_ids, MetricSet};
use serde::{Deserialize, Serialize};

/// Weights of the hybrid objective function (§II of the paper),
/// generalised to **per-metric-id** proxy weights.
///
/// The objective combines any number of network-analysis metrics — each
/// weighted by its [`MetricSet`] id — with hardware terms (FLOPs, estimated
/// latency, and — as the paper's future-work extension — peak memory). The
/// hardware weights are the paper's "tunable weight factors for precise
/// control over the contributions of F and L"; the per-metric weights are
/// how pluggable proxies (`micronas_proxies::Proxy`) join the objective
/// without any code change.
///
/// The paper's fixed two-proxy settings remain available as presets
/// ([`ObjectiveWeights::accuracy_only`], [`ObjectiveWeights::latency_guided`],
/// …) and weight exactly the metrics they always did, in the same order, so
/// preset-driven searches score bitwise-identically to the pre-redesign
/// pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObjectiveWeights {
    /// Ordered `metric id → weight` map. Insertion order is summation
    /// order, which keeps objective scores bitwise-reproducible; backed by
    /// the same [`MetricSet`] type the candidates carry, so both sides of
    /// the objective share one ordered-map implementation.
    metrics: MetricSet,
    /// Weight of the FLOPs penalty.
    pub flops: f64,
    /// Weight of the latency penalty.
    pub latency: f64,
    /// Weight of the peak-memory penalty (extension).
    pub memory: f64,
}

impl ObjectiveWeights {
    /// No proxy metrics, no hardware terms. The starting point for fully
    /// custom objectives: chain [`ObjectiveWeights::with_metric`] calls.
    pub fn empty() -> Self {
        Self {
            metrics: MetricSet::new(),
            flops: 0.0,
            latency: 0.0,
            memory: 0.0,
        }
    }

    /// The proxy-only objective used by the TE-NAS baseline and by the
    /// paper's "no hardware constraints" configuration: unit weights on
    /// trainability and expressivity.
    pub fn accuracy_only() -> Self {
        Self::empty()
            .with_metric(metric_ids::TRAINABILITY, 1.0)
            .with_metric(metric_ids::EXPRESSIVITY, 1.0)
    }

    /// The latency-guided objective (the paper's best-performing setting).
    pub fn latency_guided(weight: f64) -> Self {
        Self {
            latency: weight,
            ..Self::accuracy_only()
        }
    }

    /// The FLOPs-guided objective.
    pub fn flops_guided(weight: f64) -> Self {
        Self {
            flops: weight,
            ..Self::accuracy_only()
        }
    }

    /// The memory-guided objective (future-work extension, experiment E7).
    pub fn memory_guided(weight: f64) -> Self {
        Self {
            memory: weight,
            ..Self::accuracy_only()
        }
    }

    /// Sets (or replaces, keeping the original position) the weight of one
    /// metric id.
    #[must_use]
    pub fn with_metric(mut self, id: impl Into<String>, weight: f64) -> Self {
        self.metrics.insert(id, weight);
        self
    }

    /// Replaces the FLOPs weight.
    #[must_use]
    pub fn with_flops(mut self, weight: f64) -> Self {
        self.flops = weight;
        self
    }

    /// Replaces the latency weight.
    #[must_use]
    pub fn with_latency(mut self, weight: f64) -> Self {
        self.latency = weight;
        self
    }

    /// Replaces the memory weight.
    #[must_use]
    pub fn with_memory(mut self, weight: f64) -> Self {
        self.memory = weight;
        self
    }

    /// The weight of a metric id (0.0 when unweighted).
    pub fn metric(&self, id: &str) -> f64 {
        self.metrics.get(id).unwrap_or(0.0)
    }

    /// Iterates the weighted `(metric id, weight)` pairs in insertion
    /// (= summation) order.
    pub fn metrics(&self) -> impl Iterator<Item = (&str, f64)> {
        self.metrics.iter()
    }

    /// The trainability weight (preset compatibility accessor).
    pub fn trainability(&self) -> f64 {
        self.metric(metric_ids::TRAINABILITY)
    }

    /// The expressivity weight (preset compatibility accessor).
    pub fn expressivity(&self) -> f64 {
        self.metric(metric_ids::EXPRESSIVITY)
    }
}

impl Default for ObjectiveWeights {
    fn default() -> Self {
        Self::accuracy_only()
    }
}

/// Reference scales used to bring the hardware penalties onto the same
/// footing as the (log-scale) network-analysis scores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HybridObjective {
    /// Objective weights.
    pub weights: ObjectiveWeights,
    /// FLOPs (millions) that map to a penalty of 1.0.
    pub flops_scale_m: f64,
    /// Latency (milliseconds) that maps to a penalty of 1.0.
    pub latency_scale_ms: f64,
    /// Peak memory (KiB) that maps to a penalty of 1.0.
    pub memory_scale_kib: f64,
}

impl HybridObjective {
    /// Creates an objective with the default NAS-Bench-201 / STM32F746
    /// reference scales: 200 MFLOPs, 600 ms latency and 320 KiB SRAM each
    /// count as one unit of penalty.
    ///
    /// The FLOPs and latency scales are calibrated against each other: the
    /// cycle-approximate MCU model executes a 200-MFLOP cell network in
    /// roughly 600 ms, so one unit of FLOPs penalty corresponds to one unit
    /// of latency penalty for conv-dominated models. With consistent units,
    /// a FLOPs-guided and a latency-guided search at the same weight exert
    /// the same pruning pressure, and any divergence between them comes from
    /// the MCU-specific effects the latency model captures (pooling and
    /// memory traffic that are cheap in FLOPs but not in cycles).
    pub fn new(weights: ObjectiveWeights) -> Self {
        Self {
            weights,
            flops_scale_m: 200.0,
            latency_scale_ms: 600.0,
            memory_scale_kib: 320.0,
        }
    }

    /// Creates an objective with explicit reference scales.
    pub fn with_scales(
        weights: ObjectiveWeights,
        flops_scale_m: f64,
        latency_scale_ms: f64,
        memory_scale_kib: f64,
    ) -> Self {
        Self {
            weights,
            flops_scale_m,
            latency_scale_ms,
            memory_scale_kib,
        }
    }

    /// Scalar score of a candidate (larger is better): the weighted sum of
    /// its proxy metrics minus the scaled hardware penalties.
    ///
    /// Metrics are summed in the weights' insertion order; a weighted
    /// metric the candidate does not carry contributes nothing (no
    /// floating-point op at all, so partial metric sets stay
    /// bitwise-reproducible).
    pub fn score(&self, metrics: &MetricSet, hw: &HardwareIndicators) -> f64 {
        let w = &self.weights;
        let mut score = 0.0;
        for (id, weight) in w.metrics() {
            if let Some(value) = metrics.get(id) {
                score += weight * value;
            }
        }
        score -= w.flops * hw.flops_m / self.flops_scale_m;
        score -= w.latency * hw.latency_ms / self.latency_scale_ms;
        score -= w.memory * hw.peak_sram_kib / self.memory_scale_kib;
        score
    }
}

impl Default for HybridObjective {
    fn default() -> Self {
        Self::new(ObjectiveWeights::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn zc(trainability: f64, expressivity: f64) -> MetricSet {
        MetricSet::new()
            .with(metric_ids::NTK_CONDITION, (-trainability).exp())
            .with(metric_ids::LINEAR_REGIONS, expressivity.exp().floor())
            .with(metric_ids::TRAINABILITY, trainability)
            .with(metric_ids::EXPRESSIVITY, expressivity)
    }

    fn hw(flops_m: f64, latency_ms: f64, sram: f64) -> HardwareIndicators {
        HardwareIndicators {
            flops_m,
            macs_m: flops_m / 2.0,
            params_m: 0.4,
            latency_ms,
            peak_sram_kib: sram,
            flash_kib: 500.0,
        }
    }

    #[test]
    fn accuracy_only_ignores_hardware() {
        let obj = HybridObjective::new(ObjectiveWeights::accuracy_only());
        let a = obj.score(&zc(-2.0, 3.0), &hw(50.0, 100.0, 64.0));
        let b = obj.score(&zc(-2.0, 3.0), &hw(400.0, 2_000.0, 512.0));
        assert_eq!(a, b);
        assert_eq!(a, 1.0);
    }

    #[test]
    fn latency_weight_penalises_slow_candidates() {
        let obj = HybridObjective::new(ObjectiveWeights::latency_guided(2.0));
        let fast = obj.score(&zc(-2.0, 3.0), &hw(50.0, 200.0, 64.0));
        let slow = obj.score(&zc(-2.0, 3.0), &hw(50.0, 1_200.0, 64.0));
        assert!(fast > slow);
        // A 1000 ms latency gap costs weight * gap / scale.
        assert!((fast - slow - 2.0 * 1_000.0 / obj.latency_scale_ms).abs() < 1e-12);
    }

    #[test]
    fn flops_and_memory_weights_penalise_heavier_candidates() {
        let fl = HybridObjective::new(ObjectiveWeights::flops_guided(1.0));
        assert!(
            fl.score(&zc(0.0, 0.0), &hw(50.0, 100.0, 64.0))
                > fl.score(&zc(0.0, 0.0), &hw(300.0, 100.0, 64.0))
        );
        let mem = HybridObjective::new(ObjectiveWeights::memory_guided(1.0));
        assert!(
            mem.score(&zc(0.0, 0.0), &hw(50.0, 100.0, 64.0))
                > mem.score(&zc(0.0, 0.0), &hw(50.0, 100.0, 256.0))
        );
    }

    #[test]
    fn better_proxies_increase_the_score() {
        let obj = HybridObjective::new(ObjectiveWeights::latency_guided(1.0));
        let hw0 = hw(50.0, 300.0, 64.0);
        assert!(obj.score(&zc(-1.0, 4.0), &hw0) > obj.score(&zc(-3.0, 4.0), &hw0));
        assert!(obj.score(&zc(-1.0, 5.0), &hw0) > obj.score(&zc(-1.0, 3.0), &hw0));
    }

    #[test]
    fn custom_scales_change_relative_weighting() {
        let w = ObjectiveWeights::latency_guided(1.0);
        let default = HybridObjective::new(w.clone());
        let strict = HybridObjective::with_scales(w, 200.0, 100.0, 320.0);
        let zc0 = zc(0.0, 0.0);
        let hw0 = hw(50.0, 300.0, 64.0);
        assert!(strict.score(&zc0, &hw0) < default.score(&zc0, &hw0));
    }

    #[test]
    fn per_metric_weights_pick_up_custom_metrics() {
        let weights = ObjectiveWeights::accuracy_only().with_metric("synflow", 0.5);
        let obj = HybridObjective::new(weights);
        let base = zc(-1.0, 2.0);
        let with_synflow = base.clone().with("synflow", 4.0);
        let hw0 = hw(50.0, 100.0, 64.0);
        let plain = obj.score(&base, &hw0);
        let boosted = obj.score(&with_synflow, &hw0);
        assert!((boosted - plain - 0.5 * 4.0).abs() < 1e-12);
    }

    #[test]
    fn missing_weighted_metrics_contribute_nothing() {
        let weights = ObjectiveWeights::empty().with_metric("absent", 100.0);
        let obj = HybridObjective::new(weights);
        assert_eq!(obj.score(&zc(-1.0, 2.0), &hw(50.0, 100.0, 64.0)), 0.0);
    }

    #[test]
    fn preset_weights_expose_compatibility_accessors() {
        let w = ObjectiveWeights::latency_guided(2.0);
        assert_eq!(w.trainability(), 1.0);
        assert_eq!(w.expressivity(), 1.0);
        assert_eq!(w.latency, 2.0);
        assert_eq!(w.flops, 0.0);
        assert_eq!(w.metric("nonexistent"), 0.0);
        let ids: Vec<&str> = w.metrics().map(|(id, _)| id).collect();
        assert_eq!(ids, [metric_ids::TRAINABILITY, metric_ids::EXPRESSIVITY]);

        let replaced = w.with_metric(metric_ids::TRAINABILITY, 3.0);
        assert_eq!(replaced.trainability(), 3.0);
        let ids: Vec<&str> = replaced.metrics().map(|(id, _)| id).collect();
        assert_eq!(
            ids,
            [metric_ids::TRAINABILITY, metric_ids::EXPRESSIVITY],
            "replacement keeps summation order"
        );
    }

    #[test]
    fn hardware_builder_setters_replace_fields() {
        let w = ObjectiveWeights::empty()
            .with_flops(1.0)
            .with_latency(2.0)
            .with_memory(3.0);
        assert_eq!((w.flops, w.latency, w.memory), (1.0, 2.0, 3.0));
    }
}
