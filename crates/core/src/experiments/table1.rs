use crate::{
    EvolutionaryConfig, EvolutionarySearch, MicroNasConfig, MicroNasSearch, ObjectiveWeights,
    Result, SearchSession,
};
use micronas_datasets::DatasetKind;
use serde::{Deserialize, Serialize};

/// One row of the Table I reproduction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table1Row {
    /// NAS framework name.
    pub framework: String,
    /// FLOPs of the discovered model, in millions.
    pub flops_m: f64,
    /// Parameters of the discovered model, in millions.
    pub params_m: f64,
    /// Estimated MCU latency of the discovered model, in milliseconds.
    pub latency_ms: f64,
    /// Latency speed-up relative to the TE-NAS baseline row.
    pub speedup: f64,
    /// Search cost in hours (wall clock + simulated GPU hours).
    pub search_time_hours: f64,
    /// Surrogate test accuracy of the discovered model, in percent.
    pub accuracy: f64,
}

impl Table1Row {
    /// Formats the row like the paper's table (one line, fixed columns).
    pub fn formatted(&self) -> String {
        format!(
            "{:<38} {:>9.2} {:>9.3} {:>11.1} {:>8.2}x {:>14.3} {:>8.2}",
            self.framework,
            self.flops_m,
            self.params_m,
            self.latency_ms,
            self.speedup,
            self.search_time_hours,
            self.accuracy
        )
    }

    /// The table header matching [`Table1Row::formatted`].
    pub fn header() -> String {
        format!(
            "{:<38} {:>9} {:>9} {:>11} {:>9} {:>14} {:>8}",
            "NAS framework",
            "FLOPs(M)",
            "Params(M)",
            "Latency(ms)",
            "Speedup",
            "SearchTime(h)",
            "ACC(%)"
        )
    }
}

/// Reproduces Table I on CIFAR-10: µNAS-style evolution, the TE-NAS baseline
/// and MicroNAS (latency-guided), reporting FLOPs, parameters, latency,
/// speed-up over TE-NAS, search time and accuracy for each.
///
/// # Errors
///
/// Propagates search failures.
pub fn run_table1(
    config: &MicroNasConfig,
    evolution: EvolutionaryConfig,
    latency_weight: f64,
) -> Result<Vec<Table1Row>> {
    let session = SearchSession::builder()
        .dataset(DatasetKind::Cifar10)
        .config(config.clone())
        .build()?;
    table1_rows_in(&session, evolution, latency_weight)
}

/// Table I rows computed against a caller-provided session, so sweeps can
/// share one evaluation cache (and one store) across experiments.
pub(crate) fn table1_rows_in(
    session: &SearchSession,
    evolution: EvolutionaryConfig,
    latency_weight: f64,
) -> Result<Vec<Table1Row>> {
    let munas = session.run(&EvolutionarySearch::new(evolution)?)?;
    let te_nas = session.run(&MicroNasSearch::te_nas_baseline())?;
    let micro = session.run(&MicroNasSearch::new(ObjectiveWeights::latency_guided(
        latency_weight,
    )))?;

    let reference_latency = te_nas.evaluation.hardware.latency_ms;
    let rows = vec![
        Table1Row {
            framework: munas.algorithm.clone(),
            flops_m: munas.evaluation.hardware.flops_m,
            params_m: munas.evaluation.hardware.params_m,
            latency_ms: munas.evaluation.hardware.latency_ms,
            speedup: reference_latency / munas.evaluation.hardware.latency_ms,
            search_time_hours: munas.cost.total_hours(),
            accuracy: munas.test_accuracy,
        },
        Table1Row {
            framework: te_nas.algorithm.clone(),
            flops_m: te_nas.evaluation.hardware.flops_m,
            params_m: te_nas.evaluation.hardware.params_m,
            latency_ms: te_nas.evaluation.hardware.latency_ms,
            speedup: 1.0,
            search_time_hours: te_nas.cost.total_hours(),
            accuracy: te_nas.test_accuracy,
        },
        Table1Row {
            framework: micro.algorithm.clone(),
            flops_m: micro.evaluation.hardware.flops_m,
            params_m: micro.evaluation.hardware.params_m,
            latency_ms: micro.evaluation.hardware.latency_ms,
            speedup: reference_latency / micro.evaluation.hardware.latency_ms,
            search_time_hours: micro.cost.total_hours(),
            accuracy: micro.test_accuracy,
        },
    ];
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_reproduces_the_papers_ordering() {
        let config = MicroNasConfig::small();
        let rows = run_table1(&config, EvolutionaryConfig::fast_test(), 1.0).unwrap();
        assert_eq!(rows.len(), 3);
        let munas = &rows[0];
        let te_nas = &rows[1];
        let micro = &rows[2];

        // Shape of Table I: MicroNAS discovers a lighter, faster model than
        // TE-NAS at comparable accuracy, and both zero-shot searches are
        // orders of magnitude cheaper than the training-based baseline.
        assert!(micro.flops_m <= te_nas.flops_m);
        assert!(micro.latency_ms <= te_nas.latency_ms);
        assert!(micro.speedup >= 1.0);
        assert!((te_nas.speedup - 1.0).abs() < 1e-9);
        assert!(munas.search_time_hours > micro.search_time_hours * 50.0);
        assert!(
            micro.accuracy > te_nas.accuracy - 15.0,
            "accuracy drop must stay moderate at test scale ({} vs {})",
            micro.accuracy,
            te_nas.accuracy
        );

        // Formatting helpers produce aligned text.
        assert!(Table1Row::header().contains("FLOPs"));
        assert!(micro.formatted().contains('x'));
    }
}
