use crate::{MicroNasConfig, MicroNasSearch, ObjectiveWeights, Result, SearchSession};
use micronas_datasets::DatasetKind;
use serde::{Deserialize, Serialize};

/// One point of the latency-guided (or FLOPs-/memory-guided) weight sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepPoint {
    /// Hardware weight used for this search.
    pub hardware_weight: f64,
    /// Latency of the discovered model in milliseconds.
    pub latency_ms: f64,
    /// FLOPs of the discovered model in millions.
    pub flops_m: f64,
    /// Peak SRAM of the discovered model in KiB.
    pub peak_sram_kib: f64,
    /// Surrogate accuracy of the discovered model in percent.
    pub accuracy: f64,
    /// Speed-up relative to the proxy-only (TE-NAS) baseline model.
    pub speedup_vs_baseline: f64,
}

/// Side-by-side comparison of FLOPs-guided and latency-guided search
/// (§III: "latency-guided search demonstrates superior and more balanced
/// performance than the FLOPs-guided search").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuidanceComparison {
    /// The proxy-only baseline point (weight 0).
    pub baseline: SweepPoint,
    /// The FLOPs-guided result.
    pub flops_guided: SweepPoint,
    /// The latency-guided result.
    pub latency_guided: SweepPoint,
}

fn point_from_search(
    session: &SearchSession,
    weights: ObjectiveWeights,
    hardware_weight: f64,
    baseline_latency_ms: f64,
) -> Result<SweepPoint> {
    let outcome = session.run(&MicroNasSearch::new(weights))?;
    Ok(SweepPoint {
        hardware_weight,
        latency_ms: outcome.evaluation.hardware.latency_ms,
        flops_m: outcome.evaluation.hardware.flops_m,
        peak_sram_kib: outcome.evaluation.hardware.peak_sram_kib,
        accuracy: outcome.test_accuracy,
        speedup_vs_baseline: baseline_latency_ms / outcome.evaluation.hardware.latency_ms,
    })
}

/// Runs the latency-weight sweep behind the paper's "1.59×–3.23× with
/// negligible performance trade-offs" claim: one latency-guided search per
/// weight in `weights`, each compared against the proxy-only baseline.
///
/// # Errors
///
/// Propagates search failures.
pub fn run_latency_sweep(config: &MicroNasConfig, weights: &[f64]) -> Result<Vec<SweepPoint>> {
    let session = SearchSession::builder()
        .dataset(DatasetKind::Cifar10)
        .config(config.clone())
        .build()?;
    latency_sweep_in(&session, weights)
}

/// The latency-weight sweep against a caller-provided session, so sweeps can
/// share one evaluation cache (and one store) across experiments.
pub(crate) fn latency_sweep_in(
    session: &SearchSession,
    weights: &[f64],
) -> Result<Vec<SweepPoint>> {
    let baseline = session.run(&MicroNasSearch::te_nas_baseline())?;
    let baseline_latency = baseline.evaluation.hardware.latency_ms;

    let mut out = vec![SweepPoint {
        hardware_weight: 0.0,
        latency_ms: baseline_latency,
        flops_m: baseline.evaluation.hardware.flops_m,
        peak_sram_kib: baseline.evaluation.hardware.peak_sram_kib,
        accuracy: baseline.test_accuracy,
        speedup_vs_baseline: 1.0,
    }];
    for &w in weights {
        out.push(point_from_search(
            session,
            ObjectiveWeights::latency_guided(w),
            w,
            baseline_latency,
        )?);
    }
    Ok(out)
}

/// Runs the FLOPs-guided vs latency-guided comparison (experiment E6).
///
/// # Errors
///
/// Propagates search failures.
pub fn run_flops_vs_latency(config: &MicroNasConfig, weight: f64) -> Result<GuidanceComparison> {
    let session = SearchSession::builder()
        .dataset(DatasetKind::Cifar10)
        .config(config.clone())
        .build()?;
    let baseline_outcome = session.run(&MicroNasSearch::te_nas_baseline())?;
    let baseline_latency = baseline_outcome.evaluation.hardware.latency_ms;
    let baseline = SweepPoint {
        hardware_weight: 0.0,
        latency_ms: baseline_latency,
        flops_m: baseline_outcome.evaluation.hardware.flops_m,
        peak_sram_kib: baseline_outcome.evaluation.hardware.peak_sram_kib,
        accuracy: baseline_outcome.test_accuracy,
        speedup_vs_baseline: 1.0,
    };
    let flops_guided = point_from_search(
        &session,
        ObjectiveWeights::flops_guided(weight),
        weight,
        baseline_latency,
    )?;
    let latency_guided = point_from_search(
        &session,
        ObjectiveWeights::latency_guided(weight),
        weight,
        baseline_latency,
    )?;
    Ok(GuidanceComparison {
        baseline,
        flops_guided,
        latency_guided,
    })
}

/// Runs the peak-memory-guided search extension (experiment E7, the paper's
/// stated future work).
///
/// # Errors
///
/// Propagates search failures.
pub fn run_memory_guided(config: &MicroNasConfig, weights: &[f64]) -> Result<Vec<SweepPoint>> {
    let session = SearchSession::builder()
        .dataset(DatasetKind::Cifar10)
        .config(config.clone())
        .build()?;
    let baseline = session.run(&MicroNasSearch::te_nas_baseline())?;
    let baseline_latency = baseline.evaluation.hardware.latency_ms;

    let mut out = vec![SweepPoint {
        hardware_weight: 0.0,
        latency_ms: baseline_latency,
        flops_m: baseline.evaluation.hardware.flops_m,
        peak_sram_kib: baseline.evaluation.hardware.peak_sram_kib,
        accuracy: baseline.test_accuracy,
        speedup_vs_baseline: 1.0,
    }];
    for &w in weights {
        out.push(point_from_search(
            &session,
            ObjectiveWeights::memory_guided(w),
            w,
            baseline_latency,
        )?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_sweep_speedup_grows_with_weight() {
        let config = MicroNasConfig::small();
        let points = run_latency_sweep(&config, &[2.0, 8.0]).unwrap();
        assert_eq!(points.len(), 3);
        assert!((points[0].speedup_vs_baseline - 1.0).abs() < 1e-9);
        // Heavier latency weights must never produce slower models.
        assert!(points[2].latency_ms <= points[1].latency_ms + 1e-9);
        assert!(points[2].speedup_vs_baseline >= points[1].speedup_vs_baseline - 1e-9);
        // And accuracy should not collapse (the paper reports negligible loss).
        assert!(points[2].accuracy > points[0].accuracy - 15.0);
    }

    #[test]
    fn flops_vs_latency_comparison_produces_lighter_models() {
        let config = MicroNasConfig::small();
        let cmp = run_flops_vs_latency(&config, 4.0).unwrap();
        assert!(cmp.flops_guided.flops_m <= cmp.baseline.flops_m);
        assert!(cmp.latency_guided.latency_ms <= cmp.baseline.latency_ms);
        // The latency-guided pick should be at least as fast as the
        // FLOPs-guided pick (the MCU-specific bias of the latency model).
        assert!(cmp.latency_guided.latency_ms <= cmp.flops_guided.latency_ms + 1e-9);
    }

    #[test]
    fn memory_guided_search_reduces_peak_sram() {
        let config = MicroNasConfig::small();
        let points = run_memory_guided(&config, &[8.0]).unwrap();
        assert_eq!(points.len(), 2);
        assert!(points[1].peak_sram_kib <= points[0].peak_sram_kib);
    }
}
