use crate::{
    EvolutionaryConfig, EvolutionarySearch, MicroNasConfig, MicroNasSearch, ObjectiveWeights,
    Result, SearchCost, SearchSession,
};
use micronas_datasets::DatasetKind;
use serde::{Deserialize, Serialize};

/// Search-cost comparison across the three frameworks (experiment E5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyReport {
    /// Cost of the MicroNAS latency-guided search.
    pub micronas: SearchCost,
    /// Cost of the TE-NAS-style proxy-only search.
    pub te_nas: SearchCost,
    /// Cost of the µNAS-style training-based evolutionary search.
    pub munas: SearchCost,
    /// Efficiency of MicroNAS relative to µNAS (how many times cheaper).
    pub efficiency_vs_munas: f64,
    /// Efficiency of MicroNAS relative to TE-NAS.
    pub efficiency_vs_te_nas: f64,
    /// Accuracy of each discovered model, in the order (µNAS, TE-NAS, MicroNAS).
    pub accuracies: [f64; 3],
}

/// Reproduces the search-efficiency comparison behind the paper's ≈1104×
/// claim: identical search problem, three algorithms, cost accounted as wall
/// clock (zero-shot) or simulated GPU hours (training-based).
///
/// # Errors
///
/// Propagates search failures.
pub fn run_search_efficiency(
    config: &MicroNasConfig,
    evolution: EvolutionaryConfig,
    latency_weight: f64,
) -> Result<EfficiencyReport> {
    let session = SearchSession::builder()
        .dataset(DatasetKind::Cifar10)
        .config(config.clone())
        .build()?;
    let munas = session.run(&EvolutionarySearch::new(evolution)?)?;
    let te_nas = session.run(&MicroNasSearch::te_nas_baseline())?;
    let micro = session.run(&MicroNasSearch::new(ObjectiveWeights::latency_guided(
        latency_weight,
    )))?;

    Ok(EfficiencyReport {
        efficiency_vs_munas: micro.cost.efficiency_vs(&munas.cost),
        efficiency_vs_te_nas: micro.cost.efficiency_vs(&te_nas.cost),
        accuracies: [
            munas.test_accuracy,
            te_nas.test_accuracy,
            micro.test_accuracy,
        ],
        micronas: micro.cost,
        te_nas: te_nas.cost,
        munas: munas.cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_shot_search_is_orders_of_magnitude_cheaper_than_training_based() {
        let config = MicroNasConfig::small();
        let report = run_search_efficiency(&config, EvolutionaryConfig::fast_test(), 2.0).unwrap();
        // The paper reports ~1104x vs µNAS; at test scale the exact number
        // differs but the gap must remain at least two orders of magnitude.
        assert!(
            report.efficiency_vs_munas > 100.0,
            "efficiency {} too small",
            report.efficiency_vs_munas
        );
        // And MicroNAS must cost about the same as TE-NAS (same proxy count),
        // i.e. within an order of magnitude either way.
        assert!(report.efficiency_vs_te_nas > 0.05 && report.efficiency_vs_te_nas < 20.0);
        assert!(report.munas.simulated_gpu_hours > 0.0);
        assert_eq!(report.micronas.simulated_gpu_hours, 0.0);
        for acc in report.accuracies {
            assert!(
                acc > 20.0,
                "every framework should find a usable model, got {acc}"
            );
        }
    }
}
