//! The paper-grid sweep driver: every headline experiment of the paper's
//! evaluation — Fig. 2a, Fig. 2b, Table I and the latency-constraint sweep —
//! executed against **one** shared evaluation store.
//!
//! The experiments overlap heavily: Fig. 2a and Fig. 2b score the same
//! architecture sample (Fig. 2b at several batch sizes, one of which is the
//! paper's adopted setting that Fig. 2a uses), and Table I plus the
//! constraint sweep both run pruning searches whose candidate sets
//! intersect almost completely. Running the grid against a shared
//! [`EvalStore`] deduplicates all of it — within one run, across repeated
//! runs, and (with a persistent store) across processes. A warm store
//! serves the *entire* grid without a single proxy recomputation.
//!
//! Results are bitwise-identical whether the store is disabled, cold or
//! pre-warmed: every proxy evaluation is computed on the cell's canonical
//! orbit representative, making it a pure function of the store key. The
//! [`SweepReport::identity_fingerprint`] hashes exactly the deterministic
//! payload (taus, table rows, sweep points — not wall-clock times or cache
//! counters), so two reports can be compared across store modes with one
//! `u64` comparison.

use crate::experiments::fig2::{run_fig2a_in, run_fig2b_in};
use crate::experiments::sweeps::latency_sweep_in;
use crate::experiments::table1::table1_rows_in;
use crate::experiments::{Fig2aSeries, Fig2bResult, SweepPoint, Table1Row};
use crate::{EvolutionaryConfig, MicroNasConfig, Result, SearchSession};
use micronas_datasets::DatasetKind;
use micronas_store::{EvalStore, Fnv1a, StoreStats};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use std::time::Instant;

/// Scale parameters of one paper-grid sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepScale {
    /// Architectures sampled for the correlation studies (Fig. 2a/2b).
    pub correlation_sample: usize,
    /// Largest NTK condition index reported in Fig. 2a (and stored in every
    /// spectrum record of the sweep).
    pub spectrum_indices: usize,
    /// NTK batch sizes swept in Fig. 2b.
    pub fig2b_batch_sizes: Vec<usize>,
    /// Independent seeds for Fig. 2b.
    pub fig2b_seeds: usize,
    /// Hardware weights of the latency-constraint sweep.
    pub latency_weights: Vec<f64>,
    /// Budget of the µNAS-style evolutionary baseline in Table I.
    pub evolution: EvolutionaryConfig,
    /// Latency weight of the MicroNAS row in Table I.
    pub latency_weight: f64,
}

impl SweepScale {
    /// The paper-scale grid (hundreds of architectures, batch 4–128).
    pub fn paper() -> Self {
        Self {
            correlation_sample: 200,
            spectrum_indices: 16,
            fig2b_batch_sizes: vec![4, 8, 16, 32, 64, 128],
            fig2b_seeds: 3,
            latency_weights: vec![1.0, 2.0, 4.0, 8.0],
            evolution: EvolutionaryConfig::munas_default(),
            latency_weight: 4.0,
        }
    }

    /// A reduced-but-faithful scale for benchmarks and examples. The batch
    /// list includes the `fast` configuration's own NTK batch size so
    /// Fig. 2a's records are reused by Fig. 2b.
    pub fn fast() -> Self {
        Self {
            correlation_sample: 48,
            spectrum_indices: 6,
            fig2b_batch_sizes: vec![8, 12],
            fig2b_seeds: 2,
            latency_weights: vec![2.0, 8.0],
            evolution: EvolutionaryConfig::fast_test(),
            latency_weight: 2.0,
        }
    }

    /// The smallest meaningful grid, for unit tests.
    pub fn tiny() -> Self {
        Self {
            correlation_sample: 10,
            spectrum_indices: 3,
            fig2b_batch_sizes: vec![4],
            fig2b_seeds: 1,
            latency_weights: vec![2.0],
            evolution: EvolutionaryConfig::fast_test(),
            latency_weight: 2.0,
        }
    }
}

/// The output of one paper-grid sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SweepReport {
    /// Fig. 2a: Kendall-τ of `-K_i` vs accuracy per dataset.
    pub fig2a: Vec<Fig2aSeries>,
    /// Fig. 2b: Kendall-τ vs NTK batch size, per seed plus average.
    pub fig2b: Fig2bResult,
    /// Table I rows (µNAS, TE-NAS, MicroNAS).
    pub table1: Vec<Table1Row>,
    /// Latency-constraint sweep points.
    pub latency_sweep: Vec<SweepPoint>,
    /// Store counter deltas over this run (`None` without a store).
    pub store: Option<StoreStats>,
    /// Wall-clock duration of the whole grid, in seconds.
    pub wall_seconds: f64,
    /// Telemetry collected over the run (`None` unless the sweep ran
    /// through [`run_paper_sweep_traced`]). Timing data, like
    /// [`SweepReport::wall_seconds`], is explicitly **not** part of
    /// [`SweepReport::identity_fingerprint`].
    pub telemetry: Option<micronas_telemetry::TelemetryReport>,
}

impl SweepReport {
    /// Store hit rate of this run in `[0, 1]`; `None` without a store.
    pub fn hit_rate(&self) -> Option<f64> {
        self.store.as_ref().map(StoreStats::hit_rate)
    }

    /// Number of fresh proxy computations this run paid for; `None` without
    /// a store.
    pub fn recomputations(&self) -> Option<u64> {
        self.store.as_ref().map(|s| s.misses)
    }

    /// A stable fingerprint of the *deterministic* payload of the report:
    /// every τ, table row and sweep point, as exact f64 bit patterns —
    /// excluding wall-clock times, search times and cache counters. Two runs
    /// of the same grid agree on this fingerprint exactly when their results
    /// are bitwise identical.
    pub fn identity_fingerprint(&self) -> u64 {
        let mut h = Fnv1a::new();
        for series in &self.fig2a {
            h.update(series.dataset.as_bytes());
            h.update(&(series.sample_size as u64).to_le_bytes());
            for &tau in &series.taus {
                h.update(&tau.to_bits().to_le_bytes());
            }
        }
        for &b in &self.fig2b.batch_sizes {
            h.update(&(b as u64).to_le_bytes());
        }
        for seed_taus in &self.fig2b.taus_per_seed {
            for &tau in seed_taus {
                h.update(&tau.to_bits().to_le_bytes());
            }
        }
        for &tau in &self.fig2b.average {
            h.update(&tau.to_bits().to_le_bytes());
        }
        for row in &self.table1 {
            h.update(row.framework.as_bytes());
            for v in [
                row.flops_m,
                row.params_m,
                row.latency_ms,
                row.speedup,
                row.accuracy,
            ] {
                h.update(&v.to_bits().to_le_bytes());
            }
        }
        for p in &self.latency_sweep {
            for v in [
                p.hardware_weight,
                p.latency_ms,
                p.flops_m,
                p.peak_sram_kib,
                p.accuracy,
                p.speedup_vs_baseline,
            ] {
                h.update(&v.to_bits().to_le_bytes());
            }
        }
        h.finish()
    }
}

/// Runs the full paper grid — Fig. 2a, Fig. 2b, Table I and the latency
/// sweep — against one (optional) shared evaluation store.
///
/// With a persistent store, repeating the sweep in a later process reuses
/// every evaluation: the warm run performs zero proxy recomputations
/// ([`SweepReport::recomputations`] returns `Some(0)`) while producing a
/// bitwise-identical [`SweepReport::identity_fingerprint`].
///
/// # Errors
///
/// Returns [`crate::MicroNasError::InvalidConfig`] if the store was opened
/// under a different configuration namespace (checked *before* anything is
/// read from or written to it), and propagates search, proxy and store
/// failures.
pub fn run_paper_sweep(
    config: &MicroNasConfig,
    scale: &SweepScale,
    store: Option<Arc<EvalStore>>,
) -> Result<SweepReport> {
    run_sweep_inner(config, scale, store, None)
}

/// Runs the same paper grid as [`run_paper_sweep`] with `collector`
/// installed as the process-wide telemetry sink for the duration, folding
/// the collected [`micronas_telemetry::TelemetryReport`] — per-layer span
/// timings, kernel dispatch counters, store traffic — into
/// [`SweepReport::telemetry`].
///
/// Telemetry is inert: the traced report's
/// [`SweepReport::identity_fingerprint`] is bitwise identical to the
/// untraced one's.
///
/// # Errors
///
/// Exactly as [`run_paper_sweep`].
pub fn run_paper_sweep_traced(
    config: &MicroNasConfig,
    scale: &SweepScale,
    store: Option<Arc<EvalStore>>,
    collector: Arc<micronas_telemetry::Collector>,
) -> Result<SweepReport> {
    run_sweep_inner(config, scale, store, Some(collector))
}

fn run_sweep_inner(
    config: &MicroNasConfig,
    scale: &SweepScale,
    store: Option<Arc<EvalStore>>,
    collector: Option<Arc<micronas_telemetry::Collector>>,
) -> Result<SweepReport> {
    let _scope = collector
        .as_ref()
        .map(|c| micronas_telemetry::install_scoped(c.clone()));
    if let Some(store) = store.as_deref() {
        // Refuse a mismatched store up front — Fig. 2a/2b talk to the store
        // directly, before any `SearchContext` would have checked.
        crate::context::ensure_store_namespace(store, config)?;
    }
    let start = Instant::now();
    let stats_before = store.as_deref().map(EvalStore::stats);

    let fig2a = run_fig2a_in(
        config,
        scale.correlation_sample,
        scale.spectrum_indices,
        store.as_deref(),
    )?;
    let fig2b = run_fig2b_in(
        config,
        scale.correlation_sample,
        &scale.fig2b_batch_sizes,
        scale.fig2b_seeds,
        scale.spectrum_indices,
        store.as_deref(),
    )?;

    // ---- Table I + latency sweep: one shared session --------------------
    // The searches intersect almost completely in the candidates they
    // evaluate; a single session (and the store behind it) makes that
    // overlap free.
    let mut builder = SearchSession::builder()
        .dataset(DatasetKind::Cifar10)
        .config(config.clone());
    if let Some(store) = &store {
        builder = builder.store(store.clone());
    }
    let session = builder.build()?;
    let table1 = table1_rows_in(&session, scale.evolution, scale.latency_weight)?;
    let latency_sweep = latency_sweep_in(&session, &scale.latency_weights)?;

    let store_delta = match (stats_before, store.as_deref()) {
        (Some(before), Some(store)) => Some(store.stats().since(&before)),
        _ => None,
    };
    Ok(SweepReport {
        fig2a,
        fig2b,
        table1,
        latency_sweep,
        store: store_delta,
        wall_seconds: start.elapsed().as_secs_f64(),
        telemetry: collector.map(|c| c.report()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_bitwise_identical_across_store_modes_and_warm_runs_hit_everything() {
        let config = MicroNasConfig::tiny_test();
        let scale = SweepScale::tiny();

        let off = run_paper_sweep(&config, &scale, None).unwrap();
        assert!(off.store.is_none());
        assert!(off.hit_rate().is_none());

        let store = Arc::new(EvalStore::in_memory(config.store_namespace()));
        let cold = run_paper_sweep(&config, &scale, Some(store.clone())).unwrap();
        let warm = run_paper_sweep(&config, &scale, Some(store.clone())).unwrap();

        // Bitwise identity: store off vs cold vs pre-warmed.
        assert_eq!(
            off.identity_fingerprint(),
            cold.identity_fingerprint(),
            "store-off and cold-store sweeps must agree bitwise"
        );
        assert_eq!(
            off.identity_fingerprint(),
            warm.identity_fingerprint(),
            "store-off and warm-store sweeps must agree bitwise"
        );

        // The cold run paid for fresh evaluations; the warm run paid for
        // none at all.
        let cold_stats = cold.store.unwrap();
        assert!(cold_stats.misses > 0);
        assert!(cold_stats.entries > 0, "the cold run populates the store");
        assert_eq!(warm.recomputations(), Some(0), "warm sweep recomputed");
        assert_eq!(warm.hit_rate(), Some(1.0));
        assert_eq!(
            warm.store.unwrap().entries,
            0,
            "the warm run adds no records"
        );
    }

    #[test]
    fn mismatched_store_namespace_is_rejected_before_any_store_traffic() {
        let config = MicroNasConfig::tiny_test();
        let store = Arc::new(EvalStore::in_memory(config.store_namespace() ^ 1));
        let err = run_paper_sweep(&config, &SweepScale::tiny(), Some(store.clone()));
        assert!(err.is_err(), "a foreign-namespace store must be refused");
        assert!(
            store.is_empty() && store.stats().hits == 0 && store.stats().misses == 0,
            "the mismatched store must never be read or written"
        );
    }

    #[test]
    fn fingerprint_reacts_to_payload_changes() {
        let config = MicroNasConfig::tiny_test();
        let scale = SweepScale::tiny();
        let report = run_paper_sweep(&config, &scale, None).unwrap();
        let fp = report.identity_fingerprint();

        let mut tweaked = report.clone();
        tweaked.fig2a[0].taus[0] += 1e-9;
        assert_ne!(fp, tweaked.identity_fingerprint());

        // Wall-clock time is explicitly NOT part of the identity.
        let mut slower = report;
        slower.wall_seconds += 100.0;
        assert_eq!(fp, slower.identity_fingerprint());
    }

    #[test]
    fn scales_are_well_formed() {
        for scale in [SweepScale::paper(), SweepScale::fast(), SweepScale::tiny()] {
            assert!(scale.correlation_sample > 0);
            assert!(scale.spectrum_indices > 0);
            assert!(!scale.fig2b_batch_sizes.is_empty());
            assert!(scale.fig2b_seeds > 0);
            assert!(!scale.latency_weights.is_empty());
        }
    }
}
