use crate::{MicroNasConfig, Result};
use micronas_datasets::DatasetKind;
use micronas_nasbench::SurrogateBenchmark;
use micronas_proxies::{correlation::kendall_tau, NtkConfig, NtkEvaluator};
use micronas_searchspace::SearchSpace;
use micronas_store::{EvalKey, EvalRecord, EvalStore, NtkSpectrumRecord};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Kendall-τ of the NTK condition index K_i against accuracy, for one dataset
/// (one line of Fig. 2a).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2aSeries {
    /// Dataset of this series.
    pub dataset: String,
    /// τ values indexed by `i - 1` for K_i, i = 1..=max_index.
    pub taus: Vec<f64>,
    /// Number of architectures sampled.
    pub sample_size: usize,
}

impl Fig2aSeries {
    /// The condition index with the strongest (most positive) correlation.
    pub fn best_index(&self) -> usize {
        self.taus
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("taus are finite"))
            .map(|(i, _)| i + 1)
            .unwrap_or(1)
    }
}

/// Result of the Fig. 2b batch-size sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Fig2bResult {
    /// Batch sizes evaluated (the paper sweeps 4–128 on a log scale).
    pub batch_sizes: Vec<usize>,
    /// Kendall-τ per seed: `taus_per_seed[seed][batch_index]`.
    pub taus_per_seed: Vec<Vec<f64>>,
    /// Average τ across seeds per batch size.
    pub average: Vec<f64>,
    /// Number of architectures sampled.
    pub sample_size: usize,
}

impl Fig2bResult {
    /// The smallest batch size whose average τ is within `tolerance` of the
    /// best average τ — the "knee" the paper uses to justify batch 32.
    pub fn knee_batch_size(&self, tolerance: f64) -> usize {
        let best = self
            .average
            .iter()
            .cloned()
            .fold(f64::NEG_INFINITY, f64::max);
        for (i, &tau) in self.average.iter().enumerate() {
            if tau >= best - tolerance {
                return self.batch_sizes[i];
            }
        }
        *self
            .batch_sizes
            .last()
            .expect("batch size list is non-empty")
    }
}

/// Samples `sample_size` architectures evenly across the space, restricted to
/// "trainable" ones (connected cells), matching how ranking-correlation
/// studies on NAS-Bench-201 filter degenerate architectures.
pub(crate) fn sample_architectures(space: &SearchSpace, sample_size: usize) -> Vec<usize> {
    // Roughly a quarter of the cells are disconnected, so stride through the
    // space densely enough that the connected filter still yields the
    // requested sample size.
    let stride = (space.len() / (sample_size.max(1) * 4)).max(1);
    (0..space.len())
        .step_by(stride)
        .filter(|&i| {
            space
                .cell(i)
                .map(|c| c.has_input_output_path())
                .unwrap_or(false)
        })
        .take(sample_size)
        .collect()
}

/// Reproduces Fig. 2a: Kendall-τ between the (negated) NTK condition index
/// K_i and surrogate accuracy, for i = 1..=`max_index`, on all three datasets.
///
/// # Errors
///
/// Propagates proxy evaluation failures.
pub fn run_fig2a(
    config: &MicroNasConfig,
    sample_size: usize,
    max_index: usize,
) -> Result<Vec<Fig2aSeries>> {
    run_fig2a_in(config, sample_size, max_index, None)
}

/// [`run_fig2a`] against an optional shared evaluation store. This is the
/// single implementation behind both the public function and the paper-grid
/// sweep driver, so the two can never diverge: NTK spectra are always
/// computed on the cell's canonical form (via [`ntk_spectrum_cached`]) and
/// reused from the store when one is attached.
pub(crate) fn run_fig2a_in(
    config: &MicroNasConfig,
    sample_size: usize,
    max_index: usize,
    store: Option<&EvalStore>,
) -> Result<Vec<Fig2aSeries>> {
    let space = SearchSpace::nas_bench_201();
    let bench = SurrogateBenchmark::new(config.seed);
    let indices = sample_architectures(&space, sample_size);

    let mut out = Vec::new();
    for dataset in DatasetKind::ALL {
        let mut ntk_config = config.ntk;
        ntk_config.max_condition_index = max_index;
        let evaluator = NtkEvaluator::new(ntk_config);

        let rows: Vec<Result<(Vec<f64>, f64)>> = indices
            .par_iter()
            .map(|&idx| {
                let arch = space.architecture(idx).expect("sampled index is valid");
                let rec = ntk_spectrum_cached(
                    store,
                    &evaluator,
                    *arch.cell(),
                    dataset,
                    config.seed,
                    max_index,
                )?;
                let accuracy = bench.query(&arch, dataset).test_accuracy;
                Ok((rec.condition_indices, accuracy))
            })
            .collect();
        let rows = rows.into_iter().collect::<Result<Vec<_>>>()?;

        let accuracies: Vec<f64> = rows.iter().map(|(_, a)| *a).collect();
        let mut taus = Vec::with_capacity(max_index);
        for i in 0..max_index {
            // Smaller condition number ⇒ more trainable, so correlate the
            // negated index with accuracy.
            let neg_k: Vec<f64> = rows.iter().map(|(k, _)| -k[i]).collect();
            taus.push(kendall_tau(&neg_k, &accuracies));
        }
        out.push(Fig2aSeries {
            dataset: dataset.name().to_string(),
            taus,
            sample_size: rows.len(),
        });
    }
    Ok(out)
}

/// Fetches (or computes and stores) the NTK spectrum of a cell. The proxy
/// runs on the canonical orbit representative, so the result is a pure
/// function of the store key - bitwise identical with or without a store. A
/// resident record shorter than `needed` counts as a miss and is recomputed
/// (and replaced with the longer spectrum).
pub(crate) fn ntk_spectrum_cached(
    store: Option<&EvalStore>,
    evaluator: &NtkEvaluator,
    cell: micronas_searchspace::CellTopology,
    dataset: DatasetKind,
    seed: u64,
    needed: usize,
) -> Result<NtkSpectrumRecord> {
    let canonical = cell.canonical_form();
    let batch = u16::try_from(evaluator.config().batch_size).map_err(|_| {
        crate::MicroNasError::InvalidConfig(format!(
            "NTK batch size {} exceeds the store key range",
            evaluator.config().batch_size
        ))
    })?;
    let key = EvalKey::ntk_spectrum(&canonical, dataset, seed, batch);
    if let Some(store) = store {
        let usable = store.get_matching(&key, |r| {
            r.as_ntk_spectrum()
                .is_some_and(|s| s.condition_indices.len() >= needed)
        });
        if let Some(EvalRecord::NtkSpectrum(rec)) = usable {
            return Ok(rec);
        }
    }
    let report = evaluator.evaluate(canonical, dataset, seed)?;
    let record = NtkSpectrumRecord {
        condition_number: report.condition_number,
        condition_indices: report.condition_indices,
    };
    if let Some(store) = store {
        store
            .insert(key, EvalRecord::NtkSpectrum(record.clone()))
            .map_err(crate::MicroNasError::from)?;
    }
    Ok(record)
}

/// Reproduces Fig. 2b: Kendall-τ between the (negated) NTK condition number
/// and surrogate accuracy as a function of the NTK batch size, repeated for
/// `seeds` independent seeds plus their average.
///
/// # Errors
///
/// Propagates proxy evaluation failures.
pub fn run_fig2b(
    config: &MicroNasConfig,
    sample_size: usize,
    batch_sizes: &[usize],
    seeds: usize,
) -> Result<Fig2bResult> {
    run_fig2b_in(
        config,
        sample_size,
        batch_sizes,
        seeds,
        config.ntk.max_condition_index,
        None,
    )
}

/// [`run_fig2b`] against an optional shared evaluation store. Spectrum
/// records are computed with `spectrum_indices` condition indices so they
/// satisfy Fig. 2a requests on the same store (the sweep driver passes the
/// same value to both experiments; only `K_1` is read here).
pub(crate) fn run_fig2b_in(
    config: &MicroNasConfig,
    sample_size: usize,
    batch_sizes: &[usize],
    seeds: usize,
    spectrum_indices: usize,
    store: Option<&EvalStore>,
) -> Result<Fig2bResult> {
    let space = SearchSpace::nas_bench_201();
    let bench = SurrogateBenchmark::new(config.seed);
    let indices = sample_architectures(&space, sample_size);
    let dataset = DatasetKind::Cifar10;
    let accuracies: Vec<f64> = indices
        .iter()
        .map(|&idx| {
            bench
                .query(&space.architecture(idx).expect("valid index"), dataset)
                .test_accuracy
        })
        .collect();

    let mut taus_per_seed = Vec::with_capacity(seeds);
    for seed in 0..seeds {
        let eval_seed = config.seed.wrapping_add(seed as u64 * 977);
        let mut taus = Vec::with_capacity(batch_sizes.len());
        for &batch in batch_sizes {
            let ntk_config = NtkConfig {
                batch_size: batch,
                max_condition_index: spectrum_indices,
                ..config.ntk
            };
            let evaluator = NtkEvaluator::new(ntk_config);
            let neg_k: Vec<Result<f64>> = indices
                .par_iter()
                .map(|&idx| {
                    let arch = space.architecture(idx).expect("valid index");
                    let rec = ntk_spectrum_cached(
                        store,
                        &evaluator,
                        *arch.cell(),
                        dataset,
                        eval_seed,
                        1,
                    )?;
                    Ok(-rec.condition_number)
                })
                .collect();
            let neg_k = neg_k.into_iter().collect::<Result<Vec<_>>>()?;
            taus.push(kendall_tau(&neg_k, &accuracies));
        }
        taus_per_seed.push(taus);
    }

    let average = (0..batch_sizes.len())
        .map(|i| taus_per_seed.iter().map(|s| s[i]).sum::<f64>() / seeds.max(1) as f64)
        .collect();
    Ok(Fig2bResult {
        batch_sizes: batch_sizes.to_vec(),
        taus_per_seed,
        average,
        sample_size: indices.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2a_produces_positive_correlations_for_low_indices() {
        let config = MicroNasConfig::small();
        let series = run_fig2a(&config, 48, 4).unwrap();
        assert_eq!(series.len(), 3);
        let mut strong_datasets = 0;
        for s in &series {
            assert_eq!(s.taus.len(), 4);
            assert!(s.sample_size >= 40);
            // The classic condition number K_1 should carry positive ranking
            // signal on every dataset. At this reduced test scale the
            // correlations are weaker than the paper's full-scale Fig. 2a;
            // the benchmark harness checks the paper-level values.
            assert!(
                s.taus[0] > 0.05,
                "dataset {} K_1 correlation too weak: {:?}",
                s.dataset,
                s.taus
            );
            if s.taus[0] > 0.25 {
                strong_datasets += 1;
            }
            assert!(s.best_index() >= 1 && s.best_index() <= 4);
        }
        assert!(
            strong_datasets >= 1,
            "at least one dataset should show a clear positive correlation: {series:?}"
        );
    }

    #[test]
    fn fig2b_batch_sweep_has_stable_plateau() {
        let config = MicroNasConfig::small();
        let result = run_fig2b(&config, 16, &[4, 8], 2).unwrap();
        assert_eq!(result.batch_sizes, vec![4, 8]);
        assert_eq!(result.taus_per_seed.len(), 2);
        assert_eq!(result.average.len(), 2);
        let knee = result.knee_batch_size(0.05);
        assert!(knee == 4 || knee == 8);
    }

    #[test]
    fn architecture_sampling_filters_disconnected_cells() {
        let space = SearchSpace::nas_bench_201();
        let sample = sample_architectures(&space, 50);
        assert!(!sample.is_empty());
        for idx in sample {
            assert!(space.cell(idx).unwrap().has_input_output_path());
        }
    }
}
