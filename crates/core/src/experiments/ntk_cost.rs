use crate::{MicroNasConfig, Result};
use micronas_datasets::DatasetKind;
use micronas_proxies::{NtkConfig, NtkEvaluator};
use micronas_searchspace::SearchSpace;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Wall-clock cost of one NTK evaluation at a given batch size
/// (the cost half of the paper's Fig. 2b argument: beyond batch 32 the
/// correlation stops improving but the cost keeps growing).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NtkCostPoint {
    /// NTK batch size.
    pub batch_size: usize,
    /// Average wall-clock seconds per architecture evaluation.
    pub seconds_per_architecture: f64,
    /// Number of architectures timed.
    pub architectures: usize,
}

/// Measures the per-architecture NTK evaluation cost across batch sizes.
///
/// # Errors
///
/// Propagates proxy evaluation failures.
pub fn run_ntk_cost(
    config: &MicroNasConfig,
    batch_sizes: &[usize],
    architectures: usize,
) -> Result<Vec<NtkCostPoint>> {
    let space = SearchSpace::nas_bench_201();
    let stride = (space.len() / architectures.max(1)).max(1);
    let sample: Vec<usize> = (0..space.len())
        .step_by(stride)
        .filter(|&i| {
            space
                .cell(i)
                .map(|c| c.has_input_output_path())
                .unwrap_or(false)
        })
        .take(architectures)
        .collect();

    let mut out = Vec::with_capacity(batch_sizes.len());
    for &batch in batch_sizes {
        let evaluator = NtkEvaluator::new(NtkConfig {
            batch_size: batch,
            ..config.ntk
        });
        let start = Instant::now();
        for &idx in &sample {
            let cell = space.cell(idx)?;
            evaluator.evaluate(cell, DatasetKind::Cifar10, config.seed)?;
        }
        let elapsed = start.elapsed().as_secs_f64();
        out.push(NtkCostPoint {
            batch_size: batch,
            seconds_per_architecture: elapsed / sample.len().max(1) as f64,
            architectures: sample.len(),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ntk_cost_grows_with_batch_size() {
        let config = MicroNasConfig::tiny_test();
        let points = run_ntk_cost(&config, &[2, 8], 3).unwrap();
        assert_eq!(points.len(), 2);
        assert!(points[0].seconds_per_architecture > 0.0);
        // Larger batches mean more per-sample gradient passes, so the cost
        // must increase with the batch size (this is the paper's argument for
        // stopping at batch 32).
        assert!(points[1].seconds_per_architecture > points[0].seconds_per_architecture);
        assert_eq!(points[0].architectures, 3);
    }
}
