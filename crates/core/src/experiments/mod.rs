//! The experiment harness: one function per table / figure of the paper.
//!
//! Every benchmark binary and example calls into this module, so the exact
//! same code path produces the numbers recorded in `EXPERIMENTS.md`, the
//! Criterion benches and the runnable examples. Each experiment takes its
//! scale parameters explicitly so tests can run reduced versions while the
//! benchmark harness runs the paper-scale ones.
//!
//! | Function | Reproduces |
//! |----------|------------|
//! | [`run_table1`] | Table I (CIFAR-10 comparison of µNAS / TE-NAS / MicroNAS) |
//! | [`run_fig2a`] | Fig. 2a (Kendall-τ vs. NTK condition index K_i, three datasets) |
//! | [`run_fig2b`] | Fig. 2b (Kendall-τ vs. NTK batch size, three seeds + average) |
//! | [`run_latency_sweep`] | §III latency-guided sweep (1.59×–3.23× speed-up band) |
//! | [`run_search_efficiency`] | §III / Table I search-time comparison (≈1104×) |
//! | [`run_flops_vs_latency`] | §III FLOPs-guided vs. latency-guided comparison |
//! | [`run_memory_guided`] | §IV future-work extension: peak-memory-guided search |
//! | [`run_ntk_cost`] | §II-A.1 cost argument: NTK wall-clock vs. batch size |
//! | [`run_paper_sweep`] | The whole grid above against one shared evaluation store |

mod efficiency;
mod fig2;
mod ntk_cost;
mod sweep;
mod sweeps;
mod table1;

pub use efficiency::{run_search_efficiency, EfficiencyReport};
pub use fig2::{run_fig2a, run_fig2b, Fig2aSeries, Fig2bResult};
pub use ntk_cost::{run_ntk_cost, NtkCostPoint};
pub use sweep::{run_paper_sweep, run_paper_sweep_traced, SweepReport, SweepScale};
pub use sweeps::{
    run_flops_vs_latency, run_latency_sweep, run_memory_guided, GuidanceComparison, SweepPoint,
};
pub use table1::{run_table1, Table1Row};
