use std::fmt;

/// Errors produced by the MicroNAS search framework.
#[derive(Debug, Clone, PartialEq)]
pub enum MicroNasError {
    /// A zero-cost proxy evaluation failed.
    Proxy(String),
    /// A search-space operation failed (invalid prune, bad index, ...).
    SearchSpace(String),
    /// A configuration value was invalid.
    InvalidConfig(String),
    /// The shared evaluation store failed (log I/O, corrupt record, ...).
    Store(String),
    /// The search could not find any architecture satisfying the constraints.
    NoFeasibleArchitecture,
}

impl fmt::Display for MicroNasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MicroNasError::Proxy(msg) => write!(f, "proxy evaluation failed: {msg}"),
            MicroNasError::SearchSpace(msg) => write!(f, "search space operation failed: {msg}"),
            MicroNasError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            MicroNasError::Store(msg) => write!(f, "evaluation store failed: {msg}"),
            MicroNasError::NoFeasibleArchitecture => {
                write!(f, "no architecture satisfies the hardware constraints")
            }
        }
    }
}

impl std::error::Error for MicroNasError {}

impl From<micronas_proxies::ProxyError> for MicroNasError {
    fn from(e: micronas_proxies::ProxyError) -> Self {
        MicroNasError::Proxy(e.to_string())
    }
}

impl From<micronas_searchspace::SearchSpaceError> for MicroNasError {
    fn from(e: micronas_searchspace::SearchSpaceError) -> Self {
        MicroNasError::SearchSpace(e.to_string())
    }
}

impl From<micronas_store::StoreError> for MicroNasError {
    fn from(e: micronas_store::StoreError) -> Self {
        MicroNasError::Store(e.to_string())
    }
}

impl From<micronas_nn::NnError> for MicroNasError {
    fn from(e: micronas_nn::NnError) -> Self {
        MicroNasError::Proxy(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: MicroNasError = micronas_proxies::ProxyError::InvalidConfig("x".into()).into();
        assert!(e.to_string().contains("proxy"));
        let e: MicroNasError = micronas_searchspace::SearchSpaceError::InvalidEdge(9).into();
        assert!(e.to_string().contains("search space"));
        assert!(MicroNasError::NoFeasibleArchitecture
            .to_string()
            .contains("constraints"));
        let e: MicroNasError = micronas_store::StoreError::BadMagic.into();
        assert!(e.to_string().contains("store"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MicroNasError>();
    }
}
