use crate::{CandidateEvaluation, SearchCost};
use micronas_searchspace::Architecture;
use serde::{Deserialize, Serialize};

/// The result of one architecture search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOutcome {
    /// The discovered architecture.
    pub best: Architecture,
    /// Its cached evaluation (zero-cost metrics + hardware indicators).
    pub evaluation: CandidateEvaluation,
    /// The surrogate "trained" accuracy of the discovered architecture
    /// (reported after the search, exactly as the paper trains only the
    /// final model).
    pub test_accuracy: f64,
    /// Cost accounting for the search.
    pub cost: SearchCost,
    /// Name of the algorithm that produced this outcome.
    pub algorithm: String,
    /// Objective score trajectory over the search (one entry per decision
    /// step; contents depend on the algorithm).
    pub history: Vec<f64>,
}

impl SearchOutcome {
    /// Latency speed-up of this outcome relative to a reference latency in
    /// milliseconds (e.g. the TE-NAS baseline's model).
    pub fn speedup_vs(&self, reference_latency_ms: f64) -> f64 {
        reference_latency_ms / self.evaluation.hardware.latency_ms.max(1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use micronas_hw::HardwareIndicators;
    use micronas_proxies::ZeroCostMetrics;
    use micronas_searchspace::SearchSpace;

    fn sample_outcome(latency_ms: f64) -> SearchOutcome {
        let space = SearchSpace::nas_bench_201();
        let arch = space.architecture(77).unwrap();
        SearchOutcome {
            best: arch,
            evaluation: CandidateEvaluation {
                arch_index: 77,
                metrics: ZeroCostMetrics {
                    ntk_condition: 10.0,
                    linear_regions: 20,
                    trainability: -2.3,
                    expressivity: 3.0,
                }
                .metric_set(),
                hardware: HardwareIndicators {
                    flops_m: 60.0,
                    macs_m: 30.0,
                    params_m: 0.4,
                    latency_ms,
                    peak_sram_kib: 128.0,
                    flash_kib: 400.0,
                },
                feasible: true,
            },
            test_accuracy: 93.0,
            cost: SearchCost::default(),
            algorithm: "test".to_string(),
            history: vec![1.0, 2.0],
        }
    }

    #[test]
    fn speedup_is_reference_over_own_latency() {
        let outcome = sample_outcome(250.0);
        assert!((outcome.speedup_vs(750.0) - 3.0).abs() < 1e-12);
        assert!((outcome.speedup_vs(250.0) - 1.0).abs() < 1e-12);
    }
}
