//! Fused convolution kernels for the graph compiler.
//!
//! These kernels are what the fusing graph compiler lowers its fused ops
//! to. They deliberately bypass the per-op dispatch the eager path goes
//! through:
//!
//! * [`conv2d_relu_gemm`] applies the ReLU *inside* the im2col gather, so
//!   `conv(relu(pre), w)` neither materialises the activation nor pays a
//!   separate elementwise pass — and always runs the GEMM schedule
//!   (no direct-kernel dispatch), which is why its results can differ in
//!   the last bit from the eager path on tiny geometries.
//! * [`conv2d_backward_fused`] computes one conv edge's entire backward —
//!   per-sample weight gradients, input gradient, and the ReLU mask — from
//!   **one** ReLU-fused lowering per sample, where the eager path lowers
//!   the activation once for the weight gradient and stages separate
//!   column gradients for the input gradient.
//!
//! Divergence from the eager schedule is the whole point: callers (the
//! fusing compiler) fold their identity into the evaluation-store
//! namespace, so fused numerics never mix with paper-pinned logs.

use crate::conv::{check_backward_weight_args, check_conv_args, col2im_add, transpose_into};
use crate::linalg::{gemm_nn, gemm_tn};
use crate::{Conv2dSpec, Result, Shape, Tensor, TensorError, Workspace};

/// [`crate::conv2d`]'s im2col gather with the ReLU epilogue folded in:
/// every element lands as `max(v, 0)`. Structure mirrors `conv::im2col`
/// (every element of `col` is written).
#[allow(clippy::too_many_arguments)]
fn im2col_relu(
    image: &[f32],
    c_in: usize,
    h: usize,
    w: usize,
    spec: Conv2dSpec,
    oh: usize,
    ow: usize,
    col: &mut [f32],
) {
    let k = spec.kernel;
    let ohow = oh * ow;
    debug_assert_eq!(col.len(), c_in * k * k * ohow);
    micronas_telemetry::counter_add(
        "tensor.im2col.bytes",
        (c_in * k * k * ohow * std::mem::size_of::<f32>()) as u64,
    );
    let relu = |v: f32| if v > 0.0 { v } else { 0.0 };
    for c in 0..c_in {
        let plane = &image[c * h * w..(c + 1) * h * w];
        for ky in 0..k {
            for kx in 0..k {
                let row = (c * k + ky) * k + kx;
                let dst = &mut col[row * ohow..(row + 1) * ohow];
                for oy in 0..oh {
                    let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                    let dst_row = &mut dst[oy * ow..(oy + 1) * ow];
                    if iy < 0 || iy >= h as isize {
                        dst_row.fill(0.0);
                        continue;
                    }
                    let src_row = &plane[iy as usize * w..(iy as usize + 1) * w];
                    if spec.stride == 1 {
                        let shift = kx as isize - spec.padding as isize;
                        let ox_lo = (-shift).clamp(0, ow as isize) as usize;
                        let ox_hi = (w as isize - shift).clamp(0, ow as isize) as usize;
                        dst_row[..ox_lo].fill(0.0);
                        dst_row[ox_hi..].fill(0.0);
                        if ox_lo < ox_hi {
                            let src_lo = (ox_lo as isize + shift) as usize;
                            for (d, &s) in dst_row[ox_lo..ox_hi]
                                .iter_mut()
                                .zip(&src_row[src_lo..src_lo + (ox_hi - ox_lo)])
                            {
                                *d = relu(s);
                            }
                        }
                    } else {
                        for (ox, out) in dst_row.iter_mut().enumerate() {
                            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                            *out = if ix < 0 || ix >= w as isize {
                                0.0
                            } else {
                                relu(src_row[ix as usize])
                            };
                        }
                    }
                }
            }
        }
    }
}

/// Fused `conv2d(relu(pre), weight)`: the activation is applied during the
/// im2col gather and the product always runs on the GEMM schedule.
///
/// The output tensor is drawn from the workspace pool (recycle it when
/// done, like [`crate::conv2d_pooled`]).
///
/// # Errors
///
/// Same shape conditions as [`crate::conv2d`].
pub fn conv2d_relu_gemm(
    pre: &Tensor,
    weight: &Tensor,
    spec: Conv2dSpec,
    workspace: &mut Workspace,
) -> Result<Tensor> {
    let (n, c_in, h, w, c_out, k) = check_conv_args(pre, weight, spec)?;
    micronas_telemetry::counter_add("tensor.fused.calls", 1);
    let (oh, ow) = spec.output_hw(h, w);
    let ohow = oh * ow;
    let ckk = c_in * k * k;
    let in_stride = c_in * h * w;
    let out_stride = c_out * ohow;
    let w_mat = weight.data();
    // Unspecified contents are fine: accumulate=false GEMMs clear the
    // destination themselves.
    let mut out = Tensor::from_vec(
        Shape::nchw(n, c_out, oh, ow),
        workspace.take(n * out_stride),
    )
    .expect("length matches shape by construction");
    {
        let out_data = out.data_mut();
        let col = workspace.col_buffer(ckk * ohow);
        for b in 0..n {
            let image = &pre.data()[b * in_stride..(b + 1) * in_stride];
            im2col_relu(image, c_in, h, w, spec, oh, ow, col);
            let dst = &mut out_data[b * out_stride..(b + 1) * out_stride];
            gemm_nn(c_out, ckk, ohow, w_mat, col, dst, false);
        }
    }
    Ok(out)
}

/// Fused backward of one `conv(relu(pre), w)` edge: writes each sample's
/// flattened weight gradient into `matrix[b * row_stride + offset ..]`
/// (like [`crate::conv2d_backward_weight_per_sample_into`]) and returns the
/// ReLU-masked input gradient `∂L/∂pre`, all from a single ReLU-fused
/// im2col lowering per sample.
///
/// Per sample, the shared column matrix first feeds the transposed
/// weight-gradient GEMM, is then overwritten with the column *gradients*
/// (`Wᵀ · g`), scattered back through `col2im`, and finally masked by the
/// pre-activation sign. The returned gradient tensor is drawn from the
/// workspace pool.
///
/// # Errors
///
/// Same shape conditions as
/// [`crate::conv2d_backward_weight_per_sample_into`], plus a weight/spec
/// consistency check.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_backward_fused(
    pre: &Tensor,
    grad_out: &Tensor,
    weight: &Tensor,
    c_out: usize,
    spec: Conv2dSpec,
    workspace: &mut Workspace,
    matrix: &mut [f32],
    row_stride: usize,
    offset: usize,
) -> Result<Tensor> {
    let (n, c_in, h, w, oh, ow) = check_backward_weight_args(pre, grad_out, c_out, spec)?;
    let k = spec.kernel;
    if weight.shape().dims() != [c_out, c_in, k, k] {
        return Err(TensorError::IncompatibleShapes {
            op: "conv2d_backward_fused weight",
            lhs: weight.shape().dims().to_vec(),
            rhs: vec![c_out, c_in, k, k],
        });
    }
    let per_sample = c_out * c_in * k * k;
    if n > 0 && matrix.len() < (n - 1) * row_stride + offset + per_sample {
        return Err(TensorError::InvalidArgument(format!(
            "per-sample gradient output buffer too short: {} < {}",
            matrix.len(),
            (n - 1) * row_stride + offset + per_sample
        )));
    }
    micronas_telemetry::counter_add("tensor.fused.calls", 1);
    let ohow = oh * ow;
    let ckk = c_in * k * k;
    let in_stride = c_in * h * w;
    let out_stride = c_out * ohow;
    let w_mat = weight.data();
    let mut grad_in = Tensor::from_vec(pre.shape().clone(), workspace.take_zeroed(pre.numel()))
        .expect("length matches shape by construction");
    {
        let gi = grad_in.data_mut();
        let (col, aux) = workspace.col_and_aux(ckk * ohow, (ohow + ckk) * c_out);
        let (g_t, w_t) = aux.split_at_mut(ohow * c_out);
        for b in 0..n {
            let image = &pre.data()[b * in_stride..(b + 1) * in_stride];
            let g = &grad_out.data()[b * out_stride..(b + 1) * out_stride];
            // Weight gradient in the transposed narrow shape, off the
            // ReLU-fused lowering.
            im2col_relu(image, c_in, h, w, spec, oh, ow, col);
            transpose_into(g, c_out, ohow, g_t);
            gemm_nn(ckk, ohow, c_out, col, g_t, w_t, false);
            let dst = &mut matrix[b * row_stride + offset..b * row_stride + offset + per_sample];
            transpose_into(w_t, ckk, c_out, dst);
            // The activation columns are dead now — reuse `col` for the
            // column gradients, scatter them back, and mask in place.
            gemm_tn(ckk, c_out, ohow, w_mat, g, col, false);
            let dst = &mut gi[b * in_stride..(b + 1) * in_stride];
            col2im_add(col, c_in, h, w, spec, oh, ow, dst);
            for (gv, &x) in dst.iter_mut().zip(image) {
                if x <= 0.0 {
                    *gv = 0.0;
                }
            }
        }
    }
    Ok(grad_in)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{
        conv2d_backward_input_with, conv2d_backward_weight_per_sample_with, conv2d_with,
        DeterministicRng,
    };

    fn random_tensor(shape: Shape, seed: u64) -> Tensor {
        let mut rng = DeterministicRng::new(seed);
        let data = (0..shape.numel()).map(|_| rng.next_f32() - 0.5).collect();
        Tensor::from_vec(shape, data).unwrap()
    }

    fn relu(t: &Tensor) -> Tensor {
        t.map(|v| if v > 0.0 { v } else { 0.0 })
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32, what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length mismatch");
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!(
                (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs())),
                "{what}: element {i} differs: {x} vs {y}"
            );
        }
    }

    #[test]
    fn fused_forward_matches_relu_then_conv() {
        for (shape, c_out, spec) in [
            (Shape::nchw(2, 3, 8, 8), 5, Conv2dSpec::new(3, 1, 1)),
            (Shape::nchw(2, 4, 6, 6), 4, Conv2dSpec::new(1, 1, 0)),
            (Shape::nchw(1, 2, 9, 9), 3, Conv2dSpec::new(3, 2, 1)),
        ] {
            let c_in = shape.dims()[1];
            let pre = random_tensor(shape.clone(), 41);
            let weight = random_tensor(Shape::nchw(c_out, c_in, spec.kernel, spec.kernel), 42);
            let mut ws = Workspace::new();
            let fused = conv2d_relu_gemm(&pre, &weight, spec, &mut ws).unwrap();
            let reference = conv2d_with(&relu(&pre), &weight, spec, &mut ws).unwrap();
            assert_eq!(fused.shape().dims(), reference.shape().dims());
            assert_close(fused.data(), reference.data(), 1e-5, "fused forward");
        }
    }

    #[test]
    fn fused_backward_matches_separate_kernels() {
        for (shape, c_out, spec) in [
            (Shape::nchw(3, 4, 8, 8), 4, Conv2dSpec::new(3, 1, 1)),
            (Shape::nchw(2, 3, 6, 6), 3, Conv2dSpec::new(1, 1, 0)),
        ] {
            let (n, c_in) = (shape.dims()[0], shape.dims()[1]);
            let pre = random_tensor(shape.clone(), 7);
            let weight = random_tensor(Shape::nchw(c_out, c_in, spec.kernel, spec.kernel), 8);
            let (oh, ow) = spec.output_hw(shape.dims()[2], shape.dims()[3]);
            let grad_out = random_tensor(Shape::nchw(n, c_out, oh, ow), 9);
            let per_sample = c_out * c_in * spec.kernel * spec.kernel;

            let mut ws = Workspace::new();
            let mut matrix = vec![0.0f32; n * per_sample];
            let grad_in = conv2d_backward_fused(
                &pre,
                &grad_out,
                &weight,
                c_out,
                spec,
                &mut ws,
                &mut matrix,
                per_sample,
                0,
            )
            .unwrap();

            let act = relu(&pre);
            let expect_w =
                conv2d_backward_weight_per_sample_with(&act, &grad_out, c_out, spec, &mut ws)
                    .unwrap();
            let mut expect_in =
                conv2d_backward_input_with(&weight, &grad_out, pre.shape(), spec, &mut ws).unwrap();
            for (g, &x) in expect_in.data_mut().iter_mut().zip(pre.data()) {
                if x <= 0.0 {
                    *g = 0.0;
                }
            }

            assert_close(&matrix, expect_w.data(), 1e-5, "fused weight grads");
            assert_close(grad_in.data(), expect_in.data(), 1e-5, "fused input grad");
        }
    }

    #[test]
    fn fused_backward_respects_stride_and_offset() {
        let shape = Shape::nchw(2, 2, 5, 5);
        let spec = Conv2dSpec::new(3, 1, 1);
        let c_out = 2;
        let pre = random_tensor(shape.clone(), 3);
        let weight = random_tensor(Shape::nchw(c_out, 2, 3, 3), 4);
        let grad_out = random_tensor(Shape::nchw(2, c_out, 5, 5), 5);
        let per_sample = c_out * 2 * 9;
        let (row_stride, offset) = (per_sample + 11, 7);
        let mut matrix = vec![f32::NAN; 2 * row_stride];
        let mut ws = Workspace::new();
        conv2d_backward_fused(
            &pre,
            &grad_out,
            &weight,
            c_out,
            spec,
            &mut ws,
            &mut matrix,
            row_stride,
            offset,
        )
        .unwrap();
        let mut packed = vec![0.0f32; 2 * per_sample];
        conv2d_backward_fused(
            &pre,
            &grad_out,
            &weight,
            c_out,
            spec,
            &mut ws,
            &mut packed,
            per_sample,
            0,
        )
        .unwrap();
        for b in 0..2 {
            let strided = &matrix[b * row_stride + offset..b * row_stride + offset + per_sample];
            let dense = &packed[b * per_sample..(b + 1) * per_sample];
            assert_eq!(strided, dense, "sample {b} landed in the wrong slice");
        }
        // Untouched lanes stay untouched.
        assert!(matrix[0..offset].iter().all(|v| v.is_nan()));
    }
}
