//! Average pooling and global average pooling with their backward passes.
//!
//! NAS-Bench-201 cells use 3×3 average pooling (stride 1, padding 1, with
//! count-include-pad semantics matching the reference implementation) and a
//! global average pool feeding the classifier head.

use crate::{Result, Shape, Tensor, TensorError, Workspace};

/// Average pooling over `kernel`×`kernel` windows with the given stride and
/// padding. Padding contributes zeros and *is* counted in the divisor
/// (count-include-pad), matching the NAS-Bench-201 reference.
///
/// # Errors
///
/// Returns an error if the input is not rank 4 or `kernel`/`stride` is zero.
pub fn avg_pool2d(input: &Tensor, kernel: usize, stride: usize, padding: usize) -> Result<Tensor> {
    avg_pool2d_pooled(input, kernel, stride, padding, &mut Workspace::default())
}

/// [`avg_pool2d`] drawing the output tensor from the workspace recycling
/// pool (see [`crate::conv2d_pooled`]); numerically identical.
///
/// # Errors
///
/// Same conditions as [`avg_pool2d`].
pub fn avg_pool2d_pooled(
    input: &Tensor,
    kernel: usize,
    stride: usize,
    padding: usize,
    workspace: &mut Workspace,
) -> Result<Tensor> {
    if kernel == 0 || stride == 0 {
        return Err(TensorError::InvalidArgument(
            "kernel and stride must be positive".into(),
        ));
    }
    let d = input.shape().dims();
    if d.len() != 4 {
        return Err(TensorError::RankMismatch {
            op: "avg_pool2d",
            expected: 4,
            actual: d.len(),
        });
    }
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    let oh = (h + 2 * padding).saturating_sub(kernel) / stride + 1;
    let ow = (w + 2 * padding).saturating_sub(kernel) / stride + 1;
    let denom = (kernel * kernel) as f32;
    let out_shape = Shape::nchw(n, c, oh, ow);
    // Every output row is filled before use, so an unspecified-content
    // pooled buffer suffices; the per-row scratch comes from the auxiliary
    // slot so the hot path allocates nothing.
    let mut out_buf = workspace.take(n * c * oh * ow);
    let row_sums = workspace.aux_buffer(h * ow);
    // Separable two-pass windowed sum over plane slices: a horizontal pass
    // (per input row) then a vertical pass, instead of a k×k gather with
    // per-element index arithmetic per output. Padding contributes zeros and
    // is counted in the divisor (count-include-pad).
    let src = input.data();
    for (plane, out_plane) in src
        .chunks_exact(h * w)
        .zip(out_buf.chunks_exact_mut(oh * ow))
    {
        for y in 0..h {
            let row = &plane[y * w..(y + 1) * w];
            let sums = &mut row_sums[y * ow..(y + 1) * ow];
            for (ox, slot) in sums.iter_mut().enumerate() {
                let start = (ox * stride).saturating_sub(padding).min(w);
                let end = (ox * stride + kernel).saturating_sub(padding).min(w);
                *slot = row[start..end].iter().sum();
            }
        }
        for oy in 0..oh {
            let y_start = (oy * stride).saturating_sub(padding).min(h);
            let y_end = (oy * stride + kernel).saturating_sub(padding).min(h);
            let out_row = &mut out_plane[oy * ow..(oy + 1) * ow];
            out_row.fill(0.0);
            for y in y_start..y_end {
                let sums = &row_sums[y * ow..(y + 1) * ow];
                for (o, &s) in out_row.iter_mut().zip(sums.iter()) {
                    *o += s;
                }
            }
            for o in out_row.iter_mut() {
                *o /= denom;
            }
        }
    }
    Ok(Tensor::from_vec(out_shape, out_buf).expect("length matches shape by construction"))
}

/// Backward pass of [`avg_pool2d`]: distributes the upstream gradient evenly
/// over each pooling window.
///
/// # Errors
///
/// Returns an error if shapes are inconsistent.
pub fn avg_pool2d_backward(
    grad_out: &Tensor,
    input_shape: &Shape,
    kernel: usize,
    stride: usize,
    padding: usize,
) -> Result<Tensor> {
    avg_pool2d_backward_pooled(
        grad_out,
        input_shape,
        kernel,
        stride,
        padding,
        &mut Workspace::default(),
    )
}

/// [`avg_pool2d_backward`] drawing the output tensor from the workspace
/// recycling pool; numerically identical.
///
/// # Errors
///
/// Same conditions as [`avg_pool2d_backward`].
pub fn avg_pool2d_backward_pooled(
    grad_out: &Tensor,
    input_shape: &Shape,
    kernel: usize,
    stride: usize,
    padding: usize,
    workspace: &mut Workspace,
) -> Result<Tensor> {
    let d = input_shape.dims();
    if d.len() != 4 {
        return Err(TensorError::RankMismatch {
            op: "avg_pool2d_backward",
            expected: 4,
            actual: d.len(),
        });
    }
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    let oh = (h + 2 * padding).saturating_sub(kernel) / stride + 1;
    let ow = (w + 2 * padding).saturating_sub(kernel) / stride + 1;
    if grad_out.shape().dims() != [n, c, oh, ow] {
        return Err(TensorError::IncompatibleShapes {
            op: "avg_pool2d_backward",
            lhs: grad_out.shape().dims().to_vec(),
            rhs: vec![n, c, oh, ow],
        });
    }
    let denom = (kernel * kernel) as f32;
    // The horizontal spread accumulates (`+=`), so the buffer must be
    // zeroed; the per-row scratch comes from the auxiliary slot so the hot
    // path allocates nothing.
    let mut in_buf = workspace.take_zeroed(n * c * h * w);
    let rows = workspace.aux_buffer(h * ow);
    // Separable two-pass scatter, mirroring the forward: a vertical spread
    // of grad/denom into per-row accumulators, then a horizontal spread into
    // the input-gradient rows.
    let src = grad_out.data();
    for (grad_plane, in_plane) in src
        .chunks_exact(oh * ow)
        .zip(in_buf.chunks_exact_mut(h * w))
    {
        rows.fill(0.0);
        for oy in 0..oh {
            let y_start = (oy * stride).saturating_sub(padding).min(h);
            let y_end = (oy * stride + kernel).saturating_sub(padding).min(h);
            let g_row = &grad_plane[oy * ow..(oy + 1) * ow];
            for y in y_start..y_end {
                let acc = &mut rows[y * ow..(y + 1) * ow];
                for (a, &g) in acc.iter_mut().zip(g_row.iter()) {
                    *a += g / denom;
                }
            }
        }
        for y in 0..h {
            let acc = &rows[y * ow..(y + 1) * ow];
            let in_row = &mut in_plane[y * w..(y + 1) * w];
            for (ox, &v) in acc.iter().enumerate() {
                let start = (ox * stride).saturating_sub(padding).min(w);
                let end = (ox * stride + kernel).saturating_sub(padding).min(w);
                for slot in &mut in_row[start..end] {
                    *slot += v;
                }
            }
        }
    }
    Ok(
        Tensor::from_vec(input_shape.clone(), in_buf)
            .expect("length matches shape by construction"),
    )
}

/// Global average pooling: reduces `[N, C, H, W]` to `[N, C]`.
///
/// # Errors
///
/// Returns an error if the input is not rank 4.
pub fn global_avg_pool(input: &Tensor) -> Result<Tensor> {
    let d = input.shape().dims();
    if d.len() != 4 {
        return Err(TensorError::RankMismatch {
            op: "global_avg_pool",
            expected: 4,
            actual: d.len(),
        });
    }
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    let denom = (h * w) as f32;
    let hw = h * w;
    let mut out = Tensor::zeros(Shape::d2(n, c));
    let src = input.data();
    let dst = out.data_mut();
    for (plane, o) in src.chunks_exact(hw).zip(dst.iter_mut()) {
        // Sequential accumulation over the plane, matching the reference
        // row-major loop order element for element.
        let mut acc = 0.0f32;
        for &v in plane {
            acc += v;
        }
        *o = acc / denom;
    }
    Ok(out)
}

/// Backward pass of [`global_avg_pool`].
///
/// # Errors
///
/// Returns an error if shapes are inconsistent.
pub fn global_avg_pool_backward(grad_out: &Tensor, input_shape: &Shape) -> Result<Tensor> {
    let d = input_shape.dims();
    if d.len() != 4 {
        return Err(TensorError::RankMismatch {
            op: "global_avg_pool_backward",
            expected: 4,
            actual: d.len(),
        });
    }
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    if grad_out.shape().dims() != [n, c] {
        return Err(TensorError::IncompatibleShapes {
            op: "global_avg_pool_backward",
            lhs: grad_out.shape().dims().to_vec(),
            rhs: vec![n, c],
        });
    }
    let denom = (h * w) as f32;
    let hw = h * w;
    let mut grad_in = Tensor::zeros(input_shape.clone());
    let src = grad_out.data();
    let dst = grad_in.data_mut();
    for (&g, plane) in src.iter().zip(dst.chunks_exact_mut(hw)) {
        plane.fill(g / denom);
    }
    Ok(grad_in)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeterministicRng;

    fn random_tensor(shape: Shape, seed: u64) -> Tensor {
        let mut rng = DeterministicRng::new(seed);
        let data = (0..shape.numel()).map(|_| rng.normal()).collect();
        Tensor::from_vec(shape, data).unwrap()
    }

    #[test]
    fn avg_pool_constant_input_interior() {
        let input = Tensor::ones(Shape::nchw(1, 1, 5, 5));
        let out = avg_pool2d(&input, 3, 1, 1).unwrap();
        assert_eq!(out.shape().dims(), &[1, 1, 5, 5]);
        // Interior windows see 9 ones / 9 = 1.0.
        assert_eq!(out.at4(0, 0, 2, 2), 1.0);
        // Corner windows see 4 ones / 9 (count-include-pad).
        assert!((out.at4(0, 0, 0, 0) - 4.0 / 9.0).abs() < 1e-6);
    }

    #[test]
    fn avg_pool_preserves_mean_without_padding() {
        let input = random_tensor(Shape::nchw(1, 2, 4, 4), 5);
        let out = avg_pool2d(&input, 2, 2, 0).unwrap();
        assert_eq!(out.shape().dims(), &[1, 2, 2, 2]);
        assert!((out.mean() - input.mean()).abs() < 1e-5);
    }

    #[test]
    fn avg_pool_rejects_bad_rank() {
        let input = Tensor::zeros(Shape::d2(3, 3));
        assert!(avg_pool2d(&input, 3, 1, 1).is_err());
        let four = Tensor::zeros(Shape::nchw(1, 1, 3, 3));
        assert!(avg_pool2d(&four, 0, 1, 1).is_err());
    }

    #[test]
    fn avg_pool_backward_finite_difference() {
        let mut input = random_tensor(Shape::nchw(1, 1, 4, 4), 6);
        let grad = avg_pool2d_backward(
            &Tensor::ones(Shape::nchw(1, 1, 4, 4)),
            &Shape::nchw(1, 1, 4, 4),
            3,
            1,
            1,
        )
        .unwrap();
        let eps = 1e-2f32;
        for &idx in &[0usize, 5, 10, 15] {
            let orig = input.data()[idx];
            input.data_mut()[idx] = orig + eps;
            let plus = avg_pool2d(&input, 3, 1, 1).unwrap().sum();
            input.data_mut()[idx] = orig - eps;
            let minus = avg_pool2d(&input, 3, 1, 1).unwrap().sum();
            input.data_mut()[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            assert!((numeric - grad.data()[idx]).abs() < 1e-2);
        }
    }

    #[test]
    fn global_avg_pool_reduces_correctly() {
        let mut input = Tensor::zeros(Shape::nchw(2, 2, 2, 2));
        for i in 0..input.numel() {
            input.data_mut()[i] = i as f32;
        }
        let out = global_avg_pool(&input).unwrap();
        assert_eq!(out.shape().dims(), &[2, 2]);
        assert_eq!(out.at2(0, 0), (0.0 + 1.0 + 2.0 + 3.0) / 4.0);
        assert_eq!(out.at2(1, 1), (12.0 + 13.0 + 14.0 + 15.0) / 4.0);
    }

    #[test]
    fn global_avg_pool_backward_distributes_evenly() {
        let grad_out = Tensor::ones(Shape::d2(1, 2));
        let grad_in = global_avg_pool_backward(&grad_out, &Shape::nchw(1, 2, 2, 2)).unwrap();
        assert!(grad_in.data().iter().all(|&g| (g - 0.25).abs() < 1e-6));
    }

    #[test]
    fn global_avg_pool_backward_shape_check() {
        let grad_out = Tensor::ones(Shape::d2(2, 3));
        assert!(global_avg_pool_backward(&grad_out, &Shape::nchw(1, 3, 2, 2)).is_err());
    }
}
