use crate::{Result, Shape, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// An owned, contiguous, row-major dense `f32` tensor.
///
/// `Tensor` is the workhorse value type of the workspace: feature maps,
/// convolution weights, gradients and NTK Gram matrices are all `Tensor`s.
/// All operations allocate their result; this keeps the API simple and is
/// more than fast enough for the small proxy networks used in zero-shot NAS.
///
/// # Example
///
/// ```
/// use micronas_tensor::{Tensor, Shape};
/// # fn main() -> Result<(), micronas_tensor::TensorError> {
/// let t = Tensor::zeros(Shape::d2(2, 2));
/// assert_eq!(t.sum(), 0.0);
/// let u = t.map(|x| x + 1.0);
/// assert_eq!(u.sum(), 4.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of the given shape filled with zeros.
    pub fn zeros(shape: Shape) -> Self {
        let n = shape.numel();
        Self {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor of the given shape filled with ones.
    pub fn ones(shape: Shape) -> Self {
        let n = shape.numel();
        Self {
            shape,
            data: vec![1.0; n],
        }
    }

    /// Creates a tensor of the given shape filled with `value`.
    pub fn full(shape: Shape, value: f32) -> Self {
        let n = shape.numel();
        Self {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if `data.len()` does not equal
    /// `shape.numel()`.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Result<Self> {
        if shape.numel() != data.len() {
            return Err(TensorError::ShapeMismatch {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Self { shape, data })
    }

    /// The shape of the tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the underlying buffer (row-major order).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major order).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its underlying buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reads a single element by flat index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] if `index >= numel()`.
    pub fn get(&self, index: usize) -> Result<f32> {
        self.data
            .get(index)
            .copied()
            .ok_or(TensorError::IndexOutOfBounds {
                index,
                len: self.data.len(),
            })
    }

    /// Reinterprets the tensor with a new shape holding the same number of
    /// elements.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] if the element counts differ.
    pub fn reshape(&self, shape: Shape) -> Result<Self> {
        if shape.numel() != self.numel() {
            return Err(TensorError::ShapeMismatch {
                expected: shape.numel(),
                actual: self.numel(),
            });
        }
        Ok(Self {
            shape,
            data: self.data.clone(),
        })
    }

    /// Element at NCHW position, for rank-4 tensors.
    ///
    /// # Panics
    ///
    /// Debug-asserts that indices are within bounds; out-of-bounds access in
    /// release mode is caught by the slice bounds check.
    pub fn at4(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        let d = self.shape.dims();
        debug_assert_eq!(d.len(), 4);
        let idx = ((n * d[1] + c) * d[2] + h) * d[3] + w;
        self.data[idx]
    }

    /// Mutable element access at NCHW position, for rank-4 tensors.
    pub fn at4_mut(&mut self, n: usize, c: usize, h: usize, w: usize) -> &mut f32 {
        let d = self.shape.dims();
        debug_assert_eq!(d.len(), 4);
        let idx = ((n * d[1] + c) * d[2] + h) * d[3] + w;
        &mut self.data[idx]
    }

    /// Element at matrix position, for rank-2 tensors.
    pub fn at2(&self, r: usize, c: usize) -> f32 {
        let d = self.shape.dims();
        debug_assert_eq!(d.len(), 2);
        self.data[r * d[1] + c]
    }

    /// Mutable element access at matrix position, for rank-2 tensors.
    pub fn at2_mut(&mut self, r: usize, c: usize) -> &mut f32 {
        let d = self.shape.dims();
        debug_assert_eq!(d.len(), 2);
        &mut self.data[r * d[1] + c]
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Self {
        Self {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Element-wise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] if the shapes differ.
    pub fn add(&self, rhs: &Tensor) -> Result<Self> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise subtraction.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] if the shapes differ.
    pub fn sub(&self, rhs: &Tensor) -> Result<Self> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] if the shapes differ.
    pub fn mul(&self, rhs: &Tensor) -> Result<Self> {
        self.zip_with(rhs, "mul", |a, b| a * b)
    }

    /// Multiplies every element by a scalar, returning a new tensor.
    pub fn scale(&self, s: f32) -> Self {
        self.map(|x| x * s)
    }

    /// Adds `rhs` scaled by `alpha` into `self` in place (`self += alpha * rhs`).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] if the shapes differ.
    pub fn axpy(&mut self, alpha: f32, rhs: &Tensor) -> Result<()> {
        if self.shape != rhs.shape {
            return Err(TensorError::IncompatibleShapes {
                op: "axpy",
                lhs: self.shape.dims().to_vec(),
                rhs: rhs.shape.dims().to_vec(),
            });
        }
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Euclidean norm of the flattened tensor.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Matrix multiplication of two rank-2 tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if either operand is not rank 2
    /// and [`TensorError::IncompatibleShapes`] if the inner dimensions differ.
    pub fn matmul(&self, rhs: &Tensor) -> Result<Self> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matmul",
                expected: 2,
                actual: self.shape.rank(),
            });
        }
        if rhs.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "matmul",
                expected: 2,
                actual: rhs.shape.rank(),
            });
        }
        let (m, k) = (self.shape.dims()[0], self.shape.dims()[1]);
        let (k2, n) = (rhs.shape.dims()[0], rhs.shape.dims()[1]);
        if k != k2 {
            return Err(TensorError::IncompatibleShapes {
                op: "matmul",
                lhs: self.shape.dims().to_vec(),
                rhs: rhs.shape.dims().to_vec(),
            });
        }
        let mut out = vec![0.0f32; m * n];
        crate::linalg::gemm_nn(m, k, n, &self.data, &rhs.data, &mut out, false);
        Tensor::from_vec(Shape::d2(m, n), out)
    }

    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] if the tensor is not rank 2.
    pub fn transpose(&self) -> Result<Self> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "transpose",
                expected: 2,
                actual: self.shape.rank(),
            });
        }
        let (m, n) = (self.shape.dims()[0], self.shape.dims()[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(Shape::d2(n, m), out)
    }

    /// Dot product of the flattened tensors.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IncompatibleShapes`] if lengths differ.
    pub fn flat_dot(&self, rhs: &Tensor) -> Result<f32> {
        if self.numel() != rhs.numel() {
            return Err(TensorError::IncompatibleShapes {
                op: "flat_dot",
                lhs: self.shape.dims().to_vec(),
                rhs: rhs.shape.dims().to_vec(),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(a, b)| a * b)
            .sum())
    }

    fn zip_with(
        &self,
        rhs: &Tensor,
        op: &'static str,
        f: impl Fn(f32, f32) -> f32,
    ) -> Result<Self> {
        if self.shape != rhs.shape {
            return Err(TensorError::IncompatibleShapes {
                op,
                lhs: self.shape.dims().to_vec(),
                rhs: rhs.shape.dims().to_vec(),
            });
        }
        let data = self
            .data
            .iter()
            .zip(rhs.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Self {
            shape: self.shape.clone(),
            data,
        })
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Tensor{} n={} mean={:.4}",
            self.shape,
            self.numel(),
            self.mean()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_shape_check() {
        let t = Tensor::from_vec(Shape::d2(2, 2), vec![1., 2., 3., 4.]).unwrap();
        assert_eq!(t.numel(), 4);
        assert!(Tensor::from_vec(Shape::d2(2, 2), vec![1., 2., 3.]).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(Shape::d1(3), vec![1., 2., 3.]).unwrap();
        let b = Tensor::from_vec(Shape::d1(3), vec![4., 5., 6.]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[5., 7., 9.]);
        assert_eq!(b.sub(&a).unwrap().data(), &[3., 3., 3.]);
        assert_eq!(a.mul(&b).unwrap().data(), &[4., 10., 18.]);
        assert_eq!(a.scale(2.0).data(), &[2., 4., 6.]);
    }

    #[test]
    fn elementwise_shape_mismatch_rejected() {
        let a = Tensor::zeros(Shape::d1(3));
        let b = Tensor::zeros(Shape::d1(4));
        assert!(a.add(&b).is_err());
        assert!(a.mul(&b).is_err());
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_vec(Shape::d2(2, 3), vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_vec(Shape::d2(3, 2), vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_rejects_bad_dims() {
        let a = Tensor::zeros(Shape::d2(2, 3));
        let b = Tensor::zeros(Shape::d2(2, 3));
        assert!(a.matmul(&b).is_err());
        let v = Tensor::zeros(Shape::d1(3));
        assert!(v.matmul(&a).is_err());
    }

    #[test]
    fn transpose_round_trip() {
        let a = Tensor::from_vec(Shape::d2(2, 3), vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let t = a.transpose().unwrap();
        assert_eq!(t.shape().dims(), &[3, 2]);
        assert_eq!(t.transpose().unwrap(), a);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(Shape::d1(4), vec![1., -2., 3., -4.]).unwrap();
        assert_eq!(a.sum(), -2.0);
        assert_eq!(a.mean(), -0.5);
        assert_eq!(a.max(), 3.0);
        assert_eq!(a.min(), -4.0);
        assert!((a.l2_norm() - (30.0f32).sqrt()).abs() < 1e-6);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::zeros(Shape::d1(3));
        let b = Tensor::from_vec(Shape::d1(3), vec![1., 2., 3.]).unwrap();
        a.axpy(2.0, &b).unwrap();
        assert_eq!(a.data(), &[2., 4., 6.]);
        assert!(a.axpy(1.0, &Tensor::zeros(Shape::d1(4))).is_err());
    }

    #[test]
    fn nchw_indexing() {
        let mut t = Tensor::zeros(Shape::nchw(2, 3, 4, 5));
        *t.at4_mut(1, 2, 3, 4) = 7.0;
        assert_eq!(t.at4(1, 2, 3, 4), 7.0);
        assert_eq!(t.data()[t.numel() - 1], 7.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(Shape::d2(2, 3), vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let r = t.reshape(Shape::d1(6)).unwrap();
        assert_eq!(r.data(), t.data());
        assert!(t.reshape(Shape::d1(5)).is_err());
    }

    #[test]
    fn get_bounds_checked() {
        let t = Tensor::zeros(Shape::d1(2));
        assert!(t.get(1).is_ok());
        assert!(t.get(2).is_err());
    }

    proptest! {
        #[test]
        fn matmul_identity_is_noop(rows in 1usize..6, cols in 1usize..6, seed in 0u64..1000) {
            let data: Vec<f32> = (0..rows * cols)
                .map(|i| ((seed.wrapping_add(i as u64).wrapping_mul(2654435761)) % 1000) as f32 / 100.0)
                .collect();
            let a = Tensor::from_vec(Shape::d2(rows, cols), data).unwrap();
            let mut eye = Tensor::zeros(Shape::d2(cols, cols));
            for i in 0..cols {
                *eye.at2_mut(i, i) = 1.0;
            }
            let prod = a.matmul(&eye).unwrap();
            prop_assert_eq!(prod, a);
        }

        #[test]
        fn add_commutes(len in 1usize..32, seed in 0u64..1000) {
            let va: Vec<f32> = (0..len).map(|i| (seed as f32 + i as f32).sin()).collect();
            let vb: Vec<f32> = (0..len).map(|i| (seed as f32 - i as f32).cos()).collect();
            let a = Tensor::from_vec(Shape::d1(len), va).unwrap();
            let b = Tensor::from_vec(Shape::d1(len), vb).unwrap();
            prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
        }
    }
}
