//! Dense tensor and small linear-algebra substrate for the MicroNAS reproduction.
//!
//! The original MicroNAS implementation relies on PyTorch for its forward and
//! backward passes. This crate provides the minimal numerical kernel we need
//! instead: an owned dense `f32` [`Tensor`] with NCHW convolution, matrix
//! multiplication, a symmetric eigenvalue solver (cyclic Jacobi) for the
//! neural-tangent-kernel spectrum, deterministic random initialisation, and a
//! handful of statistics helpers.
//!
//! The crate is deliberately small and dependency-light; everything is plain
//! safe Rust operating on contiguous `Vec<f32>` buffers.
//!
//! # Convolution engines and workspace reuse
//!
//! Convolution has two implementations selected per call (see the `conv`
//! module docs for the full contract):
//!
//! * **direct** naive loops — the correctness oracle, kept for tiny shapes
//!   and exposed as [`conv2d_direct`] / [`conv2d_backward_weight_direct`] /
//!   [`conv2d_backward_input_direct`];
//! * **im2col + cache-blocked GEMM** ([`gemm_nn`], [`gemm_nt`], [`gemm_tn`])
//!   — the default for real workloads.
//!
//! The `*_with` conv entry points thread a reusable [`Workspace`] scratch
//! arena through the lowering so repeated forward/backward passes (NTK
//! repeats, linear-region probes) stop allocating; [`set_conv_engine`] pins
//! an engine process-wide for benchmarks and equivalence tests.
//!
//! # Execution backends
//!
//! The network substrate one crate up dispatches every kernel through the
//! object-safe [`KernelBackend`] trait (see the `backend` module docs): the
//! naive-loop [`DirectBackend`] oracle, the paper-default
//! [`BlockedGemmBackend`] (bitwise-identical to the free functions above),
//! the FMA-tiled rayon-chunked [`SimdBackend`] and the int8 fixed-point
//! [`Int8Backend`] MCU reference. [`all_backends`] is the conformance-suite
//! registry; [`paper_default_backend`] is the shared default instance.
//!
//! # Example
//!
//! ```
//! use micronas_tensor::{Tensor, Shape};
//!
//! # fn main() -> Result<(), micronas_tensor::TensorError> {
//! let a = Tensor::from_vec(Shape::d2(2, 3), vec![1., 2., 3., 4., 5., 6.])?;
//! let b = Tensor::from_vec(Shape::d2(3, 2), vec![1., 0., 0., 1., 1., 1.])?;
//! let c = a.matmul(&b)?;
//! assert_eq!(c.shape().dims(), &[2, 2]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod backend;
mod conv;
mod error;
pub mod fused;
mod init;
mod int8;
mod linalg;
pub mod ops;
mod pool;
mod rng;
mod shape;
mod simd;
mod stats;
mod tensor;
mod workspace;

pub use backend::{
    all_backends, backend_fingerprint, instrument_backend, paper_default_backend,
    BlockedGemmBackend, DirectBackend, KernelBackend, KernelBackendKind,
    DEFAULT_ARENA_RETENTION_CAP,
};
pub use conv::{
    conv2d, conv2d_backward_input, conv2d_backward_input_direct,
    conv2d_backward_input_packed_pooled, conv2d_backward_input_pooled, conv2d_backward_input_with,
    conv2d_backward_weight, conv2d_backward_weight_direct,
    conv2d_backward_weight_per_sample_direct, conv2d_backward_weight_per_sample_into,
    conv2d_backward_weight_per_sample_packed_into, conv2d_backward_weight_per_sample_with,
    conv2d_backward_weight_with, conv2d_direct, conv2d_forward_packed_pooled, conv2d_pooled,
    conv2d_with, conv_engine, set_conv_engine, Conv2dSpec, ConvEngine, PackedGradSlot,
};
pub use error::TensorError;
pub use init::{kaiming_normal, kaiming_uniform, xavier_uniform, InitKind};
pub use int8::Int8Backend;
pub use linalg::{
    condition_number, gemm_nn, gemm_nt, gemm_tn, gram_nt_f64, sym_eigenvalues,
    sym_eigenvalues_with, EigenOptions, EigenReport,
};
pub use pool::{
    avg_pool2d, avg_pool2d_backward, avg_pool2d_backward_pooled, avg_pool2d_pooled,
    global_avg_pool, global_avg_pool_backward,
};
pub use rng::{hash_mix, split_mix64, DeterministicRng};
pub use shape::Shape;
pub use simd::SimdBackend;
pub use stats::{dot, l2_norm, mean, population_variance, standardize};
pub use tensor::Tensor;
pub use workspace::Workspace;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
