//! Deterministic pseudo-random utilities.
//!
//! Every stochastic quantity in the workspace (weight initialisation,
//! synthetic images, surrogate noise) is keyed through [`split_mix64`] or the
//! [`DeterministicRng`] wrapper so that all tables and figures reproduce
//! bit-for-bit across runs and machines.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// SplitMix64 hash step: maps a 64-bit state to a well-mixed 64-bit output.
///
/// This is the standard SplitMix64 finalizer; it is used to derive
/// independent seeds from (index, seed) pairs.
///
/// # Example
///
/// ```
/// use micronas_tensor::split_mix64;
/// assert_ne!(split_mix64(1), split_mix64(2));
/// assert_eq!(split_mix64(42), split_mix64(42));
/// ```
pub fn split_mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Mixes two 64-bit values into one, suitable for deriving per-item seeds
/// from a (global seed, item id) pair.
pub fn hash_mix(a: u64, b: u64) -> u64 {
    split_mix64(split_mix64(a) ^ b.rotate_left(17))
}

/// A small deterministic RNG used for weight initialisation and synthetic
/// data generation.
///
/// Internally this wraps ChaCha8 seeded through [`split_mix64`], giving good
/// statistical quality while remaining fully reproducible.
#[derive(Debug, Clone)]
pub struct DeterministicRng {
    inner: ChaCha8Rng,
}

impl DeterministicRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Self {
            inner: ChaCha8Rng::seed_from_u64(split_mix64(seed)),
        }
    }

    /// Creates a generator for a (seed, stream) pair, useful for giving every
    /// architecture or sample its own independent stream.
    pub fn with_stream(seed: u64, stream: u64) -> Self {
        Self {
            inner: ChaCha8Rng::seed_from_u64(hash_mix(seed, stream)),
        }
    }

    /// Uniform sample in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        self.inner.gen::<f32>()
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.next_f32()
    }

    /// Standard normal sample via the Box–Muller transform.
    pub fn normal(&mut self) -> f32 {
        // Box–Muller needs u1 strictly positive.
        let u1 = (1.0 - self.next_f32()).max(f32::MIN_POSITIVE);
        let u2 = self.next_f32();
        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f32, std: f32) -> f32 {
        mean + std * self.normal()
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is meaningless");
        self.inner.gen_range(0..n)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        if slice.len() < 2 {
            return;
        }
        for i in (1..slice.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            slice.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn split_mix_is_deterministic_and_spread() {
        assert_eq!(split_mix64(123), split_mix64(123));
        assert_ne!(split_mix64(0), split_mix64(1));
        // Consecutive inputs should differ in many bits.
        let x = split_mix64(1000) ^ split_mix64(1001);
        assert!(x.count_ones() > 10);
    }

    #[test]
    fn rng_reproducible_across_instances() {
        let mut a = DeterministicRng::new(7);
        let mut b = DeterministicRng::new(7);
        for _ in 0..16 {
            assert_eq!(a.next_f32(), b.next_f32());
        }
    }

    #[test]
    fn streams_are_independent() {
        let mut a = DeterministicRng::with_stream(7, 0);
        let mut b = DeterministicRng::with_stream(7, 1);
        let va: Vec<f32> = (0..8).map(|_| a.next_f32()).collect();
        let vb: Vec<f32> = (0..8).map(|_| b.next_f32()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn normal_has_reasonable_moments() {
        let mut rng = DeterministicRng::new(3);
        let n = 20_000;
        let samples: Vec<f32> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f32>() / n as f32;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = DeterministicRng::new(11);
        let mut v: Vec<usize> = (0..32).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn below_zero_panics() {
        let mut rng = DeterministicRng::new(1);
        let _ = rng.below(0);
    }

    proptest! {
        #[test]
        fn uniform_respects_bounds(seed in 0u64..500, lo in -5.0f32..0.0, width in 0.1f32..10.0) {
            let mut rng = DeterministicRng::new(seed);
            let hi = lo + width;
            for _ in 0..32 {
                let x = rng.uniform(lo, hi);
                prop_assert!(x >= lo && x < hi);
            }
        }

        #[test]
        fn below_respects_bound(seed in 0u64..500, n in 1usize..100) {
            let mut rng = DeterministicRng::new(seed);
            for _ in 0..32 {
                prop_assert!(rng.below(n) < n);
            }
        }
    }
}
