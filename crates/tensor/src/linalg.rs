//! Symmetric eigenvalue routines for the NTK spectrum.
//!
//! The NTK Gram matrix of a mini-batch is a small (batch × batch) symmetric
//! positive semi-definite matrix; its condition number λ_max / λ_min is the
//! trainability indicator used by MicroNAS and TE-NAS. A cyclic Jacobi
//! rotation solver is plenty for matrices of this size (≤ 128×128) and is
//! numerically robust.

use crate::{Result, Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// Options controlling the Jacobi eigenvalue iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EigenOptions {
    /// Maximum number of full sweeps over all off-diagonal elements.
    pub max_sweeps: usize,
    /// Convergence threshold on the off-diagonal Frobenius norm.
    pub tolerance: f64,
}

impl Default for EigenOptions {
    fn default() -> Self {
        Self { max_sweeps: 64, tolerance: 1e-10 }
    }
}

/// Result of a symmetric eigendecomposition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EigenReport {
    /// Eigenvalues sorted in ascending order.
    pub eigenvalues: Vec<f64>,
    /// Number of Jacobi sweeps performed.
    pub sweeps: usize,
    /// Whether the iteration reached the requested tolerance.
    pub converged: bool,
}

impl EigenReport {
    /// Largest eigenvalue.
    pub fn lambda_max(&self) -> f64 {
        *self.eigenvalues.last().expect("eigenvalue list is never empty")
    }

    /// Smallest eigenvalue.
    pub fn lambda_min(&self) -> f64 {
        self.eigenvalues[0]
    }

    /// Ratio λ_max / λ_i where `i` is a 1-based index from the smallest
    /// eigenvalue (i = 1 is the classic condition number).
    ///
    /// Indices beyond the matrix size saturate at the last eigenvalue. The
    /// denominator is clamped to a small positive value so the ratio stays
    /// finite for singular Gram matrices.
    pub fn condition_index(&self, i: usize) -> f64 {
        let idx = i.saturating_sub(1).min(self.eigenvalues.len() - 1);
        let denom = self.eigenvalues[idx].max(1e-12);
        self.lambda_max() / denom
    }
}

/// Computes all eigenvalues of a symmetric matrix given as a rank-2 tensor.
///
/// Only the eigenvalues are returned (eigenvectors are not needed by any
/// proxy). The input is symmetrised as `(A + Aᵀ) / 2` to absorb floating
/// point asymmetry from the Gram-matrix accumulation.
///
/// # Errors
///
/// Returns an error if the tensor is not a non-empty square matrix or the
/// iteration fails to make progress.
pub fn sym_eigenvalues(matrix: &Tensor, options: EigenOptions) -> Result<EigenReport> {
    let dims = matrix.shape().dims();
    if dims.len() != 2 {
        return Err(TensorError::RankMismatch { op: "sym_eigenvalues", expected: 2, actual: dims.len() });
    }
    if dims[0] != dims[1] {
        return Err(TensorError::IncompatibleShapes {
            op: "sym_eigenvalues (square)",
            lhs: dims.to_vec(),
            rhs: dims.to_vec(),
        });
    }
    let n = dims[0];
    if n == 0 {
        return Err(TensorError::InvalidArgument("cannot decompose an empty matrix".into()));
    }

    // Work in f64 for stability: NTK Gram entries can span many orders of magnitude.
    let mut a = vec![0.0f64; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = 0.5 * (matrix.at2(i, j) as f64 + matrix.at2(j, i) as f64);
        }
    }

    let off_diag_norm = |a: &[f64]| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                s += a[i * n + j] * a[i * n + j];
            }
        }
        (2.0 * s).sqrt()
    };

    let mut sweeps = 0;
    let mut converged = off_diag_norm(&a) <= options.tolerance;
    while !converged && sweeps < options.max_sweeps {
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[p * n + q];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = a[p * n + p];
                let aqq = a[q * n + q];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                for k in 0..n {
                    let akp = a[k * n + p];
                    let akq = a[k * n + q];
                    a[k * n + p] = c * akp - s * akq;
                    a[k * n + q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p * n + k];
                    let aqk = a[q * n + k];
                    a[p * n + k] = c * apk - s * aqk;
                    a[q * n + k] = s * apk + c * aqk;
                }
            }
        }
        sweeps += 1;
        converged = off_diag_norm(&a) <= options.tolerance;
    }

    let mut eigenvalues: Vec<f64> = (0..n).map(|i| a[i * n + i]).collect();
    eigenvalues.sort_by(|x, y| x.partial_cmp(y).expect("eigenvalues are finite"));
    Ok(EigenReport { eigenvalues, sweeps, converged })
}

/// Convenience wrapper: the classic condition number λ_max / λ_min of a
/// symmetric matrix, clamped to be finite.
///
/// # Errors
///
/// Propagates errors from [`sym_eigenvalues`].
pub fn condition_number(matrix: &Tensor, options: EigenOptions) -> Result<f64> {
    let report = sym_eigenvalues(matrix, options)?;
    Ok(report.condition_index(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeterministicRng, Shape};

    fn tensor_from(n: usize, vals: &[f32]) -> Tensor {
        Tensor::from_vec(Shape::d2(n, n), vals.to_vec()).unwrap()
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_diagonal() {
        let m = tensor_from(3, &[3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]);
        let rep = sym_eigenvalues(&m, EigenOptions::default()).unwrap();
        assert!(rep.converged);
        let evs: Vec<f64> = rep.eigenvalues.clone();
        assert!((evs[0] - 1.0).abs() < 1e-9);
        assert!((evs[1] - 2.0).abs() < 1e-9);
        assert!((evs[2] - 3.0).abs() < 1e-9);
        assert!((rep.condition_index(1) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn known_2x2_eigenvalues() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let m = tensor_from(2, &[2.0, 1.0, 1.0, 2.0]);
        let rep = sym_eigenvalues(&m, EigenOptions::default()).unwrap();
        assert!((rep.lambda_min() - 1.0).abs() < 1e-9);
        assert!((rep.lambda_max() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn trace_is_preserved() {
        let mut rng = DeterministicRng::new(17);
        let n = 12;
        // Build a random symmetric matrix A = B + Bᵀ.
        let mut vals = vec![0.0f32; n * n];
        for i in 0..n {
            for j in 0..n {
                vals[i * n + j] = rng.normal();
            }
        }
        let b = tensor_from(n, &vals);
        let sym = b.add(&b.transpose().unwrap()).unwrap();
        let trace: f64 = (0..n).map(|i| sym.at2(i, i) as f64).sum();
        let rep = sym_eigenvalues(&sym, EigenOptions::default()).unwrap();
        let sum: f64 = rep.eigenvalues.iter().sum();
        assert!((trace - sum).abs() < 1e-3 * (1.0 + trace.abs()));
    }

    #[test]
    fn gram_matrix_is_psd() {
        // G = J Jᵀ must have non-negative eigenvalues.
        let mut rng = DeterministicRng::new(23);
        let (rows, cols) = (8, 20);
        let data: Vec<f32> = (0..rows * cols).map(|_| rng.normal()).collect();
        let j = Tensor::from_vec(Shape::d2(rows, cols), data).unwrap();
        let g = j.matmul(&j.transpose().unwrap()).unwrap();
        let rep = sym_eigenvalues(&g, EigenOptions::default()).unwrap();
        assert!(rep.eigenvalues.iter().all(|&e| e > -1e-4), "{:?}", rep.eigenvalues);
    }

    #[test]
    fn condition_index_saturates_and_is_monotone() {
        let m = tensor_from(3, &[4.0, 0.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0, 1.0]);
        let rep = sym_eigenvalues(&m, EigenOptions::default()).unwrap();
        // K1 = 4/1, K2 = 4/2, K3 = 4/4, K10 saturates at K3.
        assert!((rep.condition_index(1) - 4.0).abs() < 1e-9);
        assert!((rep.condition_index(2) - 2.0).abs() < 1e-9);
        assert!((rep.condition_index(3) - 1.0).abs() < 1e-9);
        assert_eq!(rep.condition_index(10), rep.condition_index(3));
        assert!(rep.condition_index(1) >= rep.condition_index(2));
    }

    #[test]
    fn rejects_non_square_and_empty() {
        let rect = Tensor::zeros(Shape::d2(2, 3));
        assert!(sym_eigenvalues(&rect, EigenOptions::default()).is_err());
        let empty = Tensor::zeros(Shape::d2(0, 0));
        assert!(sym_eigenvalues(&empty, EigenOptions::default()).is_err());
        let vec1 = Tensor::zeros(Shape::d1(4));
        assert!(sym_eigenvalues(&vec1, EigenOptions::default()).is_err());
    }

    #[test]
    fn condition_number_of_identity_is_one() {
        let mut eye = Tensor::zeros(Shape::d2(5, 5));
        for i in 0..5 {
            *eye.at2_mut(i, i) = 1.0;
        }
        let k = condition_number(&eye, EigenOptions::default()).unwrap();
        assert!((k - 1.0).abs() < 1e-9);
    }

    #[test]
    fn singular_matrix_condition_is_finite() {
        // Rank-1 matrix: eigenvalues {0, 0, something}; condition clamps denominator.
        let m = tensor_from(3, &[1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]);
        let k = condition_number(&m, EigenOptions::default()).unwrap();
        assert!(k.is_finite());
        assert!(k > 1e6);
    }
}
