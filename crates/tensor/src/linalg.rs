//! Dense linear algebra: cache-blocked GEMM kernels and symmetric
//! eigenvalue routines for the NTK spectrum.
//!
//! # GEMM kernels
//!
//! [`gemm_nn`], [`gemm_nt`] and [`gemm_tn`] are the single-precision
//! matrix-multiply primitives behind the im2col convolution path and the
//! linear layers. They are cache-blocked (panels of `B` and unrolled rank-4
//! updates) so the inner loops autovectorise and the `C` traffic is
//! amortised; no external BLAS is involved.
//!
//! # Eigensolver
//!
//! The NTK Gram matrix of a mini-batch is a small (batch × batch) symmetric
//! positive semi-definite matrix; its condition number λ_max / λ_min is the
//! trainability indicator used by MicroNAS and TE-NAS. A cyclic Jacobi
//! rotation solver is plenty for matrices of this size (≤ 128×128) and is
//! numerically robust. [`sym_eigenvalues_with`] exposes a scratch-reusing
//! variant so per-candidate repeat loops stop allocating.

use crate::{Result, Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// Panel width of `B` kept hot in cache by the blocked kernels.
const GEMM_NC: usize = 512;
/// Depth of the rank-k panels processed per pass.
const GEMM_KC: usize = 128;

#[inline]
fn gemm_check(m: usize, k: usize, n: usize, a: usize, b: usize, c: usize) {
    assert_eq!(a, m * k, "gemm: A buffer has wrong length");
    assert_eq!(b, k * n, "gemm: B buffer has wrong length");
    assert_eq!(c, m * n, "gemm: C buffer has wrong length");
}

/// Widest `n` routed to the register-tiled kernel: narrow C rows starve the
/// memory-resident formulation (most of the register file idle), while wide
/// C rows amortise it and prefer the streaming rank-4 updates.
///
/// `pub(crate)` because the packed cross-candidate conv path must prove that
/// widening a column panel cannot move a GEMM across this schedule boundary
/// (both schedules accumulate each output element in the same `k` order, so
/// identity only breaks when solo and packed land on *different* schedules).
pub(crate) const GEMM_NARROW_N: usize = 32;

/// Smallest `k` routed to the register-tiled kernel even for wide outputs:
/// past this depth the tiled schedule's B-block reuse (each block read once
/// per 4-row band instead of once per row) outweighs the streaming
/// schedule's longer contiguous runs. `pub(crate)` for the same schedule
/// guard as [`GEMM_NARROW_N`].
pub(crate) const GEMM_DEEP_K: usize = 64;

/// `C = A · B` (or `C += A · B` with `accumulate`), all row-major:
/// `A` is `[m, k]`, `B` is `[k, n]`, `C` is `[m, n]`.
///
/// Dispatches between two schedules on the output width `n`:
///
/// * **narrow** (`n ≤ 32`, e.g. the transposed weight-gradient GEMMs):
///   register-tiled 4×8 accumulator tiles with `k` innermost — the tile's
///   partial sums live in vector registers across the whole `k` sweep and
///   the inner loop is four packed FMAs per step;
/// * **wide** (spatially-wide feature maps): cache-blocked streaming rank-4
///   C-row updates, which amortise the C traffic over long contiguous rows.
///
/// # Panics
///
/// Panics if a buffer length does not match its dimensions.
pub fn gemm_nn(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    accumulate: bool,
) {
    micronas_telemetry::counter_add("tensor.gemm.calls", 1);
    let _span = micronas_telemetry::span!("tensor.gemm");
    gemm_check(m, k, n, a.len(), b.len(), c.len());
    if !accumulate {
        c.fill(0.0);
    }
    if n <= GEMM_NARROW_N || k >= GEMM_DEEP_K {
        let mut ib = 0;
        while ib + 4 <= m {
            gemm_nn_row_band::<4>(ib, k, n, a, b, c);
            ib += 4;
        }
        while ib < m {
            gemm_nn_row_band::<1>(ib, k, n, a, b, c);
            ib += 1;
        }
    } else {
        gemm_nn_wide(m, k, n, a, b, c);
    }
}

/// The cache-blocked streaming schedule of [`gemm_nn`] (wide outputs).
fn gemm_nn_wide(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
    for jb in (0..n).step_by(GEMM_NC) {
        let je = (jb + GEMM_NC).min(n);
        for pb in (0..k).step_by(GEMM_KC) {
            let pe = (pb + GEMM_KC).min(k);
            for i in 0..m {
                let a_row = &a[i * k..(i + 1) * k];
                let c_row = &mut c[i * n + jb..i * n + je];
                let mut p = pb;
                // Rank-4 update: four rows of B per pass over the C row.
                while p + 4 <= pe {
                    let (a0, a1, a2, a3) = (a_row[p], a_row[p + 1], a_row[p + 2], a_row[p + 3]);
                    let b0 = &b[p * n + jb..p * n + je];
                    let b1 = &b[(p + 1) * n + jb..(p + 1) * n + je];
                    let b2 = &b[(p + 2) * n + jb..(p + 2) * n + je];
                    let b3 = &b[(p + 3) * n + jb..(p + 3) * n + je];
                    for (idx, out) in c_row.iter_mut().enumerate() {
                        *out += a0 * b0[idx] + a1 * b1[idx] + a2 * b2[idx] + a3 * b3[idx];
                    }
                    p += 4;
                }
                while p < pe {
                    let ap = a_row[p];
                    if ap != 0.0 {
                        let b_row = &b[p * n + jb..p * n + je];
                        for (out, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                            *out += ap * bv;
                        }
                    }
                    p += 1;
                }
            }
        }
    }
}

/// One `R`-row band of the register-tiled [`gemm_nn`]: accumulates
/// `C[ib..ib+R, :] += A[ib..ib+R, :] · B`.
fn gemm_nn_row_band<const R: usize>(
    ib: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
) {
    let mut jb = 0;
    // Main tile: R×16 accumulators (2R packed-FMA dependency chains), wide
    // enough to hide FMA latency. Tile width does not affect numerics: every
    // output element accumulates over `k` in the same order regardless of
    // which tile it lands in.
    while jb + 16 <= n {
        let mut acc = [[0.0f32; 16]; R];
        for p in 0..k {
            let bv: &[f32; 16] = b[p * n + jb..p * n + jb + 16]
                .try_into()
                .expect("slice length 16");
            for r in 0..R {
                let av = a[(ib + r) * k + p];
                for l in 0..16 {
                    acc[r][l] += av * bv[l];
                }
            }
        }
        for r in 0..R {
            let c_row = &mut c[(ib + r) * n + jb..(ib + r) * n + jb + 16];
            for l in 0..16 {
                c_row[l] += acc[r][l];
            }
        }
        jb += 16;
    }
    while jb + 8 <= n {
        // R×8 accumulator tile held in registers across the full k sweep.
        let mut acc = [[0.0f32; 8]; R];
        for p in 0..k {
            let bv: &[f32; 8] = b[p * n + jb..p * n + jb + 8]
                .try_into()
                .expect("slice length 8");
            for r in 0..R {
                let av = a[(ib + r) * k + p];
                for l in 0..8 {
                    acc[r][l] += av * bv[l];
                }
            }
        }
        for r in 0..R {
            let c_row = &mut c[(ib + r) * n + jb..(ib + r) * n + jb + 8];
            for l in 0..8 {
                c_row[l] += acc[r][l];
            }
        }
        jb += 8;
    }
    if jb < n {
        // Remainder columns (< 8): scalar accumulators per column.
        for j in jb..n {
            let mut acc = [0.0f32; R];
            for p in 0..k {
                let bv = b[p * n + j];
                for (r, slot) in acc.iter_mut().enumerate() {
                    *slot += a[(ib + r) * k + p] * bv;
                }
            }
            for (r, &v) in acc.iter().enumerate() {
                c[(ib + r) * n + j] += v;
            }
        }
    }
}

/// `C = A · Bᵀ` (or `C += A · Bᵀ` with `accumulate`), all row-major:
/// `A` is `[m, k]`, `B` is `[n, k]`, `C` is `[m, n]`.
///
/// Both operands are traversed along contiguous rows, so this is the
/// preferred kernel whenever the right-hand side is naturally transposed
/// (linear-layer forward, conv weight gradients).
///
/// # Panics
///
/// Panics if a buffer length does not match its dimensions.
pub fn gemm_nt(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    accumulate: bool,
) {
    micronas_telemetry::counter_add("tensor.gemm.calls", 1);
    let _span = micronas_telemetry::span!("tensor.gemm");
    assert_eq!(a.len(), m * k, "gemm: A buffer has wrong length");
    assert_eq!(b.len(), n * k, "gemm: B buffer has wrong length");
    assert_eq!(c.len(), m * n, "gemm: C buffer has wrong length");
    for i in 0..m {
        let a_row = &a[i * k..(i + 1) * k];
        for j in 0..n {
            let b_row = &b[j * k..(j + 1) * k];
            // Four-lane dot product; lanes are summed pairwise at the end so
            // the result does not depend on the (fixed) unroll factor.
            let mut acc = [0.0f32; 4];
            let mut chunks_a = a_row.chunks_exact(4);
            let mut chunks_b = b_row.chunks_exact(4);
            for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
                acc[0] += ca[0] * cb[0];
                acc[1] += ca[1] * cb[1];
                acc[2] += ca[2] * cb[2];
                acc[3] += ca[3] * cb[3];
            }
            let mut dot = (acc[0] + acc[1]) + (acc[2] + acc[3]);
            for (&ra, &rb) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
                dot += ra * rb;
            }
            if accumulate {
                c[i * n + j] += dot;
            } else {
                c[i * n + j] = dot;
            }
        }
    }
}

/// `C = Aᵀ · B` (or `C += Aᵀ · B` with `accumulate`), all row-major:
/// `A` is `[k, m]`, `B` is `[k, n]`, `C` is `[m, n]`.
///
/// # Panics
///
/// Panics if a buffer length does not match its dimensions.
pub fn gemm_tn(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    accumulate: bool,
) {
    micronas_telemetry::counter_add("tensor.gemm.calls", 1);
    let _span = micronas_telemetry::span!("tensor.gemm");
    assert_eq!(a.len(), k * m, "gemm: A buffer has wrong length");
    assert_eq!(b.len(), k * n, "gemm: B buffer has wrong length");
    assert_eq!(c.len(), m * n, "gemm: C buffer has wrong length");
    if !accumulate {
        c.fill(0.0);
    }
    for jb in (0..n).step_by(GEMM_NC) {
        let je = (jb + GEMM_NC).min(n);
        for pb in (0..k).step_by(GEMM_KC) {
            let pe = (pb + GEMM_KC).min(k);
            for i in 0..m {
                let c_row = &mut c[i * n + jb..i * n + je];
                let mut p = pb;
                while p + 4 <= pe {
                    let a0 = a[p * m + i];
                    let a1 = a[(p + 1) * m + i];
                    let a2 = a[(p + 2) * m + i];
                    let a3 = a[(p + 3) * m + i];
                    let b0 = &b[p * n + jb..p * n + je];
                    let b1 = &b[(p + 1) * n + jb..(p + 1) * n + je];
                    let b2 = &b[(p + 2) * n + jb..(p + 2) * n + je];
                    let b3 = &b[(p + 3) * n + jb..(p + 3) * n + je];
                    for (idx, out) in c_row.iter_mut().enumerate() {
                        *out += a0 * b0[idx] + a1 * b1[idx] + a2 * b2[idx] + a3 * b3[idx];
                    }
                    p += 4;
                }
                while p < pe {
                    let ap = a[p * m + i];
                    if ap != 0.0 {
                        let b_row = &b[p * n + jb..p * n + je];
                        for (out, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                            *out += ap * bv;
                        }
                    }
                    p += 1;
                }
            }
        }
    }
}

/// Length of the inner f32 panels of [`gram_nt_f64`]; each panel's partial
/// dot product is accumulated into `f64` before moving on, which bounds the
/// f32 accumulation error independently of the row length.
const GRAM_KC: usize = 256;

/// Symmetric Gram matrix `G = A · Aᵀ` of a row-major `[n, p]` matrix, in one
/// GEMM-style pass: f32 panel products with f64 panel accumulation.
///
/// This is the NTK Gram build over the contiguous `[n, P]` per-sample
/// gradient matrix. The inner loops run four f32 lanes over `GRAM_KC`-long
/// panels (the same shape the autovectoriser turns into packed FMAs in the
/// GEMM kernels); every panel's partial sum is then widened and accumulated
/// in f64. The result differs from an exact-f64 dot product by at most the
/// rounding of one panel, giving near-f64 accuracy at f32 speed — the
/// "f32 GEMM with f64 correction" scheme.
///
/// Only the lower triangle is computed; the upper triangle is mirrored.
///
/// # Panics
///
/// Panics if `a.len() != n * p` or `out.len() != n * n`.
pub fn gram_nt_f64(n: usize, p: usize, a: &[f32], out: &mut [f64]) {
    micronas_telemetry::counter_add("tensor.gram.calls", 1);
    let _span = micronas_telemetry::span!("tensor.gram");
    assert_eq!(a.len(), n * p, "gram: A buffer has wrong length");
    assert_eq!(out.len(), n * n, "gram: G buffer has wrong length");
    for i in 0..n {
        let row_i = &a[i * p..(i + 1) * p];
        for j in 0..=i {
            let row_j = &a[j * p..(j + 1) * p];
            let mut total = 0.0f64;
            let mut start = 0;
            while start < p {
                let end = (start + GRAM_KC).min(p);
                let mut acc = [0.0f32; 4];
                let mut chunks_a = row_i[start..end].chunks_exact(4);
                let mut chunks_b = row_j[start..end].chunks_exact(4);
                for (ca, cb) in (&mut chunks_a).zip(&mut chunks_b) {
                    acc[0] += ca[0] * cb[0];
                    acc[1] += ca[1] * cb[1];
                    acc[2] += ca[2] * cb[2];
                    acc[3] += ca[3] * cb[3];
                }
                let mut panel = (acc[0] as f64 + acc[1] as f64) + (acc[2] as f64 + acc[3] as f64);
                for (&ra, &rb) in chunks_a.remainder().iter().zip(chunks_b.remainder()) {
                    panel += ra as f64 * rb as f64;
                }
                total += panel;
                start = end;
            }
            out[i * n + j] = total;
            out[j * n + i] = total;
        }
    }
}

/// Options controlling the Jacobi eigenvalue iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EigenOptions {
    /// Maximum number of full sweeps over all off-diagonal elements.
    pub max_sweeps: usize,
    /// Convergence threshold on the off-diagonal Frobenius norm.
    pub tolerance: f64,
}

impl Default for EigenOptions {
    fn default() -> Self {
        Self {
            max_sweeps: 64,
            tolerance: 1e-10,
        }
    }
}

/// Result of a symmetric eigendecomposition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EigenReport {
    /// Eigenvalues sorted in ascending order.
    pub eigenvalues: Vec<f64>,
    /// Number of Jacobi sweeps performed.
    pub sweeps: usize,
    /// Whether the iteration reached the requested tolerance.
    pub converged: bool,
}

impl EigenReport {
    /// Largest eigenvalue.
    pub fn lambda_max(&self) -> f64 {
        *self
            .eigenvalues
            .last()
            .expect("eigenvalue list is never empty")
    }

    /// Smallest eigenvalue.
    pub fn lambda_min(&self) -> f64 {
        self.eigenvalues[0]
    }

    /// Ratio λ_max / λ_i where `i` is a 1-based index from the smallest
    /// eigenvalue (i = 1 is the classic condition number).
    ///
    /// Indices beyond the matrix size saturate at the last eigenvalue. The
    /// denominator is clamped to a small positive value so the ratio stays
    /// finite for singular Gram matrices.
    pub fn condition_index(&self, i: usize) -> f64 {
        let idx = i.saturating_sub(1).min(self.eigenvalues.len() - 1);
        let denom = self.eigenvalues[idx].max(1e-12);
        self.lambda_max() / denom
    }
}

/// Computes all eigenvalues of a symmetric matrix given as a rank-2 tensor.
///
/// Only the eigenvalues are returned (eigenvectors are not needed by any
/// proxy). The input is symmetrised as `(A + Aᵀ) / 2` to absorb floating
/// point asymmetry from the Gram-matrix accumulation.
///
/// # Errors
///
/// Returns an error if the tensor is not a non-empty square matrix or the
/// iteration fails to make progress.
pub fn sym_eigenvalues(matrix: &Tensor, options: EigenOptions) -> Result<EigenReport> {
    sym_eigenvalues_with(matrix, options, &mut Vec::new())
}

/// Scratch-reusing variant of [`sym_eigenvalues`].
///
/// The symmetrised working copy of the matrix is built directly inside
/// `scratch` (grown once, then reused), so repeated decompositions — the NTK
/// repeat loop decomposes one Gram matrix per repeat — stop allocating. The
/// off-diagonal norm is accumulated during the same fill pass, so a matrix
/// that is already diagonal to within tolerance returns after sweep 0
/// without any rotation work.
///
/// # Errors
///
/// Returns an error if the tensor is not a non-empty square matrix.
pub fn sym_eigenvalues_with(
    matrix: &Tensor,
    options: EigenOptions,
    scratch: &mut Vec<f64>,
) -> Result<EigenReport> {
    let dims = matrix.shape().dims();
    if dims.len() != 2 {
        return Err(TensorError::RankMismatch {
            op: "sym_eigenvalues",
            expected: 2,
            actual: dims.len(),
        });
    }
    if dims[0] != dims[1] {
        return Err(TensorError::IncompatibleShapes {
            op: "sym_eigenvalues (square)",
            lhs: dims.to_vec(),
            rhs: dims.to_vec(),
        });
    }
    let n = dims[0];
    if n == 0 {
        return Err(TensorError::InvalidArgument(
            "cannot decompose an empty matrix".into(),
        ));
    }

    // Work in f64 for stability: NTK Gram entries can span many orders of
    // magnitude. The symmetrised copy is built straight into the reusable
    // scratch buffer, fusing the off-diagonal norm into the same pass.
    scratch.clear();
    scratch.resize(n * n, 0.0);
    let a = &mut scratch[..n * n];
    let data = matrix.data();
    let mut initial_off = 0.0f64;
    for i in 0..n {
        a[i * n + i] = data[i * n + i] as f64;
        for j in (i + 1)..n {
            let v = 0.5 * (data[i * n + j] as f64 + data[j * n + i] as f64);
            a[i * n + j] = v;
            a[j * n + i] = v;
            initial_off += v * v;
        }
    }

    let off_diag_norm = |a: &[f64]| -> f64 {
        let mut s = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                s += a[i * n + j] * a[i * n + j];
            }
        }
        (2.0 * s).sqrt()
    };

    let mut sweeps = 0;
    // Early exit at sweep 0: already (numerically) diagonal.
    let mut converged = (2.0 * initial_off).sqrt() <= options.tolerance;
    while !converged && sweeps < options.max_sweeps {
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = a[p * n + q];
                if apq.abs() < 1e-300 {
                    continue;
                }
                let app = a[p * n + p];
                let aqq = a[q * n + q];
                let theta = (aqq - app) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                for k in 0..n {
                    let akp = a[k * n + p];
                    let akq = a[k * n + q];
                    a[k * n + p] = c * akp - s * akq;
                    a[k * n + q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p * n + k];
                    let aqk = a[q * n + k];
                    a[p * n + k] = c * apk - s * aqk;
                    a[q * n + k] = s * apk + c * aqk;
                }
            }
        }
        sweeps += 1;
        converged = off_diag_norm(a) <= options.tolerance;
    }

    let mut eigenvalues: Vec<f64> = (0..n).map(|i| a[i * n + i]).collect();
    eigenvalues.sort_by(|x, y| x.partial_cmp(y).expect("eigenvalues are finite"));
    Ok(EigenReport {
        eigenvalues,
        sweeps,
        converged,
    })
}

/// Convenience wrapper: the classic condition number λ_max / λ_min of a
/// symmetric matrix, clamped to be finite.
///
/// # Errors
///
/// Propagates errors from [`sym_eigenvalues`].
pub fn condition_number(matrix: &Tensor, options: EigenOptions) -> Result<f64> {
    let report = sym_eigenvalues(matrix, options)?;
    Ok(report.condition_index(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DeterministicRng, Shape};

    fn tensor_from(n: usize, vals: &[f32]) -> Tensor {
        Tensor::from_vec(Shape::d2(n, n), vals.to_vec()).unwrap()
    }

    fn naive_nn(m: usize, k: usize, n: usize, a: &[f32], b: &[f32]) -> Vec<f32> {
        let mut c = vec![0.0f32; m * n];
        for i in 0..m {
            for p in 0..k {
                for j in 0..n {
                    c[i * n + j] += a[i * k + p] * b[p * n + j];
                }
            }
        }
        c
    }

    fn random_mat(rows: usize, cols: usize, seed: u64) -> Vec<f32> {
        let mut rng = DeterministicRng::new(seed);
        (0..rows * cols).map(|_| rng.normal()).collect()
    }

    fn assert_close(lhs: &[f32], rhs: &[f32]) {
        assert_eq!(lhs.len(), rhs.len());
        for (x, y) in lhs.iter().zip(rhs.iter()) {
            assert!((x - y).abs() <= 1e-4 * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn gram_nt_f64_matches_exact_f64_dots() {
        for &(n, p) in &[(1usize, 1usize), (3, 7), (5, 256), (8, 1023), (4, 424)] {
            let a = random_mat(n, p, 7);
            let mut g = vec![f64::NAN; n * n];
            gram_nt_f64(n, p, &a, &mut g);
            for i in 0..n {
                for j in 0..n {
                    let exact: f64 = a[i * p..(i + 1) * p]
                        .iter()
                        .zip(&a[j * p..(j + 1) * p])
                        .map(|(&x, &y)| x as f64 * y as f64)
                        .sum();
                    let got = g[i * n + j];
                    assert!(
                        (got - exact).abs() <= 1e-4 * (1.0 + exact.abs()),
                        "({i},{j}) at n={n} p={p}: {got} vs {exact}"
                    );
                    assert_eq!(g[i * n + j], g[j * n + i], "gram must be symmetric");
                }
            }
        }
    }

    #[test]
    #[should_panic]
    fn gram_nt_f64_checks_lengths() {
        let mut g = vec![0.0f64; 4];
        gram_nt_f64(2, 3, &[0.0; 5], &mut g);
    }

    #[test]
    fn gemm_nn_matches_naive_across_odd_shapes() {
        for &(m, k, n) in &[
            (1, 1, 1),
            (3, 5, 7),
            (17, 130, 9),
            (4, 4, 600),
            (33, 257, 19),
        ] {
            let a = random_mat(m, k, 1);
            let b = random_mat(k, n, 2);
            let mut c = vec![f32::NAN; m * n];
            gemm_nn(m, k, n, &a, &b, &mut c, false);
            assert_close(&c, &naive_nn(m, k, n, &a, &b));
        }
    }

    #[test]
    fn gemm_nn_accumulates() {
        let (m, k, n) = (5, 9, 11);
        let a = random_mat(m, k, 3);
        let b = random_mat(k, n, 4);
        let mut c = vec![1.0f32; m * n];
        gemm_nn(m, k, n, &a, &b, &mut c, true);
        let expected: Vec<f32> = naive_nn(m, k, n, &a, &b).iter().map(|v| v + 1.0).collect();
        assert_close(&c, &expected);
    }

    #[test]
    fn gemm_nt_matches_nn_of_transpose() {
        for &(m, k, n) in &[(2, 3, 4), (7, 129, 5), (1, 64, 1)] {
            let a = random_mat(m, k, 5);
            let bt = random_mat(n, k, 6); // B is [n, k]
                                          // Build B = [k, n] explicitly.
            let mut b = vec![0.0f32; k * n];
            for j in 0..n {
                for p in 0..k {
                    b[p * n + j] = bt[j * k + p];
                }
            }
            let mut c = vec![0.0f32; m * n];
            gemm_nt(m, k, n, &a, &bt, &mut c, false);
            assert_close(&c, &naive_nn(m, k, n, &a, &b));
        }
    }

    #[test]
    fn gemm_tn_matches_nn_of_transpose() {
        for &(m, k, n) in &[(2, 3, 4), (6, 130, 9), (1, 5, 600)] {
            let at = random_mat(k, m, 7); // A is [k, m]
            let b = random_mat(k, n, 8);
            let mut a = vec![0.0f32; m * k];
            for p in 0..k {
                for i in 0..m {
                    a[i * k + p] = at[p * m + i];
                }
            }
            let mut c = vec![0.0f32; m * n];
            gemm_tn(m, k, n, &at, &b, &mut c, false);
            assert_close(&c, &naive_nn(m, k, n, &a, &b));
        }
    }

    #[test]
    #[should_panic]
    fn gemm_rejects_bad_lengths() {
        let mut c = vec![0.0f32; 4];
        gemm_nn(2, 3, 2, &[0.0; 5], &[0.0; 6], &mut c, false);
    }

    #[test]
    fn scratch_variant_matches_and_reuses() {
        let mut rng = DeterministicRng::new(31);
        let n = 10;
        let vals: Vec<f32> = (0..n * n).map(|_| rng.normal()).collect();
        let b = tensor_from(n, &vals);
        let sym = b.add(&b.transpose().unwrap()).unwrap();
        let plain = sym_eigenvalues(&sym, EigenOptions::default()).unwrap();
        let mut scratch = Vec::new();
        let reused = sym_eigenvalues_with(&sym, EigenOptions::default(), &mut scratch).unwrap();
        assert_eq!(plain, reused);
        let cap = scratch.capacity();
        let again = sym_eigenvalues_with(&sym, EigenOptions::default(), &mut scratch).unwrap();
        assert_eq!(plain, again);
        assert_eq!(scratch.capacity(), cap, "second call must not reallocate");
    }

    #[test]
    fn already_diagonal_matrix_converges_in_zero_sweeps() {
        let m = tensor_from(3, &[3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]);
        let rep = sym_eigenvalues(&m, EigenOptions::default()).unwrap();
        assert!(rep.converged);
        assert_eq!(
            rep.sweeps, 0,
            "diagonal input must early-exit before any sweep"
        );
    }

    #[test]
    fn diagonal_matrix_eigenvalues_are_diagonal() {
        let m = tensor_from(3, &[3.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 2.0]);
        let rep = sym_eigenvalues(&m, EigenOptions::default()).unwrap();
        assert!(rep.converged);
        let evs: Vec<f64> = rep.eigenvalues.clone();
        assert!((evs[0] - 1.0).abs() < 1e-9);
        assert!((evs[1] - 2.0).abs() < 1e-9);
        assert!((evs[2] - 3.0).abs() < 1e-9);
        assert!((rep.condition_index(1) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn known_2x2_eigenvalues() {
        // [[2, 1], [1, 2]] has eigenvalues 1 and 3.
        let m = tensor_from(2, &[2.0, 1.0, 1.0, 2.0]);
        let rep = sym_eigenvalues(&m, EigenOptions::default()).unwrap();
        assert!((rep.lambda_min() - 1.0).abs() < 1e-9);
        assert!((rep.lambda_max() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn trace_is_preserved() {
        let mut rng = DeterministicRng::new(17);
        let n = 12;
        // Build a random symmetric matrix A = B + Bᵀ.
        let mut vals = vec![0.0f32; n * n];
        for i in 0..n {
            for j in 0..n {
                vals[i * n + j] = rng.normal();
            }
        }
        let b = tensor_from(n, &vals);
        let sym = b.add(&b.transpose().unwrap()).unwrap();
        let trace: f64 = (0..n).map(|i| sym.at2(i, i) as f64).sum();
        let rep = sym_eigenvalues(&sym, EigenOptions::default()).unwrap();
        let sum: f64 = rep.eigenvalues.iter().sum();
        assert!((trace - sum).abs() < 1e-3 * (1.0 + trace.abs()));
    }

    #[test]
    fn gram_matrix_is_psd() {
        // G = J Jᵀ must have non-negative eigenvalues.
        let mut rng = DeterministicRng::new(23);
        let (rows, cols) = (8, 20);
        let data: Vec<f32> = (0..rows * cols).map(|_| rng.normal()).collect();
        let j = Tensor::from_vec(Shape::d2(rows, cols), data).unwrap();
        let g = j.matmul(&j.transpose().unwrap()).unwrap();
        let rep = sym_eigenvalues(&g, EigenOptions::default()).unwrap();
        assert!(
            rep.eigenvalues.iter().all(|&e| e > -1e-4),
            "{:?}",
            rep.eigenvalues
        );
    }

    #[test]
    fn condition_index_saturates_and_is_monotone() {
        let m = tensor_from(3, &[4.0, 0.0, 0.0, 0.0, 2.0, 0.0, 0.0, 0.0, 1.0]);
        let rep = sym_eigenvalues(&m, EigenOptions::default()).unwrap();
        // K1 = 4/1, K2 = 4/2, K3 = 4/4, K10 saturates at K3.
        assert!((rep.condition_index(1) - 4.0).abs() < 1e-9);
        assert!((rep.condition_index(2) - 2.0).abs() < 1e-9);
        assert!((rep.condition_index(3) - 1.0).abs() < 1e-9);
        assert_eq!(rep.condition_index(10), rep.condition_index(3));
        assert!(rep.condition_index(1) >= rep.condition_index(2));
    }

    #[test]
    fn rejects_non_square_and_empty() {
        let rect = Tensor::zeros(Shape::d2(2, 3));
        assert!(sym_eigenvalues(&rect, EigenOptions::default()).is_err());
        let empty = Tensor::zeros(Shape::d2(0, 0));
        assert!(sym_eigenvalues(&empty, EigenOptions::default()).is_err());
        let vec1 = Tensor::zeros(Shape::d1(4));
        assert!(sym_eigenvalues(&vec1, EigenOptions::default()).is_err());
    }

    #[test]
    fn condition_number_of_identity_is_one() {
        let mut eye = Tensor::zeros(Shape::d2(5, 5));
        for i in 0..5 {
            *eye.at2_mut(i, i) = 1.0;
        }
        let k = condition_number(&eye, EigenOptions::default()).unwrap();
        assert!((k - 1.0).abs() < 1e-9);
    }

    #[test]
    fn singular_matrix_condition_is_finite() {
        // Rank-1 matrix: eigenvalues {0, 0, something}; condition clamps denominator.
        let m = tensor_from(3, &[1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0]);
        let k = condition_number(&m, EigenOptions::default()).unwrap();
        assert!(k.is_finite());
        assert!(k > 1e6);
    }
}
