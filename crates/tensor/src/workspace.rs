//! Reusable scratch-buffer arena for the im2col/GEMM convolution path and
//! the batched backward kernels.

/// Scratch buffers reused across convolution and backward-pass calls.
///
/// The im2col convolution kernels lower every image to a column matrix
/// before multiplying; without reuse that is one large allocation per layer
/// per forward/backward call, and the NTK / linear-region proxies run
/// thousands of such calls per candidate. A `Workspace` owns those buffers
/// and grows them to the largest size requested, so steady state evaluation
/// performs no allocation at all. Batch-level buffers matter doubly: a
/// batch-32 feature map is ~256 KiB, past the default malloc mmap threshold,
/// so a fresh allocation per call costs page faults on top of the memset.
///
/// Three kinds of scratch live here:
///
/// * the **column buffer** (`col_buffer`) holding the im2col
///   lowering of one image,
/// * the **auxiliary buffer** (`aux_buffer`) for kernels that
///   need a second staging area while the column buffer is in use (e.g. the
///   fused per-sample backward, which stages column gradients while the
///   column buffer holds the im2col lowering), and
/// * a **recycling pool** of whole-tensor buffers
///   ([`Workspace::take_zeroed`] / [`Workspace::recycle`]) used by the
///   batched backward pass for node-gradient and activation tensors.
///
/// # Contract
///
/// * A `Workspace` carries **no** numerical state between calls: every kernel
///   fully overwrites (or receives zero-filled) the region it requests.
///   Buffers may therefore be shared freely across layers, networks and
///   candidates.
/// * Workspaces are cheap to create (`Workspace::default()` holds empty
///   buffers); threading one through a hot loop is purely an allocation
///   optimisation, never a semantic change.
/// * A workspace must not be shared across threads concurrently (the type is
///   deliberately `!Sync` by virtue of requiring `&mut`); give each worker
///   its own instance.
///
/// # Memory policy
///
/// Buffers grow to the largest size requested and stay there by default,
/// which is the right trade for homogeneous workloads. Mixed-shape sequences
/// (e.g. a sweep whose largest cell is much bigger than the typical one)
/// would otherwise pin peak memory for the rest of the run, so callers that
/// interleave shapes can bound the footprint with
/// [`Workspace::reset_if_larger_than`] or [`Workspace::shrink_to_watermark`].
///
/// # Example
///
/// ```
/// use micronas_tensor::{conv2d_with, Conv2dSpec, Shape, Tensor, Workspace};
/// # fn main() -> Result<(), micronas_tensor::TensorError> {
/// let input = Tensor::ones(Shape::nchw(1, 3, 8, 8));
/// let weight = Tensor::ones(Shape::nchw(4, 3, 3, 3));
/// let mut ws = Workspace::default();
/// // Repeated calls reuse the same scratch memory.
/// let a = conv2d_with(&input, &weight, Conv2dSpec::new(3, 1, 1), &mut ws)?;
/// let b = conv2d_with(&input, &weight, Conv2dSpec::new(3, 1, 1), &mut ws)?;
/// assert_eq!(a, b);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// im2col column matrix (`[C_in·K·K, OH·OW]`), also used as the column
    /// gradient staging buffer in the input-gradient kernel.
    col: Vec<f32>,
    /// Second staging buffer for kernels that need scratch while `col` is
    /// live (per-sample fused backward).
    aux: Vec<f32>,
    /// Free list of recycled whole-tensor buffers, most recently returned
    /// last. Bounded by [`MAX_POOLED`].
    pool: Vec<Vec<f32>>,
    /// Largest *live* request watermark in bytes since the last shrink:
    /// tracks what the current workload actually needs, as opposed to the
    /// largest request ever seen.
    watermark: usize,
}

/// Upper bound on the number of buffers kept in the recycling pool. Sized
/// for the batched backward pass's working set: a forward trace (input,
/// stem output, four nodes per cell) plus the node gradients and per-edge
/// temporaries of one cell; anything beyond this is returned to the
/// allocator.
const MAX_POOLED: usize = 24;

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a column buffer of exactly `len` elements.
    ///
    /// The contents are unspecified; callers fully overwrite the region.
    pub(crate) fn col_buffer(&mut self, len: usize) -> &mut [f32] {
        if self.col.len() < len {
            self.col.resize(len, 0.0);
        }
        self.note(len * BYTES);
        &mut self.col[..len]
    }

    /// Returns the auxiliary staging buffer of exactly `len` elements — a
    /// distinct allocation from [`Workspace::col_buffer`], used by the
    /// input-gradient kernel to stage column gradients so the column buffer
    /// stays free for im2col lowerings held across the call.
    ///
    /// The contents are unspecified; callers fully overwrite the region.
    pub(crate) fn aux_buffer(&mut self, len: usize) -> &mut [f32] {
        if self.aux.len() < len {
            self.aux.resize(len, 0.0);
        }
        self.note(len * BYTES);
        &mut self.aux[..len]
    }

    /// Returns the column buffer and the auxiliary buffer simultaneously
    /// (`col_len` and `aux_len` elements respectively), for kernels that
    /// lower into one while staging into the other (the weight-gradient
    /// GEMMs hold an im2col lowering in `col` while transposing gradients
    /// into `aux`).
    ///
    /// Contents of both are unspecified; callers fully overwrite them.
    pub(crate) fn col_and_aux(
        &mut self,
        col_len: usize,
        aux_len: usize,
    ) -> (&mut [f32], &mut [f32]) {
        if self.col.len() < col_len {
            self.col.resize(col_len, 0.0);
        }
        if self.aux.len() < aux_len {
            self.aux.resize(aux_len, 0.0);
        }
        self.note((col_len + aux_len) * BYTES);
        (&mut self.col[..col_len], &mut self.aux[..aux_len])
    }

    /// Takes a zero-filled buffer of `len` elements from the recycling pool
    /// (or the allocator when the pool is empty).
    ///
    /// Pair with [`Workspace::recycle`] so the batched backward pass reuses
    /// the same few large buffers instead of round-tripping the allocator —
    /// batch-level tensors are large enough that every fresh allocation is
    /// an mmap plus page faults.
    pub fn take_zeroed(&mut self, len: usize) -> Vec<f32> {
        self.note(len * BYTES);
        // Prefer the most recently recycled buffer that can already hold the
        // request; backward passes cycle a few shapes in LIFO order, so the
        // last fit is almost always exact.
        let mut buf = match self.pool.iter().rposition(|b| b.capacity() >= len) {
            Some(i) => self.pool.swap_remove(i),
            None => self.pool.pop().unwrap_or_default(),
        };
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Takes a buffer of `len` elements with **unspecified contents** from
    /// the recycling pool (or the allocator). For targets the caller fully
    /// overwrites (copies, activations), this skips [`Workspace::take_zeroed`]'s
    /// clearing pass.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        self.note(len * BYTES);
        let mut buf = match self.pool.iter().rposition(|b| b.capacity() >= len) {
            Some(i) => self.pool.swap_remove(i),
            None => self.pool.pop().unwrap_or_default(),
        };
        if buf.len() >= len {
            buf.truncate(len);
        } else {
            buf.resize(len, 0.0);
        }
        buf
    }

    /// Returns a buffer taken with [`Workspace::take_zeroed`] to the pool.
    pub fn recycle(&mut self, buf: Vec<f32>) {
        if buf.capacity() > 0 && self.pool.len() < MAX_POOLED {
            self.pool.push(buf);
        }
    }

    /// Current scratch footprint in bytes (capacity, not live data), summed
    /// over the column, auxiliary and pooled buffers.
    pub fn capacity_bytes(&self) -> usize {
        (self.col.capacity() + self.aux.capacity()) * BYTES
            + self
                .pool
                .iter()
                .map(|b| b.capacity() * BYTES)
                .sum::<usize>()
    }

    /// Largest single-call scratch requirement (in bytes) observed since the
    /// last [`Workspace::shrink_to_watermark`] /
    /// [`Workspace::reset_if_larger_than`] — i.e. what the *current*
    /// workload needs, as opposed to what the buffers have grown to.
    pub fn watermark_bytes(&self) -> usize {
        self.watermark
    }

    /// Releases all scratch memory.
    pub fn clear(&mut self) {
        self.col = Vec::new();
        self.aux = Vec::new();
        self.pool.clear();
        self.watermark = 0;
    }

    /// Releases buffers, largest first, until the total footprint fits under
    /// `limit_bytes`.
    ///
    /// Call between heterogeneous work items (e.g. candidates of very
    /// different sizes) to stop one huge shape from pinning peak memory for
    /// the rest of the run. A single outsized request — such as the tall
    /// packed column panel of a cross-candidate mega-batch — releases only
    /// the buffers it bloated; ordinary-sized buffers the steady-state
    /// workload keeps warm stay in the arena instead of being thrown away
    /// wholesale. Returns whether anything was released.
    pub fn reset_if_larger_than(&mut self, limit_bytes: usize) -> bool {
        if self.capacity_bytes() <= limit_bytes {
            return false;
        }
        while self.capacity_bytes() > limit_bytes {
            let col_cap = self.col.capacity();
            let aux_cap = self.aux.capacity();
            let (pool_idx, pool_cap) = self
                .pool
                .iter()
                .enumerate()
                .map(|(i, b)| (i, b.capacity()))
                .max_by_key(|&(_, cap)| cap)
                .unwrap_or((0, 0));
            if pool_cap >= col_cap && pool_cap >= aux_cap {
                if pool_cap == 0 {
                    break;
                }
                self.pool.swap_remove(pool_idx);
            } else if col_cap >= aux_cap {
                self.col = Vec::new();
            } else {
                self.aux = Vec::new();
            }
        }
        self.watermark = 0;
        true
    }

    /// Shrinks buffers that are larger than the observed since-last-shrink
    /// watermark, then starts a new watermark window.
    ///
    /// Unlike [`Workspace::reset_if_larger_than`] this keeps buffers the
    /// current workload is actively using at full size; only capacity the
    /// recent workload never touched is returned to the allocator.
    pub fn shrink_to_watermark(&mut self) {
        let keep = self.watermark / BYTES;
        if self.col.capacity() > keep {
            self.col.truncate(keep);
            self.col.shrink_to_fit();
        }
        if self.aux.capacity() > keep {
            self.aux.truncate(keep);
            self.aux.shrink_to_fit();
        }
        self.pool.retain(|b| b.capacity() <= keep);
        self.watermark = 0;
    }

    /// Records a live request against the watermark.
    fn note(&mut self, bytes: usize) {
        if bytes > self.watermark {
            self.watermark = bytes;
            micronas_telemetry::gauge_max("tensor.workspace.high_water_bytes", bytes as u64);
        }
    }
}

const BYTES: usize = std::mem::size_of::<f32>();

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_grow_monotonically_and_are_reused() {
        let mut ws = Workspace::new();
        assert_eq!(ws.capacity_bytes(), 0);
        let first = ws.col_buffer(100).as_ptr();
        let cap = ws.capacity_bytes();
        assert!(cap >= 400);
        // A smaller request must reuse the same storage.
        let second = ws.col_buffer(10).as_ptr();
        assert_eq!(first, second);
        assert_eq!(ws.capacity_bytes(), cap);
        ws.clear();
        assert_eq!(ws.capacity_bytes(), 0);
    }

    #[test]
    fn buffer_has_requested_length() {
        let mut ws = Workspace::new();
        assert_eq!(ws.col_buffer(17).len(), 17);
        assert_eq!(ws.col_buffer(3).len(), 3);
        assert_eq!(ws.col_buffer(33).len(), 33);
    }

    #[test]
    fn col_and_aux_are_distinct_buffers() {
        let mut ws = Workspace::new();
        ws.col_buffer(64)[0] = 1.0;
        ws.aux_buffer(32)[0] = 2.0;
        assert_eq!(ws.col_buffer(64)[0], 1.0);
        assert_eq!(ws.aux_buffer(32)[0], 2.0);
        assert_eq!(ws.capacity_bytes(), (64 + 32) * BYTES);
    }

    #[test]
    fn take_preserves_capacity_without_zeroing_cost() {
        let mut ws = Workspace::new();
        let mut a = ws.take(100);
        a.fill(5.0);
        ws.recycle(a);
        let b = ws.take(50);
        assert_eq!(b.len(), 50, "unspecified contents, exact length");
        ws.recycle(b);
        let c = ws.take(200);
        assert_eq!(c.len(), 200);
    }

    #[test]
    fn pool_recycles_buffers() {
        let mut ws = Workspace::new();
        let a = ws.take_zeroed(1000);
        let ptr = a.as_ptr();
        ws.recycle(a);
        let b = ws.take_zeroed(500);
        assert_eq!(b.as_ptr(), ptr, "recycled buffer must be reused");
        assert!(b.iter().all(|&v| v == 0.0), "pooled buffers are re-zeroed");
        ws.recycle(b);
        // Dirty data never leaks through the pool.
        let mut c = ws.take_zeroed(1000);
        c.fill(7.0);
        ws.recycle(c);
        assert!(ws.take_zeroed(1000).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn pool_is_bounded() {
        let mut ws = Workspace::new();
        for _ in 0..(MAX_POOLED + 10) {
            ws.recycle(vec![0.0; 8]);
        }
        assert!(ws.capacity_bytes() <= MAX_POOLED * 8 * BYTES);
    }

    #[test]
    fn reset_if_larger_than_bounds_peak_memory() {
        let mut ws = Workspace::new();
        // A single huge shape (e.g. the largest sweep cell) ...
        ws.col_buffer(1 << 20);
        let peak = ws.capacity_bytes();
        assert!(peak >= (1 << 20) * BYTES);
        // ... would pin peak memory for the rest of the run without a
        // policy; under the limit nothing happens, over it everything is
        // released.
        assert!(!ws.reset_if_larger_than(2 * peak));
        assert_eq!(ws.capacity_bytes(), peak);
        assert!(ws.reset_if_larger_than(1 << 18));
        assert_eq!(ws.capacity_bytes(), 0);
        // The workspace stays fully usable afterwards.
        assert_eq!(ws.col_buffer(64).len(), 64);
    }

    #[test]
    fn reset_after_tall_packed_panel_keeps_steady_state_buffers() {
        let mut ws = Workspace::new();
        // Steady-state candidate evaluation: modest col/aux buffers plus a
        // couple of pooled feature maps.
        ws.col_buffer(4 * 1024);
        ws.aux_buffer(2 * 1024);
        let a = ws.take_zeroed(8 * 1024);
        let b = ws.take_zeroed(8 * 1024);
        let pooled_ptr = b.as_ptr();
        ws.recycle(a);
        ws.recycle(b);
        let steady = ws.capacity_bytes();
        // One wide mega-batch bucket blows the column panel up ~64×.
        ws.col_buffer(256 * 1024);
        assert!(ws.capacity_bytes() > steady);
        // The policy releases the tall panel but must NOT throw away the
        // steady-state buffers with it: the pooled feature maps survive.
        assert!(ws.reset_if_larger_than(steady));
        assert!(
            ws.capacity_bytes() <= steady,
            "tall panel still pinned: {} > {steady}",
            ws.capacity_bytes()
        );
        assert!(
            ws.capacity_bytes() >= 2 * 8 * 1024 * BYTES,
            "steady-state pool discarded: {}",
            ws.capacity_bytes()
        );
        let c = ws.take_zeroed(8 * 1024);
        assert_eq!(c.as_ptr(), pooled_ptr, "warm pooled buffer must survive");
        ws.recycle(c);
        // Under the limit, nothing happens.
        assert!(!ws.reset_if_larger_than(steady));
    }

    #[test]
    fn reset_after_tall_packed_backward_panel_keeps_steady_state_buffers() {
        let mut ws = Workspace::new();
        // Steady-state solo backward: a per-sample col lowering plus
        // transpose staging, and pooled `[N, P]` gradient matrices cycling
        // through the pool.
        ws.col_and_aux(4 * 1024, 2 * 1024);
        let a = ws.take_zeroed(16 * 1024);
        let b = ws.take_zeroed(16 * 1024);
        let pooled_ptr = b.as_ptr();
        ws.recycle(a);
        ws.recycle(b);
        let steady = ws.capacity_bytes();
        let steady_watermark = ws.watermark_bytes();
        assert_eq!(steady_watermark, 16 * 1024 * BYTES);
        // One packed backward sweep lowers the full batch into a tall
        // shared column panel: col grows ~N× while aux stays solo-sized.
        ws.col_and_aux(512 * 1024, 2 * 1024);
        assert!(ws.capacity_bytes() > steady);
        assert!(
            ws.watermark_bytes() >= (512 * 1024 + 2 * 1024) * BYTES,
            "watermark missed the packed backward panel: {}",
            ws.watermark_bytes()
        );
        // Selective trim: the tall backward panel goes, the steady-state
        // staging and the warm pooled gradient matrices stay.
        assert!(ws.reset_if_larger_than(steady));
        assert!(
            ws.capacity_bytes() <= steady,
            "tall backward panel still pinned: {} > {steady}",
            ws.capacity_bytes()
        );
        assert!(
            ws.capacity_bytes() >= 2 * 16 * 1024 * BYTES,
            "steady-state pool discarded: {}",
            ws.capacity_bytes()
        );
        let c = ws.take_zeroed(16 * 1024);
        assert_eq!(c.as_ptr(), pooled_ptr, "warm pooled buffer must survive");
        ws.recycle(c);
        // The watermark restarts with the trim: the next window reflects
        // the post-trim workload, not the packed sweep's peak.
        assert_eq!(ws.watermark_bytes(), 16 * 1024 * BYTES);
        assert!(!ws.reset_if_larger_than(steady));
    }

    #[test]
    fn shrink_to_watermark_after_mixed_shapes() {
        let mut ws = Workspace::new();
        // One huge outlier request, then a steady small workload.
        ws.col_buffer(1 << 20);
        ws.shrink_to_watermark(); // close the window containing the outlier
        for _ in 0..8 {
            ws.col_buffer(1024);
            let t = ws.take_zeroed(2048);
            ws.recycle(t);
        }
        assert_eq!(ws.watermark_bytes(), 2048 * BYTES);
        ws.shrink_to_watermark();
        // Regression check on peak capacity: after shrinking, the footprint
        // reflects the small workload, not the 4 MiB outlier.
        assert!(
            ws.capacity_bytes() <= 2 * 2048 * BYTES + 1024 * BYTES,
            "capacity {} still pinned by the outlier",
            ws.capacity_bytes()
        );
        // Still correct afterwards.
        assert_eq!(ws.col_buffer(100).len(), 100);
        assert!(ws.take_zeroed(10).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn watermark_tracks_largest_live_request() {
        let mut ws = Workspace::new();
        ws.col_buffer(10);
        ws.take_zeroed(300);
        ws.col_buffer(100);
        assert_eq!(ws.watermark_bytes(), 300 * BYTES);
    }
}
