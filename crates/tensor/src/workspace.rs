//! Reusable scratch-buffer arena for the im2col/GEMM convolution path.

/// Scratch buffers reused across convolution calls.
///
/// The im2col convolution kernels lower every image to a column matrix
/// before multiplying; without reuse that is one large allocation per layer
/// per forward/backward call, and the NTK / linear-region proxies run
/// thousands of such calls per candidate. A `Workspace` owns those buffers
/// and grows them monotonically to the largest size requested, so steady
/// state evaluation performs no allocation at all.
///
/// # Contract
///
/// * A `Workspace` carries **no** numerical state between calls: every kernel
///   fully overwrites the region it requests before reading it. Buffers may
///   therefore be shared freely across layers, networks and candidates.
/// * Workspaces are cheap to create (`Workspace::default()` holds empty
///   buffers); threading one through a hot loop is purely an allocation
///   optimisation, never a semantic change.
/// * A workspace must not be shared across threads concurrently (the type is
///   deliberately `!Sync` by virtue of requiring `&mut`); give each worker
///   its own instance.
///
/// # Example
///
/// ```
/// use micronas_tensor::{conv2d_with, Conv2dSpec, Shape, Tensor, Workspace};
/// # fn main() -> Result<(), micronas_tensor::TensorError> {
/// let input = Tensor::ones(Shape::nchw(1, 3, 8, 8));
/// let weight = Tensor::ones(Shape::nchw(4, 3, 3, 3));
/// let mut ws = Workspace::default();
/// // Repeated calls reuse the same scratch memory.
/// let a = conv2d_with(&input, &weight, Conv2dSpec::new(3, 1, 1), &mut ws)?;
/// let b = conv2d_with(&input, &weight, Conv2dSpec::new(3, 1, 1), &mut ws)?;
/// assert_eq!(a, b);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    /// im2col column matrix (`[C_in·K·K, OH·OW]`), also used as the column
    /// gradient staging buffer in the input-gradient kernel.
    col: Vec<f32>,
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns a column buffer of exactly `len` elements.
    ///
    /// The contents are unspecified; callers fully overwrite the region.
    pub(crate) fn col_buffer(&mut self, len: usize) -> &mut [f32] {
        if self.col.len() < len {
            self.col.resize(len, 0.0);
        }
        &mut self.col[..len]
    }

    /// Current scratch footprint in bytes (capacity, not live data).
    pub fn capacity_bytes(&self) -> usize {
        self.col.capacity() * std::mem::size_of::<f32>()
    }

    /// Releases all scratch memory.
    pub fn clear(&mut self) {
        self.col = Vec::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffers_grow_monotonically_and_are_reused() {
        let mut ws = Workspace::new();
        assert_eq!(ws.capacity_bytes(), 0);
        let first = ws.col_buffer(100).as_ptr();
        let cap = ws.capacity_bytes();
        assert!(cap >= 400);
        // A smaller request must reuse the same storage.
        let second = ws.col_buffer(10).as_ptr();
        assert_eq!(first, second);
        assert_eq!(ws.capacity_bytes(), cap);
        ws.clear();
        assert_eq!(ws.capacity_bytes(), 0);
    }

    #[test]
    fn buffer_has_requested_length() {
        let mut ws = Workspace::new();
        assert_eq!(ws.col_buffer(17).len(), 17);
        assert_eq!(ws.col_buffer(3).len(), 3);
        assert_eq!(ws.col_buffer(33).len(), 33);
    }
}
