//! 2-D convolution kernels (forward, input gradient, weight gradient).
//!
//! Layout conventions follow NCHW for activations and `[out_c, in_c, kh, kw]`
//! for weights, matching the NAS-Bench-201 reference implementation.
//!
//! # Kernel selection
//!
//! Two implementations exist for every kernel:
//!
//! * **Direct** loops ([`conv2d_direct`] and friends): simple quadruple
//!   loops. They are the correctness oracle — the property tests check the
//!   GEMM path against them — and the faster choice for very small problems
//!   where lowering overhead dominates.
//! * **im2col + GEMM** (the default): each image is lowered to a column
//!   matrix (`[C_in·K·K, OH·OW]`) inside a reusable [`Workspace`] buffer and
//!   multiplied with the cache-blocked GEMM kernels from [`crate::ops`]'s
//!   sibling module `linalg`. 1×1 / stride-1 / no-padding convolutions skip
//!   the lowering entirely and multiply the input in place.
//!
//! [`ConvEngine::Auto`] (the default) picks direct kernels below a small
//! work threshold and GEMM above it. Benchmarks and tests can pin an engine
//! process-wide with [`set_conv_engine`].
//!
//! # Workspace reuse
//!
//! The `*_with` variants ([`conv2d_with`], [`conv2d_backward_weight_with`],
//! [`conv2d_backward_input_with`]) take a `&mut Workspace` and are what the
//! neural-network layer above threads through its forward/backward passes so
//! repeated evaluation (NTK repeats, linear-region probes) allocates no
//! scratch. The `*_pooled` variants additionally draw their *output* tensors
//! from the workspace's recycling pool — batch-level feature maps are past
//! the allocator's mmap threshold, so fresh allocation per call costs page
//! faults. The plain entry points allocate a fresh workspace per call and
//! are otherwise identical.
//!
//! # Per-sample weight gradients
//!
//! [`conv2d_backward_weight_per_sample_with`] /
//! [`conv2d_backward_weight_per_sample_into`] emit one weight gradient per
//! batch element from a single shared lowering per sample — the kernel
//! behind batched per-sample gradients for the NTK Gram matrix, with
//! [`conv2d_backward_weight_per_sample_direct`] as its naive-loop oracle.

use crate::linalg::{gemm_nn, gemm_tn};
use crate::{Result, Shape, Tensor, TensorError, Workspace};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU8, Ordering};

/// Static description of a 2-D convolution: kernel size, stride and padding.
///
/// # Example
///
/// ```
/// use micronas_tensor::Conv2dSpec;
/// let spec = Conv2dSpec::new(3, 1, 1);
/// assert_eq!(spec.output_hw(32, 32), (32, 32));
/// let down = Conv2dSpec::new(3, 2, 1);
/// assert_eq!(down.output_hw(32, 32), (16, 16));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2dSpec {
    /// Square kernel size (e.g. 1 or 3).
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding in both spatial dimensions.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Creates a new convolution spec.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize, padding: usize) -> Self {
        assert!(kernel > 0, "kernel must be positive");
        assert!(stride > 0, "stride must be positive");
        Self {
            kernel,
            stride,
            padding,
        }
    }

    /// Spatial output size for a given input size.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding).saturating_sub(self.kernel) / self.stride + 1;
        let ow = (w + 2 * self.padding).saturating_sub(self.kernel) / self.stride + 1;
        (oh, ow)
    }

    /// Whether this convolution is a pure channel mix (1×1, stride 1, no
    /// padding), for which im2col lowering is the identity.
    pub(crate) fn is_pointwise(&self) -> bool {
        self.kernel == 1 && self.stride == 1 && self.padding == 0
    }
}

/// Which convolution implementation the dispatching entry points use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvEngine {
    /// Pick per call: direct below a small-work threshold, GEMM above.
    Auto,
    /// Always use the direct (naive-loop) reference kernels.
    Direct,
    /// Always use the im2col + GEMM kernels.
    Im2colGemm,
}

/// Process-wide engine override: 0 = Auto, 1 = Direct, 2 = Im2colGemm.
static CONV_ENGINE: AtomicU8 = AtomicU8::new(0);

/// Pins the convolution engine process-wide.
///
/// Intended for benchmarks (measuring direct vs GEMM on identical inputs)
/// and for the equivalence property tests; production code should leave the
/// default [`ConvEngine::Auto`] in place.
///
/// **Store hazard:** the pin changes the numerics of the paper-default
/// execution path (and of the `blocked_gemm` backend, which *is* that
/// path), but it is not part of any store identity — evaluations computed
/// under a non-`Auto` pin must never be written into a shared
/// `micronas-store` log. Benches pin temporarily around storeless
/// measurements and restore `Auto`; do the same. The other backends
/// (`direct`, `simd`, `int8_mcu`) ignore the pin entirely.
pub fn set_conv_engine(engine: ConvEngine) {
    let code = match engine {
        ConvEngine::Auto => 0,
        ConvEngine::Direct => 1,
        ConvEngine::Im2colGemm => 2,
    };
    CONV_ENGINE.store(code, Ordering::Relaxed);
}

/// The engine currently in force.
pub fn conv_engine() -> ConvEngine {
    match CONV_ENGINE.load(Ordering::Relaxed) {
        1 => ConvEngine::Direct,
        2 => ConvEngine::Im2colGemm,
        _ => ConvEngine::Auto,
    }
}

/// Under [`ConvEngine::Auto`], problems with fewer MACs than this use the
/// direct kernels: at that size the im2col lowering costs more than the
/// multiply saves.
pub(crate) const DIRECT_MAC_THRESHOLD: usize = 4_096;

/// Whether a problem sits below [`DIRECT_MAC_THRESHOLD`] — a pure function
/// of the shape, independent of the process-global engine pin. Backends
/// whose numerics must not vary with [`set_conv_engine`] (everything except
/// the paper-default blocked path, which deliberately honours the pin)
/// dispatch on this instead of [`use_direct`].
pub(crate) fn below_direct_threshold(
    n: usize,
    c_in: usize,
    c_out: usize,
    k: usize,
    oh: usize,
    ow: usize,
) -> bool {
    n * c_out * c_in * k * k * oh * ow < DIRECT_MAC_THRESHOLD
}

/// Serialises every test in this crate that pins (or asserts independence
/// from) the process-global conv engine: without a shared lock, one test
/// restoring `Auto` could silently downgrade another test's pinned engine
/// mid-comparison.
#[cfg(test)]
pub(crate) static ENGINE_TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

pub(crate) fn use_direct(
    n: usize,
    c_in: usize,
    c_out: usize,
    k: usize,
    oh: usize,
    ow: usize,
) -> bool {
    match conv_engine() {
        ConvEngine::Direct => true,
        ConvEngine::Im2colGemm => false,
        ConvEngine::Auto => below_direct_threshold(n, c_in, c_out, k, oh, ow),
    }
}

pub(crate) fn check_conv_args(
    input: &Tensor,
    weight: &Tensor,
    spec: Conv2dSpec,
) -> Result<(usize, usize, usize, usize, usize, usize)> {
    let id = input.shape().dims();
    let wd = weight.shape().dims();
    if id.len() != 4 {
        return Err(TensorError::RankMismatch {
            op: "conv2d input",
            expected: 4,
            actual: id.len(),
        });
    }
    if wd.len() != 4 {
        return Err(TensorError::RankMismatch {
            op: "conv2d weight",
            expected: 4,
            actual: wd.len(),
        });
    }
    if id[1] != wd[1] {
        return Err(TensorError::IncompatibleShapes {
            op: "conv2d (channels)",
            lhs: id.to_vec(),
            rhs: wd.to_vec(),
        });
    }
    if wd[2] != spec.kernel || wd[3] != spec.kernel {
        return Err(TensorError::InvalidArgument(format!(
            "weight kernel {}x{} does not match spec kernel {}",
            wd[2], wd[3], spec.kernel
        )));
    }
    Ok((id[0], id[1], id[2], id[3], wd[0], wd[2]))
}

// ---------------------------------------------------------------------------
// im2col lowering
// ---------------------------------------------------------------------------

/// Lowers one image (`[C, H, W]` slice) into a `[C·K·K, OH·OW]` column
/// matrix. Every element of `col` is written (padding regions get zeros), so
/// the buffer needs no prior clearing.
#[allow(clippy::too_many_arguments)]
pub(crate) fn im2col(
    image: &[f32],
    c_in: usize,
    h: usize,
    w: usize,
    spec: Conv2dSpec,
    oh: usize,
    ow: usize,
    col: &mut [f32],
) {
    let k = spec.kernel;
    let ohow = oh * ow;
    debug_assert_eq!(col.len(), c_in * k * k * ohow);
    micronas_telemetry::counter_add(
        "tensor.im2col.bytes",
        (c_in * k * k * ohow * std::mem::size_of::<f32>()) as u64,
    );
    for c in 0..c_in {
        let plane = &image[c * h * w..(c + 1) * h * w];
        for ky in 0..k {
            for kx in 0..k {
                let row = (c * k + ky) * k + kx;
                let dst = &mut col[row * ohow..(row + 1) * ohow];
                for oy in 0..oh {
                    let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                    let dst_row = &mut dst[oy * ow..(oy + 1) * ow];
                    if iy < 0 || iy >= h as isize {
                        dst_row.fill(0.0);
                        continue;
                    }
                    let src_row = &plane[iy as usize * w..(iy as usize + 1) * w];
                    if spec.stride == 1 {
                        // Contiguous middle segment: ix = ox + kx - padding.
                        let shift = kx as isize - spec.padding as isize;
                        let ox_lo = (-shift).clamp(0, ow as isize) as usize;
                        let ox_hi = (w as isize - shift).clamp(0, ow as isize) as usize;
                        dst_row[..ox_lo].fill(0.0);
                        dst_row[ox_hi..].fill(0.0);
                        if ox_lo < ox_hi {
                            let src_lo = (ox_lo as isize + shift) as usize;
                            dst_row[ox_lo..ox_hi]
                                .copy_from_slice(&src_row[src_lo..src_lo + (ox_hi - ox_lo)]);
                        }
                    } else {
                        for (ox, out) in dst_row.iter_mut().enumerate() {
                            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                            *out = if ix < 0 || ix >= w as isize {
                                0.0
                            } else {
                                src_row[ix as usize]
                            };
                        }
                    }
                }
            }
        }
    }
}

/// [`im2col`] into a slice of a wider column matrix: lowers one image into
/// the `oh·ow` columns starting at `col_offset` of a destination whose rows
/// are `row_stride` elements long. The cross-candidate packed forward uses
/// this to place several candidates' panels side by side in one tall column
/// matrix; `im2col(.., col)` is exactly `im2col_strided(.., col, ohow, 0)`.
/// Every element of the addressed region is written.
#[allow(clippy::too_many_arguments)]
pub(crate) fn im2col_strided(
    image: &[f32],
    c_in: usize,
    h: usize,
    w: usize,
    spec: Conv2dSpec,
    oh: usize,
    ow: usize,
    col: &mut [f32],
    row_stride: usize,
    col_offset: usize,
) {
    let k = spec.kernel;
    let ohow = oh * ow;
    micronas_telemetry::counter_add(
        "tensor.im2col.bytes",
        (c_in * k * k * ohow * std::mem::size_of::<f32>()) as u64,
    );
    debug_assert!(col_offset + ohow <= row_stride);
    debug_assert!(col.len() >= (c_in * k * k - 1) * row_stride + col_offset + ohow);
    for c in 0..c_in {
        let plane = &image[c * h * w..(c + 1) * h * w];
        for ky in 0..k {
            for kx in 0..k {
                let row = (c * k + ky) * k + kx;
                let dst = &mut col[row * row_stride + col_offset..][..ohow];
                for oy in 0..oh {
                    let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                    let dst_row = &mut dst[oy * ow..(oy + 1) * ow];
                    if iy < 0 || iy >= h as isize {
                        dst_row.fill(0.0);
                        continue;
                    }
                    let src_row = &plane[iy as usize * w..(iy as usize + 1) * w];
                    if spec.stride == 1 {
                        let shift = kx as isize - spec.padding as isize;
                        let ox_lo = (-shift).clamp(0, ow as isize) as usize;
                        let ox_hi = (w as isize - shift).clamp(0, ow as isize) as usize;
                        dst_row[..ox_lo].fill(0.0);
                        dst_row[ox_hi..].fill(0.0);
                        if ox_lo < ox_hi {
                            let src_lo = (ox_lo as isize + shift) as usize;
                            dst_row[ox_lo..ox_hi]
                                .copy_from_slice(&src_row[src_lo..src_lo + (ox_hi - ox_lo)]);
                        }
                    } else {
                        for (ox, out) in dst_row.iter_mut().enumerate() {
                            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                            *out = if ix < 0 || ix >= w as isize {
                                0.0
                            } else {
                                src_row[ix as usize]
                            };
                        }
                    }
                }
            }
        }
    }
}

/// Scatter-adds a `[C·K·K, OH·OW]` column-gradient matrix back into one
/// image-gradient slice (`[C, H, W]`); the inverse of [`im2col`].
#[allow(clippy::too_many_arguments)]
pub(crate) fn col2im_add(
    col: &[f32],
    c_in: usize,
    h: usize,
    w: usize,
    spec: Conv2dSpec,
    oh: usize,
    ow: usize,
    image_grad: &mut [f32],
) {
    let k = spec.kernel;
    let ohow = oh * ow;
    debug_assert_eq!(col.len(), c_in * k * k * ohow);
    for c in 0..c_in {
        let plane = &mut image_grad[c * h * w..(c + 1) * h * w];
        for ky in 0..k {
            for kx in 0..k {
                let row = (c * k + ky) * k + kx;
                let src = &col[row * ohow..(row + 1) * ohow];
                for oy in 0..oh {
                    let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let src_row = &src[oy * ow..(oy + 1) * ow];
                    let dst_row = &mut plane[iy as usize * w..(iy as usize + 1) * w];
                    if spec.stride == 1 {
                        let shift = kx as isize - spec.padding as isize;
                        let ox_lo = (-shift).clamp(0, ow as isize) as usize;
                        let ox_hi = (w as isize - shift).clamp(0, ow as isize) as usize;
                        if ox_lo < ox_hi {
                            let dst_lo = (ox_lo as isize + shift) as usize;
                            for (d, s) in dst_row[dst_lo..dst_lo + (ox_hi - ox_lo)]
                                .iter_mut()
                                .zip(&src_row[ox_lo..ox_hi])
                            {
                                *d += s;
                            }
                        }
                    } else {
                        for (ox, &g) in src_row.iter().enumerate() {
                            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                            if ix >= 0 && ix < w as isize {
                                dst_row[ix as usize] += g;
                            }
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Forward
// ---------------------------------------------------------------------------

/// Forward 2-D convolution.
///
/// `input` is `[N, C_in, H, W]`, `weight` is `[C_out, C_in, K, K]`; the
/// result is `[N, C_out, H_out, W_out]` per [`Conv2dSpec::output_hw`].
///
/// Dispatches between the direct and im2col/GEMM kernels (see the module
/// docs); allocates a throwaway workspace. Hot loops should prefer
/// [`conv2d_with`].
///
/// # Errors
///
/// Returns an error if ranks or channel counts are inconsistent, or if the
/// weight kernel size does not match `spec.kernel`.
pub fn conv2d(input: &Tensor, weight: &Tensor, spec: Conv2dSpec) -> Result<Tensor> {
    conv2d_with(input, weight, spec, &mut Workspace::default())
}

/// [`conv2d_with`] drawing the output tensor from the workspace recycling
/// pool instead of the allocator.
///
/// Numerically identical to [`conv2d_with`]; the only difference is where
/// the output buffer comes from. Callers that return the tensor to the pool
/// ([`Workspace::recycle`]) when done make steady-state forward passes
/// allocation-free — batch-level feature maps are large enough that a fresh
/// allocation per call costs an mmap plus page faults.
///
/// # Errors
///
/// Same conditions as [`conv2d`].
pub fn conv2d_pooled(
    input: &Tensor,
    weight: &Tensor,
    spec: Conv2dSpec,
    workspace: &mut Workspace,
) -> Result<Tensor> {
    let (n, _, h, w, c_out, _) = check_conv_args(input, weight, spec)?;
    let (oh, ow) = spec.output_hw(h, w);
    let shape = Shape::nchw(n, c_out, oh, ow);
    // Unspecified contents: every dispatch path fully overwrites the output
    // (the direct loops assign each element; the GEMM branches run with
    // accumulate=false, which clears the destination themselves).
    let out = Tensor::from_vec(shape, workspace.take(n * c_out * oh * ow))
        .expect("length matches shape by construction");
    conv2d_assign(input, weight, spec, workspace, out)
}

/// [`conv2d`] with an explicit scratch [`Workspace`].
///
/// # Errors
///
/// Same conditions as [`conv2d`].
pub fn conv2d_with(
    input: &Tensor,
    weight: &Tensor,
    spec: Conv2dSpec,
    workspace: &mut Workspace,
) -> Result<Tensor> {
    let (n, _c_in, h, w, c_out, _) = check_conv_args(input, weight, spec)?;
    let (oh, ow) = spec.output_hw(h, w);
    let out = Tensor::zeros(Shape::nchw(n, c_out, oh, ow));
    conv2d_assign(input, weight, spec, workspace, out)
}

/// Dispatching forward-conv body: writes into the pre-zeroed `out` (owned by
/// the caller, either fresh or from the workspace pool) and returns it.
/// Arguments have been validated.
fn conv2d_assign(
    input: &Tensor,
    weight: &Tensor,
    spec: Conv2dSpec,
    workspace: &mut Workspace,
    mut out: Tensor,
) -> Result<Tensor> {
    let id = input.shape().dims();
    let (n, c_in, h, w) = (id[0], id[1], id[2], id[3]);
    let c_out = weight.shape().dims()[0];
    let k = spec.kernel;
    let (oh, ow) = spec.output_hw(h, w);
    if use_direct(n, c_in, c_out, k, oh, ow) {
        // Arguments are already validated; go straight to the loops.
        conv2d_direct_unchecked(input, weight, spec, n, c_in, h, w, c_out, oh, ow, &mut out);
        return Ok(out);
    }

    let ohow = oh * ow;
    let ckk = c_in * k * k;
    let in_stride = c_in * h * w;
    let out_stride = c_out * ohow;
    let w_mat = weight.data(); // [C_out, C_in·K·K], already contiguous.
    let out_data = out.data_mut();
    if spec.is_pointwise() {
        // The column matrix of a pointwise conv is the image itself.
        for b in 0..n {
            let image = &input.data()[b * in_stride..(b + 1) * in_stride];
            let dst = &mut out_data[b * out_stride..(b + 1) * out_stride];
            gemm_nn(c_out, ckk, ohow, w_mat, image, dst, false);
        }
        return Ok(out);
    }
    let col = workspace.col_buffer(ckk * ohow);
    for b in 0..n {
        let image = &input.data()[b * in_stride..(b + 1) * in_stride];
        im2col(image, c_in, h, w, spec, oh, ow, col);
        let dst = &mut out_data[b * out_stride..(b + 1) * out_stride];
        gemm_nn(c_out, ckk, ohow, w_mat, col, dst, false);
    }
    Ok(out)
}

/// Direct (naive-loop) forward convolution: the reference implementation.
///
/// # Errors
///
/// Same conditions as [`conv2d`].
pub fn conv2d_direct(input: &Tensor, weight: &Tensor, spec: Conv2dSpec) -> Result<Tensor> {
    let (n, c_in, h, w, c_out, _) = check_conv_args(input, weight, spec)?;
    let (oh, ow) = spec.output_hw(h, w);
    let mut out = Tensor::zeros(Shape::nchw(n, c_out, oh, ow));
    conv2d_direct_unchecked(input, weight, spec, n, c_in, h, w, c_out, oh, ow, &mut out);
    Ok(out)
}

/// Loop body of [`conv2d_direct`], writing every element of `out`; callers
/// have validated the arguments.
#[allow(clippy::too_many_arguments)]
pub(crate) fn conv2d_direct_unchecked(
    input: &Tensor,
    weight: &Tensor,
    spec: Conv2dSpec,
    n: usize,
    c_in: usize,
    h: usize,
    w: usize,
    c_out: usize,
    oh: usize,
    ow: usize,
    out: &mut Tensor,
) {
    for b in 0..n {
        for oc in 0..c_out {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ic in 0..c_in {
                        for ky in 0..spec.kernel {
                            let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..spec.kernel {
                                let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc += input.at4(b, ic, iy as usize, ix as usize)
                                    * weight.at4(oc, ic, ky, kx);
                            }
                        }
                    }
                    *out.at4_mut(b, oc, oy, ox) = acc;
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Cross-candidate packed forward
// ---------------------------------------------------------------------------

/// Whether packing several same-geometry convolutions into one wide GEMM is
/// **bitwise identical** to running them one at a time.
///
/// Both GEMM schedules accumulate every output element over `k` in the same
/// order regardless of the output width, so widening the column panel from
/// `oh·ow` to `P·n·oh·ow` only changes numerics if it moves the dispatch in
/// [`gemm_nn`] across the narrow/wide schedule boundary. Merging is safe iff
/// the solo shape already dispatches to a width-independent decision:
///
/// * `ckk ≥ GEMM_DEEP_K` — deep problems use the register-tiled schedule at
///   any width, or
/// * `ohow > GEMM_NARROW_N` — the solo GEMM is already on the wide streaming
///   schedule, and the packed (strictly wider) panel stays there.
///
/// Otherwise (`ohow ≤ 32` and `ckk < 64`) the solo GEMM is register-tiled
/// but the packed one would go wide, so the packed path must fall back to
/// the per-candidate loop.
fn pack_preserves_gemm_schedule(ckk: usize, ohow: usize) -> bool {
    use crate::linalg::{GEMM_DEEP_K, GEMM_NARROW_N};
    ckk >= GEMM_DEEP_K || ohow > GEMM_NARROW_N
}

/// Forward convolution of several same-shape inputs against one shared
/// weight tensor, packed into a single wide GEMM when that is bitwise-safe.
///
/// This is the cross-candidate mega-batching kernel: N candidates whose
/// layers share a geometry (`c_in, c_out, kernel, h, w`) have their im2col
/// panels placed side by side in one tall `[C_in·K·K, N·n·OH·OW]` column
/// matrix and multiplied in one dispatch, amortising the GEMM setup,
/// blocking overhead and weight traffic that dominate tiny per-candidate
/// problems. Output tensors are drawn from the workspace recycling pool
/// (recycle them like [`conv2d_pooled`] outputs).
///
/// **Bitwise contract:** the result is bit-for-bit identical to calling
/// [`conv2d_pooled`] once per input. The packed GEMM runs only when the
/// solo dispatch decisions are provably width-independent (same direct/GEMM
/// choice — geometry-determined — and same GEMM schedule, see
/// `pack_preserves_gemm_schedule`); anything else falls back to the
/// per-candidate loop.
///
/// # Errors
///
/// Returns an error under the same conditions as [`conv2d`], or if the
/// inputs do not all share one shape.
pub fn conv2d_forward_packed_pooled(
    inputs: &[&Tensor],
    weight: &Tensor,
    spec: Conv2dSpec,
    workspace: &mut Workspace,
) -> Result<Vec<Tensor>> {
    let Some(first) = inputs.first() else {
        return Ok(Vec::new());
    };
    let (n, c_in, h, w, c_out, k) = check_conv_args(first, weight, spec)?;
    for input in &inputs[1..] {
        if input.shape() != first.shape() {
            return Err(TensorError::IncompatibleShapes {
                op: "conv2d_forward_packed (inputs)",
                lhs: first.shape().dims().to_vec(),
                rhs: input.shape().dims().to_vec(),
            });
        }
    }
    let (oh, ow) = spec.output_hw(h, w);
    let ohow = oh * ow;
    let ckk = c_in * k * k;
    if inputs.len() == 1
        || use_direct(n, c_in, c_out, k, oh, ow)
        || !pack_preserves_gemm_schedule(ckk, ohow)
    {
        // Per-candidate oracle path: identical geometry means every input
        // makes the same dispatch decision the solo path would.
        return inputs
            .iter()
            .map(|input| conv2d_pooled(input, weight, spec, workspace))
            .collect();
    }

    let pack = inputs.len();
    let total_cols = pack * n * ohow;
    let in_stride = c_in * h * w;
    let out_stride = c_out * ohow;
    // Draw the owned per-candidate outputs from the pool *before* borrowing
    // the col/aux staging buffers.
    let mut outs: Vec<Vec<f32>> = (0..pack).map(|_| workspace.take(n * out_stride)).collect();
    let (col, aux) = workspace.col_and_aux(ckk * total_cols, c_out * total_cols);
    for (p, input) in inputs.iter().enumerate() {
        for b in 0..n {
            let image = &input.data()[b * in_stride..(b + 1) * in_stride];
            let col_offset = (p * n + b) * ohow;
            if spec.is_pointwise() {
                // The column matrix of a pointwise conv is the image itself:
                // copy its rows into place instead of lowering.
                for row in 0..ckk {
                    col[row * total_cols + col_offset..][..ohow]
                        .copy_from_slice(&image[row * ohow..(row + 1) * ohow]);
                }
            } else {
                im2col_strided(image, c_in, h, w, spec, oh, ow, col, total_cols, col_offset);
            }
        }
    }
    // One wide dispatch for the whole bucket. `accumulate = false` clears
    // the destination, so stale pool contents are harmless.
    gemm_nn(c_out, ckk, total_cols, weight.data(), col, aux, false);
    // De-interleave the `[C_out, total_cols]` product into per-candidate
    // `[n, C_out, OH, OW]` tensors.
    for (p, out) in outs.iter_mut().enumerate() {
        for b in 0..n {
            let col_offset = (p * n + b) * ohow;
            for oc in 0..c_out {
                out[b * out_stride + oc * ohow..][..ohow]
                    .copy_from_slice(&aux[oc * total_cols + col_offset..][..ohow]);
            }
        }
    }
    let shape = Shape::nchw(n, c_out, oh, ow);
    Ok(outs
        .into_iter()
        .map(|data| {
            Tensor::from_vec(shape.clone(), data).expect("length matches shape by construction")
        })
        .collect())
}

// ---------------------------------------------------------------------------
// Weight gradient
// ---------------------------------------------------------------------------

/// Gradient of the convolution output with respect to its weights.
///
/// Given the forward `input` and the upstream gradient `grad_out`
/// (`[N, C_out, H_out, W_out]`), returns a tensor with the same shape as the
/// weights. Dispatches like [`conv2d`]; hot loops should prefer
/// [`conv2d_backward_weight_with`].
///
/// # Errors
///
/// Returns an error if the shapes are inconsistent with `spec`.
pub fn conv2d_backward_weight(
    input: &Tensor,
    grad_out: &Tensor,
    c_out: usize,
    spec: Conv2dSpec,
) -> Result<Tensor> {
    conv2d_backward_weight_with(input, grad_out, c_out, spec, &mut Workspace::default())
}

/// [`conv2d_backward_weight`] with an explicit scratch [`Workspace`].
///
/// # Errors
///
/// Same conditions as [`conv2d_backward_weight`].
pub fn conv2d_backward_weight_with(
    input: &Tensor,
    grad_out: &Tensor,
    c_out: usize,
    spec: Conv2dSpec,
    workspace: &mut Workspace,
) -> Result<Tensor> {
    let (n, c_in, h, w, oh, ow) = check_backward_weight_args(input, grad_out, c_out, spec)?;
    let k = spec.kernel;
    if use_direct(n, c_in, c_out, k, oh, ow) {
        // Arguments are already validated; go straight to the loops.
        return Ok(conv2d_backward_weight_unchecked(
            input, grad_out, c_out, spec, n, c_in, h, w, oh, ow,
        ));
    }

    let mut grad_w = Tensor::zeros(Shape::nchw(c_out, c_in, k, k));
    let ohow = oh * ow;
    let ckk = c_in * k * k;
    let in_stride = c_in * h * w;
    let out_stride = c_out * ohow;
    // Transposed formulation: grad_Wᵀ [CKK, C_out] = Σ_b col_b · grad_outᵀ_b,
    // which runs the GEMM in `gemm_nn`'s narrow register-tiled shape with a
    // contiguous im2col lowering; one small transpose at the end restores
    // the `[C_out, CKK]` layout. A pointwise conv's column matrix is the
    // image itself, so its lowering is skipped entirely.
    let col_len = if spec.is_pointwise() { 0 } else { ckk * ohow };
    let (col, aux) = workspace.col_and_aux(col_len, (ohow + ckk) * c_out);
    let (g_t, w_t) = aux.split_at_mut(ohow * c_out);
    w_t.fill(0.0);
    for b in 0..n {
        let image = &input.data()[b * in_stride..(b + 1) * in_stride];
        let bmat: &[f32] = if spec.is_pointwise() {
            image
        } else {
            im2col(image, c_in, h, w, spec, oh, ow, col);
            col
        };
        let g = &grad_out.data()[b * out_stride..(b + 1) * out_stride];
        transpose_into(g, c_out, ohow, g_t);
        gemm_nn(ckk, ohow, c_out, bmat, g_t, w_t, true);
    }
    let gw = grad_w.data_mut();
    transpose_into(w_t, ckk, c_out, gw);
    Ok(grad_w)
}

/// Writes `dstᵀ = src` for a row-major `[rows, cols]` `src` into a
/// `[cols, rows]` destination.
pub(crate) fn transpose_into(src: &[f32], rows: usize, cols: usize, dst: &mut [f32]) {
    debug_assert_eq!(src.len(), rows * cols);
    debug_assert_eq!(dst.len(), rows * cols);
    for r in 0..rows {
        let row = &src[r * cols..(r + 1) * cols];
        for (c, &v) in row.iter().enumerate() {
            dst[c * rows + r] = v;
        }
    }
}

// ---------------------------------------------------------------------------
// Per-sample weight gradient (batched backward)
// ---------------------------------------------------------------------------

/// Per-sample weight gradients: one `[C_out, C_in, K, K]` gradient per batch
/// element, **not** summed over the batch.
///
/// This is the kernel behind batched per-sample gradients for the NTK Gram
/// matrix: one shared im2col lowering per sample feeds one `A · Bᵀ` GEMM per
/// sample, emitting all `N` weight gradients in a single pass instead of `N`
/// separate backward calls. The result has shape `[N, C_out, C_in, K, K]`;
/// summing over the leading axis reproduces [`conv2d_backward_weight`]
/// exactly.
///
/// Hot loops that assemble a contiguous `[N, P]` gradient matrix should use
/// [`conv2d_backward_weight_per_sample_into`] and write each sample's slice
/// in place.
///
/// # Errors
///
/// Returns an error if the shapes are inconsistent with `spec`.
pub fn conv2d_backward_weight_per_sample_with(
    input: &Tensor,
    grad_out: &Tensor,
    c_out: usize,
    spec: Conv2dSpec,
    workspace: &mut Workspace,
) -> Result<Tensor> {
    let (n, c_in, ..) = check_backward_weight_args(input, grad_out, c_out, spec)?;
    let per_sample = c_out * c_in * spec.kernel * spec.kernel;
    let mut out = Tensor::zeros(Shape::nchw(n, c_out, c_in * spec.kernel, spec.kernel));
    conv2d_backward_weight_per_sample_into(
        input,
        grad_out,
        c_out,
        spec,
        workspace,
        out.data_mut(),
        per_sample,
        0,
    )?;
    Ok(out)
}

/// [`conv2d_backward_weight_per_sample_with`] writing straight into a caller
/// matrix: sample `b`'s flattened `[C_out, C_in, K, K]` gradient lands at
/// `out[b * row_stride + offset ..][.. c_out·c_in·k²]`.
///
/// With `row_stride` set to the network's total parameter count and `offset`
/// to this layer's parameter offset, the batched backward pass of a network
/// assembles the full `[N, P]` per-sample gradient matrix with no staging
/// copies.
///
/// # Errors
///
/// Returns an error if the shapes are inconsistent with `spec`, or if `out`
/// is too short for the last sample's slice.
#[allow(clippy::too_many_arguments)]
pub fn conv2d_backward_weight_per_sample_into(
    input: &Tensor,
    grad_out: &Tensor,
    c_out: usize,
    spec: Conv2dSpec,
    workspace: &mut Workspace,
    out: &mut [f32],
    row_stride: usize,
    offset: usize,
) -> Result<()> {
    let (n, c_in, h, w, oh, ow) = check_backward_weight_args(input, grad_out, c_out, spec)?;
    let k = spec.kernel;
    let per_sample = c_out * c_in * k * k;
    if n > 0 && out.len() < (n - 1) * row_stride + offset + per_sample {
        return Err(TensorError::InvalidArgument(format!(
            "per-sample gradient output buffer too short: {} < {}",
            out.len(),
            (n - 1) * row_stride + offset + per_sample
        )));
    }
    let ohow = oh * ow;
    let ckk = c_in * k * k;
    let in_stride = c_in * h * w;
    let out_stride = c_out * ohow;
    // Dispatch on the per-sample workload: each sample's gradient is its own
    // small GEMM, and matching the per-sample (batch-1) decision keeps these
    // values bitwise-identical to a loop of batch-1 backward calls under
    // every engine, including `Auto`.
    if use_direct(1, c_in, c_out, k, oh, ow) {
        for b in 0..n {
            let dst = &mut out[b * row_stride + offset..b * row_stride + offset + per_sample];
            direct_weight_grad_sample(input, grad_out, b, c_out, c_in, h, w, oh, ow, spec, dst);
        }
        return Ok(());
    }
    // One shared im2col lowering per sample feeds that sample's
    // weight-gradient GEMM, in the same transposed narrow shape as
    // [`conv2d_backward_weight_with`] — so each batched per-sample gradient
    // is bit-for-bit the value a batch-1 backward call would produce.
    let col_len = if spec.is_pointwise() { 0 } else { ckk * ohow };
    let (col, aux) = workspace.col_and_aux(col_len, (ohow + ckk) * c_out);
    let (g_t, w_t) = aux.split_at_mut(ohow * c_out);
    for b in 0..n {
        let image = &input.data()[b * in_stride..(b + 1) * in_stride];
        let bmat: &[f32] = if spec.is_pointwise() {
            image
        } else {
            im2col(image, c_in, h, w, spec, oh, ow, col);
            col
        };
        let g = &grad_out.data()[b * out_stride..(b + 1) * out_stride];
        transpose_into(g, c_out, ohow, g_t);
        gemm_nn(ckk, ohow, c_out, bmat, g_t, w_t, false);
        let dst = &mut out[b * row_stride + offset..b * row_stride + offset + per_sample];
        transpose_into(w_t, ckk, c_out, dst);
    }
    Ok(())
}

/// One pack member's destination inside its own `[N, P]` per-sample gradient
/// matrix: sample `b`'s flattened layer gradient lands at
/// `out[b * row_stride + offset ..][.. c_out·c_in·k²]`.
///
/// Pack members generally have *different* parameter counts and layer
/// offsets (their cell topologies differ away from the shared edge), so the
/// packed backward entry points take one slot per member instead of a shared
/// stride/offset pair.
#[derive(Debug)]
pub struct PackedGradSlot<'a> {
    /// The member's full `[N, P]` gradient matrix buffer.
    pub out: &'a mut [f32],
    /// Row stride: the member's total parameter count `P`.
    pub row_stride: usize,
    /// This layer's parameter offset within a row.
    pub offset: usize,
}

/// `true` when `a` and `b` hold bitwise-identical f32 payloads.
fn bitwise_eq(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

/// Packed per-sample weight gradients: one grouped dispatch computing
/// [`conv2d_backward_weight_per_sample_into`] for every pack member in a
/// single call.
///
/// All members share the convolution geometry (`spec`, `c_out`, input
/// shape), so the im2col lowering of a member's probe activations depends
/// only on the activation bytes — and in a mega-batched backward sweep those
/// bytes are frequently *identical* across members (every member's first
/// edge consumes the shared stem output). The kernel exploits this by
/// lowering the full batch of a member's input into one tall column panel
/// and reusing that panel verbatim for every subsequent member whose input
/// is bitwise the same, amortising the dominant `k²`-fold expansion across
/// the pack.
///
/// Bitwise identity with the solo path holds by construction rather than by
/// a width gate: the grouped dispatch *iterates* the exact per-candidate,
/// per-sample schedule of [`conv2d_backward_weight_per_sample_into`] — the
/// same `use_direct(1, ..)` engine decision, the same `(ckk, ohow, c_out)`
/// GEMM shapes, the same transpose staging — it never widens a GEMM across
/// members. Sharing a lowered panel is safe for the same reason the shared
/// stem forward is: equal input bytes lower to equal column bytes.
///
/// # Errors
///
/// Returns an error if the slice lengths disagree, any member's shapes are
/// inconsistent with the lead member or with `spec`, or a member's `out`
/// buffer is too short for the last sample's slice.
pub fn conv2d_backward_weight_per_sample_packed_into(
    inputs: &[&Tensor],
    grad_outs: &[&Tensor],
    c_out: usize,
    spec: Conv2dSpec,
    workspace: &mut Workspace,
    slots: &mut [PackedGradSlot<'_>],
) -> Result<()> {
    if inputs.len() != grad_outs.len() || inputs.len() != slots.len() {
        return Err(TensorError::InvalidArgument(format!(
            "packed per-sample backward arity mismatch: {} inputs, {} grads, {} slots",
            inputs.len(),
            grad_outs.len(),
            slots.len()
        )));
    }
    let Some(first) = inputs.first() else {
        return Ok(());
    };
    // A lone member gains nothing from the tall panel; run the solo kernel
    // with its solo-sized workspace footprint.
    if inputs.len() == 1 {
        let slot = &mut slots[0];
        return conv2d_backward_weight_per_sample_into(
            inputs[0],
            grad_outs[0],
            c_out,
            spec,
            workspace,
            slot.out,
            slot.row_stride,
            slot.offset,
        );
    }
    let (n, c_in, h, w, oh, ow) = check_backward_weight_args(first, grad_outs[0], c_out, spec)?;
    let k = spec.kernel;
    let per_sample = c_out * c_in * k * k;
    for ((input, grad_out), slot) in inputs.iter().zip(grad_outs).zip(slots.iter()) {
        if input.shape() != first.shape() {
            return Err(TensorError::IncompatibleShapes {
                op: "conv2d_backward_weight_per_sample_packed",
                lhs: input.shape().dims().to_vec(),
                rhs: first.shape().dims().to_vec(),
            });
        }
        check_backward_weight_args(input, grad_out, c_out, spec)?;
        if n > 0 && slot.out.len() < (n - 1) * slot.row_stride + slot.offset + per_sample {
            return Err(TensorError::InvalidArgument(format!(
                "per-sample gradient output buffer too short: {} < {}",
                slot.out.len(),
                (n - 1) * slot.row_stride + slot.offset + per_sample
            )));
        }
    }
    // Same geometry-only (batch-1) engine decision as the solo per-sample
    // kernel — shared by every member, so the packed dispatch can never
    // diverge from a per-member loop of solo calls.
    if use_direct(1, c_in, c_out, k, oh, ow) {
        for ((input, grad_out), slot) in inputs.iter().zip(grad_outs).zip(slots.iter_mut()) {
            for b in 0..n {
                let dst = &mut slot.out[b * slot.row_stride + slot.offset..][..per_sample];
                direct_weight_grad_sample(input, grad_out, b, c_out, c_in, h, w, oh, ow, spec, dst);
            }
        }
        return Ok(());
    }
    let ohow = oh * ow;
    let ckk = c_in * k * k;
    let in_stride = c_in * h * w;
    let out_stride = c_out * ohow;
    if spec.is_pointwise() {
        // Pointwise layers use the image itself as the column matrix:
        // nothing to lower or share, so run the solo per-sample schedule per
        // member with a single staging acquisition for the whole pack.
        let (_, aux) = workspace.col_and_aux(0, (ohow + ckk) * c_out);
        let (g_t, w_t) = aux.split_at_mut(ohow * c_out);
        for ((input, grad_out), slot) in inputs.iter().zip(grad_outs).zip(slots.iter_mut()) {
            for b in 0..n {
                let image = &input.data()[b * in_stride..(b + 1) * in_stride];
                let g = &grad_out.data()[b * out_stride..(b + 1) * out_stride];
                transpose_into(g, c_out, ohow, g_t);
                gemm_nn(ckk, ohow, c_out, image, g_t, w_t, false);
                let dst = &mut slot.out[b * slot.row_stride + slot.offset..][..per_sample];
                transpose_into(w_t, ckk, c_out, dst);
            }
        }
        return Ok(());
    }
    // Tall column panel: all N samples of one member's input lowered side by
    // side, each sample's block in the exact layout the solo kernel feeds
    // its GEMM. The panel is rebuilt only when a member's input bytes differ
    // from the member whose lowering currently occupies it — a pointer check
    // first, then a bitwise compare (~1/k² of the lowering cost), so packs
    // fed the shared stem output lower it exactly once.
    let (col, aux) = workspace.col_and_aux(n * ckk * ohow, (ohow + ckk) * c_out);
    let (g_t, w_t) = aux.split_at_mut(ohow * c_out);
    let mut lowered_for: Option<&[f32]> = None;
    for ((input, grad_out), slot) in inputs.iter().zip(grad_outs).zip(slots.iter_mut()) {
        let data = input.data();
        let shared = lowered_for
            .is_some_and(|prev| prev.as_ptr() == data.as_ptr() || bitwise_eq(prev, data));
        if !shared {
            for b in 0..n {
                im2col(
                    &data[b * in_stride..(b + 1) * in_stride],
                    c_in,
                    h,
                    w,
                    spec,
                    oh,
                    ow,
                    &mut col[b * ckk * ohow..(b + 1) * ckk * ohow],
                );
            }
            lowered_for = Some(data);
        }
        for b in 0..n {
            let bmat = &col[b * ckk * ohow..(b + 1) * ckk * ohow];
            let g = &grad_out.data()[b * out_stride..(b + 1) * out_stride];
            transpose_into(g, c_out, ohow, g_t);
            gemm_nn(ckk, ohow, c_out, bmat, g_t, w_t, false);
            let dst = &mut slot.out[b * slot.row_stride + slot.offset..][..per_sample];
            transpose_into(w_t, ckk, c_out, dst);
        }
    }
    Ok(())
}

/// Direct (naive-loop) per-sample weight gradients: the reference
/// implementation for [`conv2d_backward_weight_per_sample_with`].
///
/// # Errors
///
/// Same conditions as [`conv2d_backward_weight_per_sample_with`].
pub fn conv2d_backward_weight_per_sample_direct(
    input: &Tensor,
    grad_out: &Tensor,
    c_out: usize,
    spec: Conv2dSpec,
) -> Result<Tensor> {
    let (n, c_in, h, w, oh, ow) = check_backward_weight_args(input, grad_out, c_out, spec)?;
    let k = spec.kernel;
    let per_sample = c_out * c_in * k * k;
    let mut out = Tensor::zeros(Shape::nchw(n, c_out, c_in * k, k));
    let data = out.data_mut();
    for b in 0..n {
        let dst = &mut data[b * per_sample..(b + 1) * per_sample];
        direct_weight_grad_sample(input, grad_out, b, c_out, c_in, h, w, oh, ow, spec, dst);
    }
    Ok(out)
}

/// Direct weight gradient of a single batch element, written into `dst`
/// (`[C_out, C_in, K, K]` flattened). Callers have validated the arguments
/// and zero/overwrite semantics: `dst` is fully overwritten.
#[allow(clippy::too_many_arguments)]
pub(crate) fn direct_weight_grad_sample(
    input: &Tensor,
    grad_out: &Tensor,
    b: usize,
    c_out: usize,
    c_in: usize,
    h: usize,
    w: usize,
    oh: usize,
    ow: usize,
    spec: Conv2dSpec,
    dst: &mut [f32],
) {
    let k = spec.kernel;
    dst.fill(0.0);
    for oc in 0..c_out {
        for oy in 0..oh {
            for ox in 0..ow {
                let g = grad_out.at4(b, oc, oy, ox);
                if g == 0.0 {
                    continue;
                }
                for ic in 0..c_in {
                    for ky in 0..k {
                        let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..k {
                            let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            dst[((oc * c_in + ic) * k + ky) * k + kx] +=
                                g * input.at4(b, ic, iy as usize, ix as usize);
                        }
                    }
                }
            }
        }
    }
}

pub(crate) fn check_backward_weight_args(
    input: &Tensor,
    grad_out: &Tensor,
    c_out: usize,
    spec: Conv2dSpec,
) -> Result<(usize, usize, usize, usize, usize, usize)> {
    let id = input.shape().dims();
    if id.len() != 4 {
        return Err(TensorError::RankMismatch {
            op: "conv2d_backward_weight input",
            expected: 4,
            actual: id.len(),
        });
    }
    let gd = grad_out.shape().dims();
    if gd.len() != 4 {
        return Err(TensorError::RankMismatch {
            op: "conv2d_backward_weight grad",
            expected: 4,
            actual: gd.len(),
        });
    }
    let (n, c_in, h, w) = (id[0], id[1], id[2], id[3]);
    let (oh, ow) = spec.output_hw(h, w);
    if gd[0] != n || gd[1] != c_out || gd[2] != oh || gd[3] != ow {
        return Err(TensorError::IncompatibleShapes {
            op: "conv2d_backward_weight",
            lhs: gd.to_vec(),
            rhs: vec![n, c_out, oh, ow],
        });
    }
    Ok((n, c_in, h, w, oh, ow))
}

/// Direct (naive-loop) weight gradient: the reference implementation.
///
/// # Errors
///
/// Same conditions as [`conv2d_backward_weight`].
pub fn conv2d_backward_weight_direct(
    input: &Tensor,
    grad_out: &Tensor,
    c_out: usize,
    spec: Conv2dSpec,
) -> Result<Tensor> {
    let (n, c_in, h, w, oh, ow) = check_backward_weight_args(input, grad_out, c_out, spec)?;
    Ok(conv2d_backward_weight_unchecked(
        input, grad_out, c_out, spec, n, c_in, h, w, oh, ow,
    ))
}

/// Loop body of [`conv2d_backward_weight_direct`]; callers have validated
/// the arguments.
#[allow(clippy::too_many_arguments)]
pub(crate) fn conv2d_backward_weight_unchecked(
    input: &Tensor,
    grad_out: &Tensor,
    c_out: usize,
    spec: Conv2dSpec,
    n: usize,
    c_in: usize,
    h: usize,
    w: usize,
    oh: usize,
    ow: usize,
) -> Tensor {
    let mut grad_w = Tensor::zeros(Shape::nchw(c_out, c_in, spec.kernel, spec.kernel));
    for b in 0..n {
        for oc in 0..c_out {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = grad_out.at4(b, oc, oy, ox);
                    if g == 0.0 {
                        continue;
                    }
                    for ic in 0..c_in {
                        for ky in 0..spec.kernel {
                            let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..spec.kernel {
                                let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                *grad_w.at4_mut(oc, ic, ky, kx) +=
                                    g * input.at4(b, ic, iy as usize, ix as usize);
                            }
                        }
                    }
                }
            }
        }
    }
    grad_w
}

// ---------------------------------------------------------------------------
// Input gradient
// ---------------------------------------------------------------------------

/// Gradient of the convolution output with respect to its input.
///
/// Dispatches like [`conv2d`]; hot loops should prefer
/// [`conv2d_backward_input_with`].
///
/// # Errors
///
/// Returns an error if the shapes are inconsistent with `spec`.
pub fn conv2d_backward_input(
    weight: &Tensor,
    grad_out: &Tensor,
    input_shape: &Shape,
    spec: Conv2dSpec,
) -> Result<Tensor> {
    conv2d_backward_input_with(
        weight,
        grad_out,
        input_shape,
        spec,
        &mut Workspace::default(),
    )
}

/// [`conv2d_backward_input`] with an explicit scratch [`Workspace`].
///
/// # Errors
///
/// Same conditions as [`conv2d_backward_input`].
pub fn conv2d_backward_input_with(
    weight: &Tensor,
    grad_out: &Tensor,
    input_shape: &Shape,
    spec: Conv2dSpec,
    workspace: &mut Workspace,
) -> Result<Tensor> {
    check_backward_input_args(weight, grad_out, input_shape, spec)?;
    let grad_in = Tensor::zeros(input_shape.clone());
    conv2d_backward_input_assign(weight, grad_out, spec, workspace, grad_in)
}

/// [`conv2d_backward_input_with`] drawing the output tensor from the
/// workspace recycling pool instead of the allocator (see [`conv2d_pooled`]).
///
/// # Errors
///
/// Same conditions as [`conv2d_backward_input`].
pub fn conv2d_backward_input_pooled(
    weight: &Tensor,
    grad_out: &Tensor,
    input_shape: &Shape,
    spec: Conv2dSpec,
    workspace: &mut Workspace,
) -> Result<Tensor> {
    check_backward_input_args(weight, grad_out, input_shape, spec)?;
    let grad_in = Tensor::from_vec(
        input_shape.clone(),
        workspace.take_zeroed(input_shape.numel()),
    )
    .expect("length matches shape by construction");
    conv2d_backward_input_assign(weight, grad_out, spec, workspace, grad_in)
}

/// Dispatching input-gradient body: writes into the pre-zeroed `grad_in`
/// (owned by the caller, fresh or pooled) and returns it. Arguments have
/// been validated.
fn conv2d_backward_input_assign(
    weight: &Tensor,
    grad_out: &Tensor,
    spec: Conv2dSpec,
    workspace: &mut Workspace,
    mut grad_in: Tensor,
) -> Result<Tensor> {
    let id = grad_in.shape().dims();
    let (n, c_in, h, w) = (id[0], id[1], id[2], id[3]);
    let c_out = weight.shape().dims()[0];
    let k = spec.kernel;
    let (oh, ow) = spec.output_hw(h, w);
    if use_direct(n, c_in, c_out, k, oh, ow) {
        // Arguments are already validated; go straight to the loops.
        conv2d_backward_input_unchecked(
            weight,
            grad_out,
            spec,
            n,
            c_in,
            h,
            w,
            c_out,
            oh,
            ow,
            &mut grad_in,
        );
        return Ok(grad_in);
    }

    let ohow = oh * ow;
    let ckk = c_in * k * k;
    let in_stride = c_in * h * w;
    let out_stride = c_out * ohow;
    let w_mat = weight.data();
    let gi = grad_in.data_mut();
    if spec.is_pointwise() {
        for b in 0..n {
            let g = &grad_out.data()[b * out_stride..(b + 1) * out_stride];
            let dst = &mut gi[b * in_stride..(b + 1) * in_stride];
            // grad_in_b [C_in, HW] = W [C_out, C_in]ᵀ · grad_out_b.
            gemm_tn(ckk, c_out, ohow, w_mat, g, dst, false);
        }
        return Ok(grad_in);
    }
    // Column *gradients* stage in the auxiliary buffer, leaving the column
    // buffer free for kernels that hold an im2col lowering across this call.
    let stage = workspace.aux_buffer(ckk * ohow);
    for b in 0..n {
        let g = &grad_out.data()[b * out_stride..(b + 1) * out_stride];
        gemm_tn(ckk, c_out, ohow, w_mat, g, stage, false);
        let dst = &mut gi[b * in_stride..(b + 1) * in_stride];
        col2im_add(stage, c_in, h, w, spec, oh, ow, dst);
    }
    Ok(grad_in)
}

/// Packed input gradients: one grouped dispatch computing
/// [`conv2d_backward_input_pooled`] for every pack member in a single call.
///
/// Pack members sharing a bucket share the *weight* operand (position-keyed
/// seeding makes same-edge weights bitwise-identical across a pack) while
/// each carries its own output gradient. The grouped dispatch iterates the
/// exact per-candidate schedule of the solo kernel — same `use_direct`
/// decision, same per-sample `gemm_tn` shapes (a single cache-blocked
/// schedule with no width-sensitive split), same `col2im` scatter — so the
/// results are bitwise-identical to a loop of solo calls; the pack merely
/// amortises the staging acquisition and keeps the shared weight hot across
/// members. Gradients are drawn from the workspace recycling pool.
///
/// # Errors
///
/// Returns an error if any member's shapes are inconsistent with
/// `input_shape` or `spec`.
pub fn conv2d_backward_input_packed_pooled(
    weight: &Tensor,
    grad_outs: &[&Tensor],
    input_shape: &Shape,
    spec: Conv2dSpec,
    workspace: &mut Workspace,
) -> Result<Vec<Tensor>> {
    let Some(first) = grad_outs.first() else {
        return Ok(Vec::new());
    };
    let (n, c_in, h, w, c_out, oh, ow) =
        check_backward_input_args(weight, first, input_shape, spec)?;
    for grad_out in grad_outs {
        check_backward_input_args(weight, grad_out, input_shape, spec)?;
    }
    let mut grads = Vec::with_capacity(grad_outs.len());
    if use_direct(n, c_in, c_out, spec.kernel, oh, ow) {
        for grad_out in grad_outs {
            let mut grad_in = Tensor::from_vec(
                input_shape.clone(),
                workspace.take_zeroed(input_shape.numel()),
            )
            .expect("length matches shape by construction");
            conv2d_backward_input_unchecked(
                weight,
                grad_out,
                spec,
                n,
                c_in,
                h,
                w,
                c_out,
                oh,
                ow,
                &mut grad_in,
            );
            grads.push(grad_in);
        }
        return Ok(grads);
    }
    let ohow = oh * ow;
    let ckk = c_in * spec.kernel * spec.kernel;
    let in_stride = c_in * h * w;
    let out_stride = c_out * ohow;
    let w_mat = weight.data();
    if spec.is_pointwise() {
        for grad_out in grad_outs {
            let mut grad_in = Tensor::from_vec(
                input_shape.clone(),
                workspace.take_zeroed(input_shape.numel()),
            )
            .expect("length matches shape by construction");
            let gi = grad_in.data_mut();
            for b in 0..n {
                let g = &grad_out.data()[b * out_stride..(b + 1) * out_stride];
                let dst = &mut gi[b * in_stride..(b + 1) * in_stride];
                gemm_tn(ckk, c_out, ohow, w_mat, g, dst, false);
            }
            grads.push(grad_in);
        }
        return Ok(grads);
    }
    // The staging slice re-uses one auxiliary allocation across the whole
    // pack: every member's per-sample column gradient is fully overwritten
    // before its `col2im` scatter, exactly as in the solo kernel.
    for grad_out in grad_outs {
        let raw = workspace.take_zeroed(input_shape.numel());
        let stage = workspace.aux_buffer(ckk * ohow);
        let mut grad_in = Tensor::from_vec(input_shape.clone(), raw)
            .expect("length matches shape by construction");
        let gi = grad_in.data_mut();
        for b in 0..n {
            let g = &grad_out.data()[b * out_stride..(b + 1) * out_stride];
            gemm_tn(ckk, c_out, ohow, w_mat, g, stage, false);
            let dst = &mut gi[b * in_stride..(b + 1) * in_stride];
            col2im_add(stage, c_in, h, w, spec, oh, ow, dst);
        }
        grads.push(grad_in);
    }
    Ok(grads)
}

pub(crate) fn check_backward_input_args(
    weight: &Tensor,
    grad_out: &Tensor,
    input_shape: &Shape,
    spec: Conv2dSpec,
) -> Result<(usize, usize, usize, usize, usize, usize, usize)> {
    let id = input_shape.dims();
    if id.len() != 4 {
        return Err(TensorError::RankMismatch {
            op: "conv2d_backward_input shape",
            expected: 4,
            actual: id.len(),
        });
    }
    let wd = weight.shape().dims();
    let gd = grad_out.shape().dims();
    let (n, c_in, h, w) = (id[0], id[1], id[2], id[3]);
    let c_out = wd[0];
    let (oh, ow) = spec.output_hw(h, w);
    if gd != [n, c_out, oh, ow] {
        return Err(TensorError::IncompatibleShapes {
            op: "conv2d_backward_input",
            lhs: gd.to_vec(),
            rhs: vec![n, c_out, oh, ow],
        });
    }
    Ok((n, c_in, h, w, c_out, oh, ow))
}

/// Direct (naive-loop) input gradient: the reference implementation.
///
/// # Errors
///
/// Same conditions as [`conv2d_backward_input`].
pub fn conv2d_backward_input_direct(
    weight: &Tensor,
    grad_out: &Tensor,
    input_shape: &Shape,
    spec: Conv2dSpec,
) -> Result<Tensor> {
    let (n, c_in, h, w, c_out, oh, ow) =
        check_backward_input_args(weight, grad_out, input_shape, spec)?;
    let mut grad_in = Tensor::zeros(input_shape.clone());
    conv2d_backward_input_unchecked(
        weight,
        grad_out,
        spec,
        n,
        c_in,
        h,
        w,
        c_out,
        oh,
        ow,
        &mut grad_in,
    );
    Ok(grad_in)
}

/// Loop body of [`conv2d_backward_input_direct`], accumulating into the
/// pre-zeroed `grad_in`; callers have validated the arguments.
#[allow(clippy::too_many_arguments)]
pub(crate) fn conv2d_backward_input_unchecked(
    weight: &Tensor,
    grad_out: &Tensor,
    spec: Conv2dSpec,
    n: usize,
    c_in: usize,
    h: usize,
    w: usize,
    c_out: usize,
    oh: usize,
    ow: usize,
    grad_in: &mut Tensor,
) {
    for b in 0..n {
        for oc in 0..c_out {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = grad_out.at4(b, oc, oy, ox);
                    if g == 0.0 {
                        continue;
                    }
                    for ic in 0..c_in {
                        for ky in 0..spec.kernel {
                            let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..spec.kernel {
                                let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                *grad_in.at4_mut(b, ic, iy as usize, ix as usize) +=
                                    g * weight.at4(oc, ic, ky, kx);
                            }
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeterministicRng;
    use proptest::prelude::*;

    fn random_tensor(shape: Shape, seed: u64) -> Tensor {
        let mut rng = DeterministicRng::new(seed);
        let data = (0..shape.numel()).map(|_| rng.normal()).collect();
        Tensor::from_vec(shape, data).unwrap()
    }

    #[test]
    fn identity_kernel_preserves_input() {
        // A 1x1 kernel with weight 1.0 and a single channel is the identity.
        let input = random_tensor(Shape::nchw(1, 1, 4, 4), 1);
        let weight = Tensor::ones(Shape::nchw(1, 1, 1, 1));
        let out = conv2d(&input, &weight, Conv2dSpec::new(1, 1, 0)).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn known_3x3_convolution() {
        // 3x3 all-ones kernel over a 3x3 all-ones image with padding 1:
        // centre output is 9, corners are 4, edges are 6.
        let input = Tensor::ones(Shape::nchw(1, 1, 3, 3));
        let weight = Tensor::ones(Shape::nchw(1, 1, 3, 3));
        let out = conv2d(&input, &weight, Conv2dSpec::new(3, 1, 1)).unwrap();
        assert_eq!(out.at4(0, 0, 1, 1), 9.0);
        assert_eq!(out.at4(0, 0, 0, 0), 4.0);
        assert_eq!(out.at4(0, 0, 0, 1), 6.0);
    }

    #[test]
    fn stride_two_halves_resolution() {
        let input = random_tensor(Shape::nchw(2, 3, 8, 8), 2);
        let weight = random_tensor(Shape::nchw(4, 3, 3, 3), 3);
        let out = conv2d(&input, &weight, Conv2dSpec::new(3, 2, 1)).unwrap();
        assert_eq!(out.shape().dims(), &[2, 4, 4, 4]);
    }

    #[test]
    fn channel_mismatch_rejected() {
        let input = Tensor::zeros(Shape::nchw(1, 3, 4, 4));
        let weight = Tensor::zeros(Shape::nchw(2, 4, 3, 3));
        assert!(conv2d(&input, &weight, Conv2dSpec::new(3, 1, 1)).is_err());
        assert!(conv2d_direct(&input, &weight, Conv2dSpec::new(3, 1, 1)).is_err());
    }

    #[test]
    fn kernel_spec_mismatch_rejected() {
        let input = Tensor::zeros(Shape::nchw(1, 1, 4, 4));
        let weight = Tensor::zeros(Shape::nchw(1, 1, 3, 3));
        assert!(conv2d(&input, &weight, Conv2dSpec::new(1, 1, 0)).is_err());
        assert!(conv2d_direct(&input, &weight, Conv2dSpec::new(1, 1, 0)).is_err());
    }

    /// Packed-vs-solo bitwise identity over one geometry at several pack
    /// widths, under the engine currently in force.
    fn assert_packed_matches_solo(shape: Shape, weight: Tensor, spec: Conv2dSpec, seed: u64) {
        for width in [1usize, 2, 8] {
            let inputs: Vec<Tensor> = (0..width)
                .map(|i| random_tensor(shape.clone(), seed + i as u64))
                .collect();
            let refs: Vec<&Tensor> = inputs.iter().collect();
            let mut packed_ws = Workspace::default();
            let packed = conv2d_forward_packed_pooled(&refs, &weight, spec, &mut packed_ws)
                .expect("packed conv");
            assert_eq!(packed.len(), width);
            for (input, got) in inputs.iter().zip(&packed) {
                let mut solo_ws = Workspace::default();
                let want = conv2d_pooled(input, &weight, spec, &mut solo_ws).expect("solo conv");
                assert_eq!(got, &want, "width {width} must be bitwise solo");
            }
        }
    }

    #[test]
    fn packed_forward_is_bitwise_solo_across_geometries() {
        let _guard = ENGINE_TEST_LOCK.lock().unwrap();
        set_conv_engine(ConvEngine::Auto);
        // Merged wide schedule: pointwise, ohow 144 > 32.
        assert_packed_matches_solo(
            Shape::nchw(2, 6, 12, 12),
            random_tensor(Shape::nchw(6, 6, 1, 1), 40),
            Conv2dSpec::new(1, 1, 0),
            400,
        );
        // Merged register-tiled schedule: ckk 72 >= 64, ohow 25 <= 32.
        assert_packed_matches_solo(
            Shape::nchw(2, 8, 5, 5),
            random_tensor(Shape::nchw(8, 8, 3, 3), 41),
            Conv2dSpec::new(3, 1, 1),
            500,
        );
        // Schedule boundary (ohow <= 32, ckk < 64): solo would be
        // register-tiled but a pack would go wide — the guard must force the
        // per-candidate fallback, which is trivially identical.
        assert_packed_matches_solo(
            Shape::nchw(3, 2, 5, 5),
            random_tensor(Shape::nchw(4, 2, 3, 3), 42),
            Conv2dSpec::new(3, 1, 1),
            600,
        );
        // Below the direct-dispatch threshold: per-candidate direct loops.
        assert_packed_matches_solo(
            Shape::nchw(1, 2, 4, 4),
            random_tensor(Shape::nchw(2, 2, 3, 3), 43),
            Conv2dSpec::new(3, 1, 1),
            700,
        );
        // Strided non-pointwise merge (wide schedule).
        assert_packed_matches_solo(
            Shape::nchw(2, 4, 16, 16),
            random_tensor(Shape::nchw(4, 4, 3, 3), 44),
            Conv2dSpec::new(3, 2, 1),
            800,
        );
    }

    #[test]
    fn packed_forward_honours_the_engine_pin() {
        let _guard = ENGINE_TEST_LOCK.lock().unwrap();
        for engine in [ConvEngine::Direct, ConvEngine::Im2colGemm] {
            set_conv_engine(engine);
            assert_packed_matches_solo(
                Shape::nchw(2, 6, 12, 12),
                random_tensor(Shape::nchw(6, 6, 1, 1), 45),
                Conv2dSpec::new(1, 1, 0),
                900,
            );
            // Boundary geometry stays solo-identical under both pins too.
            assert_packed_matches_solo(
                Shape::nchw(3, 2, 5, 5),
                random_tensor(Shape::nchw(4, 2, 3, 3), 46),
                Conv2dSpec::new(3, 1, 1),
                1000,
            );
        }
        set_conv_engine(ConvEngine::Auto);
    }

    #[test]
    fn packed_forward_rejects_mismatched_input_shapes() {
        let weight = random_tensor(Shape::nchw(4, 3, 3, 3), 47);
        let a = random_tensor(Shape::nchw(2, 3, 8, 8), 48);
        let b = random_tensor(Shape::nchw(1, 3, 8, 8), 49);
        let err = conv2d_forward_packed_pooled(
            &[&a, &b],
            &weight,
            Conv2dSpec::new(3, 1, 1),
            &mut Workspace::default(),
        )
        .unwrap_err();
        assert!(err.to_string().contains("conv2d_forward_packed"), "{err}");
        // Empty input list is a no-op, not an error.
        assert!(conv2d_forward_packed_pooled(
            &[],
            &weight,
            Conv2dSpec::new(3, 1, 1),
            &mut Workspace::default()
        )
        .unwrap()
        .is_empty());
    }

    /// Finite-difference check of the weight gradient.
    #[test]
    fn weight_gradient_matches_finite_difference() {
        let spec = Conv2dSpec::new(3, 1, 1);
        let input = random_tensor(Shape::nchw(2, 2, 5, 5), 10);
        let mut weight = random_tensor(Shape::nchw(3, 2, 3, 3), 11);
        // Loss = sum of outputs; its gradient w.r.t. output is all-ones.
        let out = conv2d(&input, &weight, spec).unwrap();
        let grad_out = Tensor::ones(out.shape().clone());
        let analytic = conv2d_backward_weight(&input, &grad_out, 3, spec).unwrap();

        let eps = 1e-2f32;
        for &idx in &[0usize, 7, 23, 53] {
            let orig = weight.data()[idx];
            weight.data_mut()[idx] = orig + eps;
            let plus = conv2d(&input, &weight, spec).unwrap().sum();
            weight.data_mut()[idx] = orig - eps;
            let minus = conv2d(&input, &weight, spec).unwrap().sum();
            weight.data_mut()[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let a = analytic.data()[idx];
            assert!(
                (numeric - a).abs() < 2e-2 * (1.0 + a.abs()),
                "idx {idx}: numeric {numeric} vs analytic {a}"
            );
        }
    }

    /// Finite-difference check of the input gradient.
    #[test]
    fn input_gradient_matches_finite_difference() {
        let spec = Conv2dSpec::new(3, 1, 1);
        let mut input = random_tensor(Shape::nchw(1, 2, 4, 4), 20);
        let weight = random_tensor(Shape::nchw(2, 2, 3, 3), 21);
        let out = conv2d(&input, &weight, spec).unwrap();
        let grad_out = Tensor::ones(out.shape().clone());
        let analytic =
            conv2d_backward_input(&weight, &grad_out, &Shape::nchw(1, 2, 4, 4), spec).unwrap();

        let eps = 1e-2f32;
        for &idx in &[0usize, 5, 17, 31] {
            let orig = input.data()[idx];
            input.data_mut()[idx] = orig + eps;
            let plus = conv2d(&input, &weight, spec).unwrap().sum();
            input.data_mut()[idx] = orig - eps;
            let minus = conv2d(&input, &weight, spec).unwrap().sum();
            input.data_mut()[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let a = analytic.data()[idx];
            assert!(
                (numeric - a).abs() < 2e-2 * (1.0 + a.abs()),
                "idx {idx}: numeric {numeric} vs analytic {a}"
            );
        }
    }

    #[test]
    fn conv_is_linear_in_input() {
        let spec = Conv2dSpec::new(3, 1, 1);
        let a = random_tensor(Shape::nchw(1, 2, 6, 6), 30);
        let b = random_tensor(Shape::nchw(1, 2, 6, 6), 31);
        let w = random_tensor(Shape::nchw(2, 2, 3, 3), 32);
        let lhs = conv2d(&a.add(&b).unwrap(), &w, spec).unwrap();
        let rhs = conv2d(&a, &w, spec)
            .unwrap()
            .add(&conv2d(&b, &w, spec).unwrap())
            .unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }

    // -- direct vs im2col/GEMM equivalence ---------------------------------

    fn assert_tensors_close(gemm: &Tensor, reference: &Tensor, tolerance: f32) {
        assert_eq!(gemm.shape(), reference.shape());
        for (g, r) in gemm.data().iter().zip(reference.data().iter()) {
            assert!(
                (g - r).abs() <= tolerance * (1.0 + r.abs()),
                "gemm {g} vs direct {r}"
            );
        }
    }

    /// One full equivalence check (forward + both gradients) for a geometry.
    /// Serialises the tests that pin the process-global engine: without
    /// this, a concurrently running test could restore `Auto` while another
    /// is mid-comparison, silently downgrading its "GEMM" side to the direct
    /// kernels and making the equivalence check vacuous.
    use crate::conv::ENGINE_TEST_LOCK as ENGINE_LOCK;

    fn check_engines_agree(
        n: usize,
        c_in: usize,
        c_out: usize,
        h: usize,
        w: usize,
        spec: Conv2dSpec,
        seed: u64,
    ) {
        let _engine_guard = ENGINE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let input = random_tensor(Shape::nchw(n, c_in, h, w), seed);
        let weight = random_tensor(Shape::nchw(c_out, c_in, spec.kernel, spec.kernel), seed + 1);
        let (oh, ow) = spec.output_hw(h, w);
        if oh == 0 || ow == 0 {
            return;
        }
        let grad_out = random_tensor(Shape::nchw(n, c_out, oh, ow), seed + 2);
        let mut ws = Workspace::default();

        set_conv_engine(ConvEngine::Im2colGemm);
        let fwd = conv2d_with(&input, &weight, spec, &mut ws).unwrap();
        let gw = conv2d_backward_weight_with(&input, &grad_out, c_out, spec, &mut ws).unwrap();
        let gi =
            conv2d_backward_input_with(&weight, &grad_out, input.shape(), spec, &mut ws).unwrap();
        set_conv_engine(ConvEngine::Auto);

        let fwd_ref = conv2d_direct(&input, &weight, spec).unwrap();
        let gw_ref = conv2d_backward_weight_direct(&input, &grad_out, c_out, spec).unwrap();
        let gi_ref = conv2d_backward_input_direct(&weight, &grad_out, input.shape(), spec).unwrap();

        assert_tensors_close(&fwd, &fwd_ref, 1e-5);
        assert_tensors_close(&gw, &gw_ref, 1e-5);
        assert_tensors_close(&gi, &gi_ref, 1e-5);
    }

    #[test]
    fn engines_agree_on_representative_geometries() {
        // The geometries the proxy networks actually use.
        check_engines_agree(2, 3, 8, 16, 16, Conv2dSpec::new(3, 1, 1), 40);
        check_engines_agree(1, 8, 8, 16, 16, Conv2dSpec::new(1, 1, 0), 41);
        check_engines_agree(3, 4, 6, 12, 12, Conv2dSpec::new(3, 2, 1), 42);
    }

    #[test]
    fn pointwise_fast_path_handles_strides_and_padding_variants() {
        // 1x1 kernels with stride or padding do NOT take the fast path; make
        // sure the general path handles them identically.
        check_engines_agree(2, 3, 4, 9, 9, Conv2dSpec::new(1, 2, 0), 50);
        check_engines_agree(2, 3, 4, 9, 9, Conv2dSpec::new(1, 1, 1), 51);
    }

    #[test]
    fn per_sample_weight_grads_sum_to_batch_gradient() {
        let spec = Conv2dSpec::new(3, 1, 1);
        let input = random_tensor(Shape::nchw(3, 2, 6, 6), 60);
        let grad_out = random_tensor(Shape::nchw(3, 4, 6, 6), 61);
        let mut ws = Workspace::default();
        let per_sample =
            conv2d_backward_weight_per_sample_with(&input, &grad_out, 4, spec, &mut ws).unwrap();
        assert_eq!(per_sample.shape().dims(), &[3, 4, 2 * 3, 3]);
        let total = conv2d_backward_weight(&input, &grad_out, 4, spec).unwrap();
        let p = total.numel();
        for (idx, &t) in total.data().iter().enumerate() {
            let summed: f32 = (0..3).map(|b| per_sample.data()[b * p + idx]).sum();
            assert!(
                (summed - t).abs() < 1e-4 * (1.0 + t.abs()),
                "param {idx}: per-sample sum {summed} vs batch {t}"
            );
        }
    }

    #[test]
    fn per_sample_into_respects_stride_and_offset() {
        let spec = Conv2dSpec::new(1, 1, 0);
        let input = random_tensor(Shape::nchw(2, 3, 5, 5), 62);
        let grad_out = random_tensor(Shape::nchw(2, 2, 5, 5), 63);
        let mut ws = Workspace::default();
        let per_sample = 2 * 3;
        let (row_stride, offset) = (per_sample + 7, 4);
        let mut out = vec![f32::NAN; 2 * row_stride];
        conv2d_backward_weight_per_sample_into(
            &input, &grad_out, 2, spec, &mut ws, &mut out, row_stride, offset,
        )
        .unwrap();
        let reference =
            conv2d_backward_weight_per_sample_with(&input, &grad_out, 2, spec, &mut ws).unwrap();
        for b in 0..2 {
            let got = &out[b * row_stride + offset..b * row_stride + offset + per_sample];
            let want = &reference.data()[b * per_sample..(b + 1) * per_sample];
            assert_eq!(got, want);
        }
        // Bytes outside the strided slices are untouched.
        assert!(out[..offset].iter().all(|v| v.is_nan()));

        // A too-short buffer is rejected, not sliced out of bounds.
        let mut short = vec![0.0; row_stride];
        assert!(conv2d_backward_weight_per_sample_into(
            &input, &grad_out, 2, spec, &mut ws, &mut short, row_stride, offset,
        )
        .is_err());
    }

    /// Packed backward vs a loop of solo backward calls: bitwise, for both
    /// the per-sample weight gradients and the input gradients, across pack
    /// widths with interleaved shared/distinct inputs (odd members carry a
    /// fresh allocation holding member 0's exact bytes, the way every pack
    /// member's first edge consumes its own copy of the shared stem output).
    fn assert_packed_backward_matches_solo(
        shape: Shape,
        c_out: usize,
        spec: Conv2dSpec,
        seed: u64,
    ) {
        let dims = shape.dims().to_vec();
        let (n, c_in) = (dims[0], dims[1]);
        let (oh, ow) = spec.output_hw(dims[2], dims[3]);
        let per_sample = c_out * c_in * spec.kernel * spec.kernel;
        let weight = random_tensor(Shape::nchw(c_out, c_in, spec.kernel, spec.kernel), seed);
        for width in [1usize, 2, 8] {
            let inputs: Vec<Tensor> = (0..width)
                .map(|p| {
                    if p % 2 == 1 {
                        let lead = random_tensor(shape.clone(), seed + 1);
                        Tensor::from_vec(shape.clone(), lead.data().to_vec()).unwrap()
                    } else if p == 0 {
                        random_tensor(shape.clone(), seed + 1)
                    } else {
                        random_tensor(shape.clone(), seed + 2 + p as u64)
                    }
                })
                .collect();
            let grad_outs: Vec<Tensor> = (0..width)
                .map(|p| random_tensor(Shape::nchw(n, c_out, oh, ow), seed + 100 + p as u64))
                .collect();
            let input_refs: Vec<&Tensor> = inputs.iter().collect();
            let grad_refs: Vec<&Tensor> = grad_outs.iter().collect();

            // Per-member strides and offsets differ, as they do for real
            // pack members with different parameter counts.
            let strides: Vec<usize> = (0..width).map(|p| per_sample + 3 + p).collect();
            let offsets: Vec<usize> = (0..width).map(|p| p % 3).collect();
            let mut packed_bufs: Vec<Vec<f32>> = (0..width)
                .map(|p| vec![f32::NAN; n * strides[p] + offsets[p]])
                .collect();
            {
                let mut slots: Vec<PackedGradSlot<'_>> = packed_bufs
                    .iter_mut()
                    .enumerate()
                    .map(|(p, buf)| PackedGradSlot {
                        out: buf.as_mut_slice(),
                        row_stride: strides[p],
                        offset: offsets[p],
                    })
                    .collect();
                conv2d_backward_weight_per_sample_packed_into(
                    &input_refs,
                    &grad_refs,
                    c_out,
                    spec,
                    &mut Workspace::default(),
                    &mut slots,
                )
                .unwrap();
            }
            let mut ws = Workspace::default();
            for p in 0..width {
                let mut solo = vec![f32::NAN; n * strides[p] + offsets[p]];
                conv2d_backward_weight_per_sample_into(
                    &inputs[p],
                    &grad_outs[p],
                    c_out,
                    spec,
                    &mut ws,
                    &mut solo,
                    strides[p],
                    offsets[p],
                )
                .unwrap();
                // Bitwise over the whole buffer: written slices agree
                // exactly and NaN canaries outside them are untouched.
                assert!(
                    packed_bufs[p]
                        .iter()
                        .zip(&solo)
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "packed per-sample weight grads diverge from solo \
                     (width {width}, member {p}, spec {spec:?})"
                );
            }

            let packed_gi = conv2d_backward_input_packed_pooled(
                &weight,
                &grad_refs,
                &shape,
                spec,
                &mut Workspace::default(),
            )
            .unwrap();
            assert_eq!(packed_gi.len(), width);
            for p in 0..width {
                let solo_gi =
                    conv2d_backward_input_pooled(&weight, &grad_outs[p], &shape, spec, &mut ws)
                        .unwrap();
                assert_eq!(packed_gi[p].shape(), solo_gi.shape());
                assert!(
                    packed_gi[p]
                        .data()
                        .iter()
                        .zip(solo_gi.data())
                        .all(|(a, b)| a.to_bits() == b.to_bits()),
                    "packed input grads diverge from solo \
                     (width {width}, member {p}, spec {spec:?})"
                );
            }
        }
    }

    #[test]
    fn packed_backward_is_bitwise_identical_to_solo() {
        let _guard = ENGINE_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        // Pointwise merge (image doubles as the column matrix).
        assert_packed_backward_matches_solo(
            Shape::nchw(2, 6, 12, 12),
            6,
            Conv2dSpec::new(1, 1, 0),
            500,
        );
        // General 3×3 GEMM path with a shared tall im2col panel.
        assert_packed_backward_matches_solo(
            Shape::nchw(2, 4, 10, 10),
            4,
            Conv2dSpec::new(3, 1, 1),
            600,
        );
        // Below the direct-dispatch threshold: per-candidate direct loops.
        assert_packed_backward_matches_solo(
            Shape::nchw(1, 2, 4, 4),
            2,
            Conv2dSpec::new(3, 1, 1),
            700,
        );
        // Strided non-pointwise geometry.
        assert_packed_backward_matches_solo(
            Shape::nchw(2, 4, 16, 16),
            4,
            Conv2dSpec::new(3, 2, 1),
            800,
        );
    }

    #[test]
    fn packed_backward_honours_the_engine_pin() {
        let _guard = ENGINE_TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        for engine in [ConvEngine::Direct, ConvEngine::Im2colGemm] {
            set_conv_engine(engine);
            assert_packed_backward_matches_solo(
                Shape::nchw(2, 6, 12, 12),
                6,
                Conv2dSpec::new(1, 1, 0),
                900,
            );
            assert_packed_backward_matches_solo(
                Shape::nchw(3, 2, 5, 5),
                4,
                Conv2dSpec::new(3, 1, 1),
                1000,
            );
        }
        set_conv_engine(ConvEngine::Auto);
    }

    #[test]
    fn packed_backward_rejects_bad_arguments() {
        let spec = Conv2dSpec::new(3, 1, 1);
        let a = random_tensor(Shape::nchw(2, 3, 8, 8), 70);
        let b = random_tensor(Shape::nchw(1, 3, 8, 8), 71);
        let ga = random_tensor(Shape::nchw(2, 4, 8, 8), 72);
        let gb = random_tensor(Shape::nchw(1, 4, 8, 8), 73);
        let per_sample = 4 * 3 * 3 * 3;
        let mut bufs = [vec![0.0f32; 2 * per_sample], vec![0.0f32; 2 * per_sample]];
        let [buf_a, buf_b] = &mut bufs;

        // Mismatched member input shapes.
        let mut slots = vec![
            PackedGradSlot {
                out: buf_a.as_mut_slice(),
                row_stride: per_sample,
                offset: 0,
            },
            PackedGradSlot {
                out: buf_b.as_mut_slice(),
                row_stride: per_sample,
                offset: 0,
            },
        ];
        let err = conv2d_backward_weight_per_sample_packed_into(
            &[&a, &b],
            &[&ga, &gb],
            4,
            spec,
            &mut Workspace::default(),
            &mut slots,
        )
        .unwrap_err();
        assert!(err.to_string().contains("per_sample_packed"), "{err}");

        // Arity mismatch between inputs and slots.
        let [buf_a, _] = &mut bufs;
        let mut one_slot = vec![PackedGradSlot {
            out: buf_a.as_mut_slice(),
            row_stride: per_sample,
            offset: 0,
        }];
        assert!(conv2d_backward_weight_per_sample_packed_into(
            &[&a, &a],
            &[&ga, &ga],
            4,
            spec,
            &mut Workspace::default(),
            &mut one_slot,
        )
        .is_err());

        // A too-short member buffer is rejected, not sliced out of bounds.
        let mut short = [vec![0.0f32; 2 * per_sample], vec![0.0f32; per_sample - 1]];
        let [long_buf, short_buf] = &mut short;
        let mut slots = vec![
            PackedGradSlot {
                out: long_buf.as_mut_slice(),
                row_stride: per_sample,
                offset: 0,
            },
            PackedGradSlot {
                out: short_buf.as_mut_slice(),
                row_stride: per_sample,
                offset: 0,
            },
        ];
        assert!(conv2d_backward_weight_per_sample_packed_into(
            &[&a, &a],
            &[&ga, &ga],
            4,
            spec,
            &mut Workspace::default(),
            &mut slots,
        )
        .is_err());

        // Empty packs are no-ops, not errors.
        assert!(conv2d_backward_weight_per_sample_packed_into(
            &[],
            &[],
            4,
            spec,
            &mut Workspace::default(),
            &mut [],
        )
        .is_ok());
        assert!(conv2d_backward_input_packed_pooled(
            &random_tensor(Shape::nchw(4, 3, 3, 3), 74),
            &[],
            &Shape::nchw(2, 3, 8, 8),
            spec,
            &mut Workspace::default(),
        )
        .unwrap()
        .is_empty());
    }

    proptest! {
        /// Per-sample weight gradients from the GEMM path match the direct
        /// per-sample oracle across random geometries.
        #[test]
        fn per_sample_weight_grads_match_direct_oracle(
            n in 1usize..4,
            c_in in 1usize..4,
            c_out in 1usize..4,
            h in 3usize..9,
            kernel in 1usize..4,
            stride in 1usize..3,
            padding in 0usize..2,
            seed in 0u64..1_000,
        ) {
            let spec = Conv2dSpec::new(kernel, stride, padding);
            let (oh, ow) = spec.output_hw(h, h);
            if h + 2 * padding >= kernel && oh > 0 && ow > 0 {
                let _engine_guard = ENGINE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
                let input = random_tensor(Shape::nchw(n, c_in, h, h), seed);
                let grad_out = random_tensor(Shape::nchw(n, c_out, oh, ow), seed + 1);
                let mut ws = Workspace::default();
                set_conv_engine(ConvEngine::Im2colGemm);
                let gemm = conv2d_backward_weight_per_sample_with(
                    &input, &grad_out, c_out, spec, &mut ws,
                );
                set_conv_engine(ConvEngine::Auto);
                let reference =
                    conv2d_backward_weight_per_sample_direct(&input, &grad_out, c_out, spec)
                        .unwrap();
                assert_tensors_close(&gemm.unwrap(), &reference, 1e-5);
            }
        }

        /// The decisive property: im2col/GEMM forward and both gradients
        /// match the direct reference kernels across random geometries.
        #[test]
        fn gemm_conv_matches_direct_reference(
            n in 1usize..3,
            c_in in 1usize..5,
            c_out in 1usize..5,
            h in 3usize..11,
            extra_w in 0usize..4,
            kernel in 1usize..4,
            stride in 1usize..3,
            padding in 0usize..3,
            seed in 0u64..1_000,
        ) {
            let spec = Conv2dSpec::new(kernel, stride, padding);
            let w = h + extra_w;
            // Skip degenerate geometries where the kernel overhangs the
            // padded input entirely.
            if h + 2 * padding >= kernel {
                check_engines_agree(n, c_in, c_out, h, w, spec, seed);
            }
        }
    }
}
