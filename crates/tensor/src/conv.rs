//! 2-D convolution kernels (forward, input gradient, weight gradient).
//!
//! Layout conventions follow NCHW for activations and `[out_c, in_c, kh, kw]`
//! for weights, matching the NAS-Bench-201 reference implementation. The
//! kernels are direct (naive) loops: the proxy networks evaluated during
//! zero-shot search are tiny, so clarity wins over blocking tricks.

use crate::{Result, Shape, Tensor, TensorError};
use serde::{Deserialize, Serialize};

/// Static description of a 2-D convolution: kernel size, stride and padding.
///
/// # Example
///
/// ```
/// use micronas_tensor::Conv2dSpec;
/// let spec = Conv2dSpec::new(3, 1, 1);
/// assert_eq!(spec.output_hw(32, 32), (32, 32));
/// let down = Conv2dSpec::new(3, 2, 1);
/// assert_eq!(down.output_hw(32, 32), (16, 16));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Conv2dSpec {
    /// Square kernel size (e.g. 1 or 3).
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding in both spatial dimensions.
    pub padding: usize,
}

impl Conv2dSpec {
    /// Creates a new convolution spec.
    ///
    /// # Panics
    ///
    /// Panics if `kernel` or `stride` is zero.
    pub fn new(kernel: usize, stride: usize, padding: usize) -> Self {
        assert!(kernel > 0, "kernel must be positive");
        assert!(stride > 0, "stride must be positive");
        Self { kernel, stride, padding }
    }

    /// Spatial output size for a given input size.
    pub fn output_hw(&self, h: usize, w: usize) -> (usize, usize) {
        let oh = (h + 2 * self.padding).saturating_sub(self.kernel) / self.stride + 1;
        let ow = (w + 2 * self.padding).saturating_sub(self.kernel) / self.stride + 1;
        (oh, ow)
    }
}

fn check_conv_args(input: &Tensor, weight: &Tensor) -> Result<(usize, usize, usize, usize, usize, usize)> {
    let id = input.shape().dims();
    let wd = weight.shape().dims();
    if id.len() != 4 {
        return Err(TensorError::RankMismatch { op: "conv2d input", expected: 4, actual: id.len() });
    }
    if wd.len() != 4 {
        return Err(TensorError::RankMismatch { op: "conv2d weight", expected: 4, actual: wd.len() });
    }
    if id[1] != wd[1] {
        return Err(TensorError::IncompatibleShapes {
            op: "conv2d (channels)",
            lhs: id.to_vec(),
            rhs: wd.to_vec(),
        });
    }
    Ok((id[0], id[1], id[2], id[3], wd[0], wd[2]))
}

/// Forward 2-D convolution.
///
/// `input` is `[N, C_in, H, W]`, `weight` is `[C_out, C_in, K, K]`; the
/// result is `[N, C_out, H_out, W_out]` per [`Conv2dSpec::output_hw`].
///
/// # Errors
///
/// Returns an error if ranks or channel counts are inconsistent, or if the
/// weight kernel size does not match `spec.kernel`.
pub fn conv2d(input: &Tensor, weight: &Tensor, spec: Conv2dSpec) -> Result<Tensor> {
    let (n, c_in, h, w, c_out, k) = check_conv_args(input, weight)?;
    if k != spec.kernel || weight.shape().dims()[3] != spec.kernel {
        return Err(TensorError::InvalidArgument(format!(
            "weight kernel {}x{} does not match spec kernel {}",
            k,
            weight.shape().dims()[3],
            spec.kernel
        )));
    }
    let (oh, ow) = spec.output_hw(h, w);
    let mut out = Tensor::zeros(Shape::nchw(n, c_out, oh, ow));
    for b in 0..n {
        for oc in 0..c_out {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ic in 0..c_in {
                        for ky in 0..spec.kernel {
                            let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..spec.kernel {
                                let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                acc += input.at4(b, ic, iy as usize, ix as usize)
                                    * weight.at4(oc, ic, ky, kx);
                            }
                        }
                    }
                    *out.at4_mut(b, oc, oy, ox) = acc;
                }
            }
        }
    }
    Ok(out)
}

/// Gradient of the convolution output with respect to its weights.
///
/// Given the forward `input` and the upstream gradient `grad_out`
/// (`[N, C_out, H_out, W_out]`), returns a tensor with the same shape as the
/// weights.
///
/// # Errors
///
/// Returns an error if the shapes are inconsistent with `spec`.
pub fn conv2d_backward_weight(
    input: &Tensor,
    grad_out: &Tensor,
    c_out: usize,
    spec: Conv2dSpec,
) -> Result<Tensor> {
    let id = input.shape().dims();
    if id.len() != 4 {
        return Err(TensorError::RankMismatch { op: "conv2d_backward_weight input", expected: 4, actual: id.len() });
    }
    let gd = grad_out.shape().dims();
    if gd.len() != 4 {
        return Err(TensorError::RankMismatch { op: "conv2d_backward_weight grad", expected: 4, actual: gd.len() });
    }
    let (n, c_in, h, w) = (id[0], id[1], id[2], id[3]);
    let (oh, ow) = spec.output_hw(h, w);
    if gd[0] != n || gd[1] != c_out || gd[2] != oh || gd[3] != ow {
        return Err(TensorError::IncompatibleShapes {
            op: "conv2d_backward_weight",
            lhs: gd.to_vec(),
            rhs: vec![n, c_out, oh, ow],
        });
    }
    let mut grad_w = Tensor::zeros(Shape::nchw(c_out, c_in, spec.kernel, spec.kernel));
    for b in 0..n {
        for oc in 0..c_out {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = grad_out.at4(b, oc, oy, ox);
                    if g == 0.0 {
                        continue;
                    }
                    for ic in 0..c_in {
                        for ky in 0..spec.kernel {
                            let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..spec.kernel {
                                let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                *grad_w.at4_mut(oc, ic, ky, kx) +=
                                    g * input.at4(b, ic, iy as usize, ix as usize);
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(grad_w)
}

/// Gradient of the convolution output with respect to its input.
///
/// # Errors
///
/// Returns an error if the shapes are inconsistent with `spec`.
pub fn conv2d_backward_input(
    weight: &Tensor,
    grad_out: &Tensor,
    input_shape: &Shape,
    spec: Conv2dSpec,
) -> Result<Tensor> {
    let id = input_shape.dims();
    if id.len() != 4 {
        return Err(TensorError::RankMismatch { op: "conv2d_backward_input shape", expected: 4, actual: id.len() });
    }
    let wd = weight.shape().dims();
    let gd = grad_out.shape().dims();
    let (n, c_in, h, w) = (id[0], id[1], id[2], id[3]);
    let c_out = wd[0];
    let (oh, ow) = spec.output_hw(h, w);
    if gd != [n, c_out, oh, ow] {
        return Err(TensorError::IncompatibleShapes {
            op: "conv2d_backward_input",
            lhs: gd.to_vec(),
            rhs: vec![n, c_out, oh, ow],
        });
    }
    let mut grad_in = Tensor::zeros(input_shape.clone());
    for b in 0..n {
        for oc in 0..c_out {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = grad_out.at4(b, oc, oy, ox);
                    if g == 0.0 {
                        continue;
                    }
                    for ic in 0..c_in {
                        for ky in 0..spec.kernel {
                            let iy = (oy * spec.stride + ky) as isize - spec.padding as isize;
                            if iy < 0 || iy >= h as isize {
                                continue;
                            }
                            for kx in 0..spec.kernel {
                                let ix = (ox * spec.stride + kx) as isize - spec.padding as isize;
                                if ix < 0 || ix >= w as isize {
                                    continue;
                                }
                                *grad_in.at4_mut(b, ic, iy as usize, ix as usize) +=
                                    g * weight.at4(oc, ic, ky, kx);
                            }
                        }
                    }
                }
            }
        }
    }
    Ok(grad_in)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeterministicRng;

    fn random_tensor(shape: Shape, seed: u64) -> Tensor {
        let mut rng = DeterministicRng::new(seed);
        let data = (0..shape.numel()).map(|_| rng.normal()).collect();
        Tensor::from_vec(shape, data).unwrap()
    }

    #[test]
    fn identity_kernel_preserves_input() {
        // A 1x1 kernel with weight 1.0 and a single channel is the identity.
        let input = random_tensor(Shape::nchw(1, 1, 4, 4), 1);
        let weight = Tensor::ones(Shape::nchw(1, 1, 1, 1));
        let out = conv2d(&input, &weight, Conv2dSpec::new(1, 1, 0)).unwrap();
        assert_eq!(out, input);
    }

    #[test]
    fn known_3x3_convolution() {
        // 3x3 all-ones kernel over a 3x3 all-ones image with padding 1:
        // centre output is 9, corners are 4, edges are 6.
        let input = Tensor::ones(Shape::nchw(1, 1, 3, 3));
        let weight = Tensor::ones(Shape::nchw(1, 1, 3, 3));
        let out = conv2d(&input, &weight, Conv2dSpec::new(3, 1, 1)).unwrap();
        assert_eq!(out.at4(0, 0, 1, 1), 9.0);
        assert_eq!(out.at4(0, 0, 0, 0), 4.0);
        assert_eq!(out.at4(0, 0, 0, 1), 6.0);
    }

    #[test]
    fn stride_two_halves_resolution() {
        let input = random_tensor(Shape::nchw(2, 3, 8, 8), 2);
        let weight = random_tensor(Shape::nchw(4, 3, 3, 3), 3);
        let out = conv2d(&input, &weight, Conv2dSpec::new(3, 2, 1)).unwrap();
        assert_eq!(out.shape().dims(), &[2, 4, 4, 4]);
    }

    #[test]
    fn channel_mismatch_rejected() {
        let input = Tensor::zeros(Shape::nchw(1, 3, 4, 4));
        let weight = Tensor::zeros(Shape::nchw(2, 4, 3, 3));
        assert!(conv2d(&input, &weight, Conv2dSpec::new(3, 1, 1)).is_err());
    }

    #[test]
    fn kernel_spec_mismatch_rejected() {
        let input = Tensor::zeros(Shape::nchw(1, 1, 4, 4));
        let weight = Tensor::zeros(Shape::nchw(1, 1, 3, 3));
        assert!(conv2d(&input, &weight, Conv2dSpec::new(1, 1, 0)).is_err());
    }

    /// Finite-difference check of the weight gradient.
    #[test]
    fn weight_gradient_matches_finite_difference() {
        let spec = Conv2dSpec::new(3, 1, 1);
        let input = random_tensor(Shape::nchw(2, 2, 5, 5), 10);
        let mut weight = random_tensor(Shape::nchw(3, 2, 3, 3), 11);
        // Loss = sum of outputs; its gradient w.r.t. output is all-ones.
        let out = conv2d(&input, &weight, spec).unwrap();
        let grad_out = Tensor::ones(out.shape().clone());
        let analytic = conv2d_backward_weight(&input, &grad_out, 3, spec).unwrap();

        let eps = 1e-2f32;
        for &idx in &[0usize, 7, 23, 53] {
            let orig = weight.data()[idx];
            weight.data_mut()[idx] = orig + eps;
            let plus = conv2d(&input, &weight, spec).unwrap().sum();
            weight.data_mut()[idx] = orig - eps;
            let minus = conv2d(&input, &weight, spec).unwrap().sum();
            weight.data_mut()[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let a = analytic.data()[idx];
            assert!(
                (numeric - a).abs() < 2e-2 * (1.0 + a.abs()),
                "idx {idx}: numeric {numeric} vs analytic {a}"
            );
        }
    }

    /// Finite-difference check of the input gradient.
    #[test]
    fn input_gradient_matches_finite_difference() {
        let spec = Conv2dSpec::new(3, 1, 1);
        let mut input = random_tensor(Shape::nchw(1, 2, 4, 4), 20);
        let weight = random_tensor(Shape::nchw(2, 2, 3, 3), 21);
        let out = conv2d(&input, &weight, spec).unwrap();
        let grad_out = Tensor::ones(out.shape().clone());
        let analytic =
            conv2d_backward_input(&weight, &grad_out, &Shape::nchw(1, 2, 4, 4), spec).unwrap();

        let eps = 1e-2f32;
        for &idx in &[0usize, 5, 17, 31] {
            let orig = input.data()[idx];
            input.data_mut()[idx] = orig + eps;
            let plus = conv2d(&input, &weight, spec).unwrap().sum();
            input.data_mut()[idx] = orig - eps;
            let minus = conv2d(&input, &weight, spec).unwrap().sum();
            input.data_mut()[idx] = orig;
            let numeric = (plus - minus) / (2.0 * eps);
            let a = analytic.data()[idx];
            assert!(
                (numeric - a).abs() < 2e-2 * (1.0 + a.abs()),
                "idx {idx}: numeric {numeric} vs analytic {a}"
            );
        }
    }

    #[test]
    fn conv_is_linear_in_input() {
        let spec = Conv2dSpec::new(3, 1, 1);
        let a = random_tensor(Shape::nchw(1, 2, 6, 6), 30);
        let b = random_tensor(Shape::nchw(1, 2, 6, 6), 31);
        let w = random_tensor(Shape::nchw(2, 2, 3, 3), 32);
        let lhs = conv2d(&a.add(&b).unwrap(), &w, spec).unwrap();
        let rhs = conv2d(&a, &w, spec).unwrap().add(&conv2d(&b, &w, spec).unwrap()).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            assert!((x - y).abs() < 1e-4);
        }
    }
}
