//! The SIMD-tiled, rayon-chunked CPU backend (`"simd"`).
//!
//! Two levers the paper-default blocked kernels deliberately leave on the
//! table, because pulling them changes floating-point results:
//!
//! 1. **Packed FMA micro-kernels.** rustc never contracts `a * b + c` into a
//!    fused multiply-add (contraction changes rounding), so the blocked
//!    GEMM's autovectorised inner loops issue separate multiply and add
//!    instructions. This backend's GEMM kernels use explicit AVX2
//!    `_mm256_fmadd_ps` tiles — half the floating-point instruction count on
//!    the dominant inner loops, with the (tolerance-gated) single-rounding
//!    semantics of FMA.
//! 2. **Within-batch parallelism.** Samples are independent through every
//!    convolution, so the forward and per-sample-backward kernels split the
//!    batch into **fixed-size** chunks and fan them out on the rayon pool.
//!    Chunk boundaries depend only on the batch size — never on the thread
//!    count — and every sample's values are computed by the same sequential
//!    code, so results are bitwise-identical at any thread count (including
//!    the sequential path taken when one thread is available).
//!
//! On targets without AVX2+FMA (the workspace pins `x86-64-v3`, so this only
//! affects foreign architectures), the GEMM kernels fall back to the blocked
//! scalar schedule; the backend stays correct, merely without the FMA win.
//! The backend is **not** bitwise-identical to the paper default — FMA
//! contraction rounds once where the blocked kernels round twice — so it
//! carries its own store identity and the conformance suite gates it by
//! tolerance against the direct oracle.

use crate::backend::{backend_fingerprint, KernelBackend};
use crate::conv::{
    below_direct_threshold, check_backward_input_args, check_backward_weight_args, check_conv_args,
    col2im_add, conv2d_backward_input_unchecked, conv2d_backward_weight_unchecked,
    conv2d_direct_unchecked, im2col,
};
use crate::pool::{avg_pool2d_backward_pooled, avg_pool2d_pooled};
use crate::{Conv2dSpec, Result, Shape, Tensor, TensorError, Workspace};
use rayon::prelude::*;

/// Samples per parallel work item. Fixed — parallel decomposition must be a
/// pure function of the batch size so results and work items are identical
/// at every thread count.
const BATCH_CHUNK: usize = 4;

/// The SIMD-tiled, rayon-chunked CPU backend. Stateless; see the module
/// docs for the execution model.
#[derive(Debug, Default, Clone, Copy)]
pub struct SimdBackend;

impl SimdBackend {
    /// Whether the packed-FMA kernels are compiled in (true on any
    /// `x86-64-v3` build, e.g. via this workspace's `.cargo/config.toml`).
    pub fn fma_kernels_active() -> bool {
        cfg!(all(
            target_arch = "x86_64",
            target_feature = "avx2",
            target_feature = "fma"
        ))
    }
}

// ---------------------------------------------------------------------------
// FMA GEMM kernels
// ---------------------------------------------------------------------------

/// `C (+)= A · B`, row-major, with packed-FMA accumulator tiles.
pub(crate) fn gemm_nn_fma(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    accumulate: bool,
) {
    assert_eq!(a.len(), m * k, "gemm: A buffer has wrong length");
    assert_eq!(b.len(), k * n, "gemm: B buffer has wrong length");
    assert_eq!(c.len(), m * n, "gemm: C buffer has wrong length");
    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma"
    ))]
    {
        if !accumulate {
            c.fill(0.0);
        }
        let mut i = 0;
        while i + 6 <= m {
            fma::nn_band::<6>(i, k, n, a, b, c);
            i += 6;
        }
        while i + 2 <= m {
            fma::nn_band::<2>(i, k, n, a, b, c);
            i += 2;
        }
        while i < m {
            fma::nn_band::<1>(i, k, n, a, b, c);
            i += 1;
        }
    }
    #[cfg(not(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma"
    )))]
    crate::linalg::gemm_nn(m, k, n, a, b, c, accumulate);
}

/// `C (+)= Aᵀ · B` with `A` row-major `[k, m]`, packed-FMA tiles.
pub(crate) fn gemm_tn_fma(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    accumulate: bool,
) {
    assert_eq!(a.len(), k * m, "gemm: A buffer has wrong length");
    assert_eq!(b.len(), k * n, "gemm: B buffer has wrong length");
    assert_eq!(c.len(), m * n, "gemm: C buffer has wrong length");
    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma"
    ))]
    {
        if !accumulate {
            c.fill(0.0);
        }
        let mut i = 0;
        while i + 6 <= m {
            fma::tn_band::<6>(i, k, n, a, b, c);
            i += 6;
        }
        while i + 2 <= m {
            fma::tn_band::<2>(i, k, n, a, b, c);
            i += 2;
        }
        while i < m {
            fma::tn_band::<1>(i, k, n, a, b, c);
            i += 1;
        }
    }
    #[cfg(not(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma"
    )))]
    crate::linalg::gemm_tn(m, k, n, a, b, c, accumulate);
}

/// `C (+)= A · Bᵀ` with `B` row-major `[n, k]`: packed-FMA dot products
/// along `k` (eight simultaneous dots per accumulator tile).
pub(crate) fn gemm_nt_fma(
    m: usize,
    k: usize,
    n: usize,
    a: &[f32],
    b: &[f32],
    c: &mut [f32],
    accumulate: bool,
) {
    assert_eq!(a.len(), m * k, "gemm: A buffer has wrong length");
    assert_eq!(b.len(), n * k, "gemm: B buffer has wrong length");
    assert_eq!(c.len(), m * n, "gemm: C buffer has wrong length");
    #[cfg(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma"
    ))]
    {
        if !accumulate {
            c.fill(0.0);
        }
        for i in 0..m {
            fma::nt_row(i, k, n, a, b, c);
        }
    }
    #[cfg(not(all(
        target_arch = "x86_64",
        target_feature = "avx2",
        target_feature = "fma"
    )))]
    crate::linalg::gemm_nt(m, k, n, a, b, c, accumulate);
}

#[cfg(all(
    target_arch = "x86_64",
    target_feature = "avx2",
    target_feature = "fma"
))]
mod fma {
    use std::arch::x86_64::{
        __m256, _mm256_add_ps, _mm256_castps256_ps128, _mm256_extractf128_ps, _mm256_fmadd_ps,
        _mm256_loadu_ps, _mm256_set1_ps, _mm256_setzero_ps, _mm256_storeu_ps, _mm_add_ps,
        _mm_add_ss, _mm_cvtss_f32, _mm_movehdup_ps, _mm_movehl_ps,
    };

    /// One `R`-row band of the FMA `gemm_nn`: `C[i..i+R, :] += A[i..i+R, :]·B`.
    ///
    /// Accumulator tiles (`R`×16, then `R`×8, then scalar columns) live in
    /// vector registers across the whole `k` sweep; the only C traffic is one
    /// load-add-store per tile at the end. Tile width never affects numerics:
    /// every output element accumulates over `k` in index order.
    pub(super) fn nn_band<const R: usize>(
        i: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) {
        band::<R, false>(i, k, n, a, b, c);
    }

    /// One `R`-row band of the FMA `gemm_tn` (`A` is `[k, m]`).
    pub(super) fn tn_band<const R: usize>(
        i: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) {
        band::<R, true>(i, k, n, a, b, c);
    }

    /// Shared band body. `TRANSPOSED_A` selects the `A` element layout:
    /// `a[(i+r)*k + p]` (row-major) or `a[p*m + i + r]` (column of a
    /// `[k, m]` matrix); the reduction order is identical.
    fn band<const R: usize, const TRANSPOSED_A: bool>(
        i: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
    ) {
        // `m` only matters for the transposed-A stride.
        let m_stride = if TRANSPOSED_A { a.len() / k.max(1) } else { 0 };
        // SAFETY of the unchecked A reads below: `i + R <= m` (callers' band
        // loops) and `p < k`, so both layouts index inside `a` (length
        // asserted `m·k` by the entry points).
        let a_at = |r: usize, p: usize| -> f32 {
            unsafe {
                if TRANSPOSED_A {
                    *a.get_unchecked(p * m_stride + i + r)
                } else {
                    *a.get_unchecked((i + r) * k + p)
                }
            }
        };
        let mut jb = 0;
        // R×16 main tile: 2R accumulator registers, two packed FMAs per A
        // broadcast — wide enough to hide the 4-5 cycle FMA latency.
        while jb + 16 <= n {
            // SAFETY: all lane loads/stores below stay inside `b` / `c`:
            // `p < k`, `jb + 16 <= n`, `i + R <= m` by the callers' band
            // loops, and buffer lengths are asserted by the entry points.
            unsafe {
                let mut acc0 = [_mm256_setzero_ps(); R];
                let mut acc1 = [_mm256_setzero_ps(); R];
                for p in 0..k {
                    let b0 = _mm256_loadu_ps(b.as_ptr().add(p * n + jb));
                    let b1 = _mm256_loadu_ps(b.as_ptr().add(p * n + jb + 8));
                    for r in 0..R {
                        let av = _mm256_set1_ps(a_at(r, p));
                        acc0[r] = _mm256_fmadd_ps(av, b0, acc0[r]);
                        acc1[r] = _mm256_fmadd_ps(av, b1, acc1[r]);
                    }
                }
                for r in 0..R {
                    let ptr = c.as_mut_ptr().add((i + r) * n + jb);
                    store_add(ptr, acc0[r]);
                    store_add(ptr.add(8), acc1[r]);
                }
            }
            jb += 16;
        }
        while jb + 8 <= n {
            // SAFETY: as above with an 8-wide tile.
            unsafe {
                let mut acc = [_mm256_setzero_ps(); R];
                for p in 0..k {
                    let bv = _mm256_loadu_ps(b.as_ptr().add(p * n + jb));
                    for (r, slot) in acc.iter_mut().enumerate() {
                        *slot = _mm256_fmadd_ps(_mm256_set1_ps(a_at(r, p)), bv, *slot);
                    }
                }
                for (r, &v) in acc.iter().enumerate() {
                    store_add(c.as_mut_ptr().add((i + r) * n + jb), v);
                }
            }
            jb += 8;
        }
        // Scalar remainder columns, FMA-contracted to match the packed lanes.
        for j in jb..n {
            let mut acc = [0.0f32; R];
            for p in 0..k {
                let bv = b[p * n + j];
                for (r, slot) in acc.iter_mut().enumerate() {
                    *slot = a_at(r, p).mul_add(bv, *slot);
                }
            }
            for (r, &v) in acc.iter().enumerate() {
                c[(i + r) * n + j] += v;
            }
        }
    }

    /// `*ptr..*ptr+8 += v` (packed).
    ///
    /// # Safety
    ///
    /// `ptr` must be valid for reading and writing 8 `f32` lanes.
    #[inline(always)]
    unsafe fn store_add(ptr: *mut f32, v: __m256) {
        _mm256_storeu_ps(ptr, _mm256_add_ps(_mm256_loadu_ps(ptr), v));
    }

    /// Horizontal sum of the 8 lanes.
    #[inline(always)]
    fn hsum(v: __m256) -> f32 {
        // SAFETY: pure register arithmetic; no memory access.
        unsafe {
            let lo = _mm256_castps256_ps128(v);
            let hi = _mm256_extractf128_ps(v, 1);
            let q = _mm_add_ps(lo, hi);
            let s = _mm_add_ps(q, _mm_movehl_ps(q, q));
            let s = _mm_add_ss(s, _mm_movehdup_ps(s));
            _mm_cvtss_f32(s)
        }
    }

    /// One row of the FMA `gemm_nt`: `C[i, :] += dot(A[i, :], B[j, :])` for
    /// every `j`, eight dots at a time. Each dot reduces its lane partials
    /// once at the end; the lane decomposition depends only on `k`, so
    /// results are deterministic.
    pub(super) fn nt_row(i: usize, k: usize, n: usize, a: &[f32], b: &[f32], c: &mut [f32]) {
        let a_row = &a[i * k..(i + 1) * k];
        let k_main = k - k % 8;
        let mut j = 0;
        while j + 8 <= n {
            // SAFETY: `p + 8 <= k_main <= k` and `j + 8 <= n` bound every
            // 8-lane load inside `a_row` / `b`'s row `j + jj`.
            unsafe {
                let mut acc = [_mm256_setzero_ps(); 8];
                let mut p = 0;
                while p < k_main {
                    let av = _mm256_loadu_ps(a_row.as_ptr().add(p));
                    for (jj, slot) in acc.iter_mut().enumerate() {
                        let bv = _mm256_loadu_ps(b.as_ptr().add((j + jj) * k + p));
                        *slot = _mm256_fmadd_ps(av, bv, *slot);
                    }
                    p += 8;
                }
                for (jj, &lanes) in acc.iter().enumerate() {
                    let mut dot = hsum(lanes);
                    for p in k_main..k {
                        dot = a_row[p].mul_add(b[(j + jj) * k + p], dot);
                    }
                    c[i * n + j + jj] += dot;
                }
            }
            j += 8;
        }
        for jj in j..n {
            // SAFETY: as above for the remainder columns.
            unsafe {
                let mut acc = _mm256_setzero_ps();
                let mut p = 0;
                while p < k_main {
                    let av = _mm256_loadu_ps(a_row.as_ptr().add(p));
                    let bv = _mm256_loadu_ps(b.as_ptr().add(jj * k + p));
                    acc = _mm256_fmadd_ps(av, bv, acc);
                    p += 8;
                }
                let mut dot = hsum(acc);
                for p in k_main..k {
                    dot = a_row[p].mul_add(b[jj * k + p], dot);
                }
                c[i * n + jj] += dot;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Convolution on the FMA kernels
// ---------------------------------------------------------------------------

/// Computes the forward convolution of samples `lo..hi` into `out_chunk`
/// (laid out as `hi - lo` consecutive `[C_out, OH, OW]` images), lowering
/// through `col`. The sequential kernel both the one-thread path and every
/// parallel work item run.
#[allow(clippy::too_many_arguments)]
fn forward_chunk(
    input: &Tensor,
    w_mat: &[f32],
    spec: Conv2dSpec,
    geo: ConvGeometry,
    lo: usize,
    hi: usize,
    col: &mut [f32],
    out_chunk: &mut [f32],
) {
    let ConvGeometry {
        c_in,
        h,
        w,
        c_out,
        oh,
        ow,
    } = geo;
    let ohow = oh * ow;
    let ckk = c_in * spec.kernel * spec.kernel;
    let in_stride = c_in * h * w;
    let out_stride = c_out * ohow;
    for b in lo..hi {
        let image = &input.data()[b * in_stride..(b + 1) * in_stride];
        let dst = &mut out_chunk[(b - lo) * out_stride..(b - lo + 1) * out_stride];
        if spec.is_pointwise() {
            gemm_nn_fma(c_out, ckk, ohow, w_mat, image, dst, false);
        } else {
            im2col(image, c_in, h, w, spec, oh, ow, col);
            gemm_nn_fma(c_out, ckk, ohow, w_mat, col, dst, false);
        }
    }
}

/// Per-sample weight gradients of samples `lo..hi`, written as consecutive
/// `[C_out·C_in·K·K]` rows of `out_chunk` — the per-item kernel of the
/// chunked per-sample backward.
///
/// Unlike the blocked backend's transposed narrow formulation, each sample's
/// gradient is one transpose-free `grad_W_b = g_b · col_bᵀ` dot-product GEMM
/// ([`gemm_nt_fma`]): the reduction runs along the deep `OH·OW` axis where
/// the packed-FMA lanes live, and the result lands directly in the
/// `[C_out, C_in·K·K]` weight layout.
#[allow(clippy::too_many_arguments)]
fn per_sample_chunk(
    input: &Tensor,
    grad_out: &Tensor,
    spec: Conv2dSpec,
    geo: ConvGeometry,
    lo: usize,
    hi: usize,
    col: &mut [f32],
    out_chunk: &mut [f32],
) {
    let ConvGeometry {
        c_in,
        h,
        w,
        c_out,
        oh,
        ow,
    } = geo;
    let k = spec.kernel;
    let ohow = oh * ow;
    let ckk = c_in * k * k;
    let per_sample = c_out * ckk;
    let in_stride = c_in * h * w;
    let out_stride = c_out * ohow;
    for b in lo..hi {
        let image = &input.data()[b * in_stride..(b + 1) * in_stride];
        let bmat: &[f32] = if spec.is_pointwise() {
            image
        } else {
            im2col(image, c_in, h, w, spec, oh, ow, col);
            col
        };
        let g = &grad_out.data()[b * out_stride..(b + 1) * out_stride];
        let dst = &mut out_chunk[(b - lo) * per_sample..(b - lo + 1) * per_sample];
        gemm_nt_fma(c_out, ohow, ckk, g, bmat, dst, false);
    }
}

/// The shape parameters of one convolution call, bundled so the chunk
/// kernels stay under the argument-count lint.
#[derive(Clone, Copy)]
struct ConvGeometry {
    c_in: usize,
    h: usize,
    w: usize,
    c_out: usize,
    oh: usize,
    ow: usize,
}

/// The fixed chunk decomposition of a batch: `[lo, hi)` sample ranges of at
/// most [`BATCH_CHUNK`] samples, independent of the thread count.
fn batch_chunks(n: usize) -> Vec<(usize, usize)> {
    (0..n.div_ceil(BATCH_CHUNK))
        .map(|c| (c * BATCH_CHUNK, ((c + 1) * BATCH_CHUNK).min(n)))
        .collect()
}

impl KernelBackend for SimdBackend {
    fn id(&self) -> &str {
        "simd"
    }

    fn config_fingerprint(&self) -> u64 {
        // The fallback build produces different (non-FMA) values, so it is a
        // different numerical configuration of the same backend family. The
        // tiny-shape dispatch threshold is part of the numerics too (it
        // decides which shapes run the direct loops), so it is folded in —
        // and unlike the paper-default backend, this backend deliberately
        // ignores the process-global `set_conv_engine` pin: its values are a
        // pure function of inputs and this fingerprint.
        backend_fingerprint(
            "simd",
            1,
            &[
                BATCH_CHUNK as u64,
                Self::fma_kernels_active() as u64,
                crate::conv::DIRECT_MAC_THRESHOLD as u64,
            ],
        )
    }

    fn conv2d(
        &self,
        input: &Tensor,
        weight: &Tensor,
        spec: Conv2dSpec,
        workspace: &mut Workspace,
    ) -> Result<Tensor> {
        let (n, c_in, h, w, c_out, k) = check_conv_args(input, weight, spec)?;
        let (oh, ow) = spec.output_hw(h, w);
        let mut out = Tensor::from_vec(
            Shape::nchw(n, c_out, oh, ow),
            workspace.take(n * c_out * oh * ow),
        )
        .expect("length matches shape by construction");
        if below_direct_threshold(n, c_in, c_out, k, oh, ow) {
            // Tiny problems: the lowering costs more than FMA saves; the
            // direct loops write every output element.
            conv2d_direct_unchecked(input, weight, spec, n, c_in, h, w, c_out, oh, ow, &mut out);
            return Ok(out);
        }
        let geo = ConvGeometry {
            c_in,
            h,
            w,
            c_out,
            oh,
            ow,
        };
        let ohow = oh * ow;
        let ckk = c_in * k * k;
        let out_stride = c_out * ohow;
        let col_len = if spec.is_pointwise() { 0 } else { ckk * ohow };
        let w_mat = weight.data();
        if rayon::current_num_threads() > 1 && n > BATCH_CHUNK {
            // Fixed-size chunks fan out on the pool; each work item owns its
            // scratch and its disjoint output range, and results are copied
            // back in chunk order — bitwise-identical to the sequential path.
            let chunks = batch_chunks(n);
            let parts: Vec<Vec<f32>> = chunks
                .par_iter()
                .map(|&(lo, hi)| {
                    let mut col = vec![0.0f32; col_len];
                    let mut part = vec![0.0f32; (hi - lo) * out_stride];
                    forward_chunk(input, w_mat, spec, geo, lo, hi, &mut col, &mut part);
                    part
                })
                .collect();
            let out_data = out.data_mut();
            for (&(lo, _), part) in chunks.iter().zip(&parts) {
                out_data[lo * out_stride..lo * out_stride + part.len()].copy_from_slice(part);
            }
        } else {
            let col = workspace.col_buffer(col_len.max(1));
            forward_chunk(input, w_mat, spec, geo, 0, n, col, out.data_mut());
        }
        Ok(out)
    }

    fn conv2d_backward_input(
        &self,
        weight: &Tensor,
        grad_out: &Tensor,
        input_shape: &Shape,
        spec: Conv2dSpec,
        workspace: &mut Workspace,
    ) -> Result<Tensor> {
        let (n, c_in, h, w, c_out, oh, ow) =
            check_backward_input_args(weight, grad_out, input_shape, spec)?;
        let mut grad_in = Tensor::from_vec(
            input_shape.clone(),
            workspace.take_zeroed(input_shape.numel()),
        )
        .expect("length matches shape by construction");
        let k = spec.kernel;
        if below_direct_threshold(n, c_in, c_out, k, oh, ow) {
            conv2d_backward_input_unchecked(
                weight,
                grad_out,
                spec,
                n,
                c_in,
                h,
                w,
                c_out,
                oh,
                ow,
                &mut grad_in,
            );
            return Ok(grad_in);
        }
        let ohow = oh * ow;
        let ckk = c_in * k * k;
        let in_stride = c_in * h * w;
        let out_stride = c_out * ohow;
        let w_mat = weight.data();
        let gi = grad_in.data_mut();
        if spec.is_pointwise() {
            for b in 0..n {
                let g = &grad_out.data()[b * out_stride..(b + 1) * out_stride];
                let dst = &mut gi[b * in_stride..(b + 1) * in_stride];
                gemm_tn_fma(ckk, c_out, ohow, w_mat, g, dst, false);
            }
            return Ok(grad_in);
        }
        let stage = workspace.aux_buffer(ckk * ohow);
        for b in 0..n {
            let g = &grad_out.data()[b * out_stride..(b + 1) * out_stride];
            gemm_tn_fma(ckk, c_out, ohow, w_mat, g, stage, false);
            let dst = &mut gi[b * in_stride..(b + 1) * in_stride];
            col2im_add(stage, c_in, h, w, spec, oh, ow, dst);
        }
        Ok(grad_in)
    }

    fn conv2d_backward_weight(
        &self,
        input: &Tensor,
        grad_out: &Tensor,
        c_out: usize,
        spec: Conv2dSpec,
        workspace: &mut Workspace,
    ) -> Result<Tensor> {
        let (n, c_in, h, w, oh, ow) = check_backward_weight_args(input, grad_out, c_out, spec)?;
        let k = spec.kernel;
        if below_direct_threshold(n, c_in, c_out, k, oh, ow) {
            return Ok(conv2d_backward_weight_unchecked(
                input, grad_out, c_out, spec, n, c_in, h, w, oh, ow,
            ));
        }
        let mut grad_w = Tensor::zeros(Shape::nchw(c_out, c_in, k, k));
        let ohow = oh * ow;
        let ckk = c_in * k * k;
        let in_stride = c_in * h * w;
        let out_stride = c_out * ohow;
        let col_len = if spec.is_pointwise() { 0 } else { ckk * ohow };
        let col = workspace.col_buffer(col_len.max(1));
        // Transpose-free accumulation: grad_W += g_b · col_bᵀ lands straight
        // in the [C_out, C_in·K·K] weight layout.
        for b in 0..n {
            let image = &input.data()[b * in_stride..(b + 1) * in_stride];
            let bmat: &[f32] = if spec.is_pointwise() {
                image
            } else {
                im2col(image, c_in, h, w, spec, oh, ow, col);
                col
            };
            let g = &grad_out.data()[b * out_stride..(b + 1) * out_stride];
            gemm_nt_fma(c_out, ohow, ckk, g, bmat, grad_w.data_mut(), true);
        }
        Ok(grad_w)
    }

    fn conv2d_backward_weight_per_sample_into(
        &self,
        input: &Tensor,
        grad_out: &Tensor,
        c_out: usize,
        spec: Conv2dSpec,
        workspace: &mut Workspace,
        out: &mut [f32],
        row_stride: usize,
        offset: usize,
    ) -> Result<()> {
        let (n, c_in, h, w, oh, ow) = check_backward_weight_args(input, grad_out, c_out, spec)?;
        let k = spec.kernel;
        let per_sample = c_out * c_in * k * k;
        if n > 0 && out.len() < (n - 1) * row_stride + offset + per_sample {
            return Err(TensorError::InvalidArgument(format!(
                "per-sample gradient output buffer too short: {} < {}",
                out.len(),
                (n - 1) * row_stride + offset + per_sample
            )));
        }
        // Per-sample dispatch, mirroring the blocked backend: each sample is
        // its own batch-1 problem.
        if below_direct_threshold(1, c_in, c_out, k, oh, ow) {
            for b in 0..n {
                let dst = &mut out[b * row_stride + offset..b * row_stride + offset + per_sample];
                crate::conv::direct_weight_grad_sample(
                    input, grad_out, b, c_out, c_in, h, w, oh, ow, spec, dst,
                );
            }
            return Ok(());
        }
        let geo = ConvGeometry {
            c_in,
            h,
            w,
            c_out,
            oh,
            ow,
        };
        let ohow = oh * ow;
        let ckk = c_in * k * k;
        let col_len = if spec.is_pointwise() { 0 } else { ckk * ohow };
        if rayon::current_num_threads() > 1 && n > BATCH_CHUNK {
            let chunks = batch_chunks(n);
            let parts: Vec<Vec<f32>> = chunks
                .par_iter()
                .map(|&(lo, hi)| {
                    let mut col = vec![0.0f32; col_len];
                    let mut part = vec![0.0f32; (hi - lo) * per_sample];
                    per_sample_chunk(input, grad_out, spec, geo, lo, hi, &mut col, &mut part);
                    part
                })
                .collect();
            for (&(lo, hi), part) in chunks.iter().zip(&parts) {
                for b in lo..hi {
                    out[b * row_stride + offset..b * row_stride + offset + per_sample]
                        .copy_from_slice(&part[(b - lo) * per_sample..(b - lo + 1) * per_sample]);
                }
            }
        } else {
            let col = workspace.col_buffer(col_len.max(1));
            for b in 0..n {
                let dst = &mut out[b * row_stride + offset..b * row_stride + offset + per_sample];
                per_sample_chunk(input, grad_out, spec, geo, b, b + 1, col, dst);
            }
        }
        Ok(())
    }

    fn avg_pool2d(
        &self,
        input: &Tensor,
        kernel: usize,
        stride: usize,
        padding: usize,
        workspace: &mut Workspace,
    ) -> Result<Tensor> {
        avg_pool2d_pooled(input, kernel, stride, padding, workspace)
    }

    fn avg_pool2d_backward(
        &self,
        grad_out: &Tensor,
        input_shape: &Shape,
        kernel: usize,
        stride: usize,
        padding: usize,
        workspace: &mut Workspace,
    ) -> Result<Tensor> {
        avg_pool2d_backward_pooled(grad_out, input_shape, kernel, stride, padding, workspace)
    }

    fn gemm_nn(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        accumulate: bool,
    ) {
        gemm_nn_fma(m, k, n, a, b, c, accumulate);
    }

    fn gemm_nt(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        accumulate: bool,
    ) {
        gemm_nt_fma(m, k, n, a, b, c, accumulate);
    }

    fn gemm_tn(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        accumulate: bool,
    ) {
        gemm_tn_fma(m, k, n, a, b, c, accumulate);
    }

    fn gram_nt_f64(&self, n: usize, p: usize, j: &[f32], out: &mut [f64]) {
        // f32 panels with f64 accumulation — accuracy is the point here, and
        // the existing schedule is already near-optimal for [n, P] shapes.
        crate::linalg::gram_nt_f64(n, p, j, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeterministicRng;

    fn random_vec(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = DeterministicRng::new(seed);
        (0..len).map(|_| rng.normal()).collect()
    }

    fn assert_close(a: &[f32], b: &[f32], tol: f32) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() <= tol * (1.0 + y.abs()), "{x} vs {y}");
        }
    }

    #[test]
    fn fma_gemm_nn_matches_blocked_gemm() {
        for (m, k, n) in [(1, 1, 1), (6, 54, 144), (13, 7, 23), (4, 100, 16)] {
            let a = random_vec(m * k, 1);
            let b = random_vec(k * n, 2);
            let mut c_fma = vec![0.0f32; m * n];
            let mut c_ref = vec![0.0f32; m * n];
            gemm_nn_fma(m, k, n, &a, &b, &mut c_fma, false);
            crate::linalg::gemm_nn(m, k, n, &a, &b, &mut c_ref, false);
            assert_close(&c_fma, &c_ref, 1e-5);
            // Accumulation adds on top of existing contents.
            gemm_nn_fma(m, k, n, &a, &b, &mut c_fma, true);
            for (x, y) in c_fma.iter().zip(&c_ref) {
                assert!((x - 2.0 * y).abs() <= 2e-5 * (1.0 + y.abs()));
            }
        }
    }

    #[test]
    fn fma_gemm_nt_matches_blocked_gemm() {
        for (m, k, n) in [(8, 256, 72), (3, 7, 5), (1, 9, 1), (10, 64, 9)] {
            let a = random_vec(m * k, 7);
            let b = random_vec(n * k, 8);
            let mut c_fma = vec![0.0f32; m * n];
            let mut c_ref = vec![0.0f32; m * n];
            gemm_nt_fma(m, k, n, &a, &b, &mut c_fma, false);
            crate::linalg::gemm_nt(m, k, n, &a, &b, &mut c_ref, false);
            assert_close(&c_fma, &c_ref, 1e-5);
        }
    }

    #[test]
    fn fma_gemm_tn_matches_blocked_gemm() {
        for (m, k, n) in [(54, 6, 144), (5, 9, 17), (16, 3, 8)] {
            let a = random_vec(k * m, 3);
            let b = random_vec(k * n, 4);
            let mut c_fma = vec![0.0f32; m * n];
            let mut c_ref = vec![0.0f32; m * n];
            gemm_tn_fma(m, k, n, &a, &b, &mut c_fma, false);
            crate::linalg::gemm_tn(m, k, n, &a, &b, &mut c_ref, false);
            assert_close(&c_fma, &c_ref, 1e-5);
        }
    }

    #[test]
    fn batch_chunks_are_thread_count_independent() {
        assert_eq!(batch_chunks(1), vec![(0, 1)]);
        assert_eq!(batch_chunks(4), vec![(0, 4)]);
        assert_eq!(batch_chunks(9), vec![(0, 4), (4, 8), (8, 9)]);
    }

    #[test]
    fn simd_conv_is_bitwise_identical_across_thread_counts() {
        use rayon::ThreadPoolBuilder;
        let backend = SimdBackend;
        let input =
            Tensor::from_vec(Shape::nchw(9, 3, 10, 10), random_vec(9 * 3 * 100, 5)).unwrap();
        let weight = Tensor::from_vec(Shape::nchw(8, 3, 3, 3), random_vec(8 * 27, 6)).unwrap();
        let spec = Conv2dSpec::new(3, 1, 1);
        let run = |threads: usize| {
            ThreadPoolBuilder::new()
                .num_threads(threads)
                .build()
                .unwrap()
                .install(|| {
                    backend
                        .conv2d(&input, &weight, spec, &mut Workspace::default())
                        .unwrap()
                })
        };
        let one = run(1);
        for threads in [2, 3, 8] {
            assert_eq!(one, run(threads), "threads={threads}");
        }
    }

    /// The store-identity invariant behind the backend fingerprint: the SIMD
    /// backend's values must NOT depend on the process-global engine pin —
    /// a pinned process writing into a shared store would otherwise persist
    /// values the `simd` fingerprint cannot reproduce.
    #[test]
    fn simd_backend_ignores_the_process_global_engine_pin() {
        use crate::{set_conv_engine, ConvEngine};
        let _engine_guard = crate::conv::ENGINE_TEST_LOCK
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let backend = SimdBackend;
        let spec = Conv2dSpec::new(3, 1, 1);
        // One shape above the direct threshold, one below.
        for (n, c, h) in [(2usize, 8usize, 12usize), (1, 1, 4)] {
            let input =
                Tensor::from_vec(Shape::nchw(n, c, h, h), random_vec(n * c * h * h, 11)).unwrap();
            let weight =
                Tensor::from_vec(Shape::nchw(c, c, 3, 3), random_vec(c * c * 9, 12)).unwrap();
            let unpinned = backend
                .conv2d(&input, &weight, spec, &mut Workspace::default())
                .unwrap();
            for engine in [ConvEngine::Direct, ConvEngine::Im2colGemm] {
                set_conv_engine(engine);
                let pinned = backend
                    .conv2d(&input, &weight, spec, &mut Workspace::default())
                    .unwrap();
                set_conv_engine(ConvEngine::Auto);
                assert_eq!(unpinned, pinned, "engine pin {engine:?} leaked into simd");
            }
        }
    }
}
