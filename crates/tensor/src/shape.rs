use serde::{Deserialize, Serialize};
use std::fmt;

/// The dimensions of a [`crate::Tensor`].
///
/// A `Shape` is an ordered list of dimension sizes. Helper constructors exist
/// for the ranks used throughout the workspace (vectors, matrices and NCHW
/// feature maps).
///
/// # Example
///
/// ```
/// use micronas_tensor::Shape;
/// let s = Shape::nchw(8, 3, 32, 32);
/// assert_eq!(s.numel(), 8 * 3 * 32 * 32);
/// assert_eq!(s.rank(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from an arbitrary list of dimensions.
    pub fn new(dims: impl Into<Vec<usize>>) -> Self {
        Self { dims: dims.into() }
    }

    /// A rank-1 shape (vector of length `n`).
    pub fn d1(n: usize) -> Self {
        Self { dims: vec![n] }
    }

    /// A rank-2 shape (matrix with `rows` rows and `cols` columns).
    pub fn d2(rows: usize, cols: usize) -> Self {
        Self {
            dims: vec![rows, cols],
        }
    }

    /// A rank-3 shape.
    pub fn d3(a: usize, b: usize, c: usize) -> Self {
        Self {
            dims: vec![a, b, c],
        }
    }

    /// A rank-4 NCHW shape (batch, channels, height, width).
    pub fn nchw(n: usize, c: usize, h: usize, w: usize) -> Self {
        Self {
            dims: vec![n, c, h, w],
        }
    }

    /// The dimension sizes.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements implied by the shape.
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Returns the size of dimension `i`, if it exists.
    pub fn dim(&self, i: usize) -> Option<usize> {
        self.dims.get(i).copied()
    }

    /// Row-major strides for this shape.
    ///
    /// The stride of the last dimension is always 1.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Whether any dimension is zero (i.e. the shape holds no elements).
    pub fn is_empty(&self) -> bool {
        self.numel() == 0
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constructors_and_numel() {
        assert_eq!(Shape::d1(5).numel(), 5);
        assert_eq!(Shape::d2(3, 4).numel(), 12);
        assert_eq!(Shape::d3(2, 3, 4).numel(), 24);
        assert_eq!(Shape::nchw(2, 3, 4, 5).numel(), 120);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::nchw(2, 3, 4, 5);
        assert_eq!(s.strides(), vec![60, 20, 5, 1]);
        let s = Shape::d1(7);
        assert_eq!(s.strides(), vec![1]);
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::d2(2, 3).to_string(), "[2x3]");
    }

    #[test]
    fn empty_shape_detection() {
        assert!(Shape::d2(0, 3).is_empty());
        assert!(!Shape::d2(1, 3).is_empty());
    }

    #[test]
    fn conversion_from_vec_and_slice() {
        let v: Shape = vec![2usize, 3].into();
        assert_eq!(v, Shape::d2(2, 3));
        let s: Shape = [4usize, 5][..].into();
        assert_eq!(s, Shape::d2(4, 5));
    }

    proptest! {
        #[test]
        fn strides_consistent_with_numel(dims in proptest::collection::vec(1usize..6, 1..5)) {
            let shape = Shape::new(dims.clone());
            let strides = shape.strides();
            // stride of dim 0 times its size equals numel
            prop_assert_eq!(strides[0] * dims[0], shape.numel());
            // strides are non-increasing for row-major layout
            for w in strides.windows(2) {
                prop_assert!(w[0] >= w[1]);
            }
        }
    }
}
