//! Small statistics helpers shared across the workspace.

/// Mean of a slice (0.0 for an empty slice).
///
/// # Example
///
/// ```
/// use micronas_tensor::mean;
/// assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
/// ```
pub fn mean(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f32>() / xs.len() as f32
    }
}

/// Population variance of a slice (0.0 for fewer than two elements).
pub fn population_variance(xs: &[f32]) -> f32 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f32>() / xs.len() as f32
}

/// Dot product of two slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
pub fn l2_norm(xs: &[f32]) -> f32 {
    xs.iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// Standardizes a slice in place to zero mean and unit variance.
///
/// Slices with (numerically) zero variance are only mean-centred.
pub fn standardize(xs: &mut [f32]) {
    let m = mean(xs);
    let var = population_variance(xs);
    let std = var.sqrt();
    for x in xs.iter_mut() {
        *x -= m;
        if std > 1e-12 {
            *x /= std;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_and_variance_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(population_variance(&[5.0]), 0.0);
        assert!((population_variance(&[1.0, 3.0]) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic]
    fn dot_length_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn standardize_centres_and_scales() {
        let mut xs = vec![2.0, 4.0, 6.0, 8.0];
        standardize(&mut xs);
        assert!(mean(&xs).abs() < 1e-6);
        assert!((population_variance(&xs) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn standardize_constant_slice_centres_only() {
        let mut xs = vec![3.0, 3.0, 3.0];
        standardize(&mut xs);
        assert!(xs.iter().all(|&x| x.abs() < 1e-6));
    }

    proptest! {
        #[test]
        fn variance_nonnegative(xs in proptest::collection::vec(-100.0f32..100.0, 0..64)) {
            prop_assert!(population_variance(&xs) >= 0.0);
        }

        #[test]
        fn standardized_mean_is_zero(xs in proptest::collection::vec(-100.0f32..100.0, 2..64)) {
            let mut ys = xs.clone();
            standardize(&mut ys);
            prop_assert!(mean(&ys).abs() < 1e-3);
        }
    }
}
