//! The pluggable execution-backend layer: [`KernelBackend`].
//!
//! Every numerical kernel the network substrate runs — convolution forward
//! and backward, per-sample weight gradients, average pooling, the GEMM
//! primitives behind linear layers and the NTK Gram build — is dispatched
//! through an object-safe [`KernelBackend`] trait instead of the old
//! two-variant [`crate::ConvEngine`] enum. A backend carries a **stable
//! string id** and a **configuration fingerprint** (mirroring the `Proxy`
//! trait one layer up), so execution policy has a persistent identity that
//! evaluation stores can fold into their keys: results produced by a backend
//! that is not bitwise-identical to the paper default must never alias
//! results produced by it.
//!
//! Four backends ship:
//!
//! * [`DirectBackend`] (`"direct"`) — the naive-loop reference kernels, kept
//!   as the portable correctness oracle the conformance suite compares every
//!   other backend against.
//! * [`BlockedGemmBackend`] (`"blocked_gemm"`) — the paper-default engine:
//!   the im2col + cache-blocked GEMM path with the small-shape direct
//!   dispatch, exactly the code the dispatching free functions
//!   ([`crate::conv2d_with`] and friends) run. This is the only backend whose
//!   results are **bitwise-identical** to the paper pipeline
//!   ([`KernelBackend::bitwise_paper_identical`]).
//! * `SimdBackend` (`"simd"`, [`crate::SimdBackend`]) — hand-tiled AVX2+FMA
//!   micro-kernels plus fixed-size per-sample batch chunking on the rayon
//!   pool; bitwise-deterministic at any thread count, but *not* bitwise-equal
//!   to the paper default (FMA contracts the multiply-add rounding).
//! * `Int8Backend` (`"int8_mcu"`, [`crate::Int8Backend`]) — int8 fixed-point
//!   inference consistent with the `micronas-mcu` cycle model; forward-only.
//!
//! [`all_backends`] is the registry the conformance suite iterates, and
//! [`paper_default_backend`] is the shared instance every network uses when
//! no backend is supplied explicitly.

use crate::conv::{
    check_backward_weight_args, conv2d_backward_input_packed_pooled, conv2d_backward_input_pooled,
    conv2d_backward_weight_per_sample_into, conv2d_backward_weight_per_sample_packed_into,
    conv2d_backward_weight_unchecked, conv2d_backward_weight_with, conv2d_direct, conv2d_pooled,
    direct_weight_grad_sample, PackedGradSlot,
};
use crate::pool::{avg_pool2d_backward_pooled, avg_pool2d_pooled};
use crate::rng::hash_mix;
use crate::{Conv2dSpec, Result, Shape, Tensor, TensorError, Workspace};
use serde::{Deserialize, Serialize};
use std::sync::{Arc, OnceLock};

/// Default retention cap (bytes) for shared per-thread scratch arenas; see
/// [`KernelBackend::arena_retention_cap_bytes`].
pub const DEFAULT_ARENA_RETENTION_CAP: usize = 64 << 20;

/// An execution backend: the complete kernel set the network substrate runs
/// on, behind one object-safe surface.
///
/// # Contract
///
/// * **Purity** — every method is a pure function of its tensor arguments
///   (plus the backend's own configuration). The [`Workspace`] is scratch
///   only; it never carries numerical state between calls. One documented
///   exception: the paper-default [`BlockedGemmBackend`] *is* the legacy
///   dispatching pipeline, pin included — it honours a process-wide
///   [`crate::set_conv_engine`] override exactly as the pre-backend code
///   did (the equivalence tests and benches rely on that). Production code
///   must leave the pin at `Auto`; see [`crate::set_conv_engine`] for the
///   store-interaction hazard. Every other backend ignores the pin.
/// * **Determinism** — two calls with identical inputs return
///   bitwise-identical outputs, on any thread and at any rayon thread count.
/// * **Identity** — `(id, config_fingerprint)` is the backend's persistent
///   identity. Backends for which [`KernelBackend::bitwise_paper_identical`]
///   is `false` produce values that may diverge from the paper-default
///   pipeline, and stores fold this identity into their namespace so such
///   values can never poison logs written by the default backend.
/// * **Output buffers** — conv/pool methods may draw their output tensors
///   from the workspace recycling pool (callers recycle them in steady
///   state); where the buffer comes from never changes the values.
pub trait KernelBackend: std::fmt::Debug + Send + Sync {
    /// Stable string id of the backend family (e.g. `"blocked_gemm"`).
    /// Hashed into persistent store namespaces — it must never change once
    /// results have been persisted under it.
    fn id(&self) -> &str;

    /// Stable fingerprint of the backend's configuration (folded over an
    /// explicit value encoding with [`hash_mix`], never `std` hashes). The
    /// id is part of the fingerprint domain, so two backend families never
    /// collide structurally.
    fn config_fingerprint(&self) -> u64;

    /// Whether this backend's results are bitwise-identical to the
    /// paper-default execution path on every input. Only such backends may
    /// share the paper pipeline's store namespace.
    fn bitwise_paper_identical(&self) -> bool {
        false
    }

    /// Whether the gradient kernels (`conv2d_backward_*`) are implemented.
    /// Inference-only backends (int8) return `false` and error cleanly from
    /// the gradient entry points.
    fn supports_gradients(&self) -> bool {
        true
    }

    /// Workspace policy: the scratch-arena footprint above which shared
    /// per-thread arenas release their buffers after an evaluation
    /// ([`DEFAULT_ARENA_RETENTION_CAP`] unless the backend's working set
    /// differs materially from the float pipeline's).
    fn arena_retention_cap_bytes(&self) -> usize {
        DEFAULT_ARENA_RETENTION_CAP
    }

    /// Forward 2-D convolution (`[N, C_in, H, W]` × `[C_out, C_in, K, K]`).
    ///
    /// # Errors
    ///
    /// Returns an error for inconsistent shapes.
    fn conv2d(
        &self,
        input: &Tensor,
        weight: &Tensor,
        spec: Conv2dSpec,
        workspace: &mut Workspace,
    ) -> Result<Tensor>;

    /// Forward convolution of several same-shape inputs against one shared
    /// weight — the cross-candidate mega-batching entry point.
    ///
    /// The default implementation is the per-candidate oracle: one
    /// [`KernelBackend::conv2d`] per input, in order, so every backend is
    /// pack-conformant by construction. Backends that can fuse the panels
    /// into one wide dispatch override this; the override must stay
    /// **bitwise identical** to the default for that backend (the packed
    /// evaluation path promises bit-equality with the one-at-a-time path at
    /// every pack width).
    ///
    /// # Errors
    ///
    /// Returns an error for inconsistent shapes, or if the inputs do not
    /// all share one shape.
    fn conv2d_forward_packed(
        &self,
        inputs: &[&Tensor],
        weight: &Tensor,
        spec: Conv2dSpec,
        workspace: &mut Workspace,
    ) -> Result<Vec<Tensor>> {
        if let Some(first) = inputs.first() {
            for input in &inputs[1..] {
                if input.shape() != first.shape() {
                    return Err(TensorError::IncompatibleShapes {
                        op: "conv2d_forward_packed (inputs)",
                        lhs: first.shape().dims().to_vec(),
                        rhs: input.shape().dims().to_vec(),
                    });
                }
            }
        }
        inputs
            .iter()
            .map(|input| self.conv2d(input, weight, spec, workspace))
            .collect()
    }

    /// Gradient of the convolution output w.r.t. its input.
    ///
    /// # Errors
    ///
    /// Returns an error for inconsistent shapes, or if the backend does not
    /// support gradients.
    fn conv2d_backward_input(
        &self,
        weight: &Tensor,
        grad_out: &Tensor,
        input_shape: &Shape,
        spec: Conv2dSpec,
        workspace: &mut Workspace,
    ) -> Result<Tensor>;

    /// Gradient of the convolution output w.r.t. its weights (summed over
    /// the batch).
    ///
    /// # Errors
    ///
    /// Returns an error for inconsistent shapes, or if the backend does not
    /// support gradients.
    fn conv2d_backward_weight(
        &self,
        input: &Tensor,
        grad_out: &Tensor,
        c_out: usize,
        spec: Conv2dSpec,
        workspace: &mut Workspace,
    ) -> Result<Tensor>;

    /// Per-sample weight gradients written straight into a `[N, P]` matrix:
    /// sample `b`'s flattened gradient lands at
    /// `out[b * row_stride + offset ..]` (see
    /// [`crate::conv2d_backward_weight_per_sample_into`]).
    ///
    /// # Errors
    ///
    /// Returns an error for inconsistent shapes or a too-short buffer, or if
    /// the backend does not support gradients.
    #[allow(clippy::too_many_arguments)]
    fn conv2d_backward_weight_per_sample_into(
        &self,
        input: &Tensor,
        grad_out: &Tensor,
        c_out: usize,
        spec: Conv2dSpec,
        workspace: &mut Workspace,
        out: &mut [f32],
        row_stride: usize,
        offset: usize,
    ) -> Result<()>;

    /// Packed per-sample weight gradients: one grouped dispatch computing
    /// [`KernelBackend::conv2d_backward_weight_per_sample_into`] for every
    /// pack member (each with its own destination slot, since members'
    /// parameter counts and layer offsets differ).
    ///
    /// The default implementation loops the solo per-sample kernel, which
    /// makes every backend pack-conformant by construction. Backends that
    /// can amortise work across members (sharing one im2col lowering of
    /// bitwise-identical probe activations) override it, but the override
    /// must keep the per-candidate schedule of the solo path so results stay
    /// bitwise-identical at every pack width — the same discipline as
    /// [`KernelBackend::conv2d_forward_packed`].
    ///
    /// # Errors
    ///
    /// Returns an error if slice lengths disagree, for inconsistent shapes
    /// or a too-short buffer, or if the backend does not support gradients.
    fn conv2d_backward_weight_per_sample_packed(
        &self,
        inputs: &[&Tensor],
        grad_outs: &[&Tensor],
        c_out: usize,
        spec: Conv2dSpec,
        workspace: &mut Workspace,
        slots: &mut [PackedGradSlot<'_>],
    ) -> Result<()> {
        if inputs.len() != grad_outs.len() || inputs.len() != slots.len() {
            return Err(TensorError::InvalidArgument(format!(
                "packed per-sample backward arity mismatch: {} inputs, {} grads, {} slots",
                inputs.len(),
                grad_outs.len(),
                slots.len()
            )));
        }
        for ((input, grad_out), slot) in inputs.iter().zip(grad_outs).zip(slots.iter_mut()) {
            self.conv2d_backward_weight_per_sample_into(
                input,
                grad_out,
                c_out,
                spec,
                workspace,
                slot.out,
                slot.row_stride,
                slot.offset,
            )?;
        }
        Ok(())
    }

    /// Packed input gradients: one grouped dispatch computing
    /// [`KernelBackend::conv2d_backward_input`] for every pack member
    /// against one shared weight tensor.
    ///
    /// The default implementation loops the solo kernel; overrides must be
    /// bitwise-identical to that loop at every pack width (see
    /// [`KernelBackend::conv2d_backward_weight_per_sample_packed`]).
    ///
    /// # Errors
    ///
    /// Returns an error for inconsistent shapes, or if the backend does not
    /// support gradients.
    fn conv2d_backward_input_packed(
        &self,
        weight: &Tensor,
        grad_outs: &[&Tensor],
        input_shape: &Shape,
        spec: Conv2dSpec,
        workspace: &mut Workspace,
    ) -> Result<Vec<Tensor>> {
        grad_outs
            .iter()
            .map(|grad_out| {
                self.conv2d_backward_input(weight, grad_out, input_shape, spec, workspace)
            })
            .collect()
    }

    /// Average pooling with count-include-pad semantics.
    ///
    /// # Errors
    ///
    /// Returns an error for inconsistent shapes.
    fn avg_pool2d(
        &self,
        input: &Tensor,
        kernel: usize,
        stride: usize,
        padding: usize,
        workspace: &mut Workspace,
    ) -> Result<Tensor>;

    /// Backward pass of [`KernelBackend::avg_pool2d`].
    ///
    /// # Errors
    ///
    /// Returns an error for inconsistent shapes, or if the backend does not
    /// support gradients.
    fn avg_pool2d_backward(
        &self,
        grad_out: &Tensor,
        input_shape: &Shape,
        kernel: usize,
        stride: usize,
        padding: usize,
        workspace: &mut Workspace,
    ) -> Result<Tensor>;

    /// `C = A · B` (or `C += A · B`), all row-major (`A` `[m, k]`, `B`
    /// `[k, n]`). The linear-layer forward/backward primitive.
    ///
    /// # Panics
    ///
    /// Panics if a buffer length does not match its dimensions.
    #[allow(clippy::too_many_arguments)]
    fn gemm_nn(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        accumulate: bool,
    );

    /// `C = A · Bᵀ` with `B` row-major `[n, k]`.
    ///
    /// # Panics
    ///
    /// Panics if a buffer length does not match its dimensions.
    #[allow(clippy::too_many_arguments)]
    fn gemm_nt(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        accumulate: bool,
    );

    /// `C = Aᵀ · B` with `A` row-major `[k, m]`.
    ///
    /// # Panics
    ///
    /// Panics if a buffer length does not match its dimensions.
    #[allow(clippy::too_many_arguments)]
    fn gemm_tn(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        accumulate: bool,
    );

    /// Symmetric Gram matrix `G = J · Jᵀ` of a row-major `[n, p]` matrix,
    /// accumulated in `f64` — the NTK Gram primitive.
    ///
    /// # Panics
    ///
    /// Panics if a buffer length does not match its dimensions.
    fn gram_nt_f64(&self, n: usize, p: usize, j: &[f32], out: &mut [f64]);
}

/// Folds a backend identity chain: domain prefix, id bytes, then the
/// backend's configuration values. Public so external backends fingerprint
/// consistently with the built-ins.
pub fn backend_fingerprint(id: &str, version: u64, params: &[u64]) -> u64 {
    // "MicroNAS" in ASCII, xor-tagged for the backend domain.
    let seed = 0x4D69_6372_6F4E_4153u64 ^ 0x6261_636B_656E_6421;
    let mut h = id.bytes().fold(seed, |h, b| hash_mix(h, b as u64));
    h = hash_mix(h, version);
    for &p in params {
        h = hash_mix(h, p);
    }
    h
}

/// The error every inference-only backend returns from gradient entry points.
pub(crate) fn gradients_unsupported(id: &str) -> TensorError {
    TensorError::InvalidArgument(format!(
        "the {id:?} kernel backend is inference-only and does not implement gradient kernels"
    ))
}

// ---------------------------------------------------------------------------
// DirectBackend: the naive-loop oracle
// ---------------------------------------------------------------------------

/// The naive-loop reference backend (`"direct"`): quadruple-loop convolution,
/// windowed-gather pooling, triple-loop GEMM and f64 dot-product Gram.
///
/// This is the portable correctness oracle — the backend conformance suite
/// compares every other backend against it. It is *not* bitwise-identical to
/// the paper default (the blocked GEMM path reorders reductions on
/// non-tiny shapes), so it carries its own store identity.
#[derive(Debug, Default, Clone, Copy)]
pub struct DirectBackend;

impl KernelBackend for DirectBackend {
    fn id(&self) -> &str {
        "direct"
    }

    fn config_fingerprint(&self) -> u64 {
        backend_fingerprint("direct", 1, &[])
    }

    fn conv2d(
        &self,
        input: &Tensor,
        weight: &Tensor,
        spec: Conv2dSpec,
        _workspace: &mut Workspace,
    ) -> Result<Tensor> {
        conv2d_direct(input, weight, spec)
    }

    fn conv2d_backward_input(
        &self,
        weight: &Tensor,
        grad_out: &Tensor,
        input_shape: &Shape,
        spec: Conv2dSpec,
        _workspace: &mut Workspace,
    ) -> Result<Tensor> {
        crate::conv::conv2d_backward_input_direct(weight, grad_out, input_shape, spec)
    }

    fn conv2d_backward_weight(
        &self,
        input: &Tensor,
        grad_out: &Tensor,
        c_out: usize,
        spec: Conv2dSpec,
        _workspace: &mut Workspace,
    ) -> Result<Tensor> {
        let (n, c_in, h, w, oh, ow) = check_backward_weight_args(input, grad_out, c_out, spec)?;
        Ok(conv2d_backward_weight_unchecked(
            input, grad_out, c_out, spec, n, c_in, h, w, oh, ow,
        ))
    }

    fn conv2d_backward_weight_per_sample_into(
        &self,
        input: &Tensor,
        grad_out: &Tensor,
        c_out: usize,
        spec: Conv2dSpec,
        _workspace: &mut Workspace,
        out: &mut [f32],
        row_stride: usize,
        offset: usize,
    ) -> Result<()> {
        let (n, c_in, h, w, oh, ow) = check_backward_weight_args(input, grad_out, c_out, spec)?;
        let per_sample = c_out * c_in * spec.kernel * spec.kernel;
        if n > 0 && out.len() < (n - 1) * row_stride + offset + per_sample {
            return Err(TensorError::InvalidArgument(format!(
                "per-sample gradient output buffer too short: {} < {}",
                out.len(),
                (n - 1) * row_stride + offset + per_sample
            )));
        }
        for b in 0..n {
            let dst = &mut out[b * row_stride + offset..b * row_stride + offset + per_sample];
            direct_weight_grad_sample(input, grad_out, b, c_out, c_in, h, w, oh, ow, spec, dst);
        }
        Ok(())
    }

    fn avg_pool2d(
        &self,
        input: &Tensor,
        kernel: usize,
        stride: usize,
        padding: usize,
        _workspace: &mut Workspace,
    ) -> Result<Tensor> {
        avg_pool2d_direct(input, kernel, stride, padding)
    }

    fn avg_pool2d_backward(
        &self,
        grad_out: &Tensor,
        input_shape: &Shape,
        kernel: usize,
        stride: usize,
        padding: usize,
        _workspace: &mut Workspace,
    ) -> Result<Tensor> {
        avg_pool2d_backward_direct(grad_out, input_shape, kernel, stride, padding)
    }

    fn gemm_nn(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        accumulate: bool,
    ) {
        assert_eq!(a.len(), m * k, "gemm: A buffer has wrong length");
        assert_eq!(b.len(), k * n, "gemm: B buffer has wrong length");
        assert_eq!(c.len(), m * n, "gemm: C buffer has wrong length");
        if !accumulate {
            c.fill(0.0);
        }
        for i in 0..m {
            for p in 0..k {
                let av = a[i * k + p];
                for jj in 0..n {
                    c[i * n + jj] += av * b[p * n + jj];
                }
            }
        }
    }

    fn gemm_nt(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        accumulate: bool,
    ) {
        assert_eq!(a.len(), m * k, "gemm: A buffer has wrong length");
        assert_eq!(b.len(), n * k, "gemm: B buffer has wrong length");
        assert_eq!(c.len(), m * n, "gemm: C buffer has wrong length");
        if !accumulate {
            c.fill(0.0);
        }
        for i in 0..m {
            for jj in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a[i * k + p] * b[jj * k + p];
                }
                c[i * n + jj] += acc;
            }
        }
    }

    fn gemm_tn(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        accumulate: bool,
    ) {
        assert_eq!(a.len(), k * m, "gemm: A buffer has wrong length");
        assert_eq!(b.len(), k * n, "gemm: B buffer has wrong length");
        assert_eq!(c.len(), m * n, "gemm: C buffer has wrong length");
        if !accumulate {
            c.fill(0.0);
        }
        for i in 0..m {
            for jj in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a[p * m + i] * b[p * n + jj];
                }
                c[i * n + jj] += acc;
            }
        }
    }

    fn gram_nt_f64(&self, n: usize, p: usize, j: &[f32], out: &mut [f64]) {
        assert_eq!(j.len(), n * p, "gram: J buffer has wrong length");
        assert_eq!(out.len(), n * n, "gram: output buffer has wrong length");
        for i in 0..n {
            for l in i..n {
                let mut acc = 0.0f64;
                for q in 0..p {
                    acc += j[i * p + q] as f64 * j[l * p + q] as f64;
                }
                out[i * n + l] = acc;
                out[l * n + i] = acc;
            }
        }
    }
}

/// Naive windowed-gather average pooling: the conformance oracle for the
/// separable two-pass kernel.
fn avg_pool2d_direct(
    input: &Tensor,
    kernel: usize,
    stride: usize,
    padding: usize,
) -> Result<Tensor> {
    if kernel == 0 || stride == 0 {
        return Err(TensorError::InvalidArgument(
            "kernel and stride must be positive".into(),
        ));
    }
    let d = input.shape().dims();
    if d.len() != 4 {
        return Err(TensorError::RankMismatch {
            op: "avg_pool2d",
            expected: 4,
            actual: d.len(),
        });
    }
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    let oh = (h + 2 * padding).saturating_sub(kernel) / stride + 1;
    let ow = (w + 2 * padding).saturating_sub(kernel) / stride + 1;
    let denom = (kernel * kernel) as f32;
    let mut out = Tensor::zeros(Shape::nchw(n, c, oh, ow));
    for b in 0..n {
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ky in 0..kernel {
                        let iy = (oy * stride + ky) as isize - padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..kernel {
                            let ix = (ox * stride + kx) as isize - padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            acc += input.at4(b, ch, iy as usize, ix as usize);
                        }
                    }
                    *out.at4_mut(b, ch, oy, ox) = acc / denom;
                }
            }
        }
    }
    Ok(out)
}

/// Naive scatter backward of [`avg_pool2d_direct`].
fn avg_pool2d_backward_direct(
    grad_out: &Tensor,
    input_shape: &Shape,
    kernel: usize,
    stride: usize,
    padding: usize,
) -> Result<Tensor> {
    let d = input_shape.dims();
    if d.len() != 4 {
        return Err(TensorError::RankMismatch {
            op: "avg_pool2d_backward",
            expected: 4,
            actual: d.len(),
        });
    }
    let (n, c, h, w) = (d[0], d[1], d[2], d[3]);
    let oh = (h + 2 * padding).saturating_sub(kernel) / stride + 1;
    let ow = (w + 2 * padding).saturating_sub(kernel) / stride + 1;
    if grad_out.shape().dims() != [n, c, oh, ow] {
        return Err(TensorError::IncompatibleShapes {
            op: "avg_pool2d_backward",
            lhs: grad_out.shape().dims().to_vec(),
            rhs: vec![n, c, oh, ow],
        });
    }
    let denom = (kernel * kernel) as f32;
    let mut grad_in = Tensor::zeros(input_shape.clone());
    for b in 0..n {
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = grad_out.at4(b, ch, oy, ox) / denom;
                    for ky in 0..kernel {
                        let iy = (oy * stride + ky) as isize - padding as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for kx in 0..kernel {
                            let ix = (ox * stride + kx) as isize - padding as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            *grad_in.at4_mut(b, ch, iy as usize, ix as usize) += g;
                        }
                    }
                }
            }
        }
    }
    Ok(grad_in)
}

// ---------------------------------------------------------------------------
// BlockedGemmBackend: the paper default
// ---------------------------------------------------------------------------

/// The paper-default backend (`"blocked_gemm"`): im2col lowering into the
/// cache-blocked GEMM kernels, with the [`crate::ConvEngine::Auto`]
/// small-shape direct dispatch — byte-for-byte the code path the dispatching
/// free functions ([`crate::conv2d_with`] and friends) run, and therefore
/// bitwise-identical to the paper pipeline (and still subject to a
/// process-wide [`crate::set_conv_engine`] pin, which benches and
/// equivalence tests rely on).
#[derive(Debug, Default, Clone, Copy)]
pub struct BlockedGemmBackend;

impl KernelBackend for BlockedGemmBackend {
    fn id(&self) -> &str {
        "blocked_gemm"
    }

    fn config_fingerprint(&self) -> u64 {
        backend_fingerprint("blocked_gemm", 1, &[])
    }

    fn bitwise_paper_identical(&self) -> bool {
        true
    }

    fn conv2d(
        &self,
        input: &Tensor,
        weight: &Tensor,
        spec: Conv2dSpec,
        workspace: &mut Workspace,
    ) -> Result<Tensor> {
        conv2d_pooled(input, weight, spec, workspace)
    }

    fn conv2d_forward_packed(
        &self,
        inputs: &[&Tensor],
        weight: &Tensor,
        spec: Conv2dSpec,
        workspace: &mut Workspace,
    ) -> Result<Vec<Tensor>> {
        // The packed free function proves its own bitwise-identity contract
        // (schedule guard + per-candidate fallback), so this override keeps
        // the paper-default numerics at every pack width.
        crate::conv::conv2d_forward_packed_pooled(inputs, weight, spec, workspace)
    }

    fn conv2d_backward_input(
        &self,
        weight: &Tensor,
        grad_out: &Tensor,
        input_shape: &Shape,
        spec: Conv2dSpec,
        workspace: &mut Workspace,
    ) -> Result<Tensor> {
        conv2d_backward_input_pooled(weight, grad_out, input_shape, spec, workspace)
    }

    fn conv2d_backward_weight(
        &self,
        input: &Tensor,
        grad_out: &Tensor,
        c_out: usize,
        spec: Conv2dSpec,
        workspace: &mut Workspace,
    ) -> Result<Tensor> {
        conv2d_backward_weight_with(input, grad_out, c_out, spec, workspace)
    }

    fn conv2d_backward_weight_per_sample_into(
        &self,
        input: &Tensor,
        grad_out: &Tensor,
        c_out: usize,
        spec: Conv2dSpec,
        workspace: &mut Workspace,
        out: &mut [f32],
        row_stride: usize,
        offset: usize,
    ) -> Result<()> {
        conv2d_backward_weight_per_sample_into(
            input, grad_out, c_out, spec, workspace, out, row_stride, offset,
        )
    }

    fn conv2d_backward_weight_per_sample_packed(
        &self,
        inputs: &[&Tensor],
        grad_outs: &[&Tensor],
        c_out: usize,
        spec: Conv2dSpec,
        workspace: &mut Workspace,
        slots: &mut [PackedGradSlot<'_>],
    ) -> Result<()> {
        // The packed free function iterates the exact solo per-candidate
        // schedule (sharing only the im2col lowering of bitwise-equal
        // inputs), so this override keeps the paper-default numerics at
        // every pack width.
        conv2d_backward_weight_per_sample_packed_into(
            inputs, grad_outs, c_out, spec, workspace, slots,
        )
    }

    fn conv2d_backward_input_packed(
        &self,
        weight: &Tensor,
        grad_outs: &[&Tensor],
        input_shape: &Shape,
        spec: Conv2dSpec,
        workspace: &mut Workspace,
    ) -> Result<Vec<Tensor>> {
        conv2d_backward_input_packed_pooled(weight, grad_outs, input_shape, spec, workspace)
    }

    fn avg_pool2d(
        &self,
        input: &Tensor,
        kernel: usize,
        stride: usize,
        padding: usize,
        workspace: &mut Workspace,
    ) -> Result<Tensor> {
        avg_pool2d_pooled(input, kernel, stride, padding, workspace)
    }

    fn avg_pool2d_backward(
        &self,
        grad_out: &Tensor,
        input_shape: &Shape,
        kernel: usize,
        stride: usize,
        padding: usize,
        workspace: &mut Workspace,
    ) -> Result<Tensor> {
        avg_pool2d_backward_pooled(grad_out, input_shape, kernel, stride, padding, workspace)
    }

    fn gemm_nn(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        accumulate: bool,
    ) {
        crate::linalg::gemm_nn(m, k, n, a, b, c, accumulate);
    }

    fn gemm_nt(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        accumulate: bool,
    ) {
        crate::linalg::gemm_nt(m, k, n, a, b, c, accumulate);
    }

    fn gemm_tn(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        accumulate: bool,
    ) {
        crate::linalg::gemm_tn(m, k, n, a, b, c, accumulate);
    }

    fn gram_nt_f64(&self, n: usize, p: usize, j: &[f32], out: &mut [f64]) {
        crate::linalg::gram_nt_f64(n, p, j, out);
    }
}

// ---------------------------------------------------------------------------
// Telemetry: per-backend dispatch counters
// ---------------------------------------------------------------------------

/// Static telemetry counter names for one backend family. Counter names
/// must be `&'static str` (the sink contract), so each known backend id
/// maps to a pre-built label set; unknown (external) backends share one
/// `tensor.backend.other.*` set.
#[derive(Debug)]
struct DispatchCounters {
    conv_solo: &'static str,
    conv_packed: &'static str,
    conv_packed_inputs: &'static str,
    backward: &'static str,
    backward_packed: &'static str,
    backward_packed_members: &'static str,
    pool: &'static str,
    gemm: &'static str,
    gram: &'static str,
}

macro_rules! dispatch_counters {
    ($family:literal) => {
        DispatchCounters {
            conv_solo: concat!("tensor.backend.", $family, ".conv_solo_dispatches"),
            conv_packed: concat!("tensor.backend.", $family, ".conv_packed_dispatches"),
            conv_packed_inputs: concat!("tensor.backend.", $family, ".conv_packed_inputs"),
            backward: concat!("tensor.backend.", $family, ".backward_dispatches"),
            backward_packed: concat!("tensor.backend.", $family, ".backward_packed_dispatches"),
            backward_packed_members: concat!(
                "tensor.backend.",
                $family,
                ".backward_packed_members"
            ),
            pool: concat!("tensor.backend.", $family, ".pool_dispatches"),
            gemm: concat!("tensor.backend.", $family, ".gemm_dispatches"),
            gram: concat!("tensor.backend.", $family, ".gram_dispatches"),
        }
    };
}

fn dispatch_counters(id: &str) -> &'static DispatchCounters {
    static DIRECT: DispatchCounters = dispatch_counters!("direct");
    static BLOCKED: DispatchCounters = dispatch_counters!("blocked_gemm");
    static SIMD: DispatchCounters = dispatch_counters!("simd");
    static INT8: DispatchCounters = dispatch_counters!("int8_mcu");
    static OTHER: DispatchCounters = dispatch_counters!("other");
    match id {
        "direct" => &DIRECT,
        "blocked_gemm" => &BLOCKED,
        "simd" => &SIMD,
        "int8_mcu" => &INT8,
        _ => &OTHER,
    }
}

/// Wraps a backend so every kernel dispatch increments a per-backend
/// telemetry counter (`tensor.backend.<id>.*`) before forwarding.
///
/// The wrapper is identity-transparent — `id`, `config_fingerprint`,
/// `bitwise_paper_identical`, `supports_gradients` and the arena policy all
/// forward unchanged, so store namespaces and conformance identities do not
/// move — and inert: with no enabled sink installed each dispatch pays one
/// relaxed atomic load. [`KernelBackendKind::instantiate`],
/// [`paper_default_backend`] and therefore [`all_backends`] return
/// already-instrumented instances; use this only to instrument an external
/// [`KernelBackend`] implementation.
pub fn instrument_backend(inner: Arc<dyn KernelBackend>) -> Arc<dyn KernelBackend> {
    let counters = dispatch_counters(inner.id());
    Arc::new(InstrumentedBackend { inner, counters })
}

/// See [`instrument_backend`].
#[derive(Debug)]
struct InstrumentedBackend {
    inner: Arc<dyn KernelBackend>,
    counters: &'static DispatchCounters,
}

impl KernelBackend for InstrumentedBackend {
    fn id(&self) -> &str {
        self.inner.id()
    }

    fn config_fingerprint(&self) -> u64 {
        self.inner.config_fingerprint()
    }

    fn bitwise_paper_identical(&self) -> bool {
        self.inner.bitwise_paper_identical()
    }

    fn supports_gradients(&self) -> bool {
        self.inner.supports_gradients()
    }

    fn arena_retention_cap_bytes(&self) -> usize {
        self.inner.arena_retention_cap_bytes()
    }

    fn conv2d(
        &self,
        input: &Tensor,
        weight: &Tensor,
        spec: Conv2dSpec,
        workspace: &mut Workspace,
    ) -> Result<Tensor> {
        micronas_telemetry::counter_add(self.counters.conv_solo, 1);
        self.inner.conv2d(input, weight, spec, workspace)
    }

    fn conv2d_forward_packed(
        &self,
        inputs: &[&Tensor],
        weight: &Tensor,
        spec: Conv2dSpec,
        workspace: &mut Workspace,
    ) -> Result<Vec<Tensor>> {
        micronas_telemetry::counter_add(self.counters.conv_packed, 1);
        micronas_telemetry::counter_add(self.counters.conv_packed_inputs, inputs.len() as u64);
        self.inner
            .conv2d_forward_packed(inputs, weight, spec, workspace)
    }

    fn conv2d_backward_input(
        &self,
        weight: &Tensor,
        grad_out: &Tensor,
        input_shape: &Shape,
        spec: Conv2dSpec,
        workspace: &mut Workspace,
    ) -> Result<Tensor> {
        micronas_telemetry::counter_add(self.counters.backward, 1);
        self.inner
            .conv2d_backward_input(weight, grad_out, input_shape, spec, workspace)
    }

    fn conv2d_backward_weight(
        &self,
        input: &Tensor,
        grad_out: &Tensor,
        c_out: usize,
        spec: Conv2dSpec,
        workspace: &mut Workspace,
    ) -> Result<Tensor> {
        micronas_telemetry::counter_add(self.counters.backward, 1);
        self.inner
            .conv2d_backward_weight(input, grad_out, c_out, spec, workspace)
    }

    fn conv2d_backward_weight_per_sample_into(
        &self,
        input: &Tensor,
        grad_out: &Tensor,
        c_out: usize,
        spec: Conv2dSpec,
        workspace: &mut Workspace,
        out: &mut [f32],
        row_stride: usize,
        offset: usize,
    ) -> Result<()> {
        micronas_telemetry::counter_add(self.counters.backward, 1);
        self.inner.conv2d_backward_weight_per_sample_into(
            input, grad_out, c_out, spec, workspace, out, row_stride, offset,
        )
    }

    fn conv2d_backward_weight_per_sample_packed(
        &self,
        inputs: &[&Tensor],
        grad_outs: &[&Tensor],
        c_out: usize,
        spec: Conv2dSpec,
        workspace: &mut Workspace,
        slots: &mut [PackedGradSlot<'_>],
    ) -> Result<()> {
        micronas_telemetry::counter_add(self.counters.backward_packed, 1);
        micronas_telemetry::counter_add(self.counters.backward_packed_members, inputs.len() as u64);
        self.inner.conv2d_backward_weight_per_sample_packed(
            inputs, grad_outs, c_out, spec, workspace, slots,
        )
    }

    fn conv2d_backward_input_packed(
        &self,
        weight: &Tensor,
        grad_outs: &[&Tensor],
        input_shape: &Shape,
        spec: Conv2dSpec,
        workspace: &mut Workspace,
    ) -> Result<Vec<Tensor>> {
        micronas_telemetry::counter_add(self.counters.backward_packed, 1);
        micronas_telemetry::counter_add(
            self.counters.backward_packed_members,
            grad_outs.len() as u64,
        );
        self.inner
            .conv2d_backward_input_packed(weight, grad_outs, input_shape, spec, workspace)
    }

    fn avg_pool2d(
        &self,
        input: &Tensor,
        kernel: usize,
        stride: usize,
        padding: usize,
        workspace: &mut Workspace,
    ) -> Result<Tensor> {
        micronas_telemetry::counter_add(self.counters.pool, 1);
        self.inner
            .avg_pool2d(input, kernel, stride, padding, workspace)
    }

    fn avg_pool2d_backward(
        &self,
        grad_out: &Tensor,
        input_shape: &Shape,
        kernel: usize,
        stride: usize,
        padding: usize,
        workspace: &mut Workspace,
    ) -> Result<Tensor> {
        micronas_telemetry::counter_add(self.counters.pool, 1);
        self.inner
            .avg_pool2d_backward(grad_out, input_shape, kernel, stride, padding, workspace)
    }

    fn gemm_nn(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        accumulate: bool,
    ) {
        micronas_telemetry::counter_add(self.counters.gemm, 1);
        self.inner.gemm_nn(m, k, n, a, b, c, accumulate);
    }

    fn gemm_nt(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        accumulate: bool,
    ) {
        micronas_telemetry::counter_add(self.counters.gemm, 1);
        self.inner.gemm_nt(m, k, n, a, b, c, accumulate);
    }

    fn gemm_tn(
        &self,
        m: usize,
        k: usize,
        n: usize,
        a: &[f32],
        b: &[f32],
        c: &mut [f32],
        accumulate: bool,
    ) {
        micronas_telemetry::counter_add(self.counters.gemm, 1);
        self.inner.gemm_tn(m, k, n, a, b, c, accumulate);
    }

    fn gram_nt_f64(&self, n: usize, p: usize, j: &[f32], out: &mut [f64]) {
        micronas_telemetry::counter_add(self.counters.gram, 1);
        self.inner.gram_nt_f64(n, p, j, out);
    }
}

// ---------------------------------------------------------------------------
// Registry and selection
// ---------------------------------------------------------------------------

/// The built-in backend families, as a serialisable configuration value.
///
/// This is the knob `MicroNasConfig` / `SearchSession::backend(..)` carry:
/// a closed enum of the shipped backends (external `KernelBackend`
/// implementations are threaded as trait objects through the lower-level
/// constructors instead, since a persisted configuration value must name a
/// backend every process can re-instantiate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum KernelBackendKind {
    /// [`DirectBackend`] — naive-loop oracle.
    Direct,
    /// [`BlockedGemmBackend`] — the paper default (bitwise-identical).
    #[default]
    BlockedGemm,
    /// [`crate::SimdBackend`] — FMA-tiled, rayon-chunked CPU backend.
    Simd,
    /// [`crate::Int8Backend`] — int8 fixed-point MCU reference backend.
    Int8Mcu,
}

impl KernelBackendKind {
    /// The backend's stable string id.
    pub fn id(self) -> &'static str {
        match self {
            KernelBackendKind::Direct => "direct",
            KernelBackendKind::BlockedGemm => "blocked_gemm",
            KernelBackendKind::Simd => "simd",
            KernelBackendKind::Int8Mcu => "int8_mcu",
        }
    }

    /// All shipped kinds, in id order.
    pub fn all() -> [KernelBackendKind; 4] {
        [
            KernelBackendKind::Direct,
            KernelBackendKind::BlockedGemm,
            KernelBackendKind::Simd,
            KernelBackendKind::Int8Mcu,
        ]
    }

    /// Parses a stable string id back into a kind.
    pub fn from_id(id: &str) -> Option<Self> {
        Self::all().into_iter().find(|k| k.id() == id)
    }

    /// Parses a stable string id, listing the valid ids on failure —
    /// `from_id` for surfaces (CLIs, configuration files) where a bare
    /// "unknown backend" leaves the user guessing.
    ///
    /// # Errors
    ///
    /// Returns a message naming every shipped backend id.
    pub fn parse(id: &str) -> std::result::Result<Self, String> {
        Self::from_id(id).ok_or_else(|| {
            let valid: Vec<&str> = Self::all().iter().map(|k| k.id()).collect();
            format!("unknown backend id {id:?}; valid ids: {}", valid.join(", "))
        })
    }

    /// Whether this kind's results are bitwise-identical to the
    /// paper-default pipeline (see
    /// [`KernelBackend::bitwise_paper_identical`]).
    pub fn bitwise_paper_identical(self) -> bool {
        matches!(self, KernelBackendKind::BlockedGemm)
    }

    /// Whether this kind implements gradient kernels.
    pub fn supports_gradients(self) -> bool {
        !matches!(self, KernelBackendKind::Int8Mcu)
    }

    /// Instantiates the backend. The stateless kinds return one cached
    /// shared instance per process; `Int8Mcu` is deliberately fresh per
    /// call, because each instance carries its own MAC counter
    /// ([`crate::Int8Backend::macs_performed`]) and profiling sessions must
    /// not share it.
    pub fn instantiate(self) -> Arc<dyn KernelBackend> {
        static DIRECT: OnceLock<Arc<dyn KernelBackend>> = OnceLock::new();
        static SIMD: OnceLock<Arc<dyn KernelBackend>> = OnceLock::new();
        match self {
            KernelBackendKind::Direct => DIRECT
                .get_or_init(|| instrument_backend(Arc::new(DirectBackend)))
                .clone(),
            KernelBackendKind::BlockedGemm => paper_default_backend(),
            KernelBackendKind::Simd => SIMD
                .get_or_init(|| instrument_backend(Arc::new(crate::SimdBackend)))
                .clone(),
            KernelBackendKind::Int8Mcu => instrument_backend(Arc::new(crate::Int8Backend::new())),
        }
    }
}

/// The shared paper-default backend instance ([`BlockedGemmBackend`]): what
/// every network and evaluator runs on when no backend is supplied.
pub fn paper_default_backend() -> Arc<dyn KernelBackend> {
    static DEFAULT: OnceLock<Arc<dyn KernelBackend>> = OnceLock::new();
    DEFAULT
        .get_or_init(|| instrument_backend(Arc::new(BlockedGemmBackend)))
        .clone()
}

/// Every registered built-in backend, in a fixed order — the set the
/// conformance suite runs against the direct oracle.
pub fn all_backends() -> Vec<Arc<dyn KernelBackend>> {
    vec![
        KernelBackendKind::Direct.instantiate(),
        KernelBackendKind::BlockedGemm.instantiate(),
        KernelBackendKind::Simd.instantiate(),
        KernelBackendKind::Int8Mcu.instantiate(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_roundtrip_through_ids() {
        for kind in [
            KernelBackendKind::Direct,
            KernelBackendKind::BlockedGemm,
            KernelBackendKind::Simd,
            KernelBackendKind::Int8Mcu,
        ] {
            assert_eq!(KernelBackendKind::from_id(kind.id()), Some(kind));
            assert_eq!(kind.instantiate().id(), kind.id());
        }
        assert_eq!(KernelBackendKind::from_id("gpu"), None);
    }

    #[test]
    fn parse_error_lists_every_valid_id() {
        let err = KernelBackendKind::parse("gpu").unwrap_err();
        assert!(err.contains("unknown backend id \"gpu\""), "{err}");
        for kind in KernelBackendKind::all() {
            assert!(err.contains(kind.id()), "{err} missing {}", kind.id());
        }
        for kind in KernelBackendKind::all() {
            assert_eq!(KernelBackendKind::parse(kind.id()), Ok(kind));
        }
    }

    #[test]
    fn only_the_paper_default_is_bitwise_identical() {
        let bitwise: Vec<String> = all_backends()
            .iter()
            .filter(|b| b.bitwise_paper_identical())
            .map(|b| b.id().to_string())
            .collect();
        assert_eq!(bitwise, ["blocked_gemm"]);
        assert!(paper_default_backend().bitwise_paper_identical());
        assert_eq!(KernelBackendKind::default(), KernelBackendKind::BlockedGemm);
    }

    #[test]
    fn fingerprints_are_stable_and_distinct() {
        let prints: Vec<u64> = all_backends()
            .iter()
            .map(|b| b.config_fingerprint())
            .collect();
        for (i, a) in prints.iter().enumerate() {
            for b in &prints[i + 1..] {
                assert_ne!(a, b, "backend fingerprints must be distinct");
            }
        }
        // Deterministic across instantiations.
        assert_eq!(
            KernelBackendKind::Simd.instantiate().config_fingerprint(),
            KernelBackendKind::Simd.instantiate().config_fingerprint()
        );
        // The id is part of the fingerprint domain.
        assert_ne!(
            backend_fingerprint("a", 1, &[7]),
            backend_fingerprint("b", 1, &[7])
        );
    }

    #[test]
    fn direct_gemms_match_blocked_gemms() {
        let direct = DirectBackend;
        let blocked = BlockedGemmBackend;
        let a: Vec<f32> = (0..6 * 5).map(|i| (i as f32 * 0.37).sin()).collect();
        let b: Vec<f32> = (0..5 * 4).map(|i| (i as f32 * 0.73).cos()).collect();
        let mut c1 = vec![0.0f32; 6 * 4];
        let mut c2 = vec![1.0f32; 6 * 4];
        direct.gemm_nn(6, 5, 4, &a, &b, &mut c1, false);
        blocked.gemm_nn(6, 5, 4, &a, &b, &mut c2, false);
        for (x, y) in c1.iter().zip(&c2) {
            assert!((x - y).abs() < 1e-5, "{x} vs {y}");
        }
    }
}
