use std::fmt;

/// Error type returned by every fallible operation in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// The number of elements supplied does not match the requested shape.
    ShapeMismatch {
        /// Number of elements the shape implies.
        expected: usize,
        /// Number of elements actually supplied.
        actual: usize,
    },
    /// Two tensors that must share a shape (or a compatible dimension) do not.
    IncompatibleShapes {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Left-hand-side dimensions.
        lhs: Vec<usize>,
        /// Right-hand-side dimensions.
        rhs: Vec<usize>,
    },
    /// The tensor does not have the rank required by the operation.
    RankMismatch {
        /// Operation that was attempted.
        op: &'static str,
        /// Rank the operation requires.
        expected: usize,
        /// Rank of the tensor that was supplied.
        actual: usize,
    },
    /// An index was out of bounds for the tensor shape.
    IndexOutOfBounds {
        /// The offending flat index.
        index: usize,
        /// Number of elements in the tensor.
        len: usize,
    },
    /// A numeric routine failed to converge or met a degenerate input.
    Numerical(String),
    /// An argument was invalid (zero dimension, empty batch, ...).
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, actual } => {
                write!(
                    f,
                    "shape implies {expected} elements but {actual} were supplied"
                )
            }
            TensorError::IncompatibleShapes { op, lhs, rhs } => {
                write!(
                    f,
                    "incompatible shapes for {op}: lhs {lhs:?} vs rhs {rhs:?}"
                )
            }
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => {
                write!(f, "{op} requires rank {expected} tensor, got rank {actual}")
            }
            TensorError::IndexOutOfBounds { index, len } => {
                write!(
                    f,
                    "index {index} out of bounds for tensor of {len} elements"
                )
            }
            TensorError::Numerical(msg) => write!(f, "numerical failure: {msg}"),
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = TensorError::ShapeMismatch {
            expected: 4,
            actual: 3,
        };
        assert!(err.to_string().contains("4"));
        assert!(err.to_string().contains("3"));

        let err = TensorError::IncompatibleShapes {
            op: "matmul",
            lhs: vec![2, 3],
            rhs: vec![4, 2],
        };
        assert!(err.to_string().contains("matmul"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }
}
