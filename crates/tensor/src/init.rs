//! Weight initialisation schemes.
//!
//! Zero-shot proxies are evaluated at random initialisation, so the
//! initialiser *is* part of the measurement: the NTK spectrum and the number
//! of linear regions both depend on the weight scale. Kaiming initialisation
//! (as used by the NAS-Bench-201 / TE-NAS reference code) is the default.

use crate::{DeterministicRng, Shape, Tensor};
use serde::{Deserialize, Serialize};

/// Supported initialisation schemes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InitKind {
    /// Kaiming/He normal: `N(0, sqrt(2 / fan_in))`.
    KaimingNormal,
    /// Kaiming/He uniform: `U(-b, b)` with `b = sqrt(6 / fan_in)`.
    KaimingUniform,
    /// Xavier/Glorot uniform: `U(-b, b)` with `b = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform,
}

fn fan_in_out(shape: &Shape) -> (usize, usize) {
    let d = shape.dims();
    match d.len() {
        2 => (d[1], d[0]),
        4 => (d[1] * d[2] * d[3], d[0] * d[2] * d[3]),
        _ => {
            let n = shape.numel().max(1);
            (n, n)
        }
    }
}

/// Kaiming normal initialisation of a tensor with the given shape.
///
/// # Example
///
/// ```
/// use micronas_tensor::{kaiming_normal, Shape};
/// let w = kaiming_normal(Shape::nchw(8, 3, 3, 3), 42);
/// assert_eq!(w.numel(), 8 * 3 * 3 * 3);
/// ```
pub fn kaiming_normal(shape: Shape, seed: u64) -> Tensor {
    let (fan_in, _) = fan_in_out(&shape);
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    let mut rng = DeterministicRng::new(seed);
    let data = (0..shape.numel())
        .map(|_| rng.normal_with(0.0, std))
        .collect();
    Tensor::from_vec(shape, data).expect("length matches shape by construction")
}

/// Kaiming uniform initialisation of a tensor with the given shape.
pub fn kaiming_uniform(shape: Shape, seed: u64) -> Tensor {
    let (fan_in, _) = fan_in_out(&shape);
    let bound = (6.0 / fan_in.max(1) as f32).sqrt();
    let mut rng = DeterministicRng::new(seed);
    let data = (0..shape.numel())
        .map(|_| rng.uniform(-bound, bound))
        .collect();
    Tensor::from_vec(shape, data).expect("length matches shape by construction")
}

/// Xavier uniform initialisation of a tensor with the given shape.
pub fn xavier_uniform(shape: Shape, seed: u64) -> Tensor {
    let (fan_in, fan_out) = fan_in_out(&shape);
    let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    let mut rng = DeterministicRng::new(seed);
    let data = (0..shape.numel())
        .map(|_| rng.uniform(-bound, bound))
        .collect();
    Tensor::from_vec(shape, data).expect("length matches shape by construction")
}

impl InitKind {
    /// Initialises a tensor of the given shape with this scheme.
    pub fn init(self, shape: Shape, seed: u64) -> Tensor {
        match self {
            InitKind::KaimingNormal => kaiming_normal(shape, seed),
            InitKind::KaimingUniform => kaiming_uniform(shape, seed),
            InitKind::XavierUniform => xavier_uniform(shape, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population_variance;

    #[test]
    fn kaiming_normal_variance_tracks_fan_in() {
        // fan_in = 16*3*3 = 144, expected std = sqrt(2/144) ≈ 0.1178
        let w = kaiming_normal(Shape::nchw(32, 16, 3, 3), 1);
        let var = population_variance(w.data());
        let expected = 2.0 / 144.0;
        assert!(
            (var - expected).abs() < expected * 0.25,
            "var {var} vs {expected}"
        );
    }

    #[test]
    fn kaiming_uniform_respects_bound() {
        let w = kaiming_uniform(Shape::d2(10, 100), 2);
        let bound = (6.0f32 / 100.0).sqrt();
        assert!(w.data().iter().all(|&x| x.abs() <= bound));
    }

    #[test]
    fn xavier_uniform_respects_bound() {
        let w = xavier_uniform(Shape::d2(50, 100), 3);
        let bound = (6.0f32 / 150.0).sqrt();
        assert!(w.data().iter().all(|&x| x.abs() <= bound));
    }

    #[test]
    fn initialisation_is_deterministic_per_seed() {
        let a = kaiming_normal(Shape::d2(4, 4), 7);
        let b = kaiming_normal(Shape::d2(4, 4), 7);
        let c = kaiming_normal(Shape::d2(4, 4), 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn init_kind_dispatch() {
        for kind in [
            InitKind::KaimingNormal,
            InitKind::KaimingUniform,
            InitKind::XavierUniform,
        ] {
            let t = kind.init(Shape::d2(3, 3), 9);
            assert_eq!(t.numel(), 9);
        }
    }
}
