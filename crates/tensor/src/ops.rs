//! Free-standing element-wise operations that do not naturally belong on
//! [`Tensor`] as methods (activation functions and their derivatives).
//!
//! These are used by the `micronas-nn` layer implementations; keeping them
//! here lets the numerical kernels be tested in isolation.

use crate::Tensor;

/// Rectified linear unit applied element-wise.
///
/// # Example
///
/// ```
/// use micronas_tensor::{Tensor, Shape, ops};
/// # fn main() -> Result<(), micronas_tensor::TensorError> {
/// let x = Tensor::from_vec(Shape::d1(3), vec![-1.0, 0.0, 2.0])?;
/// let y = ops::relu(&x);
/// assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
/// # Ok(())
/// # }
/// ```
pub fn relu(x: &Tensor) -> Tensor {
    x.map(|v| if v > 0.0 { v } else { 0.0 })
}

/// Gradient of [`relu`]: passes `upstream` through where the forward input
/// was strictly positive and zeroes it elsewhere.
///
/// # Panics
///
/// Panics if `input` and `upstream` have different element counts; the two
/// always originate from the same forward pass in practice.
pub fn relu_backward(input: &Tensor, upstream: &Tensor) -> Tensor {
    assert_eq!(
        input.numel(),
        upstream.numel(),
        "relu_backward: length mismatch"
    );
    let data = input
        .data()
        .iter()
        .zip(upstream.data().iter())
        .map(|(&x, &g)| if x > 0.0 { g } else { 0.0 })
        .collect();
    Tensor::from_vec(input.shape().clone(), data).expect("same shape as input")
}

/// Binary activation pattern of a tensor: 1 where the value is strictly
/// positive, 0 elsewhere. Used by the linear-region counting proxy.
pub fn activation_pattern(x: &Tensor) -> Vec<bool> {
    x.data().iter().map(|&v| v > 0.0).collect()
}

/// Numerically stable softmax over the last axis of a rank-2 tensor
/// (rows are samples, columns are classes).
///
/// # Panics
///
/// Panics if the tensor is not rank 2.
pub fn softmax_rows(x: &Tensor) -> Tensor {
    let dims = x.shape().dims();
    assert_eq!(dims.len(), 2, "softmax_rows expects a rank-2 tensor");
    let (rows, cols) = (dims[0], dims[1]);
    let mut out = vec![0.0f32; rows * cols];
    for r in 0..rows {
        let row = &x.data()[r * cols..(r + 1) * cols];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = row.iter().map(|&v| (v - m).exp()).collect();
        let denom: f32 = exps.iter().sum();
        for c in 0..cols {
            out[r * cols + c] = exps[c] / denom;
        }
    }
    Tensor::from_vec(x.shape().clone(), out).expect("same shape")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Shape;
    use proptest::prelude::*;

    #[test]
    fn relu_clamps_negatives() {
        let x = Tensor::from_vec(Shape::d1(4), vec![-2.0, -0.5, 0.0, 3.0]).unwrap();
        assert_eq!(relu(&x).data(), &[0.0, 0.0, 0.0, 3.0]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let x = Tensor::from_vec(Shape::d1(4), vec![-1.0, 0.0, 1.0, 2.0]).unwrap();
        let g = Tensor::from_vec(Shape::d1(4), vec![10.0, 10.0, 10.0, 10.0]).unwrap();
        assert_eq!(relu_backward(&x, &g).data(), &[0.0, 0.0, 10.0, 10.0]);
    }

    #[test]
    fn activation_pattern_thresholds_at_zero() {
        let x = Tensor::from_vec(Shape::d1(3), vec![-1.0, 0.0, 0.5]).unwrap();
        assert_eq!(activation_pattern(&x), vec![false, false, true]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(Shape::d2(2, 3), vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]).unwrap();
        let s = softmax_rows(&x);
        for r in 0..2 {
            let sum: f32 = (0..3).map(|c| s.at2(r, c)).sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = Tensor::from_vec(Shape::d2(1, 3), vec![1.0, 2.0, 3.0]).unwrap();
        let y = Tensor::from_vec(Shape::d2(1, 3), vec![101.0, 102.0, 103.0]).unwrap();
        let sx = softmax_rows(&x);
        let sy = softmax_rows(&y);
        for (a, b) in sx.data().iter().zip(sy.data()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    proptest! {
        #[test]
        fn relu_is_idempotent(vals in proptest::collection::vec(-10.0f32..10.0, 1..64)) {
            let x = Tensor::from_vec(Shape::d1(vals.len()), vals).unwrap();
            let once = relu(&x);
            let twice = relu(&once);
            prop_assert_eq!(once, twice);
        }

        #[test]
        fn relu_output_nonnegative(vals in proptest::collection::vec(-10.0f32..10.0, 1..64)) {
            let x = Tensor::from_vec(Shape::d1(vals.len()), vals).unwrap();
            prop_assert!(relu(&x).data().iter().all(|&v| v >= 0.0));
        }
    }
}
